"""D11 — placing a service on a remote CPU (§6 open question 3).

"Ideally, we could take advantage of the network capabilities of Apiary
and place the service on any remote CPU, maintaining the ability to use an
FPGA independent of its on-node CPU."

We implement the same dictionary service twice — as a hardware tile
service and as a :class:`RemoteServiceProxy` forwarding to a CPU host
across the datacenter fabric — and measure what callers see.  The trade
the question asks about becomes a number: remote placement works through
the identical shell API, at ~an order of magnitude more latency, so it
suits rarely-used/complex services exactly as the paper suggests.
"""

import numpy as np
import pytest

from repro.accel import Accelerator
from repro.eval import format_table
from repro.eval.report import record
from repro.hw.resources import ResourceVector
from repro.kernel import (
    ApiarySystem,
    RemoteCpuServiceHost,
    RemoteServiceProxy,
)
from repro.net import EthernetFabric
from repro.sim import Engine

N_LOOKUPS = 30
HANDLER_CYCLES = 150


class HardwareDictService(Accelerator):
    """The same dictionary service, implemented in fabric on a tile."""

    COST = ResourceVector(logic_cells=35_000, bram_kb=512, dsp_slices=0)
    PRIMITIVES = {"lut_logic": 28_000, "bram": 128}

    def __init__(self, name):
        super().__init__(name)
        self._table = {}

    def main(self, shell):
        while True:
            msg = yield shell.recv()
            body = msg.payload or {}
            if msg.op == "dict.put":
                yield from self._work(HANDLER_CYCLES)
                self._table[body["key"]] = body["value"]
                yield shell.reply(msg, payload={"stored": True},
                                  payload_bytes=16)
            elif msg.op == "dict.get":
                yield from self._work(HANDLER_CYCLES)
                yield shell.reply(msg,
                                  payload={"value": self._table.get(body["key"])},
                                  payload_bytes=64)
            else:
                yield shell.reply(msg, payload="bad op", error=True)


class LookupClient(Accelerator):
    def __init__(self, endpoint):
        super().__init__("lookup-client")
        self.endpoint = endpoint
        self.latencies = []

    def main(self, shell):
        yield shell.call(self.endpoint, "dict.put",
                         payload={"key": "k", "value": 7},
                         payload_bytes=64, timeout=100_000_000)
        for _ in range(N_LOOKUPS):
            t0 = shell.engine.now
            yield shell.call(self.endpoint, "dict.get",
                             payload={"key": "k"}, payload_bytes=64,
                             timeout=100_000_000)
            self.latencies.append(shell.engine.now - t0)
            yield 1000


def run_hardware():
    system = ApiarySystem(width=3, height=2)
    system.boot()
    system.run_until(system.mgmt.load_service(
        3, HardwareDictService("dict-hw"), "svc.dict"))
    client = LookupClient("svc.dict")
    started = system.start_app(4, client)
    system.run_until(started)
    system.run(until=system.engine.now + 500_000_000)
    assert len(client.latencies) == N_LOOKUPS
    return float(np.median(client.latencies)), 0.0


def run_remote():
    def handler(op, payload):
        table = handler.table
        if op == "dict.put":
            table[payload["key"]] = payload["value"]
            return HANDLER_CYCLES, {"stored": True}, 16
        return HANDLER_CYCLES, {"value": table.get(payload["key"])}, 64

    handler.table = {}
    engine = Engine()
    fabric = EthernetFabric(engine, latency_cycles=400)
    system = ApiarySystem(width=3, height=2, engine=engine, fabric=fabric,
                          mac_kind="100g", mac_addr="board0")
    system.boot()
    host = RemoteCpuServiceHost(engine, fabric, "cpu0", handler)
    proxy = RemoteServiceProxy("dict-proxy", remote_mac="cpu0", port=88)
    started = system.mgmt.load_service(3, proxy, "svc.dict")
    system.mgmt.grant_send("tile3", "svc.net")
    net_tile = system.tiles[system.name_table["svc.net"]]
    system.mgmt.grant_send(net_tile.endpoint, "tile3")
    system.run_until(started)
    client = LookupClient("svc.dict")
    started = system.start_app(4, client)
    system.run_until(started)
    system.run(until=engine.now + 1_000_000_000)
    assert len(client.latencies) == N_LOOKUPS
    cpu_per_req = host.cpu.cycles_used / max(1, host.requests_served)
    return float(np.median(client.latencies)), cpu_per_req


def test_bench_remote_service(benchmark):
    def run_all():
        return run_hardware(), run_remote()

    (hw_lat, hw_cpu), (remote_lat, remote_cpu) = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    # remote placement WORKS (same API, all lookups completed) but costs
    # network RTTs plus host-stack time: order-of-magnitude slower
    assert remote_lat > 4 * hw_lat
    assert remote_lat < 100 * hw_lat  # ...not unusable: fine for rare ops
    assert hw_cpu == 0.0
    assert remote_cpu > HANDLER_CYCLES

    rows = [
        ["hardware tile service", hw_lat, hw_cpu],
        ["remote CPU via proxy tile", remote_lat, round(remote_cpu)],
    ]
    record("D11", "Service placement (Section 6 Q3): dictionary lookup "
                  f"median latency, {N_LOOKUPS} lookups",
           format_table(["placement", "p50 (cyc)", "host CPU cyc/req"],
                        rows))
