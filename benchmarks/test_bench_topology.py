"""A4 — ablation: fabric topology (mesh vs torus) under uniform traffic.

Section 4.3 picks "a NoC" without fixing the topology; hardened NoCs on
real parts are effectively meshes.  This ablation quantifies what a torus
would buy Apiary: shorter average distance (wraparound halves the mean
hop count) at the cost of the wrap links — and shows the router/topology
layers are genuinely pluggable.
"""

import numpy as np
import pytest

from repro.eval import format_table
from repro.eval.report import record
from repro.noc import Mesh2D, Network, Torus2D, TorusXYRouting, XYRouting
from repro.sim import Engine, RngPool

SIZE = 4
N_PACKETS_PER_NODE = 12


def run_topology(topo_cls, routing_cls):
    engine = Engine()
    topo = topo_cls(SIZE, SIZE)
    net = Network(engine, topo, routing=routing_cls(), num_vcs=2,
                  vc_classes=1)
    rng = RngPool(seed=5).stream("traffic")
    total = topo.node_count * N_PACKETS_PER_NODE
    done = {"received": 0}

    def sender(node):
        ni = net.interface(node)
        for _ in range(N_PACKETS_PER_NODE):
            dst = int(rng.integers(0, topo.node_count))
            yield ni.send(dst, payload_bytes=64)
            yield int(rng.integers(10, 200))

    def receiver(node):
        ni = net.interface(node)
        while done["received"] < total:
            yield ni.recv()
            done["received"] += 1

    for node in topo.nodes():
        engine.process(sender(node))
        engine.process(receiver(node))
    while done["received"] < total and engine.pending_events():
        engine.run(until=engine.now + 10_000)
    lat = net.stats.sketch("noc.packet_latency")
    hops = net.stats.sketch("noc.packet_hops")
    mean_distance = np.mean([
        topo.hop_distance(a, b)
        for a in topo.nodes() for b in topo.nodes()
    ])
    return {
        "delivered": done["received"],
        "latency_p50": lat.percentile(50),
        "latency_mean": lat.mean(),
        "hops_mean": hops.mean(),
        "analytic_mean_distance": float(mean_distance),
        "links": len(topo.links()),
    }


def test_bench_topology(benchmark):
    def run_all():
        return {
            "mesh 4x4": run_topology(Mesh2D, XYRouting),
            "torus 4x4": run_topology(Torus2D, TorusXYRouting),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    mesh = results["mesh 4x4"]
    torus = results["torus 4x4"]
    total = SIZE * SIZE * N_PACKETS_PER_NODE
    assert mesh["delivered"] == total
    assert torus["delivered"] == total
    # torus halves the mean distance on a 4x4 (2.5 -> 2.0 incl. self)...
    assert torus["analytic_mean_distance"] < mesh["analytic_mean_distance"]
    assert torus["hops_mean"] < mesh["hops_mean"]
    # ...and that shows up in delivered latency
    assert torus["latency_mean"] < mesh["latency_mean"]
    # at the price of more links
    assert torus["links"] > mesh["links"]

    rows = [[name, r["links"], round(r["analytic_mean_distance"], 2),
             round(r["hops_mean"], 2), r["latency_p50"],
             round(r["latency_mean"], 1)]
            for name, r in results.items()]
    record("A4", "Topology ablation: uniform random traffic, "
                 f"{total} packets of 64B",
           format_table(["topology", "links", "mean dist", "mean hops",
                         "p50 lat", "mean lat"], rows))
