"""D5 — IPC rate limiting: containing a resource-exhaustion attack.

Section 4.5: "having permissioned access and rate limiting are necessary to
prevent malicious accelerators from ... causing resource exhaustion."

Setup: a legitimate client and a flooding accelerator share one victim
service.  Without a rate limit the flood starves the client; with the
management plane throttling the flooder's monitor, the client's latency
recovers while the flood is contained at the attacker's own tile.
"""

import pytest

from repro.accel import Accelerator, FloodingAccel, SinkAccel
from repro.eval import format_table
from repro.eval.report import record
from repro.kernel import ApiarySystem


class ProbeClient(Accelerator):
    """Sends paced requests to the victim, recording latency."""

    from repro.hw.resources import ResourceVector

    COST = ResourceVector(logic_cells=4_000, bram_kb=8, dsp_slices=0)
    PRIMITIVES = {"lut_logic": 3_000}

    def __init__(self, victim, count=10, gap=2000):
        super().__init__("probe")
        self.victim = victim
        self.count = count
        self.gap = gap
        self.latencies = []
        self.failures = 0

    def main(self, shell):
        for i in range(self.count):
            yield self.gap
            t0 = shell.engine.now
            try:
                yield shell.call(self.victim, "probe", payload=i,
                                 payload_bytes=64, timeout=3_000_000)
                self.latencies.append(shell.engine.now - t0)
            except Exception:
                self.failures += 1


def run_scenario(flood_rate_limit):
    """Returns (client median latency, flood messages admitted)."""
    system = ApiarySystem(width=3, height=2, with_memory=True)
    system.boot()
    victim = SinkAccel("victim", service_cycles=30)
    flooder = FloodingAccel("flooder", victim="app.victim",
                            message_bytes=112)
    client = ProbeClient("app.victim")
    started = [system.start_app(2, victim, endpoint="app.victim"),
               system.start_app(4, flooder),
               system.start_app(5, client)]
    system.mgmt.grant_send("tile4", "app.victim")
    system.mgmt.grant_send("tile5", "app.victim")
    if flood_rate_limit is not None:
        system.mgmt.set_rate_limit(4, flood_rate_limit, burst=16)
    system.run_until(system.engine.all_of(started))
    system.run(until=system.engine.now + 120_000)
    import numpy as np

    median = float(np.median(client.latencies)) if client.latencies else float("inf")
    return {
        "client_median": median,
        "client_completed": len(client.latencies),
        "client_failures": client.failures,
        "flood_sent": flooder.sent,
        "victim_consumed": victim.consumed,
    }


def run_all():
    baseline = run_scenario(flood_rate_limit=None)
    limited = run_scenario(flood_rate_limit=0.01)  # ~1 flit / 100 cycles
    return baseline, limited


def test_bench_ipc_ratelimit(benchmark):
    baseline, limited = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # the attack works without the limit: client latency inflated badly
    assert baseline["client_median"] > 5 * limited["client_median"]
    # the limit contains the flood at the source...
    assert limited["flood_sent"] < baseline["flood_sent"] / 5
    # ...and the client completes its probes promptly
    assert limited["client_completed"] == 10
    assert limited["client_failures"] == 0

    rows = [
        ["no rate limit", baseline["client_median"],
         baseline["client_completed"], baseline["client_failures"],
         baseline["flood_sent"]],
        ["flooder throttled", limited["client_median"],
         limited["client_completed"], limited["client_failures"],
         limited["flood_sent"]],
    ]
    record("D5", "Rate limiting a flooding accelerator (victim shared with "
                 "a paced client; 120k-cycle window)",
           format_table(["configuration", "client p50 (cyc)",
                         "client done", "client failed",
                         "flood msgs admitted"], rows))
