"""D3 — CPU overhead and energy per request.

Section 1: bypassing the CPU "reduces CPU overhead ... and further reduces
energy."  The harness attributes active-component energy per request and
counts host CPU cycles burned per request for each system model.
"""

import pytest

from repro.eval import format_table, run_kv_workload
from repro.eval.report import record

KINDS = ["bare", "apiary", "hosted_bypass", "hosted"]


def run_energy():
    results = {}
    rows = []
    for kind in KINDS:
        r = run_kv_workload(kind, n_requests=200, value_bytes=1024,
                            warmup_keys=16, seed=41)
        results[kind] = r
        bd = r["energy_breakdown"]
        rows.append([
            kind,
            r["cpu_cycles_per_request"],
            r["energy_uj_per_request"],
            bd["cpu_nj"] / 1000.0,
            bd["fpga_nj"] / 1000.0,
            bd["pcie_nj"] / 1000.0,
            bd["noc_nj"] / 1000.0,
        ])
    return rows, results


def test_bench_energy(benchmark):
    rows, results = benchmark.pedantic(run_energy, rounds=1, iterations=1)

    # CPU overhead: zero for direct attach, substantial for hosted
    assert results["apiary"]["cpu_cycles_per_request"] == 0
    assert results["bare"]["cpu_cycles_per_request"] == 0
    assert results["hosted"]["cpu_cycles_per_request"] > 1000
    assert (results["hosted_bypass"]["cpu_cycles_per_request"]
            < results["hosted"]["cpu_cycles_per_request"])

    # energy: hosted pays for the CPU; direct attach does not
    assert (results["hosted"]["energy_uj_per_request"]
            > 5 * results["apiary"]["energy_uj_per_request"])
    hosted_bd = results["hosted"]["energy_breakdown"]
    assert hosted_bd["cpu_nj"] > hosted_bd["fpga_nj"]
    # Apiary's OS machinery (NoC+monitors) is a tiny energy adder over bare
    assert (results["apiary"]["energy_uj_per_request"]
            < 1.35 * results["bare"]["energy_uj_per_request"])

    record("D3", "CPU overhead and energy per KV request "
                 "(uJ per request; component columns in uJ totals)",
           format_table(
               ["system", "cpu cyc/req", "uJ/req", "cpu uJ", "fpga uJ",
                "pcie uJ", "noc uJ"], rows))
