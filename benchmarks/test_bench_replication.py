"""R2 — replicated state machines under chaos: zero acked-write loss.

The consistency acceptance run for the chain-replication subsystem.
One campaign, three claims:

1. **Durability** — a board kill mid-write plus a fabric partition of a
   chain head lose *zero acknowledged writes*: the linearizability
   checker's ``lost_acked_writes`` must be 0.
2. **Linearizability** — no client ever observes a stale, future, or
   re-ordered value across the whole campaign (``violations == []``),
   including the split-brain window where a partitioned ex-head still
   believes it leads its chain.
3. **Unattended repair** — the replication manager promotes survivors
   (microsecond-scale reconfiguration) and splices fresh replicas
   (checkpoint + partial reconfiguration) without operator input; every
   chain ends the campaign back at full replication, and repair
   latencies are reported.

Determinism is part of the contract: the same seeded campaign twice must
produce byte-identical reports (the CI consistency-smoke job pins this).

``R2_REDUCED=1`` shrinks the workload for the CI smoke job.
"""

import json
import os

from repro.eval import format_table
from repro.eval.report import RESULTS_DIR, record
from repro.replic import consistency_smoke

REDUCED = os.environ.get("R2_REDUCED") == "1"
SEED = 42
JSON_PATH = os.path.join(os.path.abspath(RESULTS_DIR), "BENCH_R2.json")


def run_campaign(seed=SEED):
    if REDUCED:
        return consistency_smoke(
            seed=seed, n_keys=4, writes_per_key=12, n_readers=2,
            reads_per_reader=30, kill_at=250_000, partition_at=800_000,
            heal_at=1_400_000, settle=1_500_000)
    return consistency_smoke(seed=seed)


def test_bench_replication_consistency():
    report = run_campaign()
    consistency = report["consistency"]

    # 1. durability: the headline number
    assert consistency["lost_acked_writes"] == 0, (
        f"acknowledged writes were lost: {consistency['violations']}")
    assert consistency["acked_writes"] > 0

    # 2. linearizability across kill + partition + heal
    assert consistency["linearizable"] is True, consistency["violations"]
    assert consistency["violations"] == []
    assert report["chaos"]["killed_fpga"] is not None
    assert report["chaos"]["partitioned_fpga"] is not None

    # 3. unattended repair: promotes fast, splices thorough, chains whole
    repair = report["repair"]
    assert repair["promotes"] >= 1 and repair["splices"] >= 1
    assert repair["fences_acked"] >= 1, "the stale head was never fenced"
    for shard, chain in report["chains"].items():
        assert len(chain["members"]) == report["replication"], (
            f"shard {shard} ended under-replicated")
        assert chain["epoch"] >= 1
    promote_lat = [e["latency"] for e in repair["events"]
                   if e["kind"] == "promote"]
    splice_lat = [e["latency"] for e in repair["events"]
                  if e["kind"] == "splice"]
    assert promote_lat and splice_lat
    assert min(promote_lat) < min(splice_lat), (
        "promotes must restore service before any splice completes")

    # the write path never silently dropped replication either
    assert report["frontend"]["writes_unreplicated"] == 0

    # determinism: byte-identical same-seed rerun
    rerun = run_campaign()
    assert json.dumps(rerun, sort_keys=True) == \
        json.dumps(report, sort_keys=True), (
        "same-seed campaigns must produce byte-identical reports")

    rows = [[
        f"{report['n_fpgas']} FPGAs",
        f"{report['n_shards']}x{report['replication']}",
        consistency["acked_writes"],
        consistency["lost_acked_writes"],
        len(consistency["violations"]),
        repair["promotes"],
        repair["splices"],
        f"{min(promote_lat):,}",
        f"{max(splice_lat):,}",
    ]]
    text = format_table(
        ["cluster", "chains", "acked writes", "lost", "violations",
         "promotes", "splices", "best promote (cyc)",
         "worst splice (cyc)"],
        rows,
        title=("Replicated state machines under chaos — board kill + "
               "fabric partition "
               f"({'reduced' if REDUCED else 'full'} config):"))
    text += (
        "\n\nChaos timeline (cycles):\n"
        f"  board kill     : fpga{report['chaos']['killed_fpga']} "
        f"at t={report['chaos']['killed_at']:,}\n"
        f"  partition      : fpga{report['chaos']['partitioned_fpga']} "
        f"at t={report['chaos']['partitioned_at']:,}\n"
        f"  heal           : t={report['chaos']['healed_at']:,}\n"
        f"  fences acked   : {repair['fences_acked']}\n"
        f"  repair latency : mean {repair['repair_latency_mean']:,} / "
        f"max {repair['repair_latency_max']:,} cycles\n"
        "\nEvery chain back at full replication; "
        f"{consistency['reads']} reads, {report['failed_reads']} failed; "
        "same-seed rerun byte-identical.\n")
    record("R2", "Zero-data-loss stateful serving under chaos", text)

    os.makedirs(os.path.dirname(JSON_PATH), exist_ok=True)
    with open(JSON_PATH, "w") as fh:
        json.dump({"reduced": REDUCED, "seed": SEED, "campaign": report},
                  fh, indent=2, sort_keys=True)
        fh.write("\n")
