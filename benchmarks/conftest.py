"""Benchmark-suite plumbing: dump reproduced tables at session end."""

import os
import shutil

from repro.eval import report


def pytest_sessionstart(session):
    results_dir = os.path.abspath(report.RESULTS_DIR)
    if os.path.isdir(results_dir):
        for entry in os.listdir(results_dir):
            if entry.endswith("_floor.json"):
                # perf floors are committed *inputs* to the perf-smoke
                # benchmarks, not outputs of this session
                continue
            path = os.path.join(results_dir, entry)
            if os.path.isdir(path):
                shutil.rmtree(path)
            else:
                os.remove(path)
    report.clear()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    text = report.render_all()
    if not text:
        return
    terminalreporter.write_line("")
    terminalreporter.write_sep("=", "reproduced tables and figures")
    for line in text.split("\n"):
        terminalreporter.write_line(line)
