"""Benchmark-suite plumbing: dump reproduced tables at session end."""

import os
import shutil

from repro.eval import report


def pytest_sessionstart(session):
    results_dir = os.path.abspath(report.RESULTS_DIR)
    if os.path.isdir(results_dir):
        shutil.rmtree(results_dir)
    report.clear()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    text = report.render_all()
    if not text:
        return
    terminalreporter.write_line("")
    terminalreporter.write_sep("=", "reproduced tables and figures")
    for line in text.split("\n"):
        terminalreporter.write_line(line)
