"""D1 — direct-attached vs. host-mediated latency (Section 1's core claim).

One KV GET workload, identical across systems; request size sweep.  The
paper's claim holds if Apiary tracks the bare direct-attached lower bound
closely while every hosted variant pays the CPU-mediation premium.
"""

import pytest

from repro.eval import format_table, run_kv_workload
from repro.eval.report import record

SIZES = [64, 512, 4096]
KINDS = ["bare", "apiary", "hosted_bypass", "hosted"]


def run_sweep():
    rows = []
    results = {}
    for size in SIZES:
        for kind in KINDS:
            r = run_kv_workload(kind, n_requests=120, value_bytes=size,
                                warmup_keys=16, seed=13)
            results[(size, kind)] = r
            rows.append([size, kind, r["latency"]["p50"],
                         r["latency"]["mean"],
                         r["throughput_per_kcycle"]])
    return rows, results


def test_bench_direct_vs_hosted(benchmark):
    rows, results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    for size in SIZES:
        bare = results[(size, "bare")]["latency"]["p50"]
        apiary = results[(size, "apiary")]["latency"]["p50"]
        hosted = results[(size, "hosted")]["latency"]["p50"]
        bypass = results[(size, "hosted_bypass")]["latency"]["p50"]
        # who wins: direct attach beats both hosted variants at every size
        assert apiary < hosted, f"size {size}"
        assert apiary < bypass, f"size {size}"
        # by what factor: CPU mediation costs integer multiples at small
        # sizes (the latency-sensitive regime the paper highlights)
        if size <= 512:
            assert hosted > 1.8 * apiary
        # Apiary stays within a modest factor of the no-OS lower bound;
        # at 4KB the gap grows because the payload crosses the NoC at one
        # flit per cycle (16B) on top of the MAC path — the same transfer
        # the bare design hand-wires.  Still far below the hosted premium.
        bound = 1.25 if size <= 512 else 1.4
        assert apiary < bound * bare

    record("D1", "Direct-attached vs host-mediated: KV GET p50 latency "
                 "(cycles, 250MHz; 1 cycle = 4 ns)",
           format_table(
               ["value bytes", "system", "p50", "mean", "req/kcycle"], rows))
