"""S1 — scale-out serving: cluster throughput scaling + availability.

The cluster layer's acceptance run.  Three questions:

1. **Scaling** — does aggregate throughput grow with the FPGA count when
   the boards are the bottleneck?  Closed-loop echo workload at 1/2/4
   FPGAs; the 1→2 speedup must clear 1.5x.
2. **Availability** — kill one board mid-run; does the front-end restore
   service from surviving replicas?  Sharded kvstore, replication=2:
   every post-kill read must come back correct.
3. **Determinism** — the same seeded run twice must produce identical
   stats (the property every other benchmark in this repo leans on).

``S1_REDUCED=1`` shrinks durations for the CI smoke job.
"""

import json
import os

from repro.cluster import availability_smoke, scaling_smoke
from repro.eval import format_table
from repro.eval.report import RESULTS_DIR, record

REDUCED = os.environ.get("S1_REDUCED") == "1"
FPGA_COUNTS = [1, 2] if REDUCED else [1, 2, 4]
DURATION = 150_000 if REDUCED else 300_000
CLIENTS = 8 if REDUCED else 16
REQUESTS = 80 if REDUCED else 200
#: documented acceptance bar for 1 -> 2 FPGAs
TARGET_SPEEDUP = 1.5
JSON_PATH = os.path.join(os.path.abspath(RESULTS_DIR), "BENCH_S1.json")


def run_scaling():
    return {
        n: scaling_smoke(n_fpgas=n, duration=DURATION, clients=CLIENTS,
                         requests_per_client=REQUESTS)
        for n in FPGA_COUNTS
    }


def run_availability():
    if REDUCED:
        return availability_smoke(keys=16, kill_after=100_000,
                                  post_kill=250_000, work_cycles=1_500)
    return availability_smoke()


def test_bench_cluster_scaleout():
    scaling = run_scaling()
    base = scaling[1]
    assert base["completed"] > 0
    speedups = {
        n: scaling[n]["throughput_per_kcycle"] / base["throughput_per_kcycle"]
        for n in FPGA_COUNTS
    }
    assert speedups[2] >= TARGET_SPEEDUP, (
        f"1->2 FPGA speedup {speedups[2]:.2f}x below the documented "
        f"{TARGET_SPEEDUP}x target")
    # no request was lost or shed in the scaling runs
    for n in FPGA_COUNTS:
        assert scaling[n]["failed"] == 0
        assert scaling[n]["rejected"] == 0

    availability = run_availability()
    assert availability["writes_ok"] == availability["keys"]
    assert availability["post_kill_reads"] > 0, "service never came back"
    assert availability["post_kill_hit_rate"] == 1.0, (
        "reads lost after killing one FPGA despite replicas: "
        f"hit rate {availability['post_kill_hit_rate']}")

    # byte-identical rerun under the same seed
    rerun = scaling_smoke(n_fpgas=2, duration=DURATION, clients=CLIENTS,
                          requests_per_client=REQUESTS)
    assert rerun == scaling[2], "cluster run is not deterministic"

    rows = []
    for n in FPGA_COUNTS:
        s = scaling[n]
        rows.append([
            f"{n} FPGA(s)", s["instances"], s["completed"],
            f"{s['throughput_per_kcycle']:.3f}",
            f"{s['p50_cycles']:,.0f}", f"{s['p99_cycles']:,.0f}",
            f"{speedups[n]:.2f}x",
        ])
    text = format_table(
        ["cluster", "instances", "completed", "req/kcycle",
         "p50 cycles", "p99 cycles", "speedup"],
        rows,
        title=("Scale-out serving: closed-loop echo throughput vs FPGA "
               f"count ({'reduced' if REDUCED else 'full'} config):"))
    text += (
        "\n\nAvailability (kill one of "
        f"{availability['n_fpgas']} FPGAs mid-run, "
        f"{availability['n_shards']} shards x "
        f"{availability['replication']} replicas):\n"
        f"  pre-kill reads : {availability['pre_kill_reads']} "
        f"(hit rate {availability['pre_kill_hit_rate']:.2f})\n"
        f"  post-kill reads: {availability['post_kill_reads']} "
        f"(hit rate {availability['post_kill_hit_rate']:.2f})\n"
        f"  front-end failovers: {availability['failovers']}\n")
    record("S1", "Scale-out cluster serving", text)

    availability_json = dict(availability)
    availability_json.pop("health", None)
    os.makedirs(os.path.dirname(JSON_PATH), exist_ok=True)
    with open(JSON_PATH, "w") as fh:
        json.dump({
            "reduced": REDUCED,
            "target_speedup": TARGET_SPEEDUP,
            "scaling": {str(n): scaling[n] for n in FPGA_COUNTS},
            "speedups": {str(n): round(speedups[n], 4)
                         for n in FPGA_COUNTS},
            "availability": availability_json,
        }, fh, indent=2, sort_keys=True)
        fh.write("\n")
