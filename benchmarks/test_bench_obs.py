"""O1 — the observability plane: overhead, accuracy, and determinism.

Three claims, one run harness (``repro.obs.smoke.obs_plane_smoke``):

* **overhead** — arming the whole plane (tracing, per-board flight
  recorders, the SLO engine, sketch-backed stats) on the serving
  workload costs a bounded wall-clock factor versus the same workload
  with the plane off.  Ceiling asserted in CI: ``OVERHEAD_CEILING``.
  The *simulated* timeline is identical either way — observability
  never perturbs virtual time (pinned by the identity payload below).
* **accuracy** — the :class:`~repro.obs.sketch.QuantileSketch` that
  replaced exact-sample histograms on hot paths answers every quantile
  within its documented ``alpha`` relative error of the exact order
  statistic, measured against a real :class:`~repro.sim.Histogram` over
  the same deterministic long-tailed stream.
* **determinism** — with a board killed mid-run, the sequential oracle
  and the parallel worker pool produce byte-identical spans, per-board
  stats snapshots (sketch summaries included), SLO verdicts + alerts,
  and flight-recorder reports *including the kill dumps*.  This extends
  the P2 identity contract across the entire new plane.

The CI ``obs-smoke`` job runs the reduced configuration
(``O1_REDUCED=1``) and uploads the Chrome trace and the kill dump as
artifacts after validating both.
"""

import json
import math
import os
import time

from repro.eval import format_table
from repro.eval.report import RESULTS_DIR, record
from repro.obs.sketch import QuantileSketch
from repro.obs.smoke import obs_plane_smoke
from repro.sim import Histogram

REDUCED = os.environ.get("O1_REDUCED") == "1"
DURATION = 200_000 if REDUCED else 400_000
CLIENTS = 4 if REDUCED else 8
REQUESTS_PER_CLIENT = 60 if REDUCED else 150
TIMING_ROUNDS = 2 if REDUCED else 3
#: CI-enforced bound on enabled/disabled wall-clock ratio (measured
#: ~1.25x; headroom for noisy shared runners)
OVERHEAD_CEILING = 1.8
#: percentiles the accuracy claim is checked at
PERCENTILES = (50.0, 90.0, 99.0, 99.9)
JSON_PATH = os.path.join(os.path.abspath(RESULTS_DIR), "BENCH_O1.json")


def _workload(**extra):
    base = dict(n_fpgas=2, duration=DURATION, clients=CLIENTS,
                requests_per_client=REQUESTS_PER_CLIENT)
    base.update(extra)
    return base


def _timed(observability):
    """Best-of-N wall clock for the serving run, plane on or off."""
    best, stats = math.inf, None
    for _ in range(TIMING_ROUNDS):
        t0 = time.perf_counter()
        stats = obs_plane_smoke(observability=observability, **_workload())
        best = min(best, time.perf_counter() - t0)
    return best, stats


def _accuracy():
    """Sketch vs exact histogram over one deterministic stream."""
    hist = Histogram("exact")
    sketch = QuantileSketch("sketch")
    for i in range(50_000):
        v = 1 + (i * i * 37) % 9_000 + (i % 97) * ((i % 13 == 0) * 400)
        hist.record(v)
        sketch.record(v)
    rows = []
    for p in PERCENTILES:
        exact = hist.percentile(p)
        est = sketch.percentile(p)
        rows.append({"p": p, "exact": exact, "estimate": est,
                     "rel_error": abs(est - exact) / exact})
    return {"alpha": sketch.alpha, "samples": hist.count,
            "sketch_bins": sketch.bins, "quantiles": rows}


def run_all():
    wall_off, stats_off = _timed(False)
    wall_on, stats_on = _timed(True)
    identity = {}
    for backend in ("sequential", "parallel"):
        identity[backend] = obs_plane_smoke(
            backend=backend, identity=True, **_workload())
    return {
        "overhead": {"wall_off_s": wall_off, "wall_on_s": wall_on,
                     "ratio": wall_on / wall_off,
                     "stats_off": stats_off, "stats_on": stats_on},
        "accuracy": _accuracy(),
        "identity": identity,
    }


def test_bench_obs(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # overhead: bounded, and the simulated outcome is untouched
    over = results["overhead"]
    assert over["ratio"] <= OVERHEAD_CEILING, (
        f"observability overhead {over['ratio']:.2f}x exceeds the "
        f"{OVERHEAD_CEILING}x ceiling")
    assert over["stats_on"]["completed"] == over["stats_off"]["completed"]
    assert over["stats_on"]["completed"] > 0

    # accuracy: every checked quantile inside the documented alpha bound
    acc = results["accuracy"]
    for row in acc["quantiles"]:
        assert row["rel_error"] <= acc["alpha"], (
            f"p{row['p']} off by {row['rel_error']:.4f} "
            f"(> alpha={acc['alpha']})")

    # determinism: sequential == parallel byte-for-byte across the plane,
    # through the mid-run board kill
    seq = results["identity"]["sequential"].pop("identity")
    par = results["identity"]["parallel"].pop("identity")
    for section in ("spans", "stats", "slo", "flight"):
        assert json.dumps(seq[section], sort_keys=True, default=repr) == \
            json.dumps(par[section], sort_keys=True, default=repr), (
            f"sequential/parallel divergence in {section!r}")
    seq_run = results["identity"]["sequential"]
    verdicts = {r["name"]: r["verdict"] for r in seq_run["slo"]["targets"]}
    assert verdicts  # the SLO engine judged something
    killed = seq_run["flight"]["fpga1"]
    assert any(r.startswith("board-kill:") for r in killed["dump_reasons"])
    assert all(n >= 1 for n in killed["dump_entries"])  # dumps validate

    rows = [
        ["overhead ratio", f"{over['ratio']:.2f}x",
         f"<= {OVERHEAD_CEILING}x"],
        ["worst quantile rel. error",
         f"{max(r['rel_error'] for r in acc['quantiles']):.4f}",
         f"<= alpha={acc['alpha']}"],
        ["sketch buckets for 50k samples", str(acc["sketch_bins"]),
         "bounded"],
        ["seq == par (spans/stats/slo/flight)", "yes", "byte-identical"],
        ["kill dumps on fpga1", str(killed["dumps"]), ">= 1, validated"],
    ]
    text = format_table(
        ["measure", "value", "bound"], rows,
        title=(f"O1 observability plane "
               f"({'reduced' if REDUCED else 'full'} config):"))
    record("O1", "Observability plane overhead, accuracy, determinism",
           text)

    os.makedirs(os.path.dirname(JSON_PATH), exist_ok=True)
    payload = {
        "reduced": REDUCED,
        "overhead_ceiling": OVERHEAD_CEILING,
        "overhead": {
            "wall_off_s": over["wall_off_s"],
            "wall_on_s": over["wall_on_s"],
            "ratio": over["ratio"],
            "completed": over["stats_on"]["completed"],
        },
        "accuracy": acc,
        "identity": {
            "byte_identical": True,
            "sections": ["spans", "stats", "slo", "flight"],
            "kill_dumps": killed["dumps"],
            "slo_verdicts": verdicts,
        },
    }
    with open(JSON_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
