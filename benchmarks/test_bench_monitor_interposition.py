"""A2 — ablation: the per-message cost of monitor interposition.

Measured end-to-end: tile-to-tile echo RPCs with (a) monitors enforcing
capabilities, (b) enforcement off (bare NoC), (c) enforcement plus a
generous rate limit (the full Section 4.5 datapath).  The added latency
per message is the price of the paper's isolation story.
"""

import pytest

from repro.accel import Accelerator, EchoAccel
from repro.eval import format_table
from repro.eval.report import record
from repro.kernel import ApiarySystem

N_PINGS = 60


class PingClient(Accelerator):
    def __init__(self):
        super().__init__("ping")
        self.latencies = []

    def main(self, shell):
        for i in range(N_PINGS):
            t0 = shell.engine.now
            yield shell.call("app.echo", "ping", payload=i, payload_bytes=64,
                             timeout=5_000_000)
            self.latencies.append(shell.engine.now - t0)
            yield 200


def run_config(enforce, rate_limit):
    system = ApiarySystem(width=3, height=2, enforce=enforce,
                          rate_limit_flits=rate_limit, with_memory=False)
    system.boot()
    echo = EchoAccel("echo", cost=0)
    system.run_until(system.start_app(2, echo, endpoint="app.echo"))
    client = PingClient()
    started = system.start_app(5, client)
    if enforce:
        system.mgmt.grant_send("tile5", "app.echo")
    system.run_until(started)
    system.run(until=system.engine.now + 50_000_000)
    assert len(client.latencies) == N_PINGS
    import numpy as np

    return float(np.median(client.latencies))


def run_all():
    return {
        "no enforcement (bare NoC)": run_config(False, None),
        "capability checks": run_config(True, None),
        "checks + rate limiter": run_config(True, 2.0),
    }


def test_bench_monitor_interposition(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    off = results["no enforcement (bare NoC)"]
    checks = results["capability checks"]
    full = results["checks + rate limiter"]
    added = checks - off
    # the checks cost a handful of cycles per message (egress+ingress on
    # both request and response paths): 6 cycles on this minimal same-row
    # RPC, and proportionally less on any RPC that does real work
    assert 2 <= added <= 30, f"added {added} cycles"
    assert checks / off < 1.5
    # an unsaturated rate limiter adds (near) nothing on top
    assert full <= checks * 1.1

    rows = [[name, lat, f"{lat - off:+.0f}"] for name, lat in results.items()]
    record("A2", f"Monitor interposition: one-tile-hop echo RPC median "
                 f"({N_PINGS} pings, 64B payload)",
           format_table(["configuration", "median RPC (cyc)",
                         "vs bare NoC"], rows))
