"""T1 — Table 1: logic-cell counts for Virtex-7 vs Virtex UltraScale+.

Reproduces the paper's only table verbatim from the device database and
checks the generational scaling claims derived from it ("increased by about
50%" for the smallest parts, "scaled up by 3x" for the largest).
"""

from repro.eval import format_table
from repro.eval.report import record
from repro.hw import table1_rows, table1_scaling


def build_table1():
    rows = table1_rows()
    ratios = table1_scaling()
    return rows, ratios


def test_bench_table1(benchmark):
    rows, ratios = benchmark.pedantic(build_table1, rounds=1, iterations=1)

    assert [(r[2], r[3]) for r in rows] == [
        ("XC7V585T", 582_720),
        ("XC7VH870T", 876_160),
        ("VU3P", 862_000),
        ("VU29P", 3_780_000),
    ]
    # "Comparing the smallest parts, the number of logic cells has
    # increased by about 50%"
    assert 1.4 <= ratios["smallest_ratio"] <= 1.6
    # "the largest parts have scaled up by 3x between generations"
    assert ratios["largest_ratio"] >= 3.0

    text = format_table(
        ["Family", "Year Released", "Part Number", "Logic Cells"],
        [[r[0], str(r[1]), r[2], r[3]] for r in rows],
    )
    text += (
        f"\nsmallest-part scaling: {ratios['smallest_ratio']:.2f}x"
        f"   largest-part scaling: {ratios['largest_ratio']:.2f}x"
    )
    record("T1", "Table 1: logic cells, previous vs current Virtex family",
           text)
