"""D4 — "What is the overhead of the per-tile monitor?" (Section 6, Q1).

Two axes the open question names:

* resource overhead as tile count grows — monitors+routers as a fraction
  of each Table-1 part, which also determines "the granularity of logic
  within the tiles";
* how the monitor's cost scales with its capability-table size.
"""

import pytest

from repro.eval import format_table
from repro.eval.report import record
from repro.hw import monitor_cost, noc_overhead, part

PARTS = ["XC7V585T", "VU3P", "VU29P", "XCVC1902"]
TILE_COUNTS = [4, 9, 16, 36, 64]
CAP_SIZES = [16, 64, 256, 1024]


def run_overhead():
    fraction_rows = []
    for part_name in PARTS:
        p = part(part_name)
        row = [f"{part_name}{' (hard NoC)' if p.hardened_noc else ''}"]
        for tiles in TILE_COUNTS:
            o = noc_overhead(p, tiles=tiles)
            row.append(f"{o['overhead_fraction']:.1%}")
        fraction_rows.append(row)

    slot_rows = []
    for tiles in TILE_COUNTS:
        o = noc_overhead(part("VU29P"), tiles=tiles)
        slot_rows.append([tiles, int(o["cells_per_tile_slot"]),
                          int(o["total_overhead_cells"])])

    cap_rows = []
    for caps in CAP_SIZES:
        cost = monitor_cost(cap_table_size=caps)
        cap_rows.append([caps, cost.logic_cells, cost.bram_kb])
    return fraction_rows, slot_rows, cap_rows


def test_bench_monitor_overhead(benchmark):
    fraction_rows, slot_rows, cap_rows = benchmark.pedantic(
        run_overhead, rounds=1, iterations=1
    )

    # scalability: on the big modern part, even 64 tiles of OS cost < 15%
    vu29p_64 = noc_overhead(part("VU29P"), tiles=64)["overhead_fraction"]
    assert vu29p_64 < 0.15
    # the same 64 tiles on the small 2010 part would eat most of the device
    # — the reason multi-accelerator OSes arrive *now* (Table 1's point)
    v7_64 = noc_overhead(part("XC7V585T"), tiles=64)["overhead_fraction"]
    assert v7_64 > 4 * vu29p_64
    # hardened NoCs cut the overhead further (the paper's Versal argument)
    versal_64 = noc_overhead(part("XCVC1902"), tiles=64)["overhead_fraction"]
    assert versal_64 < noc_overhead(part("VU9P"), tiles=64)["overhead_fraction"]
    # monitor cost grows linearly-ish in capability table size
    assert cap_rows[-1][1] > cap_rows[0][1]
    assert cap_rows[-1][1] < 10 * cap_rows[0][1]  # ...but not explosively

    text = format_table(["part"] + [f"{t} tiles" for t in TILE_COUNTS],
                        fraction_rows,
                        title="Apiary framework share of device logic:")
    text += "\n\n" + format_table(
        ["tiles", "user cells per slot", "total OS cells"], slot_rows,
        title="Tile granularity on VU29P:")
    text += "\n\n" + format_table(
        ["cap table entries", "monitor logic cells", "monitor BRAM KB"],
        cap_rows, title="Monitor cost vs capability-table size:")
    record("D4", "Per-tile monitor overhead (Section 6 open question 1)",
           text)
