"""A1 — ablation: NoC message-layer naming vs. per-service physical ports.

Section 4.3's design choice: previous work couples physical interfaces to
the number of services; Apiary makes the destination a message field over
one NoC port.  Sweep the service count and compare wires, ports, and logic.
"""

import pytest

from repro.baselines import noc_wiring, port_coupled_wiring
from repro.eval import format_table
from repro.eval.report import record

ACCELS = 16
SERVICE_COUNTS = [1, 2, 4, 8, 12]


def run_models():
    rows = []
    series = {}
    for services in SERVICE_COUNTS:
        port_style = port_coupled_wiring(ACCELS, services)
        noc_soft = noc_wiring(ACCELS, services, hardened=False)
        noc_hard = noc_wiring(ACCELS, services, hardened=True)
        series[services] = (port_style, noc_soft, noc_hard)
        rows.append([
            services,
            port_style["ports"], port_style["wires"],
            port_style["logic_cells"],
            noc_soft["ports"], noc_soft["wires"], noc_soft["logic_cells"],
            noc_hard["logic_cells"],
        ])
    return rows, series


def test_bench_noc_vs_ports(benchmark):
    rows, series = benchmark.pedantic(run_models, rounds=1, iterations=1)

    # port coupling scales multiplicatively with services; NoC does not
    p1, n1, _h1 = series[1]
    p12, n12, _h12 = series[12]
    assert p12["wires"] == 12 * p1["wires"]
    # NoC wires grow with tile count (services occupy tiles), far slower
    # than the accels*services product
    assert n12["wires"] < 2 * n1["wires"]
    assert n12["wires"] < p12["wires"] / 3
    # crossover: at >= 4 services the NoC wins on wires
    p4, n4, _h4 = series[4]
    assert n4["wires"] < p4["wires"]
    # hardened NoC makes the logic cost negligible (the Versal argument)
    assert series[12][2]["logic_cells"] < series[12][1]["logic_cells"] / 2

    record("A1", f"NoC vs per-service ports: wiring cost for {ACCELS} "
                 "accelerators as service count grows",
           format_table(
               ["services", "port ports", "port wires", "port cells",
                "noc ports", "noc wires", "noc cells", "hard-noc cells"],
               rows))
