"""D8 — scale-out: replicated encoder behind internal load balancing.

Design goal "Scalability: Apiary should ... support scale out of those
elements, without manual optimization" and Section 4.1's "replicated
accelerator with internal load balancing for higher bandwidth".  We sweep
the replica count and measure encoding throughput of a fixed chunk burst.
"""

import pytest

from repro.accel import Accelerator
from repro.apps import deploy_replicated_encoder
from repro.eval import format_table
from repro.eval.report import record
from repro.kernel import ApiarySystem

REPLICA_SETS = {
    1: [4],
    2: [4, 6],
    4: [4, 6, 8, 9],
    8: [4, 6, 8, 9, 10, 12, 13, 14],
}
N_CHUNKS = 24
FRAMES = 2


class BurstClient(Accelerator):
    def __init__(self):
        super().__init__("burst")
        self.elapsed = None

    def main(self, shell):
        payloads = [{"stream": f"s{i}", "frames": FRAMES, "bytes": 40_000}
                    for i in range(N_CHUNKS)]
        t0 = shell.engine.now
        events = [shell.call("app.enc.lb", "encode", payload=p,
                             payload_bytes=64, timeout=2_000_000_000)
                  for p in payloads]
        yield shell.engine.all_of(events)
        self.elapsed = shell.engine.now - t0


def run_replicas(n_replicas):
    system = ApiarySystem(width=4, height=4)
    system.boot()
    balancer, replicas, started = deploy_replicated_encoder(
        system, lb_node=5, replica_nodes=REPLICA_SETS[n_replicas]
    )
    for ev in started:
        system.run_until(ev)
    client = BurstClient()
    s = system.start_app(15, client)
    system.mgmt.grant_send("tile15", "app.enc.lb")
    system.run_until(s)
    system.run(until=system.engine.now + 4_000_000_000)
    assert client.elapsed is not None
    spread = max(balancer.replica_counts.values()) - min(
        balancer.replica_counts.values()
    )
    return {"elapsed": client.elapsed, "spread": spread,
            "encoded": sum(r.chunks_encoded for r in replicas)}


def run_sweep():
    return {n: run_replicas(n) for n in REPLICA_SETS}


def test_bench_scaleout(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    base = results[1]["elapsed"]
    rows = []
    for n, r in results.items():
        speedup = base / r["elapsed"]
        rows.append([n, r["elapsed"], round(speedup, 2),
                     round(speedup / n, 2), r["spread"]])
        assert r["encoded"] == N_CHUNKS

    # scaling shape: near-linear to 4 replicas, diminishing by 8 (the
    # balancer/NoC become the shared stage)
    assert results[2]["elapsed"] < 0.62 * results[1]["elapsed"]
    assert results[4]["elapsed"] < 0.40 * results[1]["elapsed"]
    assert results[8]["elapsed"] <= results[4]["elapsed"]
    # internal balancing is even: replica loads differ by at most 1
    assert all(r["spread"] <= 1 for r in results.values())

    record("D8", f"Scale-out: {N_CHUNKS}-chunk encode burst vs replica count "
                 "(load balancer on one tile)",
           format_table(["replicas", "burst cycles", "speedup",
                         "efficiency", "load spread"], rows))
