"""D6 — fault blast radius across execution models (Section 4.4).

One accelerator crashes mid-service.  We measure what a *co-resident but
unrelated* service experiences, and what the victim's own clients
experience, under three models:

* no OS (bare, hand-wired): the crash wedges the whole board;
* Apiary fail-stop: the victim's tile drains, peers get prompt errors,
  the unrelated service is untouched;
* Apiary preemptible: only the faulting context dies — even the victim's
  *other* streams keep being served.
"""

import pytest

from repro.accel import Accelerator, CrashingAccel, EchoAccel, PreemptibleVideoEncoder
from repro.baselines import BareFpgaSystem
from repro.errors import ConfigError, TileFault
from repro.eval import format_table
from repro.eval.report import record
from repro.kernel import ApiarySystem, FaultPolicy
from repro.net import EthernetFabric
from repro.sim import Engine
from repro.workloads import RemoteClientHost

PROBES = 12
GAP = 4000


class PacedCaller(Accelerator):
    def __init__(self, name, target, op="ping", payload=None, count=PROBES):
        super().__init__(name)
        self.target = target
        self.op = op
        self.payload_factory = payload or (lambda i: i)
        self.count = count
        self.ok = 0
        self.failed = 0

    def main(self, shell):
        for i in range(self.count):
            yield GAP
            try:
                yield shell.call(self.target, self.op,
                                 payload=self.payload_factory(i),
                                 timeout=200_000)
                self.ok += 1
            except Exception:
                self.failed += 1


def run_bare():
    """No OS: crash after 4 requests wedges the unrelated service too."""
    engine = Engine()
    fabric = EthernetFabric(engine, latency_cycles=100)
    board = BareFpgaSystem(engine, fabric, "board0")
    calls = {"n": 0}

    def crashing(body):
        calls["n"] += 1
        if calls["n"] > 4:
            raise TileFault("crash")
        return 50, "ok", 16

    board.register(1, crashing)
    board.register(2, lambda body: (50, "ok", 16))  # unrelated service
    outcomes = {"victim_ok": 0, "victim_failed": 0,
                "unrelated_ok": 0, "unrelated_failed": 0}
    client = RemoteClientHost(engine, fabric, "client0")

    def script():
        for i in range(PROBES):
            yield GAP
            for port, prefix in ((1, "victim"), (2, "unrelated")):
                try:
                    yield client.request("board0", port, i, timeout=200_000)
                    outcomes[f"{prefix}_ok"] += 1
                except ConfigError:
                    outcomes[f"{prefix}_failed"] += 1

    proc = engine.process(script())
    engine.run_until_done(proc.done, limit=500_000_000)
    return outcomes


def run_apiary(policy):
    """Apiary: victim + unrelated echo; crash contained per policy."""
    system = ApiarySystem(width=3, height=2, policy=policy)
    system.boot()
    if policy == FaultPolicy.PREEMPT:
        victim = PreemptibleVideoEncoder("victim")
        victim_op = "encode"

        def payload(i):
            return {"stream": "s0", "seq": i, "frames": 1, "bytes": 5_000}
    else:
        victim = CrashingAccel("victim", crash_after=4, service_cycles=50)
        victim_op = "ping"
        payload = None
    system.run_until(system.start_app(2, victim, endpoint="app.victim"))
    unrelated = EchoAccel("unrelated", cost=50)
    system.run_until(system.start_app(3, unrelated, endpoint="app.unrelated"))

    caller = PacedCaller("caller", "app.victim", op=victim_op, payload=payload)
    bystander = PacedCaller("bystander", "app.unrelated")
    started_events = []
    for node, accel, target in ((4, caller, "app.victim"),
                                (5, bystander, "app.unrelated")):
        started_events.append(system.start_app(node, accel))
        system.mgmt.grant_send(f"tile{node}", target)
    system.run_until(system.engine.all_of(started_events))
    if policy == FaultPolicy.PREEMPT:
        # trigger the context fault once the victim demonstrably serves
        deadline = system.engine.now + 20_000_000
        while victim.chunks_encoded < 4 and system.engine.now < deadline:
            system.run(until=system.engine.now + 20_000)
        victim.inject_fault_after = 0
    system.run(until=system.engine.now + 10_000_000)
    return {
        "victim_ok": caller.ok, "victim_failed": caller.failed,
        "unrelated_ok": bystander.ok, "unrelated_failed": bystander.failed,
        "tile_failed": system.tiles[2].failed,
        "records": [r.action for r in system.fault_manager.records],
    }


def run_all():
    return {
        "bare (no OS)": run_bare(),
        "apiary fail-stop": run_apiary(FaultPolicy.FAIL_STOP),
        "apiary preempt": run_apiary(FaultPolicy.PREEMPT),
    }


def test_bench_fault_containment(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    bare = results["bare (no OS)"]
    failstop = results["apiary fail-stop"]
    preempt = results["apiary preempt"]

    # no OS: the unrelated service is collateral damage
    assert bare["unrelated_failed"] > 0
    # Apiary (either policy): the unrelated service never misses a beat
    assert failstop["unrelated_failed"] == 0
    assert failstop["unrelated_ok"] == PROBES
    assert preempt["unrelated_failed"] == 0
    # fail-stop: the victim tile is down...
    assert failstop["tile_failed"]
    assert "drained" in failstop["records"]
    # ...preempt: the tile survives, only a context died
    assert not preempt["tile_failed"]
    assert "context-killed" in preempt["records"]
    assert preempt["victim_ok"] > failstop["victim_ok"]

    rows = []
    for name, r in results.items():
        rows.append([name, r["victim_ok"], r["victim_failed"],
                     r["unrelated_ok"], r["unrelated_failed"]])
    record("D6", f"Fault blast radius ({PROBES} paced probes to the victim "
                 "and to an unrelated co-resident service)",
           format_table(["model", "victim ok", "victim failed",
                         "unrelated ok", "unrelated failed"], rows))
