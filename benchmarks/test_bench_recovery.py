"""R1 — recovery under fire: a chaos campaign sweeping crash rates.

Runs the fault-injection campaign (seeded crash faults aimed at a checksum
service, closed-loop retrying clients keeping score) at several fault
rates, with and without the recovery subsystem.  The claims under test:

* at every non-zero fault rate, availability with recovery strictly
  exceeds availability without it;
* recovery never costs availability at rate zero;
* every response that does arrive is *correct* (checksummed) — fault
  injection may lose requests, never corrupt answers;
* the whole campaign is deterministic given its seed (the CI smoke check
  re-runs it and diffs the report bytes).
"""

from repro.chaos import Campaign
from repro.eval.report import record

SEED = 42
RATES = (0.0, 2.0, 5.0)


def run_campaign():
    campaign = Campaign(seed=SEED, rates=RATES, clients=3,
                        duration=1_000_000)
    campaign.run()
    return campaign


def test_bench_recovery(benchmark):
    campaign = benchmark.pedantic(run_campaign, rounds=1, iterations=1)
    by_key = {(p.rate, p.recovery): p for p in campaign.points}

    for rate in RATES:
        off = by_key[(rate, False)]
        on = by_key[(rate, True)]
        assert off.requests > 0 and on.requests > 0
        # correctness: what comes back is always right
        assert off.checksum_errors == 0
        assert on.checksum_errors == 0
        if rate == 0.0:
            assert off.faults_applied == 0 and on.faults_applied == 0
            assert off.availability == 1.0
            assert on.availability == 1.0, \
                "recovery must be free when nothing fails"
        else:
            assert off.faults_applied >= 1, \
                "a non-zero-rate point must land at least one crash"
            assert on.availability > off.availability, (
                f"rate {rate}: recovery {on.availability:.3f} must beat "
                f"no-recovery {off.availability:.3f}"
            )
            assert on.recoveries >= 1
            assert on.mean_mttr > 0

    record("R1", "Availability under injected tile crashes, with and "
                 "without recovery", campaign.report_text())
