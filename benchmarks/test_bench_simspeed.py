"""P1 — simulator throughput: the hot-path overhaul vs its pinned baseline.

The reproduction's experiments are bounded by how many simulated cycles per
wall-clock second the discrete-event engine and the NoC routers sustain.
This benchmark measures that directly, on two workloads:

* an 8x8 NoC flood — every node streams packets at injection-queue rate,
  which saturates the router switch-allocation path;
* a monitor-interposed RPC workload — accelerators calling a service
  through their Apiary monitors on a booted :class:`ApiarySystem`, which
  exercises the engine's timer fast path, channels, and the kernel stack.

Both workloads run twice in the same process: once on the optimized stack
(:class:`~repro.sim.engine.Engine` + :class:`~repro.noc.router.Router`) and
once on the pinned pre-overhaul baseline
(:class:`~repro.sim.legacy.LegacyEngine` +
:class:`~repro.noc.legacy.LegacyRouter`), so the reported speedup is
measured against the real old code rather than remembered numbers.  The
two stacks must also agree flit-for-flit — the overhaul's contract is
"faster, not different".

Documented target: >= 2x simulated cycles/sec on the flood.  The committed
floor (``bench_results/P1_floor.json``) is deliberately conservative so the
CI perf-smoke job (reduced configuration, ``SIMSPEED_REDUCED=1``) fails on
real regressions, not on runner noise.
"""

import json
import os
import time

import pytest

from repro.accel import Accelerator, SinkAccel
from repro.eval import format_table
from repro.eval.report import RESULTS_DIR, record
from repro.kernel import ApiarySystem
from repro.noc import LegacyRouter, Mesh2D, Network, Router
from repro.sim import Engine, LegacyEngine

REDUCED = os.environ.get("SIMSPEED_REDUCED") == "1"
FLOOD_CYCLES = 3_000 if REDUCED else 20_000
RPC_CYCLES = 30_000 if REDUCED else 150_000
#: documented target for the full configuration (ISSUE acceptance bar)
TARGET_SPEEDUP = 2.0
FLOOR_PATH = os.path.join(os.path.abspath(RESULTS_DIR), "P1_floor.json")
JSON_PATH = os.path.join(os.path.abspath(RESULTS_DIR), "BENCH_P1.json")

STACKS = [
    ("baseline", LegacyEngine, LegacyRouter),
    ("optimized", Engine, Router),
]


def run_flood(engine_cls, router_cls, cycles, trace=False):
    """All 64 nodes of an 8x8 mesh stream 96-byte packets continuously."""
    eng = engine_cls()
    topo = Mesh2D(8, 8)
    net = Network(eng, topo, router_cls=router_cls)
    if trace:
        net.spans.enable()
    n = topo.node_count

    def sender(node):
        ni = net.interface(node)
        i = 0
        while True:
            dst = (node * 17 + i * 31 + 5) % n
            if dst == node:
                dst = (dst + 1) % n
            yield ni.send(dst, payload_bytes=96)
            i += 1

    def drain(node):
        ni = net.interface(node)
        while True:
            yield ni.recv()

    for node in range(n):
        eng.process(sender(node), name=f"send{node}")
        eng.process(drain(node), name=f"drain{node}")
    t0 = time.perf_counter()
    eng.run(until=cycles)
    wall = time.perf_counter() - t0
    counters = net.stats.snapshot()["counters"]
    flits = sum(r.flits_forwarded for r in net._routers)
    return {
        "wall_s": wall,
        "cycles": cycles,
        "cycles_per_sec": cycles / wall,
        "flits": flits,
        "flits_per_sec": flits / wall,
        "injected": int(counters["noc.packets_injected"]),
        "delivered": int(counters["noc.packets_delivered"]),
    }


class RpcCaller(Accelerator):
    """Calls the victim service in a tight loop through its monitor."""

    from repro.hw.resources import ResourceVector

    COST = ResourceVector(logic_cells=4_000, bram_kb=8, dsp_slices=0)
    PRIMITIVES = {"lut_logic": 3_000}

    def __init__(self, name, victim, gap=200):
        super().__init__(name)
        self.victim = victim
        self.gap = gap
        self.completed = 0

    def main(self, shell):
        while True:
            yield shell.call(self.victim, "req", payload=self.completed,
                             payload_bytes=64, timeout=1_000_000)
            self.completed += 1
            yield self.gap


def run_rpc(engine_cls, router_cls, window, trace=False):
    """Four accelerators RPC a shared service on a booted 4x4 system."""
    eng = engine_cls()
    system = ApiarySystem(width=4, height=4, engine=eng,
                          router_cls=router_cls)
    if trace:
        system.enable_tracing()
    system.boot()
    victim = SinkAccel("victim", service_cycles=20)
    started = [system.start_app(5, victim, endpoint="app.victim")]
    callers = []
    for node in (2, 7, 10, 12):
        caller = RpcCaller(f"caller{node}", "app.victim")
        started.append(system.start_app(node, caller))
        system.mgmt.grant_send(f"tile{node}", "app.victim")
        callers.append(caller)
    system.run_until(eng.all_of(started))
    start_cycle = eng.now
    t0 = time.perf_counter()
    system.run(until=start_cycle + window)
    wall = time.perf_counter() - t0
    flits = sum(r.flits_forwarded for r in system.network._routers)
    calls = sum(c.completed for c in callers)
    return {
        "wall_s": wall,
        "cycles": window,
        "cycles_per_sec": window / wall,
        "flits": flits,
        "flits_per_sec": flits / wall,
        "calls_completed": calls,
        "served": victim.consumed,
    }


def run_all():
    results = {"flood": {}, "rpc": {}}
    for label, engine_cls, router_cls in STACKS:
        results["flood"][label] = run_flood(engine_cls, router_cls,
                                            FLOOD_CYCLES)
        results["rpc"][label] = run_rpc(engine_cls, router_cls, RPC_CYCLES)
    for workload in results.values():
        workload["speedup"] = (workload["optimized"]["cycles_per_sec"]
                               / workload["baseline"]["cycles_per_sec"])
    # observability cross-check: the same optimized stack with causal span
    # recording turned ON.  Spans must be an observer — every simulated
    # quantity has to match the untraced run exactly — and with tracing OFF
    # (the runs above) the guard branches must stay within the recorded
    # regression allowance vs the pre-obs floor.
    results["flood"]["traced"] = run_flood(Engine, Router, FLOOD_CYCLES,
                                           trace=True)
    results["rpc"]["traced"] = run_rpc(Engine, Router, RPC_CYCLES,
                                       trace=True)
    return results


def test_bench_simspeed(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    flood = results["flood"]
    rpc = results["rpc"]

    # the overhaul's contract: faster, not different.  Both stacks must
    # agree on every simulated quantity.
    for key in ("injected", "delivered", "flits"):
        assert flood["baseline"][key] == flood["optimized"][key], key
    for key in ("flits", "calls_completed", "served"):
        assert rpc["baseline"][key] == rpc["optimized"][key], key
    assert flood["optimized"]["delivered"] > 0
    assert rpc["optimized"]["calls_completed"] > 0

    # span tracing is an observer, never an actor: turning it on must not
    # change a single simulated quantity.
    for key in ("injected", "delivered", "flits"):
        assert flood["traced"][key] == flood["optimized"][key], f"traced {key}"
    for key in ("flits", "calls_completed", "served"):
        assert rpc["traced"][key] == rpc["optimized"][key], f"traced {key}"

    # perf floors: the committed floor is the CI tripwire; the full
    # configuration must additionally clear the documented 2x target.
    # The obs-disabled runs (span guards present but short-circuited) get a
    # small recorded allowance over the pre-obs floor.
    with open(FLOOR_PATH) as fh:
        floor = json.load(fh)
    obs_allowance = 1.0 - floor.get("obs_off_max_regression", 0.0)
    assert flood["speedup"] >= floor["flood_min_speedup"] * obs_allowance, (
        f"flood speedup {flood['speedup']:.2f}x below recorded floor "
        f"{floor['flood_min_speedup']}x (obs-off allowance "
        f"{obs_allowance:.2f})")
    assert rpc["speedup"] >= floor["rpc_min_speedup"] * obs_allowance, (
        f"RPC speedup {rpc['speedup']:.2f}x below recorded floor "
        f"{floor['rpc_min_speedup']}x (obs-off allowance "
        f"{obs_allowance:.2f})")
    if not REDUCED:
        assert flood["speedup"] >= TARGET_SPEEDUP, (
            f"flood speedup {flood['speedup']:.2f}x below the documented "
            f"{TARGET_SPEEDUP}x target")

    rows = []
    for workload, data in (("8x8 flood", flood), ("monitor RPC", rpc)):
        for label in ("baseline", "optimized", "traced"):
            r = data[label]
            rows.append([
                workload, label, f"{r['wall_s']:.2f}",
                f"{r['cycles_per_sec']:,.0f}", f"{r['flits_per_sec']:,.0f}",
            ])
        rows.append([workload, "speedup", "",
                     f"{data['speedup']:.2f}x", ""])
    text = format_table(
        ["workload", "stack", "wall s", "sim cycles/s", "flits/s"], rows,
        title=("Simulator throughput, optimized vs pinned pre-overhaul "
               f"baseline ({'reduced' if REDUCED else 'full'} config):"))
    record("P1", "Simulator hot-path throughput", text)

    os.makedirs(os.path.dirname(JSON_PATH), exist_ok=True)
    with open(JSON_PATH, "w") as fh:
        json.dump({"reduced": REDUCED, "target_speedup": TARGET_SPEEDUP,
                   "results": results}, fh, indent=2, sort_keys=True)
        fh.write("\n")
