"""D2 — latency variability: the tail cost of CPU mediation.

Section 1 claims direct attachment improves latency *variability*, not just
the median: host scheduling noise (context switches, run-queue delays)
shows up at p99/p999.  Same workload as D1, more samples, tail columns.
"""

import pytest

from repro.eval import format_table, run_kv_workload
from repro.eval.report import record

KINDS = ["bare", "apiary", "hosted_bypass", "hosted"]


def run_tails():
    results = {}
    rows = []
    for kind in KINDS:
        r = run_kv_workload(kind, n_requests=500, value_bytes=256,
                            warmup_keys=32, seed=29)
        lat = r["latency"]
        results[kind] = r
        rows.append([kind, lat["p50"], lat["p99"], lat["p999"],
                     lat["p999"] / lat["p50"]])
    return rows, results


def test_bench_tail_latency(benchmark):
    rows, results = benchmark.pedantic(run_tails, rounds=1, iterations=1)

    apiary = results["apiary"]["latency"]
    hosted = results["hosted"]["latency"]
    # the tails: hosted p99 spreads far beyond its own median...
    assert hosted["p99"] > 1.25 * hosted["p50"]
    # ...while Apiary's distribution is tight (no scheduler underneath)
    assert apiary["p999"] < 1.2 * apiary["p50"]
    # and the p999 gap between systems exceeds the median gap
    assert hosted["p999"] / apiary["p999"] >= hosted["p50"] / apiary["p50"] * 0.9
    assert hosted["p999"] > 2 * apiary["p999"]

    record("D2", "Tail latency: KV GET distribution per system (cycles)",
           format_table(["system", "p50", "p99", "p999", "p999/p50"], rows))
