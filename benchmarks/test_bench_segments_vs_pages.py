"""D7 — segments vs. pages (Section 4.6's design argument, measured).

The paper chooses segments+capabilities over paged translation because
"segments allow more flexibility in the size of an memory allocation,
reducing resource stranding" and because paged complexity may be
unnecessary.  We run one allocation/access trace through four memory
systems and compare stranding (internal waste), translation cost, and
metadata overhead.
"""

import numpy as np
import pytest

from repro.errors import AllocationError
from repro.eval import format_table
from repro.eval.report import record
from repro.mem import (
    BestFitAllocator,
    BuddyAllocator,
    FirstFitAllocator,
    PagedMmu,
    SPU_CHECK_CYCLES,
)
from repro.sim import RngPool

CAPACITY = 1 << 26  # 64 MB
N_ALLOCS = 400


def make_trace(seed=17):
    """Accelerator-style allocations: odd sizes, wide range (the paper's
    point: accelerators want buffers sized to their problem, not pages)."""
    rng = RngPool(seed=seed).stream("alloc-sizes")
    sizes = np.concatenate([
        rng.integers(100, 4096, size=N_ALLOCS // 2),          # small odd
        rng.integers(4097, 262_144, size=N_ALLOCS // 4),      # medium
        (rng.lognormal(13, 0.8, size=N_ALLOCS // 4)).astype(int) + 1,  # large
    ])
    rng.shuffle(sizes)
    return [int(s) for s in sizes]


def run_comparison():
    sizes = make_trace()
    rows = []
    results = {}

    # segment allocators
    for allocator in (FirstFitAllocator(CAPACITY),
                      BestFitAllocator(CAPACITY)):
        requested = waste = failed = 0
        for size in sizes:
            try:
                allocator.allocate(size)
            except AllocationError:
                failed += 1
                continue
            requested += size
            waste += allocator.internal_waste(size)
        results[allocator.policy] = {
            "waste_frac": waste / requested,
            "failed": failed,
            "translate_cycles": SPU_CHECK_CYCLES,  # bounds check, always
            "metadata_bytes": 16 * (N_ALLOCS - failed),  # one descriptor each
        }
        rows.append([f"segments/{allocator.policy}",
                     f"{waste / requested:.2%}", failed,
                     SPU_CHECK_CYCLES, 16 * (N_ALLOCS - failed)])

    # buddy allocator (power-of-two rounding)
    buddy = BuddyAllocator(CAPACITY, min_block=4096)
    requested = waste = failed = 0
    for size in sizes:
        try:
            buddy.allocate(size)
        except AllocationError:
            failed += 1
            continue
        requested += size
        waste += buddy.internal_waste(size)
    results["buddy"] = {"waste_frac": waste / requested, "failed": failed}
    rows.append(["buddy 4K min", f"{waste / requested:.2%}", failed,
                 SPU_CHECK_CYCLES, 16 * (N_ALLOCS - failed)])

    # paged MMUs: 4K and 2M pages, with a real TLB on an access pattern
    for page_bytes, label in ((4096, "paged 4K"), (1 << 21, "paged 2M")):
        mmu = PagedMmu(CAPACITY, page_bytes=page_bytes, tlb_entries=64)
        requested = failed = 0
        vas = []
        for i, size in enumerate(sizes):
            try:
                va = mmu.allocate(f"p{i % 8}", size)
                vas.append((f"p{i % 8}", va))
                requested += size
            except AllocationError:
                failed += 1
        # translation cost over a random-access pattern
        rng = RngPool(seed=3).stream("access")
        total_cycles = accesses = 0
        for _ in range(2000):
            asid, va = vas[int(rng.integers(0, len(vas)))]
            _pa, cycles = mmu.translate(asid, va, 64)
            total_cycles += cycles
            accesses += 1
        waste = mmu.total_internal_waste()
        results[label] = {
            "waste_frac": waste / requested,
            "failed": failed,
            "translate_cycles": total_cycles / accesses,
            "metadata_bytes": mmu.table_bytes(),
        }
        rows.append([label, f"{waste / requested:.2%}", failed,
                     round(total_cycles / accesses, 2), mmu.table_bytes()])
    return rows, results


def test_bench_segments_vs_pages(benchmark):
    rows, results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    seg = results["first-fit"]
    # stranding: segments waste ~nothing; 4K pages waste real memory on the
    # small-odd-size half of the trace; 2M pages strand massively
    assert seg["waste_frac"] < 0.01
    assert results["paged 4K"]["waste_frac"] > 5 * seg["waste_frac"]
    assert results["paged 2M"]["waste_frac"] > 0.5
    assert results["buddy"]["waste_frac"] > 0.2
    # translation: the segment bounds-check is constant and cheaper than a
    # TLB-missing page walk on scattered accesses
    assert seg["translate_cycles"] <= results["paged 4K"]["translate_cycles"]
    # metadata: per-allocation descriptors vs per-page PTEs
    assert seg["metadata_bytes"] < results["paged 4K"]["metadata_bytes"]

    record("D7", "Segments vs pages: stranding, translation cost, metadata "
                 f"({N_ALLOCS} accelerator-style allocations, 64MB device)",
           format_table(["memory system", "internal waste", "alloc failures",
                         "translate cyc/access", "metadata bytes"], rows))
