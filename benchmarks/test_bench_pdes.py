"""P2 — parallel simulation scaling: PDES workers vs the sequential oracle.

The parallel backend's contract has two halves (DESIGN.md, "Parallel
simulation"):

* **identity** — a windowed cluster run produces byte-identical results,
  span trees, and stats snapshots whether board windows execute serially
  in-process (``backend="sequential"``) or on forked worker processes
  (``backend="parallel"``).  This half is asserted unconditionally, on
  every board count, on every machine.
* **speed** — with enough cores, the forked workers overlap board
  windows and the same run finishes faster.  Wall-clock is physics, not
  arithmetic: a 1-core container *cannot* show speedup, so the floor
  assertions are gated on the cores actually available
  (``len(os.sched_getaffinity(0)) >= boards + 1`` — one core per board
  worker plus the host partition).  The measured ratios and the core
  count are always recorded in ``bench_results/BENCH_P2.json`` so the
  numbers stay honest either way.

Workload: the S1 closed-loop serving harness (``scaling_smoke``) at
1/2/4/8 boards, offered load scaled with the board count so every board
has real work inside each 500-cycle lookahead window.  Documented
target: >= 2.5x at 4 boards on a machine with >= 5 cores.  The CI
``pdes-smoke`` job runs the reduced configuration (``PDES_REDUCED=1``,
1/2 boards) on 4-vCPU runners, where the modest 2-board floor is active.
"""

import json
import os
import time

import pytest

from repro.cluster.smoke import scaling_smoke
from repro.eval import format_table
from repro.eval.report import RESULTS_DIR, record

REDUCED = os.environ.get("PDES_REDUCED") == "1"
BOARD_COUNTS = [1, 2] if REDUCED else [1, 2, 4, 8]
DURATION = 60_000 if REDUCED else 300_000
REQUESTS_PER_CLIENT = 40 if REDUCED else 150
CLIENTS_PER_BOARD = 4 if REDUCED else 8
#: documented target for the full configuration (ISSUE acceptance bar)
TARGET_SPEEDUP = 2.5
TARGET_BOARDS = 4
#: conservative CI tripwire for the reduced 2-board run on 4-vCPU runners
FLOOR_SPEEDUP = 1.15
FLOOR_BOARDS = 2
JSON_PATH = os.path.join(os.path.abspath(RESULTS_DIR), "BENCH_P2.json")

CORES = len(os.sched_getaffinity(0))


def _workload(n_fpgas):
    """S1 serving args with offered load proportional to the board count."""
    return dict(n_fpgas=n_fpgas, duration=DURATION,
                clients=CLIENTS_PER_BOARD * n_fpgas,
                requests_per_client=REQUESTS_PER_CLIENT,
                trace=True, identity=True)


def _timed_run(backend, n_fpgas):
    t0 = time.perf_counter()
    stats = scaling_smoke(backend=backend, **_workload(n_fpgas))
    wall = time.perf_counter() - t0
    identity = stats.pop("identity")
    return stats, identity, wall


def run_all():
    results = {}
    for boards in BOARD_COUNTS:
        seq_stats, seq_id, seq_wall = _timed_run("sequential", boards)
        par_stats, par_id, par_wall = _timed_run("parallel", boards)
        results[boards] = {
            "sequential": {"wall_s": seq_wall, "stats": seq_stats,
                           "identity": seq_id},
            "parallel": {"wall_s": par_wall, "stats": par_stats,
                         "identity": par_id},
            "speedup": seq_wall / par_wall,
        }
    return results


def test_bench_pdes(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # identity: byte-for-byte, on every board count, unconditionally.
    for boards, data in results.items():
        seq, par = data["sequential"], data["parallel"]
        assert seq["stats"] == par["stats"], f"{boards} boards: stats diverge"
        assert seq["identity"]["spans"] == par["identity"]["spans"], (
            f"{boards} boards: span trees diverge")
        assert json.dumps(seq["identity"]["stats"], sort_keys=True) == \
            json.dumps(par["identity"]["stats"], sort_keys=True), (
            f"{boards} boards: stats snapshots diverge")
        assert len(seq["identity"]["spans"]) > 0
        assert seq["stats"]["completed"] > 0, (
            f"{boards} boards: the run served no traffic")

    # speed: floors only where the hardware can physically show them —
    # one core per board worker plus one for the host partition.
    floors = {}
    for boards, data in results.items():
        can_assert = CORES >= boards + 1
        floors[boards] = can_assert
        if not can_assert:
            continue
        if boards == FLOOR_BOARDS:
            assert data["speedup"] >= FLOOR_SPEEDUP, (
                f"{boards}-board speedup {data['speedup']:.2f}x below the "
                f"{FLOOR_SPEEDUP}x floor on a {CORES}-core machine")
        if boards == TARGET_BOARDS and not REDUCED:
            assert data["speedup"] >= TARGET_SPEEDUP, (
                f"{boards}-board speedup {data['speedup']:.2f}x below the "
                f"documented {TARGET_SPEEDUP}x target on a {CORES}-core "
                f"machine")

    rows = []
    for boards, data in results.items():
        rows.append([
            str(boards),
            f"{data['sequential']['wall_s']:.2f}",
            f"{data['parallel']['wall_s']:.2f}",
            f"{data['speedup']:.2f}x",
            "yes",
            "asserted" if floors[boards] else f"recorded ({CORES} cores)",
        ])
    text = format_table(
        ["boards", "seq wall s", "par wall s", "speedup", "identical",
         "floor"],
        rows,
        title=(f"PDES scaling, parallel workers vs sequential oracle "
               f"({'reduced' if REDUCED else 'full'} config, "
               f"{CORES} cores):"))
    record("P2", "Parallel simulation wall-clock scaling", text)

    os.makedirs(os.path.dirname(JSON_PATH), exist_ok=True)
    payload = {
        "reduced": REDUCED,
        "cores": CORES,
        "target_speedup": TARGET_SPEEDUP,
        "target_boards": TARGET_BOARDS,
        "floor_speedup": FLOOR_SPEEDUP,
        "floor_boards": FLOOR_BOARDS,
        "results": {
            str(boards): {
                "sequential_wall_s": data["sequential"]["wall_s"],
                "parallel_wall_s": data["parallel"]["wall_s"],
                "speedup": data["speedup"],
                "byte_identical": True,
                "floor_asserted": floors[boards],
                "completed": data["sequential"]["stats"]["completed"],
                "throughput_per_kcycle":
                    data["sequential"]["stats"]["throughput_per_kcycle"],
                "spans": len(data["sequential"]["identity"]["spans"]),
            }
            for boards, data in results.items()
        },
    }
    with open(JSON_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
