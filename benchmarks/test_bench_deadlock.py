"""A3 — message-dependent deadlock on the raw NoC, and Apiary's answer.

Section 4.5 inherits the NoC literature's concern: request-reply protocols
over finite endpoint queues can deadlock even on a routing-deadlock-free
fabric (replies stuck behind requests that can't drain).  Three runs:

1. raw NoC, both endpoints send-before-receive with tiny queues — the
   classic protocol deadlock; the progress watchdog reports it;
2. raw NoC with concurrent consumption — no deadlock (the protocol fix);
3. the same mutual request-reply pattern through Apiary monitors — the
   monitor's OS-side buffering decouples ejection from the application,
   so the pattern completes without the application being deadlock-aware.
"""

import pytest

from repro.accel import Accelerator
from repro.eval import format_table
from repro.eval.report import record
from repro.kernel import ApiarySystem
from repro.noc import Mesh2D, Network, ProgressWatchdog
from repro.sim import Engine

N_MSGS = 40


def run_raw(concurrent_consumer: bool):
    """Two nodes exchange N requests each over a deliberately tiny NoC."""
    engine = Engine()
    net = Network(engine, Mesh2D(2, 1), num_vcs=1, buffer_depth=2,
                  inject_queue_depth=2, delivery_queue_depth=2)
    stalls = []
    dog = ProgressWatchdog(engine, net, interval=2000,
                           on_stall=lambda t: stalls.append(t))
    received = {0: 0, 1: 0}

    def sender(node, peer):
        ni = net.interface(node)
        for i in range(N_MSGS):
            yield ni.send(peer, payload=("req", i), payload_bytes=64)

    def receiver(node):
        ni = net.interface(node)
        for _ in range(N_MSGS):
            yield ni.recv()
            received[node] += 1

    eng_procs = [engine.process(sender(0, 1)), engine.process(sender(1, 0))]
    if concurrent_consumer:
        # the protocol fix: consume while sending
        eng_procs += [engine.process(receiver(0)),
                      engine.process(receiver(1))]

        def run():
            engine.run(until=2_000_000)
    else:
        # send-before-receive: receivers start only after senders finish,
        # which they never do — the deadlock
        def gated(node):
            yield eng_procs[node].done
            yield from receiver(node)

        engine.process(gated(0))
        engine.process(gated(1))

        def run():
            engine.run(until=200_000)

    run()
    return {
        "stalled": bool(stalls),
        "stall_at": stalls[0] if stalls else None,
        "delivered": sum(received.values()),
        "in_flight": net.in_flight_packets(),
    }


class MutualTalker(Accelerator):
    """Sends N requests to a peer while serving the peer's requests."""

    def __init__(self, name, peer):
        super().__init__(name)
        self.peer = peer
        self.sent_ok = 0
        self.served = 0

    def main(self, shell):
        shell.spawn("client", self._client(shell))
        while True:
            msg = yield shell.recv()
            self.served += 1
            yield shell.reply(msg, payload="ok")

    def _client(self, shell):
        for i in range(N_MSGS):
            yield shell.call(self.peer, "chat", payload=i, payload_bytes=64,
                             timeout=10_000_000)
            self.sent_ok += 1


def run_apiary():
    system = ApiarySystem(width=2, height=1, with_memory=False,
                          buffer_depth=2)
    system.boot()
    a = MutualTalker("a", "app.b")
    b = MutualTalker("b", "app.a")
    started = [system.start_app(0, a, endpoint="app.a"),
               system.start_app(1, b, endpoint="app.b")]
    system.mgmt.connect("tile0", "app.b")
    system.mgmt.connect("tile1", "app.a")
    for ev in started:
        system.run_until(ev)
    system.run(until=system.engine.now + 50_000_000)
    return {"a_ok": a.sent_ok, "b_ok": b.sent_ok,
            "served": a.served + b.served}


def test_bench_deadlock(benchmark):
    def run_all():
        return run_raw(False), run_raw(True), run_apiary()

    deadlocked, healthy, apiary = benchmark.pedantic(run_all, rounds=1,
                                                     iterations=1)

    # 1. send-before-receive on tiny queues deadlocks, and the watchdog
    #    reports it instead of the run hanging silently
    assert deadlocked["stalled"]
    assert deadlocked["in_flight"] > 0
    assert deadlocked["delivered"] < 2 * N_MSGS
    # 2. concurrent consumption completes the identical traffic
    assert not healthy["stalled"]
    assert healthy["delivered"] == 2 * N_MSGS
    # 3. through Apiary, the naive pattern completes: the monitor drains
    #    the NI continuously, so replies never jam behind requests
    assert apiary["a_ok"] == N_MSGS and apiary["b_ok"] == N_MSGS
    assert apiary["served"] == 2 * N_MSGS

    rows = [
        ["raw NoC, send-before-receive", "DEADLOCK "
         f"(stall at cycle {deadlocked['stall_at']:,}, "
         f"{deadlocked['delivered']}/{2 * N_MSGS} delivered)"],
        ["raw NoC, concurrent consumer",
         f"completes ({healthy['delivered']}/{2 * N_MSGS})"],
        ["same pattern through Apiary monitors",
         f"completes ({apiary['served']}/{2 * N_MSGS} served)"],
    ]
    record("A3", "Message-dependent deadlock: mutual request-reply over "
                 "2-deep queues",
           format_table(["configuration", "outcome"], rows))
