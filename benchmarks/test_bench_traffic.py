"""T2 — the traffic & scenario engine: SLO verdicts and report identity.

Two canned scenarios against a 4-board cluster, three claims:

* **flash_crowd** — a 4× crowd spike rides through admission control
  and sharded capacity: every SLO target passes, exactly as the
  scenario declares (``expect_pass=True``);
* **chaos_soak** — a board kill, a network partition, and a heal land
  mid-run; replication leaves every shard a live replica, failovers
  absorb the faults, and the run still passes;
* **identity** — both scenarios produce a byte-identical
  :class:`~repro.loadgen.report.ScenarioReport` on the shared engine,
  the sequential windowed oracle, and the parallel worker pool — the
  chaos plan included.  A reduced ``overload_probe`` additionally
  witnesses the open-loop contract: offered load far exceeds served
  goodput, and the bounded backlog drops (distinct from rejects).

The CI ``scenario-smoke`` job runs the reduced configuration
(``T2_REDUCED=1``), asserts the same verdicts + identity, and uploads
the flash_crowd report JSON as an artifact.
"""

import hashlib
import json
import os
from dataclasses import replace

from repro.eval import format_table
from repro.eval.report import RESULTS_DIR, record
from repro.loadgen import ScenarioRunner, get_scenario

REDUCED = os.environ.get("T2_REDUCED") == "1"
#: time-compression factor for the reduced (CI smoke) configuration
SCALE = 0.5 if REDUCED else 1.0
BACKENDS = ("shared", "sequential", "parallel")
JSON_PATH = os.path.join(os.path.abspath(RESULTS_DIR), "BENCH_T2.json")


def _scale(scn, factor):
    """Compress a scenario's timeline: duration, envelopes, chaos plan.

    Rates are untouched, so utilization — and therefore the verdict —
    is preserved; only the soak length shrinks.
    """
    if factor == 1.0:
        return scn

    def s(x):
        return max(1, int(x * factor))

    tenants = tuple(
        replace(t, arrival=replace(t.arrival, envelopes=tuple(
            replace(e, period=int(e.period * factor),
                    start=int(e.start * factor),
                    end=int(e.end * factor))
            for e in t.arrival.envelopes)))
        for t in scn.tenants)
    chaos = tuple(replace(c, at=s(c.at)) for c in scn.chaos)
    return replace(scn, duration=s(scn.duration), tenants=tenants,
                   chaos=chaos)


def _run_everywhere(name):
    """One scenario on every backend -> (report, per-backend sha256)."""
    scn = _scale(get_scenario(name), SCALE)
    digests = {}
    report = None
    for backend in BACKENDS:
        report = ScenarioRunner(scn, backend=backend).run()
        digests[backend] = hashlib.sha256(
            report.to_json().encode()).hexdigest()
    return scn, report, digests


def run_all():
    out = {}
    for name in ("flash_crowd", "chaos_soak"):
        scn, report, digests = _run_everywhere(name)
        out[name] = {"scenario": scn, "report": report,
                     "digests": digests}
    probe = _scale(get_scenario("overload_probe"), SCALE)
    out["overload_probe"] = {
        "scenario": probe,
        "report": ScenarioRunner(probe, backend="shared").run(),
    }
    return out


def test_bench_traffic(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # verdicts: each pinned scenario lands exactly where it declares
    for name in ("flash_crowd", "chaos_soak"):
        report = results[name]["report"]
        scn = results[name]["scenario"]
        assert report.passed is True, (
            f"{name} failed its SLOs:\n{report.text()}")
        assert report.matches_expectation()
        # identity: one digest across shared/sequential/parallel
        digests = set(results[name]["digests"].values())
        assert len(digests) == 1, (
            f"{name} report diverged across backends: "
            f"{results[name]['digests']}")
        assert report.data["totals"]["unresolved"] == 0
        if scn.chaos:
            assert len(report.chaos_timeline) == len(scn.chaos)

    # the chaos plan actually bit: the soak failed over, served through
    soak = results["chaos_soak"]["report"]
    assert [e["action"] for e in soak.chaos_timeline] == [
        "kill", "partition", "heal"]

    # open loop: offered load is a pure function of the spec, so a
    # drowning cluster cannot slow the generator — offered must dwarf
    # served, and the bounded backlog must drop
    probe = results["overload_probe"]["report"]
    row = probe.tenants["firehose"]
    assert row["offered"] > 2 * row["served"]
    assert row["dropped"] > 0
    assert probe.passed is False and probe.matches_expectation()

    crowd = results["flash_crowd"]["report"]
    rows = [
        ["flash_crowd verdict", "PASS", "declared expect_pass=True"],
        ["chaos_soak verdict", "PASS", "kill+partition+heal absorbed"],
        ["report identity", "yes",
         "shared == sequential == parallel (sha256)"],
        ["crowd p99 latency",
         f"{crowd.tenants['crowd']['latency_p99']:.0f} cyc",
         "under the 60k SLO bound"],
        ["overload offered vs served",
         f"{row['offered']} vs {row['served']}",
         "open loop: offered >> served"],
        ["overload drops (vs rejects)",
         f"{row['dropped']} (vs {row['rejected']})",
         "> 0, counted distinctly"],
    ]
    text = format_table(
        ["measure", "value", "bound"], rows,
        title=(f"T2 traffic & scenario engine "
               f"({'reduced' if REDUCED else 'full'} config):"))
    record("T2", "Scenario engine: SLO verdicts, identity, open loop",
           text)

    os.makedirs(os.path.dirname(JSON_PATH), exist_ok=True)
    payload = {
        "reduced": REDUCED,
        "backends": list(BACKENDS),
        "scenarios": {
            name: {
                "passed": results[name]["report"].passed,
                "digests": results[name]["digests"],
                "byte_identical":
                    len(set(results[name]["digests"].values())) == 1,
                "slo_verdicts": {
                    r["name"]: r["verdict"]
                    for r in results[name]["report"].slo_rows},
                "totals": results[name]["report"].data["totals"],
            }
            for name in ("flash_crowd", "chaos_soak")
        },
        "overload_probe": {
            "passed": probe.passed,
            "offered": row["offered"],
            "served": row["served"],
            "rejected": row["rejected"],
            "dropped": row["dropped"],
        },
    }
    with open(JSON_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
