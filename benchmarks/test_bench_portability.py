"""D10 — portability: one application, different boards and MAC IP cores.

Section 2's complaint: "the interface and reset process for Xilinx's 10
Gbit Ethernet IP core and 100 Gbit Ethernet IP core are different."  Our
MAC models reproduce that divergence faithfully; the experiment runs a
byte-identical application over both cores (and two board models) purely
through the Apiary shell, and reports what changes: only the line-rate-
dependent numbers.
"""

import pytest

from repro.accel import Accelerator
from repro.eval import format_table
from repro.eval.report import record
from repro.kernel import ApiarySystem
from repro.net import EthernetFabric, HundredGigMac, TenGigMac
from repro.sim import Engine
from repro.workloads import RemoteClientHost

CONFIGS = [
    # (label, mac_kind, part_name)
    ("VC707-class, 10G MAC", "10g", "XC7V585T"),
    ("Alveo-class, 100G MAC", "100g", "VU29P"),
    ("Versal-class, 100G MAC + hard NoC", "100g", "XCVC1902"),
]
PAYLOAD = 1024
N_REQUESTS = 40


class ByteEcho(Accelerator):
    """The application under test — knows nothing about MACs or boards."""

    def __init__(self):
        super().__init__("byte-echo")
        self.served = 0

    def main(self, shell):
        yield shell.net_bind(5)
        while True:
            msg = yield shell.recv()
            if msg.op != "net.rx":
                continue
            body = msg.payload
            tag, rid, data = body["data"]
            self.served += 1
            yield shell.net_send(body["src_mac"], 5,
                                 data=("resp", rid, data), nbytes=PAYLOAD)


def run_config(mac_kind, part_name):
    engine = Engine()
    fabric = EthernetFabric(engine, latency_cycles=500, jumbo=True)
    system = ApiarySystem(width=3, height=2, engine=engine, fabric=fabric,
                          mac_kind=mac_kind, mac_addr="board0",
                          part_name=part_name)
    system.boot()
    app = ByteEcho()
    engine.run_until_done(system.start_app(3, app), limit=50_000_000)
    client = RemoteClientHost(engine, fabric, "client0")
    proc = engine.process(client.closed_loop(
        "board0", 5, list(range(N_REQUESTS)), nbytes=PAYLOAD,
        timeout=50_000_000,
    ))
    engine.run_until_done(proc.done, limit=2_000_000_000)
    overhead_fraction = system.apiary_overhead_fraction()
    return {
        "served": app.served,
        "p50": client.latency.percentile(50),
        "overhead": overhead_fraction,
        "overhead_cells": int(overhead_fraction * system.part.logic_cells),
    }


def run_all():
    return {label: run_config(kind, part)
            for label, kind, part in CONFIGS}


def test_bench_portability(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # the identical application ran to completion on every board
    for label, r in results.items():
        assert r["served"] == N_REQUESTS, label
    # what differs is physics, not code: the 10G board is slower for the
    # same 1KB payloads (serialization), and the hardened-NoC part carries
    # the OS almost for free
    assert (results["VC707-class, 10G MAC"]["p50"]
            > results["Alveo-class, 100G MAC"]["p50"])
    # hardened NoC: absolute OS logic shrinks (the fraction can still be
    # comparable because the Versal part is half the VU29P's size)
    assert (results["Versal-class, 100G MAC + hard NoC"]["overhead_cells"]
            < results["Alveo-class, 100G MAC"]["overhead_cells"])

    # and the MAC cores really do expose disjoint interfaces underneath
    assert not hasattr(TenGigMac, "write_reg")
    assert not hasattr(HundredGigMac, "assert_reset")

    rows = [[label, r["p50"], N_REQUESTS, f"{r['overhead']:.2%}"]
            for label, r in results.items()]
    record("D10", "Portability: byte-identical application across boards "
                  f"({PAYLOAD}B echo RPCs)",
           format_table(["board", "p50 (cyc)", "completed", "OS share"],
                        rows))
