"""F1 — Figure 1: the Apiary architecture configuration.

Builds the exact configuration the paper's Figure 1 draws — two
applications composed of multiple accelerators plus the memory and network
services, each tile carrying a router + monitor + slot — then emits the
grid rendering and the connectivity/isolation matrix showing that the two
applications hold no capabilities toward each other.
"""

from repro.accel import Compressor, KvStore, VideoEncoder
from repro.apps import LoadBalancer
from repro.eval import format_table
from repro.eval.report import record
from repro.kernel import build_figure1


def build_and_run():
    system = build_figure1()
    system.boot()
    # Application A: encode -> compress pipeline (tiles 2, 3)
    encoder = VideoEncoder("appA.enc", downstream="appA.zip")
    compressor = Compressor("appA.zip")
    system.run_until(system.start_app(2, encoder, endpoint="appA.enc"))
    system.run_until(system.start_app(3, compressor, endpoint="appA.zip"))
    system.mgmt.grant_send("tile2", "appA.zip")
    # Application B: replicated KV store (tiles 4, 5)
    kv0 = KvStore("appB.kv0")
    kv1 = KvStore("appB.kv1")
    system.run_until(system.start_app(4, kv0, endpoint="appB.kv0"))
    system.run_until(system.start_app(5, kv1, endpoint="appB.kv1"))
    system.run(until=system.engine.now + 10_000)
    return system


def connectivity_matrix(system):
    """Who holds SEND to whom (the isolation picture of Figure 1)."""
    endpoints = sorted(n for n in system.name_table if not n.startswith("tile"))
    rows = []
    for node in range(system.topo.node_count):
        holder = f"tile{node}"
        caps = system.caps.holder_caps(holder)
        allowed = {c.endpoint for c in caps if c.endpoint}
        rows.append([holder] + ["X" if ep in allowed else "." for ep in endpoints])
    return endpoints, rows


def test_bench_figure1(benchmark):
    system = benchmark.pedantic(build_and_run, rounds=1, iterations=1)

    assert system.topo.node_count == 6
    endpoints, rows = connectivity_matrix(system)

    # isolation assertions: app A tiles hold nothing toward app B and
    # vice versa; everyone reaches the OS services they were wired to
    matrix = {row[0]: dict(zip(endpoints, row[1:])) for row in rows}
    assert matrix["tile2"]["appA.zip"] == "X"      # the pipeline edge
    assert matrix["tile2"]["appB.kv0"] == "."      # cross-tenant: nothing
    assert matrix["tile4"]["appA.enc"] == "."
    assert matrix["tile2"]["svc.mem"] == "X"
    assert matrix["tile4"]["svc.mem"] == "X"

    art = system.describe()
    table = format_table(["tile"] + endpoints, rows)
    record("F1", "Figure 1: architecture configuration and isolation matrix",
           art + "\n\nSEND-capability matrix (X = authorized):\n" + table)
