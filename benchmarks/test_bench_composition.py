"""D9 — composition: the Section 2 pipeline with a third-party stage.

Measures what composing through Apiary costs versus a hand-wired
monolith: the encode->compress pipeline as (a) two Apiary tiles exchanging
capability-checked messages, (b) one hand-wired accelerator doing both
stages back-to-back (the no-OS composition a bespoke design would use),
and (c) the AmorphOS-style alternative where the two stages time-share one
slot and pay reconfiguration on every switch.
"""

import pytest

from repro.accel import Accelerator, ENCODE_CYCLES_PER_FRAME
from repro.accel.compress import COMPRESS_CYCLES_PER_KB, COMPRESS_RATIO
from repro.accel.video import ENCODE_RATIO
from repro.apps import deploy_pipeline
from repro.baselines import Morphlet, MorphletScheduler
from repro.eval import format_table
from repro.eval.report import record
from repro.kernel import ApiarySystem
from repro.sim import Engine

N_CHUNKS = 10
FRAMES = 2
CHUNK_BYTES = 80_000


def encode_cycles():
    return FRAMES * ENCODE_CYCLES_PER_FRAME


def compress_cycles(nbytes):
    return max(1, nbytes * COMPRESS_CYCLES_PER_KB // 1024)


def run_apiary():
    system = ApiarySystem(width=4, height=4)
    system.boot()
    stages, started = deploy_pipeline(system, nodes=[4, 5],
                                      third_party_compressor=True)
    for ev in started:
        system.run_until(ev)

    class Feeder(Accelerator):
        def __init__(self):
            super().__init__("feeder")
            self.elapsed = None

        def main(self, shell):
            t0 = shell.engine.now
            for i in range(N_CHUNKS):
                yield shell.call("app.pipe.enc", "encode",
                                 payload={"stream": "s0", "seq": i,
                                          "frames": FRAMES,
                                          "bytes": CHUNK_BYTES},
                                 payload_bytes=64, timeout=500_000_000)
            self.elapsed = shell.engine.now - t0

    feeder = Feeder()
    s = system.start_app(8, feeder)
    system.mgmt.grant_send("tile8", "app.pipe.enc")
    system.run_until(s)
    system.run(until=system.engine.now + 2_000_000_000)
    assert feeder.elapsed is not None
    assert stages[1].chunks_compressed == N_CHUNKS
    return feeder.elapsed / N_CHUNKS


def run_handwired():
    """One monolithic accelerator: both stages, zero composition cost."""
    engine = Engine()
    done = {}

    def monolith():
        t0 = engine.now
        for _ in range(N_CHUNKS):
            yield encode_cycles()
            encoded = int(CHUNK_BYTES * ENCODE_RATIO)
            yield compress_cycles(encoded)
        done["elapsed"] = engine.now - t0

    p = engine.process(monolith())
    engine.run_until_done(p.done, limit=2_000_000_000)
    return done["elapsed"] / N_CHUNKS


def run_amorphos():
    """Time-shared slot: encode and compress alternate with reconfig."""
    engine = Engine()
    sched = MorphletScheduler(engine, slots=1)
    sched.register(Morphlet(
        "encode", lambda body: (encode_cycles(), None, 0),
        logic_cells=120_000,
    ))
    sched.register(Morphlet(
        "compress",
        lambda body: (compress_cycles(int(CHUNK_BYTES * ENCODE_RATIO)),
                      None, 0),
        logic_cells=60_000,
    ))
    done = {}

    def driver():
        t0 = engine.now
        for _ in range(N_CHUNKS):
            yield from sched.invoke("encode", None)
            yield from sched.invoke("compress", None)
        done["elapsed"] = engine.now - t0

    p = engine.process(driver())
    engine.run_until_done(p.done, limit=20_000_000_000)
    return done["elapsed"] / N_CHUNKS


def test_bench_composition(benchmark):
    def run_all():
        return run_apiary(), run_handwired(), run_amorphos()

    apiary, handwired, amorphos = benchmark.pedantic(run_all, rounds=1,
                                                     iterations=1)

    overhead = apiary / handwired - 1.0
    # composing through Apiary costs a few percent over hand-wiring —
    # the price of reusing a third-party stage without bespoke integration
    assert overhead < 0.30, f"composition overhead {overhead:.1%}"
    # time-sharing one slot (AmorphOS-style) pays reconfiguration on every
    # stage switch and loses badly on this pipeline
    assert amorphos > 1.5 * apiary

    rows = [
        ["apiary pipeline (2 tiles, caps)", apiary,
         f"{overhead:+.1%} vs hand-wired"],
        ["hand-wired monolith (no OS)", handwired, "baseline"],
        ["AmorphOS-style time-shared slot", amorphos,
         f"{amorphos / handwired - 1:+.1%} vs hand-wired"],
    ]
    record("D9", "Composition cost per chunk: encode->compress "
                 f"({N_CHUNKS} chunks of {CHUNK_BYTES // 1000}KB)",
           format_table(["composition model", "cycles/chunk", "overhead"],
                        rows))
