"""S2 — tile autoscaling: convergence under a load step + chaos repair.

The scheduler/autoscaler acceptance run.  Three questions:

1. **Convergence** — a stateless KV service sits at one replica when a
   4x load step hits.  New replicas cost ~810k cycles of partial
   reconfiguration each, so the autoscaler must size the whole deficit
   in one decision.  Requests issued after the last scale-up replica
   comes online (plus a settling margin) must show p99 within 2x of the
   pre-step p99 — and the service must scale back down once the step
   ends.
2. **Chaos repair** — fail-stop one replica's tile mid-run; the control
   loop must replace it and return to full service with no operator in
   the loop.
3. **Determinism** — the same seeded run twice must produce a
   byte-identical event log and result JSON.

``S2_REDUCED=1`` shrinks phase durations for the CI smoke job.
"""

import json
import os

from repro.eval import format_table
from repro.eval.report import RESULTS_DIR, record
from repro.sched.smoke import autoscale_chaos_smoke, autoscale_smoke

REDUCED = os.environ.get("S2_REDUCED") == "1"
#: documented acceptance bar: post-convergence tail vs pre-step tail
TAIL_RATIO = 2.0
JSON_PATH = os.path.join(os.path.abspath(RESULTS_DIR), "BENCH_S2.json")

STEP_KWARGS = (
    dict(phase_a=200_000, phase_b=1_300_000, phase_c=400_000,
         settle_margin=150_000, drain=400_000)
    if REDUCED else {}
)


def run_step():
    return autoscale_smoke(**STEP_KWARGS)


def test_bench_autoscale_step_and_chaos():
    out = run_step()
    assert out["completed"] > 0
    assert out["failed"] == 0, (
        f"{out['failed']} requests lost during scaling")
    assert out["peak_replicas"] > 1, "autoscaler never reacted to the step"
    assert out["final_replicas"] == 1, "autoscaler never scaled back down"
    assert out["scale_downs"] >= 1
    assert out["post_samples"] > 0, "no requests after convergence"
    assert out["post_p99"] <= TAIL_RATIO * out["pre_p99"], (
        f"post-scale-up p99 {out['post_p99']:.0f} exceeds "
        f"{TAIL_RATIO}x pre-step p99 {out['pre_p99']:.0f}")

    chaos = autoscale_chaos_smoke()
    assert chaos["replacements"] >= 1, "killed replica was never replaced"
    assert chaos["recovered_at"] is not None
    assert chaos["final_ready"] == 2, "service ended below its floor"
    assert chaos["post_recovery_issued"] > 0
    assert chaos["post_recovery_ok"] == chaos["post_recovery_issued"], (
        "requests still failing after the replacement settled")

    # byte-identical rerun under the same seed (event log included)
    rerun = run_step()
    assert json.dumps(rerun, sort_keys=True) == \
        json.dumps(out, sort_keys=True), "autoscale run is not deterministic"

    rows = [
        ["pre-step (1 replica)", f"{out['pre_p50']:,.0f}",
         f"{out['pre_p99']:,.0f}", "1"],
        ["post-convergence", f"{out['post_p50']:,.0f}",
         f"{out['post_p99']:,.0f}", str(out["peak_replicas"])],
    ]
    text = format_table(
        ["window", "p50 cycles", "p99 cycles", "replicas"],
        rows,
        title=("Autoscaling a KV service through a 4x load step "
               f"({'reduced' if REDUCED else 'full'} config, "
               f"{out['reconfig_cycles_per_replica']:,} cycles "
               "reconfiguration per replica):"))
    text += (
        f"\n\nScale-up ready at +{out['scale_up_ready_at']:,} cycles; "
        f"{out['scale_ups']} scale-ups, {out['scale_downs']} scale-downs, "
        f"final replicas {out['final_replicas']}.\n"
        "Chaos: tile killed at "
        f"+{chaos['killed']['at']:,}, replaced at "
        f"+{chaos['replaced'][0][0]:,}, serving again at "
        f"+{chaos['recovered_at']:,}; "
        f"{chaos['post_recovery_ok']}/{chaos['post_recovery_issued']} "
        "post-recovery requests OK.\n")
    record("S2", "Tile autoscaling under a load step", text)

    os.makedirs(os.path.dirname(JSON_PATH), exist_ok=True)
    with open(JSON_PATH, "w") as fh:
        json.dump({
            "reduced": REDUCED,
            "tail_ratio_target": TAIL_RATIO,
            "step": out,
            "chaos": chaos,
        }, fh, indent=2, sort_keys=True)
        fh.write("\n")
