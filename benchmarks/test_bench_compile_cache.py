"""C1 — the reconfiguration tax: scale-up-ready time, warm vs cold cache.

The bitstream compile-and-cache acceptance run.  The same load step hits
a one-replica KV service twice:

* **cold** — the artifact cache is enabled but nothing was prefetched
  and placement is legacy round-robin, so the scale-up replica lands on
  a board that has never seen the design: the load pays a full synthesis
  run (megacycles) before the partial-reconfiguration write;
* **warm** — warm placement + prefetch are on and the design family was
  compiled ahead onto every board, so the same scale-up pays the
  reconfiguration write only.

Acceptance bar (pinned in ``BENCH_C1.json`` for the CI cache-smoke job):
warm scale-up-ready time at least ``SPEEDUP_FLOOR``x faster than cold,
prefetch accuracy 1.0 on the prefetched board, the three cache gauges
present in management-plane telemetry, and a byte-identical rerun.

``C1_REDUCED=1`` shrinks the pre-step phase for the CI job; the
synthesis/reconfiguration physics (and so the ratio) are unchanged.
"""

import json
import os

from repro.eval import format_table
from repro.eval.report import RESULTS_DIR, record
from repro.sched.smoke import cache_step_smoke

REDUCED = os.environ.get("C1_REDUCED") == "1"
#: documented acceptance bar: warm scale-up must beat cold by this factor
SPEEDUP_FLOOR = 5.0
JSON_PATH = os.path.join(os.path.abspath(RESULTS_DIR), "BENCH_C1.json")

KWARGS = dict(phase_a=200_000) if REDUCED else {}


def run_arm(warm):
    return cache_step_smoke(warm=warm, **KWARGS)


def test_bench_compile_cache_warm_vs_cold():
    cold = run_arm(warm=False)
    warm = run_arm(warm=True)

    for arm in (cold, warm):
        assert arm["completed"] > 0
        assert arm["ready_latency"] is not None, (
            f"{'warm' if arm['warm'] else 'cold'} arm never scaled up")
        # the gauges the tentpole promises, surfaced through telemetry()
        for key in ("bitcache_hit_rate", "bitcache_prefetch_accuracy",
                    "bitcache_synth_backlog"):
            assert key in arm["gauges"], f"telemetry lost {key}"

    # both arms land the new replica on the second board — the comparison
    # is warm-vs-cold on the same slot, not a placement artifact
    assert cold["new_replica_fpga"] == warm["new_replica_fpga"] == 1

    # cold pays synthesis + reconfiguration; warm pays reconfiguration
    # only (the prefetched artifact is a cache hit)
    assert warm["ready_latency"] == warm["reconfig_cycles"], (
        "warm scale-up paid more than the partial-reconfiguration write")
    assert cold["ready_latency"] > warm["ready_latency"]
    ratio = cold["ready_latency"] / warm["ready_latency"]
    assert ratio >= SPEEDUP_FLOOR, (
        f"warm scale-up only {ratio:.2f}x faster than cold "
        f"(floor {SPEEDUP_FLOOR}x)")

    # the warm arm's prefetch onto the scale-up board was used: perfect
    # accuracy on that board, and the hit shows up in its store
    assert warm["prefetched_boards"] == [1]
    board1 = warm["cache"]["fpga1"]
    assert board1["prefetch_accuracy"] == 1.0
    assert board1["hits"] >= 1.0
    cold_board1 = cold["cache"]["fpga1"]
    assert cold_board1["hits"] == 0.0  # nothing warmed it ahead of time
    assert cold_board1["misses"] >= 1.0

    # byte-identical rerun under the same seed (event log included)
    rerun = run_arm(warm=False)
    assert json.dumps(rerun, sort_keys=True) == \
        json.dumps(cold, sort_keys=True), "C1 run is not deterministic"

    rows = [
        ["cold (synthesize on demand)", f"{cold['ready_latency']:,}",
         f"fpga{cold['new_replica_fpga']}",
         f"{cold_board1['misses']:.0f}/{cold_board1['hits']:.0f}"],
        ["warm (prefetched artifact)", f"{warm['ready_latency']:,}",
         f"fpga{warm['new_replica_fpga']}",
         f"{board1['misses']:.0f}/{board1['hits']:.0f}"],
    ]
    text = format_table(
        ["cache state", "scale-up ready (cycles)", "landed on",
         "miss/hit on that board"],
        rows,
        title=("Scale-up-ready time through the bitstream "
               "compile-and-cache pipeline "
               f"({'reduced' if REDUCED else 'full'} config):"))
    text += (
        f"\n\nWarm scale-up is {ratio:.1f}x faster than cold "
        f"(floor {SPEEDUP_FLOOR}x): reconfiguration write "
        f"{warm['reconfig_cycles']:,} cycles vs synthesis + write "
        f"{cold['ready_latency']:,} cycles.  Prefetch accuracy on the "
        f"scale-up board: {board1['prefetch_accuracy']:.2f}.\n")
    record("C1", "Bitstream cache kills the reconfiguration tax", text)

    os.makedirs(os.path.dirname(JSON_PATH), exist_ok=True)
    with open(JSON_PATH, "w") as fh:
        json.dump({
            "reduced": REDUCED,
            "speedup_floor": SPEEDUP_FLOOR,
            "speedup": round(ratio, 3),
            "cold": cold,
            "warm": warm,
        }, fh, indent=2, sort_keys=True)
        fh.write("\n")
