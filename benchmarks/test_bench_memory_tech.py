"""A5 — ablation: memory technology under the memory service (DDR4 vs HBM).

Modern boards offer DDR4 or HBM (Section 2's I/O diversity); the Apiary
memory service hides the difference behind the same segment API.  This
ablation measures what the choice buys: HBM's channel parallelism under
concurrent accelerators vs DDR4's lower single-stream latency — and shows
applications are untouched by the swap (portability again).
"""

import pytest

from repro.accel import Accelerator
from repro.eval import format_table
from repro.eval.report import record
from repro.hw.resources import ResourceVector
from repro.kernel import ApiarySystem
from repro.mem import DDR4_TIMING, HBM2_TIMING

N_READERS = 6
READS_PER_READER = 8
READ_BYTES = 8_192
#: wide (Versal-class) NoC flits, so the fabric isn't the bottleneck and
#: the memory technologies can actually differentiate
FLIT_BYTES = 64


class StreamReader(Accelerator):
    """Allocates a buffer and streams reads from it."""

    COST = ResourceVector(logic_cells=4_000, bram_kb=8, dsp_slices=0)
    PRIMITIVES = {"lut_logic": 3_000}

    def __init__(self, name):
        super().__init__(name)
        self.elapsed = None

    def main(self, shell):
        seg = yield shell.alloc(READ_BYTES)
        t0 = shell.engine.now
        for _ in range(READS_PER_READER):
            yield shell.mem_read(seg, 0, READ_BYTES)
        self.elapsed = shell.engine.now - t0


def run_memory_real(kind):
    if kind == "DDR4 x1ch":
        timing, channels = DDR4_TIMING, 1
    else:
        timing, channels = HBM2_TIMING, 8
    system = ApiarySystem(width=4, height=2, dram_timing=timing,
                          dram_channels=channels,
                          noc_flit_bytes=FLIT_BYTES)
    system.boot()
    readers = [StreamReader(f"reader{i}") for i in range(N_READERS)]
    started = [system.start_app(i + 1, readers[i]) for i in range(N_READERS)]
    system.run_until(system.engine.all_of(started))
    t0 = system.engine.now
    system.run(until=system.engine.now + 300_000_000)
    assert all(r.elapsed is not None for r in readers)
    elapsed = [r.elapsed for r in readers]
    totals = system.dram.totals()
    total_bytes = N_READERS * READS_PER_READER * READ_BYTES
    # aggregate throughput: bytes over the span all readers were active
    span = max(elapsed)
    return {
        "mean_stream_cycles": sum(elapsed) / len(elapsed),
        "agg_bytes_per_cycle": total_bytes / span,
        "row_hits": totals["row_hits"],
        "row_conflicts": totals["row_conflicts"],
    }


def test_bench_memory_tech(benchmark):
    def run_all():
        return {kind: run_memory_real(kind)
                for kind in ("DDR4 x1ch", "HBM2 x8ch")}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    ddr = results["DDR4 x1ch"]
    hbm = results["HBM2 x8ch"]
    # channel parallelism wins under concurrency despite HBM's slower
    # per-access timing: higher aggregate bandwidth, shorter streams
    assert hbm["agg_bytes_per_cycle"] > 1.5 * ddr["agg_bytes_per_cycle"]
    assert hbm["mean_stream_cycles"] < ddr["mean_stream_cycles"]

    rows = [[kind, round(r["mean_stream_cycles"]),
             round(r["agg_bytes_per_cycle"], 1), r["row_hits"],
             r["row_conflicts"]]
            for kind, r in results.items()]
    record("A5", f"Memory technology under svc.mem: {N_READERS} concurrent "
                 f"streaming readers ({READ_BYTES}B reads)",
           format_table(["memory", "mean stream cycles", "agg B/cyc",
                         "row hits", "row conflicts"], rows))
