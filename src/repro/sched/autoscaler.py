"""Autoscaler: reconfiguration-cost-aware replica scaling for services.

Scaling an FPGA service up is *not* starting a process — it is streaming
a partial bitstream for hundreds of thousands of cycles (a
:class:`~repro.cluster.service.ClusterPortedService` replica takes
``reconfig_duration(COST)`` ≈ 810k cycles ≈ 3 ms — and megacycles more
when the board must *synthesize* the bitstream first, see
:mod:`repro.hw.compile`).  Naive per-tick increments pay that latency
serially and oscillate.  This controller is built around that cost:

* **jump scaling** — when the queue signal trips, it sizes the *whole*
  deficit (``ceil(total_queue / target_queue)`` replicas) and issues the
  extra loads in one decision, so the reconfigurations overlap instead
  of queueing behind each other;
* **in-flight freeze** — while any replica is still reconfiguring
  (``pending_up > 0``) no further scale-up decisions are taken: the
  signal cannot yet reflect capacity that was already bought;
* **hysteresis on the way down** — ``down_after`` consecutive
  low-signal ticks are required per removal, and removals are graceful:
  the directory stops routing first, in-flight work drains, the
  front-end retires the instance, and only then is the tile torn down;
* **predictive prefetch** (``prefetch=True``, clusters with a bitstream
  cache) — when the queue signal is *rising toward* the scale-up
  threshold, or the SLO fast window is burning, the controller warms
  cold boards' artifact caches ahead of the decision, so the scale-up
  that follows pays reconfiguration only, not synthesis.

Signals come from the layers the OS already exposes: front-end
per-instance queue depth (``BackendHealth.outstanding``) and per-tile
monitor traffic rates via ``MgmtPlane.telemetry()`` (which also carries
the region occupancy gauges and any attached
:class:`~repro.obs.telemetry.TelemetrySampler` series).

Every decision lands in :attr:`events` — a deterministic log that is
byte-identical across identically-seeded runs (pinned by the S2
benchmark).  Dead replicas (failed tiles) are replaced like-for-like on
the next tick, which is what keeps the kill-a-tile chaos run serving
with no manual intervention.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional, Tuple

from repro.cluster.service import ClusterPortedService
from repro.errors import ConfigError
from repro.hw.region import reconfig_duration

__all__ = ["Autoscaler"]


class Autoscaler:
    """Scales one stateless service between ``min_replicas`` and ``max``."""

    def __init__(
        self,
        cluster,
        service: str,
        min_replicas: int = 1,
        max_replicas: int = 4,
        interval: int = 20_000,
        high_queue: float = 8.0,
        low_queue: float = 1.0,
        target_queue: float = 3.0,
        down_after: int = 3,
        drain_window: int = 5_000,
        util_low: Optional[float] = None,
        slo: Optional[Any] = None,
        prefetch: bool = False,
    ):
        if min_replicas < 1 or max_replicas < min_replicas:
            raise ConfigError(
                f"need 1 <= min <= max, got {min_replicas}..{max_replicas}")
        if low_queue >= high_queue:
            raise ConfigError("low_queue must sit below high_queue")
        self.cluster = cluster
        self.engine = cluster.engine
        self.directory = cluster.directory
        self.frontend = cluster.frontend
        self.service = service
        self.spec = self.directory.spec(service)  # validates the name
        if self.spec.sharded:
            raise ConfigError(f"{service!r} is sharded; only stateless "
                              "services autoscale by replica")
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.interval = interval
        self.high_queue = high_queue
        self.low_queue = low_queue
        self.target_queue = target_queue
        self.down_after = down_after
        self.drain_window = drain_window
        self.util_low = util_low
        #: optional :class:`~repro.obs.slo.SLOEngine` — when its fast
        #: window is burning for this service, scale up even if the queue
        #: signal has not tripped yet (the burn is *user-visible* pain;
        #: the queue may lag it, e.g. under admission-control rejects,
        #: which never enter a backend queue at all)
        self.slo = slo
        #: cycles one replica's partial reconfiguration costs — the price
        #: every scale-up decision pays before capacity materializes
        #: (assuming a warm bitstream; a cold board also pays synthesis)
        self.reconfig_cycles = reconfig_duration(ClusterPortedService.COST)
        #: compile-ahead on early warning (needs cluster.bitplane)
        self.prefetch = prefetch and getattr(cluster, "bitplane",
                                             None) is not None
        self.plane = getattr(cluster, "bitplane", None)
        self.prefetches = 0

        #: deterministic decision log: (cycle, action, iid, replicas, info)
        self.events: List[Tuple] = []
        #: (cycle, ready_replicas, total_replicas, queue_per_ready, util)
        self.series: List[Tuple] = []
        self.scale_ups = 0
        self.scale_downs = 0
        self.replacements = 0
        self._pending_up = 0
        self._low_ticks = 0
        self._prev_q: Optional[int] = None
        self._proc = None

    def start(self) -> None:
        if self._proc is not None:
            raise ConfigError("autoscaler already started")
        self._proc = self.engine.process(
            self._run(), name=f"autoscale.{self.service}")

    # -- signals -----------------------------------------------------------

    def replicas(self) -> int:
        return len(self.spec.instances)

    def ready_instances(self) -> List[Any]:
        """Replicas actually serving (loaded, not failed, not mid-load)."""
        out = []
        for inst in self.spec.instances:
            tile = self.cluster.systems[inst.fpga].tiles[inst.node]
            if (inst.ready and tile.accelerator is not None
                    and not tile.failed):
                out.append(inst)
        return out

    def signal(self) -> Tuple[int, float, int]:
        """(total queue depth, max tile tx rate, ready count)."""
        ready = self.ready_instances()
        total_q = 0
        util = 0.0
        for inst in self.spec.instances:
            health = self.frontend.health.get(inst.iid)
            if health is not None:
                total_q += health.outstanding
        # open-loop pressure: submissions parked in the front-end backlog
        # are demand just as real as dispatched-but-unanswered requests
        total_q += self.frontend.backlog_depth(self.service)
        for inst in ready:
            tile = self.cluster.systems[inst.fpga].tiles[inst.node]
            util = max(util, tile.monitor.telemetry()["tx_flits_per_cycle"])
        return total_q, util, len(ready)

    # -- control loop ------------------------------------------------------

    def _run(self):
        while True:
            yield self.interval
            # 1) replace replicas whose tile died (fault-driven repair);
            # skip instances still reconfiguring — their tile keeps the
            # failed flag until the new load completes, and replacing a
            # replacement would loop forever
            for inst in list(self.spec.instances):
                tile = self.cluster.systems[inst.fpga].tiles[inst.node]
                if inst.ready and tile.failed:
                    yield from self._replace(inst)
            total_q, util, ready = self.signal()
            per_q = total_q / max(1, ready)
            # queue growth per cycle since the last tick — the arrival
            # excess the next scale-up must absorb
            qdot = 0.0
            if self._prev_q is not None:
                qdot = max(0.0, (total_q - self._prev_q) / self.interval)
            self._prev_q = total_q
            self.series.append((self.engine.now, ready, self.replicas(),
                                round(per_q, 3), round(util, 4)))
            # 1b) predictive prefetch: the queue is rising toward the
            # threshold (or the SLO budget is already burning) and a
            # scale-up is still possible — start warming cold boards NOW,
            # so when the jump decision lands the bitstream is an artifact
            # cache hit instead of a multi-megacycle synthesis run
            if (self.prefetch
                    and self._pending_up == 0
                    and self.replicas() < self.max_replicas
                    and ((qdot > 0 and per_q > self.high_queue / 2)
                         or (self.slo is not None
                             and self.slo.firing(self.service,
                                                 self.engine.now)))):
                issued = self.plane.prefetch_service(self.service)
                if issued:
                    self.prefetches += len(issued)
                    self._log("prefetch",
                              ",".join(f"fpga{i}" for i in sorted(issued)),
                              f"queue={per_q:.1f} qdot={qdot:.4f}")
            # 2) keep the floor (also re-adds after a failed replacement)
            if (self._pending_up == 0
                    and self.replicas() < self.min_replicas):
                for _ in range(self.min_replicas - self.replicas()):
                    self._scale_up("below min")
                continue
            # 3) SLO burn override: a firing fast-burn alert buys one
            # replica per tick regardless of the queue signal (rejects
            # under admission control burn budget without ever queueing)
            if (self.slo is not None
                    and self._pending_up == 0
                    and self.replicas() < self.max_replicas
                    and self.slo.firing(self.service, self.engine.now)):
                self._low_ticks = 0
                self._scale_up("slo_burn")
                continue
            # 4) scale decisions
            if per_q > self.high_queue:
                self._low_ticks = 0
                if self._pending_up == 0 and self.replicas() < self.max_replicas:
                    # new capacity only materializes after reconfig_cycles,
                    # so size for the backlog that will exist *then*, not
                    # for the queue visible now — one jump instead of a
                    # chain of serial half-megacycle reconfigurations
                    predicted = total_q + qdot * self.reconfig_cycles
                    desired = min(
                        self.max_replicas,
                        max(self.replicas() + 1,
                            math.ceil(predicted / self.target_queue)))
                    why = (f"queue={per_q:.1f} "
                           f"predicted@ready={predicted:.0f}")
                    for _ in range(desired - self.replicas()):
                        self._scale_up(why)
            elif (per_q < self.low_queue
                  and (self.util_low is None or util < self.util_low)):
                self._low_ticks += 1
                if (self._low_ticks >= self.down_after
                        and self._pending_up == 0
                        and self.replicas() > self.min_replicas):
                    self._low_ticks = 0
                    yield from self._scale_down()
            else:
                self._low_ticks = 0

    # -- actions -----------------------------------------------------------

    def _scale_up(self, why: str) -> None:
        try:
            inst, started = self.directory.add_instance(self.service)
        except ConfigError as err:
            self._log("up_failed", "-", str(err))
            return
        self.frontend.track_all()
        self._pending_up += 1
        self.scale_ups += 1
        self._log("scale_up", inst.iid, why)
        started.add_callback(lambda ev, i=inst: self._up_done(ev, i))

    def _up_done(self, ev, inst) -> None:
        self._pending_up -= 1
        if ev.failed:
            # the load itself was rejected; detach the phantom replica
            try:
                self.directory.remove_instance(self.service, iid=inst.iid)
            except ConfigError:
                pass
            self.frontend.retire(inst.iid)
            self._log("up_load_failed", inst.iid, str(ev.value))
        else:
            self._log("up_ready", inst.iid, "")

    def _scale_down(self):
        """Graceful removal: unroute, drain, retire, then free the tile."""
        inst = self.directory.remove_instance(self.service)
        self.scale_downs += 1
        self._log("scale_down", inst.iid, "")
        yield self.drain_window
        self.frontend.retire(inst.iid)
        system = self.cluster.systems[inst.fpga]
        yield system.mgmt.teardown(inst.node)
        self._log("down_done", inst.iid, "")

    def _replace(self, inst):
        """Swap a dead replica for a fresh one (no operator in the loop)."""
        self.directory.remove_instance(self.service, iid=inst.iid)
        self.frontend.retire(inst.iid)
        self.replacements += 1
        self._log("replace", inst.iid, f"tile {inst.node} failed")
        system = self.cluster.systems[inst.fpga]
        yield system.mgmt.teardown(inst.node)
        self._scale_up(f"replacing {inst.iid}")

    def _log(self, action: str, iid: str, info: str) -> None:
        self.events.append(
            (self.engine.now, action, iid, self.replicas(), info))
