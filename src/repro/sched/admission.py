"""Admission control: per-tenant quotas at submit time.

Multitenancy is Apiary's whole premise — the monitor isolates tenants at
runtime, but nothing yet stops one tenant from *asking* for every tile.
Admission is the synchronous front door of the scheduler: a submit
either enters the queue or raises a typed rejection immediately, so
tenants can tell "you are over quota" (:class:`~repro.errors.QuotaExceeded`)
apart from "the fabric is full right now" (queued, placed later).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import AdmissionRejected, ConfigError, QuotaExceeded
from repro.sched.job import JobSpec

__all__ = ["AdmissionController", "TenantQuota"]


@dataclass(frozen=True)
class TenantQuota:
    """Ceilings for one tenant (``None`` = unlimited)."""

    #: jobs simultaneously placed-or-placing (tiles the tenant holds)
    max_running: Optional[int] = None
    #: jobs waiting in the scheduler queue
    max_queued: Optional[int] = None
    #: highest priority the tenant may submit at (prevents a tenant from
    #: outbidding everyone just by picking a large number)
    max_priority: Optional[int] = None


class AdmissionController:
    """Screens submissions against per-tenant quotas.

    ``quotas`` maps tenant name to :class:`TenantQuota`; tenants not
    listed get ``default`` (unlimited unless configured otherwise).
    """

    def __init__(
        self,
        quotas: Optional[Dict[str, TenantQuota]] = None,
        default: Optional[TenantQuota] = None,
    ):
        self.quotas: Dict[str, TenantQuota] = dict(quotas or {})
        self.default = default if default is not None else TenantQuota()
        for tenant, quota in self.quotas.items():
            if not isinstance(quota, TenantQuota):
                raise ConfigError(
                    f"quota for {tenant!r} must be a TenantQuota")

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default)

    def admit(self, spec: JobSpec, running: int, queued: int) -> None:
        """Raise a typed rejection, or return to admit.

        ``running``/``queued`` are the tenant's *current* counts as the
        scheduler sees them; admission itself is stateless so the
        scheduler stays the single source of truth about jobs.
        """
        if not spec.name:
            raise AdmissionRejected("job needs a non-empty name")
        if not spec.tenant:
            raise AdmissionRejected(f"job {spec.name!r} needs a tenant")
        quota = self.quota_for(spec.tenant)
        if quota.max_priority is not None and spec.priority > quota.max_priority:
            raise AdmissionRejected(
                f"tenant {spec.tenant!r} may submit at priority <= "
                f"{quota.max_priority}, asked for {spec.priority}"
            )
        if quota.max_running is not None and running >= quota.max_running:
            raise QuotaExceeded(
                f"tenant {spec.tenant!r} holds {running}/{quota.max_running} "
                f"running tiles; rejecting {spec.name!r}"
            )
        if quota.max_queued is not None and queued >= quota.max_queued:
            raise QuotaExceeded(
                f"tenant {spec.tenant!r} has {queued}/{quota.max_queued} "
                f"queued jobs; rejecting {spec.name!r}"
            )
