"""Reusable autoscaling experiments: the S2 load-step and chaos runs.

One parameterized harness shared by the unit tests, the S2 benchmark,
and the CI ``sched-smoke`` job — the same pattern as
:mod:`repro.cluster.smoke`: every quantity derives from the simulated
clock and seeded streams, so two calls with identical arguments return
identical results (the benchmark byte-compares the full event log).

The main run (:func:`autoscale_smoke`) drives a stateless KV service
through a three-phase open-loop load: steady base traffic, a
``step_factor``× step, then base again.  The interesting physics is the
reconfiguration cost: a new replica takes ~810k cycles of partial
reconfiguration before it serves, so the autoscaler must size the whole
deficit in one decision (jump scaling) for tail latency to converge
inside the step window.

The chaos run (:func:`autoscale_chaos_smoke`) fail-stops one replica's
tile mid-run and checks the control loop replaces it and keeps serving
with no operator in the loop.

The cache run (:func:`cache_step_smoke`) is the C1 experiment: the same
load step against a cluster with the bitstream compile-and-cache
pipeline enabled, measuring scale-up-ready time with a warm
(prefetched) vs cold (synthesize-on-demand) artifact cache.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.smoke import _build
from repro.errors import TileFault
from repro.policy import RetryPolicy
from repro.workloads.client import ClusterClient

__all__ = ["autoscale_smoke", "autoscale_chaos_smoke", "cache_step_smoke"]


def _shared_kv_factory(work_cycles: int):
    """A stateless KV front: compute on-tile, state in shared memory.

    All replicas read/write one backing store (modelling state that
    lives in DRAM behind the memory service, not in the accelerator),
    which is what makes the service safely scalable: a request answered
    by a brand-new replica sees earlier writes.
    """
    store: Dict[Any, Any] = {}

    def make():
        def handler(body):
            op = body.get("op")
            if op == "put":
                store[body["key"]] = body["value"]
                return work_cycles, {"ok": True}, 32
            return work_cycles, {"ok": body.get("key") in store,
                                 "value": store.get(body.get("key"))}, 64
        return handler

    return make


def _pctl(values: List[int], p: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(round(p / 100.0 * (len(ordered) - 1))))
    return float(ordered[idx])


def _open_loop_kv(host: ClusterClient, idx: int, phases, results: List,
                  timeout: int):
    """Open-loop load generator: issues on schedule, never waits."""
    engine = host.engine
    t0 = engine.now
    # stagger clients so arrivals interleave instead of bunching
    first_gap = phases[0][1]
    offset = (idx * first_gap) // 4
    if offset:
        yield offset
    n = 0
    while True:
        elapsed = engine.now - t0
        gap = None
        for end, phase_gap, tag in phases:
            if elapsed < end:
                gap, phase = phase_gap, tag
                break
        if gap is None:
            return
        key = f"k{(idx * 31 + n * 7) % 64}"
        body = ({"op": "put", "key": key, "value": n} if n % 4 == 0
                else {"op": "get", "key": key})
        issue = engine.now
        ev = host.call_service("kv", body, timeout=timeout)

        def record(done, t=issue, ph=phase):
            results.append(
                (t, None if done.failed else engine.now - t, ph))

        ev.add_callback(record)
        n += 1
        # small deterministic per-client skew keeps clients from locking
        # onto a common arrival grid (which would double requests up on
        # one instance every period and inflate the measured tail)
        yield gap + idx * 251


def autoscale_smoke(
    seed: int = 0,
    n_fpgas: int = 2,
    clients: int = 4,
    work_cycles: int = 3_000,
    base_gap: int = 24_000,
    step_factor: int = 4,
    phase_a: int = 600_000,
    phase_b: int = 1_400_000,
    phase_c: int = 1_200_000,
    min_replicas: int = 1,
    max_replicas: int = 4,
    interval: int = 20_000,
    high_queue: float = 8.0,
    low_queue: float = 1.0,
    target_queue: float = 3.0,
    request_timeout: int = 1_500_000,
    max_pending: int = 1_024,
    settle_margin: int = 300_000,
    drain: int = 500_000,
) -> Dict[str, Any]:
    """Load-step experiment: does the autoscaler converge, then retreat?

    Returns pre-step and post-convergence latency percentiles, the
    replica time-series, and the autoscaler's full decision log (for the
    determinism byte-compare).
    """
    # scale-down tears live tiles down mid-traffic; a straggler reply
    # interrupted inside the dying tile is an orphan by design (same
    # engine contract the fault-injection runs use)
    cluster = _build(n_fpgas, seed, swallow_orphan_errors=True)
    started = cluster.deploy_stateless(
        "kv", _shared_kv_factory(work_cycles), instances=min_replicas)
    cluster.engine.run_until_done(cluster.engine.all_of(started),
                                  limit=50_000_000)
    # overload queues work instead of failing it: the per-attempt budget
    # must outlive worst-case queueing during the pre-scale-up window
    patient = RetryPolicy(deadline=request_timeout,
                          attempt_timeout=request_timeout,
                          backoff_base=200, backoff_cap=2_000)
    frontend = cluster.start_frontend(max_pending=max_pending, retry=patient)
    scaler = cluster.start_autoscaler(
        "kv", min_replicas=min_replicas, max_replicas=max_replicas,
        interval=interval, high_queue=high_queue, low_queue=low_queue,
        target_queue=target_queue, drain_window=10_000)
    cluster.run(until=cluster.engine.now + 5_000)

    total = phase_a + phase_b + phase_c
    phases = [(phase_a, base_gap, "a"),
              (phase_a + phase_b, base_gap // step_factor, "b"),
              (total, base_gap, "c")]
    results: List[Tuple] = []
    start = cluster.engine.now
    for c in range(clients):
        host = ClusterClient(cluster.engine, cluster.fabric, f"host{c}")
        cluster.engine.process(
            _open_loop_kv(host, c, phases, results, request_timeout),
            name=f"{host.mac}.loadgen")
    cluster.run(until=start + total + drain)

    def lats(phase, after=0, before=None):
        return [lat for t, lat, ph in results
                if ph == phase and lat is not None and t - start >= after
                and (before is None or t - start < before)]

    pre = lats("a", after=phase_a // 3)
    # "converged" latency is judged on requests *issued* after the last
    # scale-up replica came online plus a settling margin (the backlog
    # built during reconfiguration needs time to drain)
    up_ready = [t for t, action, *_rest in scaler.events
                if action == "up_ready"]
    ready_at = (max(up_ready) - start) if up_ready else None
    post = (lats("b", after=ready_at + settle_margin)
            if ready_at is not None else [])
    peak = max((r[2] for r in scaler.series), default=min_replicas)
    completed = sum(1 for _t, lat, _ph in results if lat is not None)
    failed = sum(1 for _t, lat, _ph in results if lat is None)
    return {
        "seed": seed,
        "clients": clients,
        "work_cycles": work_cycles,
        "phases": [phase_a, phase_b, phase_c],
        "completed": completed,
        "failed": failed,
        "pre_p50": _pctl(pre, 50), "pre_p99": _pctl(pre, 99),
        "post_p50": _pctl(post, 50), "post_p99": _pctl(post, 99),
        "post_samples": len(post),
        "scale_up_ready_at": ready_at,
        "peak_replicas": peak,
        "final_replicas": scaler.replicas(),
        "scale_ups": scaler.scale_ups,
        "scale_downs": scaler.scale_downs,
        "reconfig_cycles_per_replica": scaler.reconfig_cycles,
        "event_log": [list(e) for e in scaler.events],
        "replica_series": [list(s) for s in scaler.series],
        "frontend": {
            "admitted": frontend.requests_admitted,
            "rejected": frontend.requests_rejected,
            "failed": frontend.requests_failed,
            "failovers": frontend.failovers,
        },
    }


def cache_step_smoke(
    seed: int = 0,
    n_fpgas: int = 2,
    clients: int = 2,
    warm: bool = True,
    work_cycles: int = 3_000,
    base_gap: int = 24_000,
    step_factor: int = 8,
    phase_a: int = 600_000,
    min_replicas: int = 1,
    max_replicas: int = 2,
    interval: int = 20_000,
    high_queue: float = 8.0,
    low_queue: float = 1.0,
    target_queue: float = 3.0,
    request_timeout: int = 10_000_000,
    max_pending: int = 4_096,
    chunk: int = 50_000,
    max_step: int = 12_000_000,
    drain_chunks: int = 2,
) -> Dict[str, Any]:
    """The C1 experiment: scale-up-ready time, warm vs cold bitstreams.

    One stateless KV replica takes a load step; the autoscaler buys a
    second replica, which lands on the *other* board.  The metric is
    ``ready_latency`` — scale-up decision to ``up_ready``:

    * ``warm=True`` — the cluster runs warm placement + prefetch, and the
      service's design family is prefetched onto every board right after
      deploy (the operator's "I will scale this" hint).  The scale-up
      pays partial reconfiguration only (~810k cycles).
    * ``warm=False`` — cache enabled but no prefetch and legacy
      round-robin placement: the new replica lands on a board that has
      never seen the design and pays a full synthesis run first
      (~4.9M cycles).

    Built through :class:`~repro.cluster.config.ClusterConfig` (the
    config-object path), so C1 also exercises the redesigned cluster
    API end to end.  Deterministic: identical arguments give an
    identical result dict (the benchmark byte-compares it).
    """
    from dataclasses import replace

    from repro.cluster.cluster import Cluster
    from repro.cluster.config import CacheConfig, ClusterConfig, SchedConfig
    from repro.kernel.config import SystemConfig

    system = SystemConfig.figure1()
    if seed:
        system = replace(system, seed=seed)
    cluster = Cluster(config=ClusterConfig(
        n_fpgas=n_fpgas,
        system=system,
        swallow_orphan_errors=True,
        cache=CacheConfig(enabled=True, prefetch=warm,
                          warm_placement=warm),
        sched=SchedConfig(
            min_replicas=min_replicas, max_replicas=max_replicas,
            interval=interval, high_queue=high_queue,
            low_queue=low_queue, target_queue=target_queue,
            drain_window=10_000),
    ))
    cluster.boot()
    started = cluster.deploy_stateless(
        "kv", _shared_kv_factory(work_cycles), instances=min_replicas)
    cluster.engine.run_until_done(cluster.engine.all_of(started),
                                  limit=100_000_000)
    prefetched: List[int] = []
    if warm:
        # compile-ahead on every board that has not seen the design yet;
        # by the time the load step arrives, scale-up is a cache hit
        issued = cluster.bitplane.prefetch_service("kv")
        prefetched = sorted(issued)
        if issued:
            cluster.engine.run_until_done(
                cluster.engine.all_of(list(issued.values())),
                limit=100_000_000)
    patient = RetryPolicy(deadline=request_timeout,
                          attempt_timeout=request_timeout,
                          backoff_base=200, backoff_cap=2_000)
    cluster.start_frontend(max_pending=max_pending, retry=patient)
    scaler = cluster.start_autoscaler("kv")
    cluster.run(until=cluster.engine.now + 5_000)

    results: List[Tuple] = []
    start = cluster.engine.now
    phases = [(phase_a, base_gap, "a"),
              (phase_a + max_step, base_gap // step_factor, "b")]
    for c in range(clients):
        host = ClusterClient(cluster.engine, cluster.fabric, f"host{c}")
        cluster.engine.process(
            _open_loop_kv(host, c, phases, results, request_timeout),
            name=f"{host.mac}.loadgen")
    cluster.run(until=start + phase_a)
    step_at = cluster.engine.now

    def first(action, after):
        hits = [t for t, a, *_rest in scaler.events
                if a == action and t >= after]
        return min(hits) if hits else None

    # run in fixed chunks until the step's scale-up replica is serving
    # (chunk-quantized stop keeps reruns byte-identical)
    while cluster.engine.now < start + phase_a + max_step:
        cluster.run(until=cluster.engine.now + chunk)
        if first("up_ready", step_at) is not None:
            break
    for _ in range(drain_chunks):
        cluster.run(until=cluster.engine.now + chunk)

    decided_at = first("scale_up", step_at)
    ready_at = first("up_ready", step_at)
    ready_latency = (ready_at - decided_at
                     if decided_at is not None and ready_at is not None
                     else None)
    # where did the new replica land, and was that board warm?
    new_inst = max(cluster.directory.spec("kv").instances,
                   key=lambda i: i.replica)
    tele = cluster.systems[0].mgmt.telemetry()[0]
    return {
        "seed": seed,
        "warm": warm,
        "clients": clients,
        "phase_a": phase_a,
        "prefetched_boards": prefetched,
        "scale_up_at": decided_at,
        "up_ready_at": ready_at,
        "ready_latency": ready_latency,
        "new_replica_fpga": new_inst.fpga,
        "reconfig_cycles": scaler.reconfig_cycles,
        "autoscaler_prefetches": scaler.prefetches,
        "completed": sum(1 for r in results if r[1] is not None),
        "cache": cluster.bitplane.telemetry(),
        "gauges": {k: tele[k] for k in
                   ("bitcache_hit_rate", "bitcache_prefetch_accuracy",
                    "bitcache_synth_backlog") if k in tele},
        "event_log": [list(e) for e in scaler.events],
    }


def autoscale_chaos_smoke(
    seed: int = 0,
    n_fpgas: int = 2,
    clients: int = 4,
    work_cycles: int = 3_000,
    gap: int = 12_000,
    duration: int = 1_800_000,
    kill_after: int = 400_000,
    min_replicas: int = 2,
    max_replicas: int = 4,
    interval: int = 20_000,
    request_timeout: int = 600_000,
    settle_margin: int = 150_000,
    drain: int = 200_000,
) -> Dict[str, Any]:
    """Kill one replica's tile mid-run; the autoscaler must recover alone.

    Success means: a ``replace`` decision in the event log, a fresh
    replica serving afterwards, and requests issued after the
    replacement settles completing at (near-)unity success rate.
    """
    cluster = _build(n_fpgas, seed, swallow_orphan_errors=True)
    started = cluster.deploy_stateless(
        "kv", _shared_kv_factory(work_cycles), instances=min_replicas)
    cluster.engine.run_until_done(cluster.engine.all_of(started),
                                  limit=50_000_000)
    patient = RetryPolicy(deadline=request_timeout,
                          attempt_timeout=request_timeout // 3,
                          backoff_base=200, backoff_cap=2_000)
    frontend = cluster.start_frontend(max_pending=1_024, retry=patient)
    scaler = cluster.start_autoscaler(
        "kv", min_replicas=min_replicas, max_replicas=max_replicas,
        interval=interval, drain_window=10_000)
    cluster.run(until=cluster.engine.now + 5_000)

    results: List[Tuple] = []
    start = cluster.engine.now
    phases = [(duration, gap, "steady")]
    for c in range(clients):
        host = ClusterClient(cluster.engine, cluster.fabric, f"host{c}")
        cluster.engine.process(
            _open_loop_kv(host, c, phases, results, request_timeout),
            name=f"{host.mac}.loadgen")

    killed: Dict[str, Any] = {}

    def kill(_arg=None):
        victim = cluster.directory.spec("kv").instances[0]
        killed["iid"] = victim.iid
        killed["at"] = cluster.engine.now
        system = cluster.systems[victim.fpga]
        tile = system.tiles[victim.node]
        err = TileFault(f"chaos: {tile.endpoint} killed")
        err.occurred_at = cluster.engine.now
        # through the fault manager, so the front-end's on_fault hook
        # fails pending work immediately (same path organic faults take)
        system.fault_manager.report(tile, "main", err)

    cluster.engine.schedule(kill_after, kill)
    cluster.run(until=start + duration + drain)

    replaced = [(t, iid) for t, action, iid, *_rest in scaler.events
                if action == "replace"]
    ready_after_kill = [t for t, action, *_rest in scaler.events
                        if action == "up_ready" and t > killed.get("at", 0)]
    recovered_at = min(ready_after_kill) if ready_after_kill else None
    window = [(t, lat) for t, lat, _ph in results
              if recovered_at is not None
              and t >= recovered_at + settle_margin]
    window_ok = sum(1 for _t, lat in window if lat is not None)
    return {
        "seed": seed,
        "killed": killed,
        "replaced": replaced,
        "recovered_at": recovered_at,
        "replacements": scaler.replacements,
        "final_ready": len(scaler.ready_instances()),
        "completed": sum(1 for r in results if r[1] is not None),
        "failed": sum(1 for r in results if r[1] is None),
        "post_recovery_issued": len(window),
        "post_recovery_ok": window_ok,
        "event_log": [list(e) for e in scaler.events],
        "frontend_failovers": frontend.failovers,
    }
