"""TileScheduler: the deterministic, event-driven scheduling loop.

One scheduler per :class:`~repro.kernel.system.ApiarySystem`.  It owns a
priority job queue and a single dispatcher process that wakes only on
events — submit, load completion, teardown completion, fault — never on
polling, so an idle scheduler costs zero simulated work and runs are
reproducible: identically-seeded systems produce byte-identical event
logs (:meth:`event_log`).

The loop composes the pieces the kernel already provides as mechanism:

* **admission** (:class:`~repro.sched.admission.AdmissionController`) —
  synchronous, typed rejections at :meth:`submit`;
* **placement** (:class:`~repro.sched.placement.Placer`) — bin-packing
  the job's bitstream cost onto free slots under the configured policy,
  then ``MgmtPlane.load`` (which re-runs the DRC as the trust boundary);
* **preemption** — a queued high-priority job that fits nowhere may
  displace the lowest-priority running job: *checkpoint-migrate* when
  the victim is preemptible and another slot fits it
  (``MgmtPlane.migrate``), otherwise *checkpoint-and-requeue* (state
  externalized, carried in ``job.saved_state``) or plain kill-and-requeue;
* **fault rescheduling** — a ``FaultManager`` drain hands the tile's job
  back to the queue; the dispatcher re-places it on spare capacity
  within one teardown + reconfiguration delay.

Do not combine a scheduler with :class:`~repro.kernel.recovery.
RecoveryManager` deployments *for the same tiles* — both would race to
re-place work after a fault.  Recovery owns OS/cluster services; the
scheduler owns the jobs submitted to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigError, PlacementFailed, ReproError
from repro.sched.admission import AdmissionController, TenantQuota
from repro.sched.job import Job, JobSpec, JobState
from repro.sched.placement import Placer, PlacementPolicy

__all__ = ["SchedEvent", "TileScheduler"]


@dataclass(frozen=True)
class SchedEvent:
    """One scheduler decision, as recorded in the deterministic log."""

    time: int
    kind: str   # submit|place|start|preempt|migrate|fault|requeue|finish|...
    job: str
    tenant: str
    node: Optional[int]
    info: str = ""

    def as_tuple(self) -> Tuple:
        return (self.time, self.kind, self.job, self.tenant, self.node,
                self.info)


class TileScheduler:
    """Job queue + placer + preemption + fault rescheduling for one FPGA."""

    def __init__(
        self,
        system,
        policy: PlacementPolicy = PlacementPolicy.FIRST_FIT,
        quotas: Optional[Dict[str, TenantQuota]] = None,
        default_quota: Optional[TenantQuota] = None,
        reserved: Tuple[int, ...] = (),
        max_faults: int = 3,
    ):
        self.system = system
        self.engine = system.engine
        self.mgmt = system.mgmt
        self.stats = system.stats
        self.tracer = system.tracer
        self.spans = system.spans
        self.admission = AdmissionController(quotas, default=default_quota)
        self.placer = Placer(system.tiles, system.topo, drc=system.drc,
                             policy=policy, reserved=reserved)
        #: faults a job may survive before the scheduler abandons it
        self.max_faults = max_faults
        self.jobs: Dict[int, Job] = {}
        self.events: List[SchedEvent] = []
        self._queue: List[Job] = []
        self._by_node: Dict[int, Job] = {}
        self._migrating: set = set()   # job ids mid-migration
        self._next_id = 1
        self._kick = None
        system.fault_manager.on_fault.append(self._on_fault)
        self.engine.process(self._dispatcher(), name="sched.dispatch")

    # -- public API --------------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Admit a job (or raise a typed rejection) and queue it."""
        running = sum(1 for j in self.jobs.values()
                      if j.spec.tenant == spec.tenant and j.active)
        queued = sum(1 for j in self.jobs.values()
                     if j.spec.tenant == spec.tenant
                     and j.state is JobState.QUEUED)
        try:
            self.admission.admit(spec, running=running, queued=queued)
        except ReproError as err:
            self.stats.counter("sched.rejected").inc()
            self._log("reject", spec.name, spec.tenant, None, str(err))
            raise
        job = Job(self._next_id, spec, self.engine.now)
        self._next_id += 1
        self.jobs[job.id] = job
        self._queue.append(job)
        self.stats.counter("sched.submitted").inc()
        self._log("submit", spec.name, spec.tenant, None,
                  f"prio={spec.priority}")
        self._wake()
        return job

    def finish(self, job: Job):
        """Intentionally complete a job; frees its tile (if running).

        Returns the teardown event for a running job, ``None`` for a
        queued one.  A job mid-reconfiguration cannot finish yet.
        """
        if job.state is JobState.QUEUED:
            self._queue.remove(job)
            job.state = JobState.COMPLETED
            job.finished_at = self.engine.now
            self._log("finish", job.spec.name, job.spec.tenant, None, "queued")
            return None
        if job.state is not JobState.RUNNING or job.id in self._migrating:
            raise ConfigError(f"{job!r} cannot finish while {job.state.value}")
        node = job.node
        self._by_node.pop(node, None)
        job.state = JobState.COMPLETED
        job.finished_at = self.engine.now
        job.node = None
        done = self.mgmt.teardown(node)
        done.add_callback(lambda _ev: self._wake())
        self._log("finish", job.spec.name, job.spec.tenant, node, "")
        return done

    def job_for_node(self, node: int) -> Optional[Job]:
        return self._by_node.get(node)

    def queue_depth(self) -> int:
        return len(self._queue)

    def event_log(self) -> List[Tuple]:
        """The deterministic decision log (byte-identical across seeds)."""
        return [e.as_tuple() for e in self.events]

    # -- dispatcher --------------------------------------------------------

    def _dispatcher(self):
        while True:
            self._dispatch_round()
            self.stats.gauge("sched.queue_depth").set(len(self._queue))
            self._kick = self.engine.event("sched.kick")
            yield self._kick
            self._kick = None

    def _wake(self) -> None:
        if self._kick is not None and not self._kick.triggered:
            self._kick.succeed(None)

    def _dispatch_round(self) -> None:
        """One pass over the queue in (priority, age) order."""
        for job in sorted(self._queue,
                          key=lambda j: (-j.spec.priority, j.id)):
            quota = self.admission.quota_for(job.spec.tenant)
            if quota.max_running is not None:
                active = sum(1 for j in self.jobs.values()
                             if j.spec.tenant == job.spec.tenant and j.active)
                if active >= quota.max_running:
                    continue  # stays queued until the tenant frees a tile
            self._try_place(job)

    def _try_place(self, job: Job) -> None:
        accelerator = job.spec.factory()
        if job.saved_state:
            accelerator.restore_state(dict(job.saved_state))
        bitstream = accelerator.bitstream(signed_by=job.spec.signed_by)
        near = self._resolve_anchor(job.spec.colocate_with)
        try:
            node = self.placer.place(bitstream, near=near)
        except PlacementFailed:
            if job.spec.priority > 0:
                self._make_room(job, bitstream)
            return
        self._queue.remove(job)
        job.state = JobState.PLACING
        job.node = node
        job.placements += 1
        self._by_node[node] = job
        tid, span = (0, 0)
        if self.spans.enabled:
            tid = self.spans.new_trace()
            span = self.spans.open(tid, f"sched.place:{job.spec.name}",
                                   "sched", "sched", self.engine.now,
                                   node=node, job=job.id)
        started = self.mgmt.load(node, accelerator,
                                 endpoint=job.spec.endpoint,
                                 signed_by=job.spec.signed_by,
                                 trace=(tid, span) if span else None)
        started.add_callback(lambda ev, j=job, n=node, s=span:
                             self._on_placed(ev, j, n, s))
        self.stats.counter("sched.placements").inc()
        self._log("place", job.spec.name, job.spec.tenant, node,
                  f"attempt={job.placements}")

    def _on_placed(self, ev, job: Job, node: int, span: int) -> None:
        if span:
            self.spans.close(span, self.engine.now, failed=ev.failed)
        if job.state is not JobState.PLACING or job.node != node:
            return  # superseded (e.g. faulted mid-reconfiguration)
        if ev.failed:
            # DRC/capacity were pre-screened, so this is rare (a race with
            # an out-of-band load); requeue and let the next round retry
            self._by_node.pop(node, None)
            job.node = None
            job.state = JobState.QUEUED
            self._queue.append(job)
            self._log("load_failed", job.spec.name, job.spec.tenant, node,
                      str(ev.value))
        else:
            job.state = JobState.RUNNING
            if job.started_at is None:
                job.started_at = self.engine.now
            self.stats.histogram("sched.queue_wait").record(
                self.engine.now - job.submitted_at)
            self._log("start", job.spec.name, job.spec.tenant, node, "")
        self._wake()

    def _resolve_anchor(self, name: Optional[str]) -> Optional[int]:
        if name is None:
            return None
        try:
            return self.system.namespace.lookup(name)
        except ReproError:
            return None

    # -- preemption --------------------------------------------------------

    def _make_room(self, job: Job, bitstream) -> None:
        """Displace the weakest running job so ``job`` can fit.

        Victims are considered lowest-priority first (youngest first
        within a priority) and must (a) be strictly lower priority and
        (b) occupy a tile that would actually fit ``job`` once vacated.
        """
        victims = [j for j in self.jobs.values()
                   if j.state is JobState.RUNNING
                   and j.id not in self._migrating
                   and j.spec.priority < job.spec.priority]
        victims.sort(key=lambda j: (j.spec.priority, -j.id))
        for victim in victims:
            if not self._vacated_fits(victim.node, bitstream):
                continue
            self._preempt(victim, for_job=job)
            return

    def _vacated_fits(self, node: int, bitstream) -> bool:
        region = self.system.tiles[node].region
        if node in self.placer.reserved:
            return False
        if not bitstream.cost.fits_in(region.capacity):
            return False
        drc = region.drc if region.drc is not None else self.system.drc
        return drc is None or not drc.violations(bitstream)

    def _preempt(self, victim: Job, for_job: Job) -> None:
        tile = self.system.tiles[victim.node]
        accelerator = tile.accelerator
        preemptible = accelerator is not None and accelerator.preemptible
        # A preemptible victim whose bitstream fits some other free slot
        # is migrated live (checkpoint travels inside mgmt.migrate);
        # useful when slots are heterogeneous: the victim retreats to a
        # smaller slot the high-priority job could not use.
        if preemptible:
            try:
                dest = self.placer.place(
                    accelerator.bitstream(signed_by=victim.spec.signed_by),
                    exclude=(victim.node,))
            except PlacementFailed:
                dest = None
            if dest is not None:
                self._migrate(victim, dest, for_job)
                return
        victim.preemptions += 1
        self.stats.counter("sched.preemptions").inc()
        if preemptible:
            state = accelerator.externalize_state()
            self._consume_saved_contexts(tile, victim, state)
            victim.saved_state.update(state)
            mode = "checkpoint"
        else:
            mode = "kill"
        node = victim.node
        self._by_node.pop(node, None)
        victim.node = None
        victim.state = JobState.QUEUED
        self._queue.append(victim)
        done = self.mgmt.teardown(node)
        done.add_callback(lambda _ev: self._wake())
        self._log("preempt", victim.spec.name, victim.spec.tenant, node,
                  f"mode={mode} for={for_job.spec.name}")
        self.tracer.emit(self.engine.now, "sched.preempt", "sched",
                         victim=victim.spec.name, mode=mode,
                         beneficiary=for_job.spec.name)

    def _migrate(self, victim: Job, dest: int, for_job: Job) -> None:
        victim.preemptions += 1
        self._migrating.add(victim.id)
        self.stats.counter("sched.migrations").inc()
        src = victim.node
        self._log("migrate", victim.spec.name, victim.spec.tenant, src,
                  f"to={dest} for={for_job.spec.name}")
        self.engine.process(self._migrate_proc(victim, src, dest),
                            name=f"sched.migrate.{victim.id}")

    def _migrate_proc(self, victim: Job, src: int, dest: int):
        try:
            yield from self.mgmt.migrate(
                src, dest,
                make_accelerator=victim.spec.factory,
                endpoint=victim.spec.endpoint)
        except ReproError as err:
            # destination was taken out from under us — requeue instead
            self._by_node.pop(src, None)
            victim.node = None
            victim.state = JobState.QUEUED
            self._queue.append(victim)
            self._log("migrate_failed", victim.spec.name, victim.spec.tenant,
                      src, str(err))
        else:
            self._by_node.pop(src, None)
            self._by_node[dest] = victim
            victim.node = dest
            self._log("migrated", victim.spec.name, victim.spec.tenant, dest,
                      f"from={src}")
        finally:
            self._migrating.discard(victim.id)
            self._wake()

    @staticmethod
    def _consume_saved_contexts(tile, job, state: dict) -> None:
        """Merge the tile's parked contexts belonging to ``job`` into
        ``state`` and remove them from the tile.  Contexts another
        deployment owns stay parked for *its* recovery — merging them
        here would leak one tenant's checkpoint into another's restore."""
        mine = job.spec.endpoint
        for ctx in sorted(tile.saved_contexts):
            owner = tile.saved_context_owners.get(ctx)
            if owner is None or mine is None or owner == mine:
                state.update(tile.saved_contexts.pop(ctx))
                tile.saved_context_owners.pop(ctx, None)

    # -- fault handling ----------------------------------------------------

    def _on_fault(self, tile, record) -> None:
        """FaultManager subscriber: reschedule a drained tile's job."""
        if record.action != "drained":
            return  # context-killed under PREEMPT: the tile is still alive
        job = self._by_node.pop(tile.node, None)
        if job is None or job.state in (JobState.COMPLETED, JobState.FAILED):
            return
        job.faults += 1
        job.node = None
        self.stats.counter("sched.fault_requeues").inc()
        # anything the fault manager checkpointed survives to the re-place
        self._consume_saved_contexts(tile, job, job.saved_state)
        if job.id in self._migrating:
            return  # the migrate process sees the failure and requeues
        if job.faults > self.max_faults:
            job.state = JobState.FAILED
            job.finished_at = self.engine.now
            self._log("abandon", job.spec.name, job.spec.tenant, tile.node,
                      f"faults={job.faults}")
        else:
            job.state = JobState.QUEUED
            self._queue.append(job)
            self._log("fault_requeue", job.spec.name, job.spec.tenant,
                      tile.node, record.error)
        # free the slot regardless: the bitstream is still loaded on the
        # drained tile until unload completes
        done = self.mgmt.teardown(tile.node)
        done.add_callback(lambda _ev: self._wake())

    # -- internals ---------------------------------------------------------

    def _log(self, kind: str, job: str, tenant: str,
             node: Optional[int], info: str) -> None:
        self.events.append(SchedEvent(self.engine.now, kind, job, tenant,
                                      node, info))
        self.tracer.emit(self.engine.now, f"sched.{kind}", "sched",
                         job=job, node=node)
