"""Job model for the tile scheduler.

A *job* is one long-running accelerator instance the scheduler keeps
placed somewhere: the unit of admission (tenant quotas), placement
(one tile slot), preemption (priority), and rescheduling (faults).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

__all__ = ["Job", "JobSpec", "JobState"]


class JobState(enum.Enum):
    """Lifecycle of a scheduled job (values appear in the event log)."""

    QUEUED = "queued"        # admitted, awaiting placement
    PLACING = "placing"      # a tile is reconfiguring for it
    RUNNING = "running"      # live on a tile
    COMPLETED = "completed"  # intentionally finished/torn down
    FAILED = "failed"        # abandoned after exceeding retry budget

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.value


@dataclass(frozen=True)
class JobSpec:
    """What a tenant submits: everything needed to (re)place the job.

    ``factory`` builds a *fresh* accelerator instance per placement — the
    scheduler may place a job several times (load failures, preemption,
    fault rescheduling), and each placement reconfigures a slot from the
    bitstream, never reuses a Python object across tiles.
    """

    name: str
    tenant: str
    factory: Callable[[], Any]
    endpoint: Optional[str] = None
    #: larger wins: a queued high-priority job may evict a running
    #: lower-priority one when no slot fits it
    priority: int = 0
    #: endpoint name to place near (NoC-adjacent) under the
    #: locality-aware policy; ignored when unresolvable
    colocate_with: Optional[str] = None
    signed_by: Optional[str] = None


class Job:
    """One submitted job and its scheduling bookkeeping."""

    __slots__ = ("id", "spec", "state", "node", "saved_state",
                 "submitted_at", "started_at", "finished_at",
                 "placements", "preemptions", "faults")

    def __init__(self, job_id: int, spec: JobSpec, submitted_at: int):
        self.id = job_id
        self.spec = spec
        self.state = JobState.QUEUED
        #: tile currently hosting (or reconfiguring for) the job
        self.node: Optional[int] = None
        #: checkpointed state carried across preemption/faults; restored
        #: into the next placement's fresh accelerator instance
        self.saved_state: Dict[str, Any] = {}
        self.submitted_at = submitted_at
        self.started_at: Optional[int] = None
        self.finished_at: Optional[int] = None
        self.placements = 0
        self.preemptions = 0
        self.faults = 0

    @property
    def active(self) -> bool:
        """Counts against the tenant's running-tile quota."""
        return self.state in (JobState.PLACING, JobState.RUNNING)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Job #{self.id} {self.spec.name!r} {self.state.value}"
                f" node={self.node}>")
