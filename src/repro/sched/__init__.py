"""repro.sched — the tile scheduler and autoscaling control plane.

Apiary's claim is that the *OS* should place, load, and revoke
accelerators on tiles (PAPER §4.1, §4.5); the kernel deliberately stopped
at mechanism (``MgmtPlane.load`` by explicit tile number, matching the
paper's deferral of policy to AmorphOS/Coyote).  This package is that
policy layer, in the spirit of FOS's scheduler over partial regions and
SYNERGY's transparent scale-out:

* :class:`AdmissionController` — per-tenant quotas and priorities with
  typed rejections (:class:`~repro.errors.QuotaExceeded`);
* :class:`Placer` — resource-aware bin-packing of bitstream costs
  against tile slot capacities, DRC-screened, with first-fit / best-fit /
  locality-aware policies;
* :class:`TileScheduler` — the deterministic, event-driven control loop:
  job queue, placement, priority preemption (checkpoint-migrate or
  kill-and-requeue), and fault-driven rescheduling;
* :class:`Autoscaler` — reconfiguration-cost-aware replica scaling for
  cluster services, driven by front-end queue depth and tile utilization,
  rebinding the service directory and front-end as replicas come and go.

Everything is deterministic: identically-seeded runs produce
byte-identical scheduler/autoscaler event logs (pinned by CI).
"""

from repro.sched.admission import AdmissionController, TenantQuota
from repro.sched.autoscaler import Autoscaler
from repro.sched.job import Job, JobSpec, JobState
from repro.sched.placement import Placer, PlacementPolicy, warm_first
from repro.sched.scheduler import SchedEvent, TileScheduler
from repro.sched.smoke import (
    autoscale_chaos_smoke,
    autoscale_smoke,
    cache_step_smoke,
)

__all__ = [
    "AdmissionController",
    "TenantQuota",
    "Autoscaler",
    "Job",
    "JobSpec",
    "JobState",
    "Placer",
    "PlacementPolicy",
    "warm_first",
    "TileScheduler",
    "SchedEvent",
    "autoscale_smoke",
    "autoscale_chaos_smoke",
    "cache_step_smoke",
]
