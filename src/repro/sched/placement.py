"""Resource-aware placement: bin-packing bitstreams onto tile slots.

A placement decision answers "which free reconfigurable region can host
this bitstream?" — capacity (:class:`~repro.hw.resources.ResourceVector`
``fits_in``), design rules (the per-region or system DRC), and policy:

* ``FIRST_FIT`` — lowest feasible tile number.  Deterministic and fast;
  what the service directory's ``_load`` already does implicitly.
* ``BEST_FIT`` — the feasible tile whose capacity leaves the least
  slack, so big slots stay open for big bitstreams (classic bin-packing;
  only differs from first-fit on heterogeneous region capacities).
* ``LOCALITY`` — the feasible tile with the fewest NoC hops
  (``Mesh2D.hop_distance``) to an anchor tile, e.g. a memory-heavy
  accelerator next to the DRAM service tile.  Falls back to first-fit
  when no anchor is given.

Failures are typed: :class:`~repro.errors.PlacementFailed` carries a
per-tile reason list so callers (and tests) see *why* nothing fit.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigError, PlacementFailed
from repro.hw.bitstream import Bitstream, DesignRuleChecker

__all__ = ["Placer", "PlacementPolicy", "warm_first"]


def warm_first(order: Iterable[int], cluster,
               bitstream: Bitstream) -> List[int]:
    """Stable-partition board indices: warm-cache boards ahead of cold.

    The board-level analogue of the tile policies below — with a
    bitstream cache enabled, a warm board turns a scale-up into a pure
    partial reconfiguration while a cold one pays a full synthesis run
    first.  Order *within* each partition is preserved, so placement
    stays deterministic (the caller passes cursor order as tiebreak).
    No cache plane: the order comes back unchanged.
    """
    plane = getattr(cluster, "bitplane", None)
    order = list(order)
    if plane is None:
        return order
    warm = [i for i in order if plane.store(i).warm(bitstream)]
    cold = [i for i in order if i not in warm]
    return warm + cold


class PlacementPolicy(enum.Enum):
    FIRST_FIT = "first_fit"
    BEST_FIT = "best_fit"
    LOCALITY = "locality"


class Placer:
    """Stateless placement engine over one system's tiles."""

    def __init__(
        self,
        tiles,
        topo,
        drc: Optional[DesignRuleChecker] = None,
        policy: PlacementPolicy = PlacementPolicy.FIRST_FIT,
        reserved: Iterable[int] = (),
    ):
        if not isinstance(policy, PlacementPolicy):
            raise ConfigError(f"unknown placement policy {policy!r}")
        self.tiles = tiles
        self.topo = topo
        self.drc = drc
        self.policy = policy
        #: tiles placement must never touch (OS service tiles, spares...)
        self.reserved = frozenset(reserved)

    # -- feasibility -------------------------------------------------------

    def reject_reason(self, node: int, bitstream: Bitstream) -> Optional[str]:
        """Why ``bitstream`` cannot go on tile ``node`` (None = feasible)."""
        if node in self.reserved:
            return "reserved"
        tile = self.tiles[node]
        if tile.occupied:
            return f"occupied by {tile.accelerator.name!r}"
        region = tile.region
        if region.occupied or region.reconfiguring:
            return "region busy (loading or unloading)"
        if not bitstream.cost.fits_in(region.capacity):
            return (f"needs {bitstream.cost.logic_cells} cells, slot has "
                    f"{region.capacity.logic_cells}")
        drc = region.drc if region.drc is not None else self.drc
        if drc is not None:
            violations = drc.violations(bitstream)
            if violations:
                return "DRC: " + "; ".join(v.rule for v in violations)
        return None

    def feasible_tiles(self, bitstream: Bitstream,
                       exclude: Iterable[int] = ()) -> List[int]:
        """All tiles that could host ``bitstream`` right now, ascending."""
        skip = set(exclude)
        return [t.node for t in self.tiles
                if t.node not in skip
                and self.reject_reason(t.node, bitstream) is None]

    # -- selection ---------------------------------------------------------

    def place(
        self,
        bitstream: Bitstream,
        near: Optional[int] = None,
        exclude: Iterable[int] = (),
    ) -> int:
        """Pick the tile for ``bitstream`` under the configured policy.

        Raises :class:`PlacementFailed` (with per-tile reasons) when no
        tile is feasible.  Ties always break toward the lowest tile
        number, so placement is deterministic under every policy.
        """
        skip = set(exclude)
        candidates: List[int] = []
        reasons: Dict[int, str] = {}
        for tile in self.tiles:
            if tile.node in skip:
                reasons[tile.node] = "excluded"
                continue
            why = self.reject_reason(tile.node, bitstream)
            if why is None:
                candidates.append(tile.node)
            else:
                reasons[tile.node] = why
        if not candidates:
            detail = ", ".join(f"t{n}: {why}" for n, why in sorted(reasons.items()))
            err = PlacementFailed(
                f"no tile fits {bitstream.name!r} "
                f"({bitstream.cost.logic_cells} cells) [{detail}]"
            )
            err.reasons = reasons
            raise err
        return min(candidates, key=self._key(bitstream, near))

    def _key(self, bitstream: Bitstream, near: Optional[int]):
        if self.policy is PlacementPolicy.BEST_FIT:
            def key(node: int) -> Tuple:
                left = self.tiles[node].region.capacity - bitstream.cost
                return (left.logic_cells, left.bram_kb, left.dsp_slices, node)
        elif self.policy is PlacementPolicy.LOCALITY and near is not None:
            def key(node: int) -> Tuple:
                return (self.topo.hop_distance(near, node), node)
        else:  # FIRST_FIT (and LOCALITY without an anchor)
            def key(node: int) -> Tuple:
                return (node,)
        return key
