"""Partition-aware Ethernet fabric for windowed (PDES) cluster backends.

The shared :class:`~repro.net.frame.EthernetFabric` assumes every endpoint
hangs off one engine: ``transmit`` resolves the destination callback
immediately and schedules delivery on the single shared clock.  The
windowed cluster backends break that assumption — each board (and the
host side: front-end plus clients) is a *partition* with a private engine
— so the fabric splits into per-partition views:

* frames whose destination lives in the **same partition** behave exactly
  as before (resolved and scheduled locally);
* frames to **another partition** are captured as serializable
  :class:`FrameEnvelope` records in the partition's outbox.  The backend
  drains outboxes at every window barrier and injects each envelope into
  the destination partition, where delivery is scheduled at
  ``send_cycle + latency_cycles`` — the exact cycle the shared fabric
  would have delivered it.

The fabric's fixed latency is what makes this sound: with window length
``w <= latency_cycles``, a frame sent anywhere inside a window arrives at
or after the *next* barrier, so partitions never miss cross-traffic by
running a window independently (the classic conservative-lookahead
argument; see DESIGN.md, "Parallel simulation").

Envelope payloads must be picklable — they cross process boundaries in
the parallel backend, and the sequential backend round-trips them through
``pickle`` too, so both backends hand the receiver a *copy* and any
accidental sender/receiver aliasing diverges loudly in the oracle rather
than silently in the worker pool.
"""

from __future__ import annotations

import pickle
from typing import Dict, List, Optional

import numpy as np

from repro.net.frame import EthernetFrame, EthernetFabric
from repro.sim import Engine

__all__ = ["FrameEnvelope", "PartitionFabric"]


class FrameEnvelope:
    """One cross-partition frame, flattened to picklable fields.

    ``seq`` is the sender-partition-local emission index; the backend's
    merge sort key ``(send_cycle, src_partition, seq)`` makes the global
    injection order a pure function of simulated behaviour, independent
    of which partitions ran in which order (or in which process).
    """

    __slots__ = ("seq", "src_partition", "send_cycle", "src_mac", "dst_mac",
                 "nbytes", "payload", "ethertype", "corrupted")

    def __init__(self, seq: int, src_partition: int, send_cycle: int,
                 src_mac: str, dst_mac: str, nbytes: int, payload,
                 ethertype: int, corrupted: bool):
        self.seq = seq
        self.src_partition = src_partition
        self.send_cycle = send_cycle
        self.src_mac = src_mac
        self.dst_mac = dst_mac
        self.nbytes = nbytes
        self.payload = payload
        self.ethertype = ethertype
        self.corrupted = corrupted

    def sort_key(self):
        return (self.send_cycle, self.src_partition, self.seq)

    def to_frame(self) -> EthernetFrame:
        frame = EthernetFrame(src_mac=self.src_mac, dst_mac=self.dst_mac,
                              nbytes=self.nbytes, payload=self.payload,
                              ethertype=self.ethertype,
                              sent_at=self.send_cycle)
        frame.corrupted = self.corrupted
        return frame

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Envelope #{self.seq} p{self.src_partition} "
                f"{self.src_mac}->{self.dst_mac} @{self.send_cycle}>")


def pickle_roundtrip(envelope: FrameEnvelope) -> FrameEnvelope:
    """Copy an envelope the way a pipe would (the oracle's equalizer)."""
    return pickle.loads(pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL))


class PartitionFabric(EthernetFabric):
    """One partition's view of the shared Ethernet segment.

    ``partition_of`` maps MAC addresses to partition ids; unmapped MACs
    (clients, the front-end — attached at runtime) belong to the host
    partition 0.  Loss and corruption draw from the *sender* partition's
    rng stream, and a board fail-stop is propagated as a
    :meth:`mark_remote_detached` broadcast so senders drop frames to the
    dead MAC at transmit time, mirroring the shared fabric's
    unknown-destination drop.
    """

    def __init__(
        self,
        engine: Engine,
        partition_id: int,
        partition_of: Dict[str, int],
        latency_cycles: int = 500,
        loss_rate: float = 0.0,
        jumbo: bool = False,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(engine, latency_cycles=latency_cycles,
                         loss_rate=loss_rate, jumbo=jumbo, rng=rng)
        self.partition_id = partition_id
        self._partition_of = partition_of
        self._remote_detached: set = set()
        self._outbox: List[FrameEnvelope] = []
        self._out_seq = 0

    def partition_of(self, mac: str) -> int:
        return self._partition_of.get(mac, 0)

    def mark_remote_detached(self, mac: str) -> None:
        """A MAC somewhere on the segment is gone (board fail-stop)."""
        self._remote_detached.add(mac)

    def transmit(self, frame: EthernetFrame) -> None:
        dst_partition = self._partition_of.get(frame.dst_mac, 0)
        if dst_partition == self.partition_id:
            super().transmit(frame)
            return
        # cross-partition path: same checks, in the same order, as the
        # local path — then capture instead of schedule
        if frame.nbytes > self.max_frame:
            from repro.errors import ConfigError
            raise ConfigError(
                f"frame of {frame.nbytes}B exceeds fabric MTU {self.max_frame}"
            )
        frame.sent_at = self.engine.now
        if self._partitioned and (frame.src_mac in self._partitioned
                                  or frame.dst_mac in self._partitioned):
            self.frames_partitioned += 1
            return
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.frames_lost += 1
            return
        corrupted = False
        if self.corrupt_rate > 0.0 and self._rng.random() < self.corrupt_rate:
            self.frames_corrupted += 1
            corrupted = True
        if frame.dst_mac in self._remote_detached:
            self.frames_dropped += 1
            return
        self.bytes_carried += frame.nbytes
        self._out_seq += 1
        self._outbox.append(FrameEnvelope(
            seq=self._out_seq, src_partition=self.partition_id,
            send_cycle=self.engine.now, src_mac=frame.src_mac,
            dst_mac=frame.dst_mac, nbytes=frame.nbytes,
            payload=frame.payload, ethertype=frame.ethertype,
            corrupted=corrupted or frame.corrupted,
        ))

    def drain_outbox(self) -> List[FrameEnvelope]:
        """Hand the window's cross-partition frames to the backend."""
        out, self._outbox = self._outbox, []
        return out

    def inject(self, envelope: FrameEnvelope) -> None:
        """Schedule an inbound cross-partition frame for local delivery.

        Delivery lands at ``send_cycle + latency_cycles`` exactly; the
        conservative window bound guarantees that cycle has not run yet.
        The endpoint is resolved at *delivery* time — a board killed
        between send and arrival drops the frame then, which is when the
        shared fabric's in-flight frames would have hit a detached MAC's
        absence too.
        """
        frame = envelope.to_frame()
        delay = envelope.send_cycle + self.latency_cycles - self.engine.now

        def arrive(_arg) -> None:
            deliver = self._endpoints.get(frame.dst_mac)
            if deliver is None:
                self.frames_dropped += 1
                return
            self.frames_delivered += 1
            deliver(frame)

        self.engine.schedule(max(0, delay), arrive)
