"""Datacenter network substrate.

Ethernet frames and a switched fabric, the two deliberately-divergent MAC
IP-core models (10G vs. 100G — the Section 2 portability pain), a go-back-N
reliable transport, transport-agnostic RPC, and the host CPU / kernel stack
/ PCIe models the hosted baselines are built from.
"""

from repro.net.ethernet import HundredGigMac, TenGigMac
from repro.net.frame import (
    MAX_FRAME_BYTES,
    MIN_FRAME_BYTES,
    EthernetFabric,
    EthernetFrame,
)
from repro.net.hoststack import (
    BYPASS_RX_CYCLES,
    CONTEXT_SWITCH_CYCLES,
    KERNEL_RX_CYCLES,
    PCIE_DMA_LATENCY_CYCLES,
    SYSCALL_CYCLES,
    HostCpu,
    HostNetStack,
    PcieLink,
)
from repro.net.rpc import RpcCaller, RpcRequest, RpcResponder, RpcResponse
from repro.net.transport import TRANSPORT_HEADER_BYTES, Datagram, ReliableEndpoint

__all__ = [
    "EthernetFrame",
    "EthernetFabric",
    "MIN_FRAME_BYTES",
    "MAX_FRAME_BYTES",
    "TenGigMac",
    "HundredGigMac",
    "ReliableEndpoint",
    "Datagram",
    "TRANSPORT_HEADER_BYTES",
    "RpcCaller",
    "RpcResponder",
    "RpcRequest",
    "RpcResponse",
    "HostCpu",
    "HostNetStack",
    "PcieLink",
    "KERNEL_RX_CYCLES",
    "BYPASS_RX_CYCLES",
    "SYSCALL_CYCLES",
    "CONTEXT_SWITCH_CYCLES",
    "PCIE_DMA_LATENCY_CYCLES",
]
