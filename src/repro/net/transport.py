"""Reliable transport over Ethernet frames (go-back-N).

Section 2 lists "reliable network protocols" among the higher-level services
FPGA developers are forced to build themselves today.  Apiary's network
service runs this transport so accelerators get in-order, loss-recovering
message delivery without knowing about sequence numbers or retransmission.

The implementation is a windowed go-back-N with cumulative ACKs — the
protocol real FPGA network stacks (and Caribou's TCP subset) implement,
small enough for hardware yet enough to recover from datacenter loss.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.net.frame import EthernetFrame
from repro.sim import Channel, Engine, Event

__all__ = ["ReliableEndpoint", "Datagram", "TRANSPORT_HEADER_BYTES"]

TRANSPORT_HEADER_BYTES = 16


@dataclass
class Datagram:
    """What the transport carries: app payload plus protocol fields.

    Large application payloads are segmented into several datagrams:
    ``frag_rest`` counts the fragments that follow this one (0 = last or
    unfragmented); only the final fragment carries the payload object, the
    leading ones carry wire bytes only.
    """

    kind: str          # "data" | "ack"
    seq: int
    payload: Any = None
    payload_bytes: int = 0
    frag_rest: int = 0


class ReliableEndpoint:
    """One side of a reliable pairwise connection.

    Parameters
    ----------
    send_frame: callable delivering an :class:`EthernetFrame` toward the
        peer (typically a MAC adapter's tx path).
    local_mac / peer_mac: addressing for emitted frames.
    window: go-back-N sender window in datagrams.
    timeout: retransmission timeout in cycles.
    mtu: largest frame the underlying fabric accepts; payloads above
        ``mtu - header`` are segmented into multiple datagrams and
        reassembled in order at the receiver (go-back-N already gives us
        ordered, exactly-once fragments).

    Wire ``deliver_frame`` into the local MAC's rx callback.  Received
    payloads appear, in order and exactly once, on :attr:`inbox`.
    """

    def __init__(
        self,
        engine: Engine,
        send_frame: Callable[[EthernetFrame], None],
        local_mac: str,
        peer_mac: str,
        window: int = 8,
        timeout: int = 5000,
        mtu: int = 1518,
        name: str = "",
    ):
        if window < 1:
            raise ConfigError(f"window must be >= 1, got {window}")
        if timeout < 1:
            raise ConfigError(f"timeout must be >= 1, got {timeout}")
        if mtu <= TRANSPORT_HEADER_BYTES + 64:
            raise ConfigError(f"mtu {mtu} leaves no room for payload")
        self.engine = engine
        self.send_frame = send_frame
        self.local_mac = local_mac
        self.peer_mac = peer_mac
        self.window = window
        self.timeout = timeout
        self.max_segment = mtu - TRANSPORT_HEADER_BYTES
        self.name = name or f"rt.{local_mac}->{peer_mac}"

        # sender state
        self._next_seq = 0          # next new sequence number
        self._base = 0              # oldest unacked
        self._outstanding: Deque[Tuple[Datagram, Event]] = deque()
        self._send_queue: Channel = Channel(engine, capacity=None,
                                            name=f"{self.name}.sq")
        self._timer_generation = 0

        # receiver state
        self._expected_seq = 0
        self._frags_pending = 0  # fragments of the current payload seen
        self.inbox: Channel = Channel(engine, capacity=None,
                                      name=f"{self.name}.inbox")

        self.datagrams_sent = 0
        self.fragments_sent = 0
        self.retransmissions = 0
        self.acks_sent = 0
        self.duplicates_dropped = 0
        engine.process(self._sender(), name=f"{self.name}.send")

    # -- sending ------------------------------------------------------------

    def send(self, payload: Any, payload_bytes: int = 0) -> Event:
        """Queue a payload; the event succeeds when the peer has ACKed it."""
        acked = self.engine.event(f"{self.name}.acked")
        self._send_queue.try_put((payload, payload_bytes, acked))
        return acked

    def _sender(self):
        while True:
            payload, payload_bytes, acked = yield self._send_queue.get()
            segments = self._segment(payload, payload_bytes)
            for i, (seg_payload, seg_bytes) in enumerate(segments):
                while self._next_seq - self._base >= self.window:
                    # window full: wait for ACK progress
                    self._window_event = self.engine.event(f"{self.name}.win")
                    yield self._window_event
                dgram = Datagram(kind="data", seq=self._next_seq,
                                 payload=seg_payload,
                                 payload_bytes=seg_bytes,
                                 frag_rest=len(segments) - 1 - i)
                self._next_seq += 1
                # the caller's ack event rides on the *last* fragment
                fragment_ack = acked if i == len(segments) - 1 \
                    else self.engine.event(f"{self.name}.frag")
                self._outstanding.append((dgram, fragment_ack))
                self._emit(dgram)
                self.datagrams_sent += 1
                if len(segments) > 1:
                    self.fragments_sent += 1
                if len(self._outstanding) == 1:
                    self._arm_timer()

    def _segment(self, payload: Any, payload_bytes: int):
        """Split a payload into MTU-sized (payload, bytes) segments.

        Only the final segment carries the payload object; the leading
        ones exist to occupy wire bytes (our payloads are opaque objects,
        so bytes are accounted, not sliced).
        """
        if payload_bytes <= self.max_segment:
            return [(payload, payload_bytes)]
        segments = []
        remaining = payload_bytes
        while remaining > self.max_segment:
            segments.append((None, self.max_segment))
            remaining -= self.max_segment
        segments.append((payload, remaining))
        return segments

    def _emit(self, dgram: Datagram) -> None:
        frame = EthernetFrame(
            src_mac=self.local_mac,
            dst_mac=self.peer_mac,
            nbytes=TRANSPORT_HEADER_BYTES + dgram.payload_bytes,
            payload=dgram,
        )
        self.send_frame(frame)

    def _arm_timer(self) -> None:
        self._timer_generation += 1
        generation = self._timer_generation

        def fire(_arg) -> None:
            if generation != self._timer_generation:
                return  # timer superseded by ACK progress
            if not self._outstanding:
                return
            # go-back-N: retransmit the whole window
            for dgram, _acked in self._outstanding:
                self._emit(dgram)
                self.retransmissions += 1
            self._arm_timer()

        self.engine.schedule(self.timeout, fire)

    # -- receiving -----------------------------------------------------------

    def deliver_frame(self, frame: EthernetFrame) -> None:
        """Feed frames from the local MAC's rx path."""
        dgram = frame.payload
        if not isinstance(dgram, Datagram):
            return  # not ours
        if dgram.kind == "ack":
            self._handle_ack(dgram.seq)
        else:
            self._handle_data(dgram)

    def _handle_data(self, dgram: Datagram) -> None:
        if dgram.seq == self._expected_seq:
            self._expected_seq += 1
            # leading fragments only occupy the wire; the last one (or any
            # unfragmented datagram) delivers the application payload
            if dgram.frag_rest == 0:
                self.inbox.try_put(dgram.payload)
        elif dgram.seq < self._expected_seq:
            self.duplicates_dropped += 1
        # out-of-order future datagrams are dropped (go-back-N receiver)
        # cumulative ACK for everything below expected
        ack = Datagram(kind="ack", seq=self._expected_seq)
        frame = EthernetFrame(
            src_mac=self.local_mac, dst_mac=self.peer_mac,
            nbytes=TRANSPORT_HEADER_BYTES, payload=ack,
        )
        self.acks_sent += 1
        self.send_frame(frame)

    def _handle_ack(self, cumulative: int) -> None:
        progressed = False
        while self._outstanding and self._outstanding[0][0].seq < cumulative:
            _dgram, acked = self._outstanding.popleft()
            self._base += 1
            if not acked.triggered:
                acked.succeed(None)
            progressed = True
        if progressed:
            self._timer_generation += 1  # cancel the old timer
            if self._outstanding:
                self._arm_timer()
            window_event = getattr(self, "_window_event", None)
            if window_event is not None and not window_event.triggered:
                window_event.succeed(None)

    # -- inspection -----------------------------------------------------------

    @property
    def unacked(self) -> int:
        return len(self._outstanding)

    def recv(self) -> Event:
        """Event yielding the next in-order payload."""
        return self.inbox.get()
