"""Ethernet frames and the datacenter fabric connecting boards and hosts.

The fabric is the "datacenter network" a direct-attached FPGA plugs into:
endpoints are MAC addresses, frames propagate with a configurable latency,
and an optional loss process exercises the reliable transport.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.errors import ConfigError
from repro.sim import Engine

__all__ = ["EthernetFrame", "EthernetFabric", "MIN_FRAME_BYTES", "MAX_FRAME_BYTES"]

MIN_FRAME_BYTES = 64
MAX_FRAME_BYTES = 1518  # classic MTU; jumbo support is a fabric option


@dataclass
class EthernetFrame:
    """One L2 frame.  ``payload`` rides as an opaque object; ``nbytes`` is
    what the wire sees (header + payload, clamped to the minimum size)."""

    src_mac: str
    dst_mac: str
    nbytes: int
    payload: Any = None
    ethertype: int = 0x0800
    sent_at: int = -1
    #: set by fault injection; receiving MACs drop the frame as a CRC error
    corrupted: bool = False

    def __post_init__(self) -> None:
        if self.nbytes < MIN_FRAME_BYTES:
            self.nbytes = MIN_FRAME_BYTES


class EthernetFabric:
    """A switched datacenter segment with per-hop latency and optional loss.

    Endpoints register a MAC address and a delivery callback.  Frames to an
    unknown MAC are dropped (counted), matching real switch flood/drop
    behaviour closely enough for our experiments.
    """

    def __init__(
        self,
        engine: Engine,
        latency_cycles: int = 500,
        loss_rate: float = 0.0,
        jumbo: bool = False,
        rng: Optional[np.random.Generator] = None,
    ):
        if latency_cycles < 1:
            raise ConfigError(f"fabric latency must be >= 1, got {latency_cycles}")
        if not 0.0 <= loss_rate < 1.0:
            raise ConfigError(f"loss rate must be in [0,1), got {loss_rate}")
        if loss_rate > 0.0 and rng is None:
            raise ConfigError("loss injection needs an rng stream")
        self.engine = engine
        self.latency_cycles = latency_cycles
        self.loss_rate = loss_rate
        self.corrupt_rate = 0.0
        self.max_frame = 9000 if jumbo else MAX_FRAME_BYTES
        self._rng = rng
        self._endpoints: Dict[str, Callable[[EthernetFrame], None]] = {}
        self._partitioned: set = set()
        self.frames_delivered = 0
        self.frames_dropped = 0
        self.frames_lost = 0
        self.frames_corrupted = 0
        self.frames_partitioned = 0
        self.bytes_carried = 0

    def set_loss(self, rate: float,
                 rng: Optional[np.random.Generator] = None) -> None:
        """Change the loss process at runtime (fault-injection bursts)."""
        if not 0.0 <= rate < 1.0:
            raise ConfigError(f"loss rate must be in [0,1), got {rate}")
        if rng is not None:
            self._rng = rng
        if rate > 0.0 and self._rng is None:
            raise ConfigError("loss injection needs an rng stream")
        self.loss_rate = rate

    def set_corruption(self, rate: float,
                       rng: Optional[np.random.Generator] = None) -> None:
        """Corrupt a fraction of frames in flight; receivers see bad CRCs."""
        if not 0.0 <= rate < 1.0:
            raise ConfigError(f"corrupt rate must be in [0,1), got {rate}")
        if rng is not None:
            self._rng = rng
        if rate > 0.0 and self._rng is None:
            raise ConfigError("corruption injection needs an rng stream")
        self.corrupt_rate = rate

    def attach(self, mac: str, deliver: Callable[[EthernetFrame], None]) -> None:
        if mac in self._endpoints:
            raise ConfigError(f"MAC {mac!r} already attached")
        self._endpoints[mac] = deliver

    def detach(self, mac: str) -> None:
        self._endpoints.pop(mac, None)

    def partition(self, mac: str) -> None:
        """Cut ``mac`` off the segment *both ways* — frames it sends and
        frames sent to it vanish in flight.  Unlike :meth:`detach` the
        endpoint stays attached and keeps transmitting into the void,
        which is exactly the asymmetric-knowledge failure (the node
        believes it is fine) that epoch fencing exists to contain."""
        self._partitioned.add(mac)

    def heal(self, mac: str) -> None:
        """Reconnect a partitioned endpoint."""
        self._partitioned.discard(mac)

    def is_partitioned(self, mac: str) -> bool:
        return mac in self._partitioned

    def transmit(self, frame: EthernetFrame) -> None:
        """Inject a frame; delivery happens ``latency_cycles`` later."""
        if frame.nbytes > self.max_frame:
            raise ConfigError(
                f"frame of {frame.nbytes}B exceeds fabric MTU {self.max_frame}"
            )
        frame.sent_at = self.engine.now
        if self._partitioned and (frame.src_mac in self._partitioned
                                  or frame.dst_mac in self._partitioned):
            self.frames_partitioned += 1
            return
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.frames_lost += 1
            return
        if self.corrupt_rate > 0.0 and self._rng.random() < self.corrupt_rate:
            self.frames_corrupted += 1
            frame.corrupted = True
        deliver = self._endpoints.get(frame.dst_mac)
        if deliver is None:
            self.frames_dropped += 1
            return
        self.bytes_carried += frame.nbytes

        def arrive(_arg) -> None:
            self.frames_delivered += 1
            deliver(frame)

        self.engine.schedule(self.latency_cycles, arrive)
