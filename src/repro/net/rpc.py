"""Request/response matching over any reliable byte service.

Microservice traffic (the paper's target workload, Section 1) is RPC-shaped:
a caller issues a request and correlates the response by id, possibly with
many requests in flight.  :class:`RpcCaller` and :class:`RpcResponder` are
transport-agnostic: they work over the Apiary network service, the hosted
baseline's socket model, or a raw reliable endpoint — which is what lets
D1/D2 compare the same workload across stacks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.errors import ProtocolError
from repro.obs.span import SpanRecorder
from repro.sim import Channel, Engine, Event

__all__ = ["RpcRequest", "RpcResponse", "RpcCaller", "RpcResponder"]


@dataclass
class RpcRequest:
    rid: int
    method: str
    body: Any
    body_bytes: int = 0
    reply_to: str = ""
    # causal-trace context: stamped by a tracing RpcCaller, carried to the
    # responder so the handler span joins the caller's trace
    trace_id: int = 0
    span_id: int = 0
    # at-most-once identity: ``rid`` is fresh per transmission (it matches
    # responses to waiters), while ``(client, seq)`` names the *logical*
    # request — a retry after a timeout reuses the seq, so a server-side
    # dedup window can suppress the second application
    client: str = ""
    seq: int = 0


@dataclass
class RpcResponse:
    rid: int
    body: Any
    body_bytes: int = 0
    is_error: bool = False
    trace_id: int = 0


class RpcCaller:
    """Issues requests and matches responses by id.

    ``send`` is the injected transmit function ``(request) -> None``; feed
    responses back through :meth:`deliver_response`.
    """

    def __init__(self, engine: Engine, send: Callable[[RpcRequest], None],
                 reply_to: str = "", name: str = "rpc",
                 spans: Optional[SpanRecorder] = None,
                 client_id: str = ""):
        self.engine = engine
        self.send = send
        self.reply_to = reply_to
        self.name = name
        self.spans = spans if spans is not None else SpanRecorder()
        #: stable identity for the server-side dedup window — defaults to
        #: the reply address (unique per caller on any one transport)
        self.client_id = client_id or reply_to or name
        self._rid = itertools.count(1)
        self._seq = itertools.count(1)
        self._pending: Dict[int, Event] = {}
        self.requests_sent = 0
        self.responses_matched = 0
        self.orphan_responses = 0

    def next_seq(self) -> int:
        """Mint a logical-request id for an idempotent (retriable) call."""
        return next(self._seq)

    def call(self, method: str, body: Any = None, body_bytes: int = 0,
             seq: int = 0) -> Event:
        """Returns an event that succeeds with the :class:`RpcResponse`.

        ``seq`` (from :meth:`next_seq`) names the logical request for
        at-most-once servers; pass the *same* seq when retrying a call
        that timed out, and a fresh one for each new logical request.
        """
        rid = next(self._rid)
        done = self.engine.event(f"{self.name}.call#{rid}")
        self._pending[rid] = done
        self.requests_sent += 1
        request = RpcRequest(rid=rid, method=method, body=body,
                             body_bytes=body_bytes, reply_to=self.reply_to,
                             client=self.client_id if seq else "", seq=seq)
        spans = self.spans
        if spans.enabled:
            # root span covering the whole RPC, issue to response match
            request.trace_id = spans.new_trace()
            request.span_id = spans.open(
                request.trace_id, f"rpc:{method}", "rpc", self.name,
                self.engine.now, rid=rid, method=method)
            root_span = request.span_id

            def close_root(ev: Event) -> None:
                spans.close(root_span, self.engine.now, failed=ev.failed)

            done.add_callback(close_root)
        self.send(request)
        return done

    def deliver_response(self, response: RpcResponse) -> None:
        done = self._pending.pop(response.rid, None)
        if done is None:
            self.orphan_responses += 1
            return
        self.responses_matched += 1
        done.succeed(response)

    def fail_all_pending(self, error: Exception) -> int:
        """Abort in-flight calls (peer fail-stopped).  Returns count."""
        pending, self._pending = self._pending, {}
        for done in pending.values():
            if not done.triggered:
                done.fail(error)
        return len(pending)

    @property
    def in_flight(self) -> int:
        return len(self._pending)


class RpcResponder:
    """Dispatches requests to registered method handlers.

    Handlers are *process generators*: ``handler(request) -> generator``
    yielding sim commands and returning ``(body, body_bytes)``.  This lets a
    service model per-request compute/memory time naturally.
    """

    def __init__(self, engine: Engine,
                 send: Callable[[str, RpcResponse], None], name: str = "svc",
                 spans: Optional[SpanRecorder] = None):
        self.engine = engine
        self.send = send
        self.name = name
        self.spans = spans if spans is not None else SpanRecorder()
        self._handlers: Dict[str, Callable] = {}
        self.requests_handled = 0
        self.errors_returned = 0

    def register(self, method: str, handler: Callable) -> None:
        if method in self._handlers:
            raise ProtocolError(f"method {method!r} already registered")
        self._handlers[method] = handler

    def dispatch(self, request: RpcRequest) -> None:
        """Handle one request; spawns a process so handlers can take time."""
        handler = self._handlers.get(request.method)
        if handler is None:
            self.errors_returned += 1
            self.send(request.reply_to, RpcResponse(
                rid=request.rid, body=f"no such method {request.method!r}",
                is_error=True, trace_id=request.trace_id,
            ))
            return

        span = 0
        if self.spans.enabled and request.trace_id:
            span = self.spans.open(
                request.trace_id, f"rpc.handle:{request.method}", "rpc",
                self.name, self.engine.now, parent_id=request.span_id,
                rid=request.rid)

        def run():
            try:
                result = yield from handler(request)
            except Exception as err:
                self.errors_returned += 1
                if span:
                    self.spans.close(span, self.engine.now,
                                     error=type(err).__name__)
                self.send(request.reply_to, RpcResponse(
                    rid=request.rid, body=str(err), is_error=True,
                    trace_id=request.trace_id,
                ))
                return
            body, body_bytes = result if isinstance(result, tuple) else (result, 0)
            self.requests_handled += 1
            if span:
                self.spans.close(span, self.engine.now)
            self.send(request.reply_to, RpcResponse(
                rid=request.rid, body=body, body_bytes=body_bytes,
                trace_id=request.trace_id,
            ))

        self.engine.process(run(), name=f"{self.name}.{request.method}#{request.rid}")
