"""Ethernet MAC IP-core models — deliberately *non-uniform* interfaces.

Section 2: "the interface and reset process for Xilinx's 10 Gbit Ethernet
IP core and 100 Gbit Ethernet IP core are different, so additional
infrastructure is needed to support both."  We reproduce that pain
faithfully: :class:`TenGigMac` and :class:`HundredGigMac` expose different
method names, different reset/bring-up protocols, and different transmit
disciplines — so that the portability experiment (D10) can show the same
application code running unchanged over either, *only* because Apiary's
network service wraps them behind one API (:class:`MacAdapter` implementations
live with the service in :mod:`repro.kernel.services`).

Common behaviour both share: serialization delay at line rate, one frame on
the wire at a time, rx delivery callbacks.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.errors import ConfigError, ProtocolError
from repro.hw.clock import ClockDomain, FABRIC_CLOCK
from repro.net.frame import EthernetFabric, EthernetFrame
from repro.sim import Channel, Engine, Event

__all__ = ["TenGigMac", "HundredGigMac"]


class TenGigMac:
    """A 10G MAC in the style of the classic XAUI-era cores.

    Bring-up protocol (three distinct steps, order enforced):
      1. ``assert_reset()``
      2. ``release_reset()`` — then wait :attr:`RESET_CYCLES` cycles
      3. ``enable_tx_rx()``

    Transmit: ``send_frame(frame)`` returns an event that succeeds when the
    frame has fully serialized.  One frame at a time; callers queue.
    """

    GBPS = 10
    RESET_CYCLES = 1000

    def __init__(self, engine: Engine, fabric: EthernetFabric, mac_addr: str,
                 clock: ClockDomain = FABRIC_CLOCK):
        self.engine = engine
        self.fabric = fabric
        self.mac_addr = mac_addr
        self.clock = clock
        self._state = "powered"  # powered -> reset -> waiting -> ready
        self._reset_done_at = -1
        self._rx_callback: Optional[Callable[[EthernetFrame], None]] = None
        self._tx_queue: Channel = Channel(engine, capacity=None,
                                          name=f"{mac_addr}.tx")
        self.frames_sent = 0
        self.frames_received = 0
        self.crc_drops = 0
        engine.process(self._tx_loop(), name=f"mac10g.{mac_addr}")
        fabric.attach(mac_addr, self._rx)

    # -- the 10G-specific bring-up dance ------------------------------------

    def assert_reset(self) -> None:
        self._state = "reset"

    def release_reset(self) -> None:
        if self._state != "reset":
            raise ProtocolError("10G MAC: release_reset before assert_reset")
        self._state = "waiting"
        self._reset_done_at = self.engine.now + self.RESET_CYCLES

    def enable_tx_rx(self) -> None:
        if self._state != "waiting":
            raise ProtocolError("10G MAC: enable before reset release")
        if self.engine.now < self._reset_done_at:
            raise ProtocolError(
                f"10G MAC: enable at {self.engine.now}, reset settles at "
                f"{self._reset_done_at}"
            )
        self._state = "ready"

    @property
    def ready(self) -> bool:
        return self._state == "ready"

    # -- datapath ---------------------------------------------------------------

    def set_rx_callback(self, cb: Callable[[EthernetFrame], None]) -> None:
        self._rx_callback = cb

    def send_frame(self, frame: EthernetFrame) -> Event:
        if not self.ready:
            raise ProtocolError("10G MAC: send before bring-up complete")
        done = self.engine.event(f"mac10g.send")
        self._tx_queue.try_put((frame, done))
        return done

    def _tx_loop(self):
        while True:
            frame, done = yield self._tx_queue.get()
            yield self.clock.cycles_for_bytes(frame.nbytes, self.GBPS)
            self.fabric.transmit(frame)
            self.frames_sent += 1
            done.succeed(frame)

    def _rx(self, frame: EthernetFrame) -> None:
        if not self.ready or self._rx_callback is None:
            return  # frames before bring-up are dropped on the floor
        if frame.corrupted:
            self.crc_drops += 1  # FCS mismatch: the MAC discards silently
            return
        self.frames_received += 1
        self._rx_callback(frame)


class HundredGigMac:
    """A 100G MAC in the style of the CMAC hard blocks.

    Bring-up is a *register* protocol, nothing like the 10G one:
      1. ``write_reg("cfg_tx_enable", 1)`` and ``write_reg("cfg_rx_enable", 1)``
      2. poll ``read_reg("stat_aligned")`` until it reads 1 (alignment takes
         :attr:`ALIGN_CYCLES` cycles from the first enable write)

    Transmit: segmented interface — ``tx_push(frame)`` is non-blocking and
    returns ``False`` when the short on-core FIFO is full (caller retries),
    instead of the 10G core's blocking event.
    """

    GBPS = 100
    ALIGN_CYCLES = 2500
    TX_FIFO_FRAMES = 4

    def __init__(self, engine: Engine, fabric: EthernetFabric, mac_addr: str,
                 clock: ClockDomain = FABRIC_CLOCK):
        self.engine = engine
        self.fabric = fabric
        self.mac_addr = mac_addr
        self.clock = clock
        self._regs = {"cfg_tx_enable": 0, "cfg_rx_enable": 0, "stat_aligned": 0}
        self._align_at = -1
        self._rx_handler: Optional[Callable[[EthernetFrame], None]] = None
        self._fifo: Deque[EthernetFrame] = deque()
        self._tx_kick: Optional[Event] = None
        self.frames_sent = 0
        self.frames_received = 0
        self.crc_drops = 0
        engine.process(self._tx_loop(), name=f"mac100g.{mac_addr}")
        fabric.attach(mac_addr, self._rx)

    # -- the 100G-specific register protocol -------------------------------------

    def write_reg(self, name: str, value: int) -> None:
        if name not in self._regs or name.startswith("stat_"):
            raise ProtocolError(f"100G MAC: bad register write {name!r}")
        self._regs[name] = value
        if (
            self._regs["cfg_tx_enable"]
            and self._regs["cfg_rx_enable"]
            and self._align_at < 0
        ):
            self._align_at = self.engine.now + self.ALIGN_CYCLES

    def read_reg(self, name: str) -> int:
        if name == "stat_aligned":
            aligned = 0 <= self._align_at <= self.engine.now
            self._regs["stat_aligned"] = int(aligned)
        if name not in self._regs:
            raise ProtocolError(f"100G MAC: bad register read {name!r}")
        return self._regs[name]

    @property
    def ready(self) -> bool:
        return self.read_reg("stat_aligned") == 1

    # -- datapath -------------------------------------------------------------------

    def on_rx(self, handler: Callable[[EthernetFrame], None]) -> None:
        self._rx_handler = handler

    def tx_push(self, frame: EthernetFrame) -> bool:
        """Non-blocking enqueue; ``False`` = FIFO full, retry later."""
        if not self.ready:
            raise ProtocolError("100G MAC: tx before alignment")
        if len(self._fifo) >= self.TX_FIFO_FRAMES:
            return False
        self._fifo.append(frame)
        if self._tx_kick is not None and not self._tx_kick.triggered:
            self._tx_kick.succeed(None)
        return True

    @property
    def tx_fifo_space(self) -> int:
        return self.TX_FIFO_FRAMES - len(self._fifo)

    def _tx_loop(self):
        while True:
            while not self._fifo:
                self._tx_kick = self.engine.event("mac100g.kick")
                yield self._tx_kick
                self._tx_kick = None
            frame = self._fifo.popleft()
            yield self.clock.cycles_for_bytes(frame.nbytes, self.GBPS)
            self.fabric.transmit(frame)
            self.frames_sent += 1

    def _rx(self, frame: EthernetFrame) -> None:
        if not self.ready or self._rx_handler is None:
            return
        if frame.corrupted:
            self.crc_drops += 1
            return
        self.frames_received += 1
        self._rx_handler(frame)
