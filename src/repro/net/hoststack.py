"""Host CPU, kernel network stack and PCIe models for the hosted baselines.

The paper's argument for direct attachment (Section 1): CPU mediation adds
latency, latency *variability*, CPU cycles and energy.  To measure that
claim (D1-D3) rather than assume it, the Coyote/AmorphOS-style baselines
run their datapath through the models here:

* :class:`HostCpu` — a pool of cores with context-switch cost and a heavy-
  tailed scheduling-delay distribution (the source of hosted p99/p999).
* :class:`HostNetStack` — per-packet kernel or kernel-bypass processing.
* :class:`PcieLink` — DMA latency + bandwidth between host and FPGA.

All costs are in 250 MHz fabric cycles (4 ns each) and documented in ns so
they can be compared against published measurements.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigError
from repro.sim import Engine, Resource

__all__ = [
    "HostCpu",
    "HostNetStack",
    "PcieLink",
    "KERNEL_RX_CYCLES",
    "BYPASS_RX_CYCLES",
    "SYSCALL_CYCLES",
    "CONTEXT_SWITCH_CYCLES",
    "PCIE_DMA_LATENCY_CYCLES",
]

# ~2 us through the kernel stack per packet (socket rx path)
KERNEL_RX_CYCLES = 500
# ~300 ns with a userspace/bypass stack (DPDK-class)
BYPASS_RX_CYCLES = 75
# ~500 ns syscall + copy
SYSCALL_CYCLES = 125
# ~4 us to switch in a blocked thread
CONTEXT_SWITCH_CYCLES = 1000
# ~900 ns PCIe round-trip initiation latency
PCIE_DMA_LATENCY_CYCLES = 225
# PCIe gen3 x16 sustained ~12 GB/s = 48 B per 4 ns fabric cycle
PCIE_BYTES_PER_CYCLE = 48


class HostCpu:
    """A pool of host cores with scheduling-delay injection.

    ``run(cost)`` is a process generator: it waits for a core, charges an
    optional wakeup/context-switch delay drawn from a heavy-tailed
    distribution, executes for ``cost`` cycles, and releases the core.
    ``cycles_used`` accumulates the CPU time the hosted datapath burns —
    the D3 CPU-overhead metric.
    """

    def __init__(
        self,
        engine: Engine,
        cores: int = 4,
        rng: Optional[np.random.Generator] = None,
        jitter_prob: float = 0.15,
        jitter_scale: float = CONTEXT_SWITCH_CYCLES,
    ):
        if cores < 1:
            raise ConfigError(f"need >= 1 core, got {cores}")
        if not 0.0 <= jitter_prob <= 1.0:
            raise ConfigError(f"jitter probability must be in [0,1]")
        self.engine = engine
        self.cores = Resource(engine, slots=cores, name="host.cores")
        self.rng = rng
        self.jitter_prob = jitter_prob
        self.jitter_scale = jitter_scale
        self.cycles_used = 0
        self.wakeups = 0
        self.jitter_events = 0

    def _wakeup_delay(self) -> int:
        """Context-switch cost, occasionally inflated by scheduling delay.

        The tail is exponential on top of the fixed switch cost — the
        standard first-order model of run-queue interference.
        """
        self.wakeups += 1
        delay = CONTEXT_SWITCH_CYCLES
        if self.rng is not None and self.rng.random() < self.jitter_prob:
            self.jitter_events += 1
            delay += int(self.rng.exponential(self.jitter_scale))
        return delay

    def run(self, cost_cycles: int, wakeup: bool = True):
        """Process generator: execute ``cost_cycles`` of host work."""
        if cost_cycles < 0:
            raise ConfigError(f"negative cost {cost_cycles}")
        grant = yield self.cores.acquire()
        try:
            if wakeup:
                delay = self._wakeup_delay()
                self.cycles_used += delay
                yield delay
            self.cycles_used += cost_cycles
            yield cost_cycles
        finally:
            self.cores.release(grant)

    def utilization(self, since: int = 0) -> float:
        return self.cores.utilization(since)


class HostNetStack:
    """Per-packet host network processing cost.

    ``receive_cost`` / ``send_cost`` return cycle counts the caller charges
    through :class:`HostCpu`; bypass mode models a DPDK-class stack.
    """

    def __init__(self, kernel_bypass: bool = False):
        self.kernel_bypass = kernel_bypass
        self.packets_processed = 0

    def receive_cost(self, nbytes: int) -> int:
        self.packets_processed += 1
        base = BYPASS_RX_CYCLES if self.kernel_bypass else KERNEL_RX_CYCLES
        # copies scale with size: ~1 cycle per 64B line per copy
        copies = 1 if self.kernel_bypass else 2
        return base + copies * (nbytes // 64)

    def send_cost(self, nbytes: int) -> int:
        self.packets_processed += 1
        base = BYPASS_RX_CYCLES // 2 if self.kernel_bypass else SYSCALL_CYCLES
        copies = 1 if self.kernel_bypass else 2
        return base + copies * (nbytes // 64)


class PcieLink:
    """Host <-> FPGA DMA path: initiation latency plus bandwidth sharing."""

    def __init__(self, engine: Engine, gen: int = 3,
                 latency_cycles: int = PCIE_DMA_LATENCY_CYCLES):
        if gen < 1:
            raise ConfigError(f"PCIe gen must be >= 1, got {gen}")
        self.engine = engine
        # bandwidth doubles per generation relative to gen3 baseline
        self.bytes_per_cycle = PCIE_BYTES_PER_CYCLE * (2 ** (gen - 3))
        self.latency_cycles = latency_cycles
        self.bus = Resource(engine, slots=1, name="pcie.bus")
        self.bytes_moved = 0
        self.transfers = 0

    def dma(self, nbytes: int):
        """Process generator: one DMA transfer of ``nbytes``."""
        if nbytes < 1:
            raise ConfigError(f"DMA needs >= 1 byte, got {nbytes}")
        yield self.latency_cycles
        grant = yield self.bus.acquire()
        try:
            transfer = max(1, int(nbytes / self.bytes_per_cycle))
            yield transfer
        finally:
            self.bus.release(grant)
        self.bytes_moved += nbytes
        self.transfers += 1
