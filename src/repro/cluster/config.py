"""Typed configuration for a whole cluster (the scale-out analogue of
:class:`~repro.kernel.config.SystemConfig`).

PR after PR the :class:`~repro.cluster.cluster.Cluster` surface grew one
toggle method at a time — ``enable_recovery``, ``enable_tracing``,
``enable_flight_recorders``, ``enable_slo``, ``start_replication``,
``enable_bitstream_cache`` — each with its own kwargs, each needing to be
called in the right order relative to ``seal()``.  This module folds all
of them into one frozen, validated object::

    cluster = Cluster(config=ClusterConfig(
        n_fpgas=4,
        recovery=RecoveryConfig(enabled=True),
        cache=CacheConfig(enabled=True),
        obs=ObsConfig(tracing=True),
    ))

The flat spelling (``Cluster(n_fpgas=4, config=SystemConfig(...))``
followed by toggle calls) keeps working unchanged and builds
byte-identical clusters — pinned by test — exactly like the
``SystemConfig.from_flat`` bridge one layer down.  :meth:`from_flat`
is that bridge for this layer.

Sub-config defaults mirror the toggle methods' keyword defaults, so
``XConfig(enabled=True)`` with nothing else behaves like calling
``enable_x()`` bare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.kernel.config import SystemConfig

__all__ = [
    "RecoveryConfig",
    "ObsConfig",
    "SchedConfig",
    "ReplicationConfig",
    "CacheConfig",
    "ClusterConfig",
]


@dataclass(frozen=True)
class RecoveryConfig:
    """Per-board intra-FPGA recovery watchdogs (``enable_recovery``)."""

    enabled: bool = False
    #: tile indices reserved as spares on every board
    spares: Tuple[int, ...] = ()
    heartbeat_interval: int = 5_000
    prefer_spare: bool = False
    max_restarts: int = 8

    def __post_init__(self):
        if self.heartbeat_interval < 1:
            raise ConfigError("heartbeat_interval must be >= 1")
        if self.max_restarts < 0:
            raise ConfigError("max_restarts must be >= 0")

    def kwargs(self) -> Dict[str, Any]:
        return {
            "spares": list(self.spares) or None,
            "heartbeat_interval": self.heartbeat_interval,
            "prefer_spare": self.prefer_spare,
            "max_restarts": self.max_restarts,
        }


@dataclass(frozen=True)
class ObsConfig:
    """Observability plane toggles (tracing / flight recorders / SLO)."""

    tracing: bool = False
    flight_recorders: bool = False
    flight_capacity: int = 256
    flight_dump_dir: Optional[str] = None
    slo: bool = False
    slo_bucket_cycles: int = 10_000
    #: SLOTarget objects registered at build (slo implied when non-empty)
    slo_targets: Tuple[Any, ...] = ()

    def __post_init__(self):
        if self.flight_capacity < 1:
            raise ConfigError("flight_capacity must be >= 1")
        if self.slo_bucket_cycles < 1:
            raise ConfigError("slo_bucket_cycles must be >= 1")

    @property
    def slo_enabled(self) -> bool:
        return self.slo or bool(self.slo_targets)


@dataclass(frozen=True)
class SchedConfig:
    """Autoscaler defaults for :meth:`Cluster.start_autoscaler`.

    The autoscaler still starts explicitly (it needs a service name and a
    running front-end); this object supplies the controller parameters,
    with explicit ``start_autoscaler`` kwargs winning over it.
    ``prefetch=None`` means "follow the cache config" — prefetch turns on
    automatically when the cluster runs a bitstream cache with
    ``prefetch=True``.
    """

    min_replicas: int = 1
    max_replicas: int = 4
    interval: int = 20_000
    high_queue: float = 8.0
    low_queue: float = 1.0
    target_queue: float = 3.0
    down_after: int = 3
    drain_window: int = 5_000
    util_low: Optional[float] = None
    prefetch: Optional[bool] = None

    def __post_init__(self):
        if self.min_replicas < 1 or self.max_replicas < self.min_replicas:
            raise ConfigError(
                f"need 1 <= min <= max, got "
                f"{self.min_replicas}..{self.max_replicas}")
        if self.low_queue >= self.high_queue:
            raise ConfigError("low_queue must sit below high_queue")
        if self.interval < 1:
            raise ConfigError("interval must be >= 1")

    def autoscaler_kwargs(self) -> Dict[str, Any]:
        """The Autoscaler ctor kwargs this config supplies (prefetch is
        resolved by the cluster against its cache config)."""
        return {
            "min_replicas": self.min_replicas,
            "max_replicas": self.max_replicas,
            "interval": self.interval,
            "high_queue": self.high_queue,
            "low_queue": self.low_queue,
            "target_queue": self.target_queue,
            "down_after": self.down_after,
            "drain_window": self.drain_window,
            "util_low": self.util_low,
        }


@dataclass(frozen=True)
class ReplicationConfig:
    """Chain-replication control plane (``start_replication``)."""

    enabled: bool = False
    mac: str = "replic"
    rpc_timeout: int = 25_000
    snapshot_timeout: int = 120_000
    probe_interval: int = 20_000
    miss_limit: int = 3
    repair_settle: int = 2_000
    reconfig_timeout: int = 1_200_000
    window: int = 16
    transport_timeout: int = 50_000

    def __post_init__(self):
        if self.probe_interval < 1:
            raise ConfigError("probe_interval must be >= 1")
        if self.miss_limit < 1:
            raise ConfigError("miss_limit must be >= 1")
        if self.window < 1:
            raise ConfigError("window must be >= 1")

    def kwargs(self) -> Dict[str, Any]:
        return {
            "mac": self.mac,
            "rpc_timeout": self.rpc_timeout,
            "snapshot_timeout": self.snapshot_timeout,
            "probe_interval": self.probe_interval,
            "miss_limit": self.miss_limit,
            "repair_settle": self.repair_settle,
            "reconfig_timeout": self.reconfig_timeout,
            "window": self.window,
            "transport_timeout": self.transport_timeout,
        }


@dataclass(frozen=True)
class CacheConfig:
    """Per-board bitstream compile-and-cache pipeline
    (``enable_bitstream_cache``)."""

    enabled: bool = False
    #: LRU budget per board, in logic cells of cached artifacts
    capacity_cells: int = 256_000
    #: synthesis cost knob (scales the whole cost vector proportionally)
    synth_cycles_per_cell: int = 64
    #: let the autoscaler compile-ahead on scale-up early warning
    prefetch: bool = True
    #: let the directory prefer boards whose cache is already warm
    warm_placement: bool = True

    def __post_init__(self):
        if self.capacity_cells < 1:
            raise ConfigError("capacity_cells must be >= 1")
        if self.synth_cycles_per_cell < 1:
            raise ConfigError("synth_cycles_per_cell must be >= 1")


@dataclass(frozen=True)
class ClusterConfig:
    """Everything that shapes one cluster, in one validated object."""

    n_fpgas: int = 2
    #: per-board base config; each board derives its variant (unique MAC,
    #: shifted seed) exactly as the flat path does
    system: SystemConfig = field(default_factory=SystemConfig.figure1)
    fabric_latency: int = 500
    backend: str = "shared"
    swallow_orphan_errors: bool = False
    recovery: RecoveryConfig = field(default_factory=RecoveryConfig)
    obs: ObsConfig = field(default_factory=ObsConfig)
    sched: SchedConfig = field(default_factory=SchedConfig)
    replication: ReplicationConfig = field(
        default_factory=ReplicationConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)

    def __post_init__(self):
        if self.n_fpgas < 1:
            raise ConfigError(f"need >= 1 FPGA, got {self.n_fpgas}")
        if self.fabric_latency < 0:
            raise ConfigError("fabric_latency must be >= 0")

    @staticmethod
    def from_flat(**kwargs) -> "ClusterConfig":
        """Fold the legacy flat Cluster kwargs into a ClusterConfig.

        Accepts exactly the old ``Cluster(...)`` construction keywords
        (``n_fpgas``, ``config`` — the per-board SystemConfig —,
        ``fabric_latency``, ``backend``, ``swallow_orphan_errors``); all
        toggles stay at their off defaults, matching a flat-built cluster
        before any ``enable_*`` call.
        """
        system = kwargs.get("config")
        return ClusterConfig(
            n_fpgas=kwargs.get("n_fpgas", 2),
            system=system if system is not None
            else SystemConfig.figure1(),
            fabric_latency=kwargs.get("fabric_latency", 500),
            backend=kwargs.get("backend", "shared"),
            swallow_orphan_errors=kwargs.get("swallow_orphan_errors",
                                             False),
        )
