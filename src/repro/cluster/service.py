"""ClusterPortedService: the backend face of a cluster service instance.

Extends :class:`~repro.apps.service.PortedService` with the three things
the front-end speaks beyond the plain ``("req", rid, body)`` convention:

* **batches** — ``("batch", bid, [(rid, body), ...])`` envelopes, served
  in order and answered with one ``("batchresp", bid, [...])`` frame, so
  a busy backend pays one transport round-trip per batch instead of one
  per request;
* **health probes** — ``{"op": "ping"}`` bodies answered without handler
  cost, the front-end's liveness signal when no data traffic flows;
* **cross-FPGA trace propagation** — a ``"_trace"`` key in the body
  carries ``(trace_id, parent_span)`` across the fabric hop, so the
  backend's service span nests under the front-end's forward span and
  :class:`~repro.obs.index.SpanIndex` reconstructs the cross-FPGA
  critical path.

Unlike the base class (which spawns every request concurrently), requests
are served **sequentially** through one worker loop: an instance models a
fixed piece of fabric with a real service rate, which is what makes the
S1 scaling benchmark measure capacity rather than simulator concurrency.
Reply transmission is spawned off the worker loop, so waiting for
transport ACKs never serializes with compute.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.apps.service import Handler, PortedService

__all__ = ["ClusterPortedService"]


class ClusterPortedService(PortedService):
    """Serves singles, batches, and pings on one port — sequentially."""

    def __init__(self, name: str, port: int, handler: Handler):
        super().__init__(name, port, handler)
        self.batches_served = 0
        self.pings_answered = 0

    def main(self, shell):
        yield shell.net_bind(self.port)
        while True:
            msg = yield shell.recv()
            if msg.op != "net.rx":
                continue
            envelope = msg.payload
            data = envelope.get("data")
            if not (isinstance(data, tuple) and len(data) == 3):
                continue
            tag, rid, body = data
            if tag == "req":
                out_body, out_bytes = yield from self._handle(shell, body)
                shell.spawn(f"re{rid}", self._send(
                    shell, envelope["src_mac"],
                    ("resp", rid, out_body), out_bytes))
            elif tag == "batch":
                yield from self._serve_batch(shell, envelope, rid, body)

    def _serve_batch(self, shell, envelope, bid, entries):
        self.batches_served += 1
        out = []
        total_bytes = 0
        for rid, body in entries:
            out_body, out_bytes = yield from self._handle(shell, body)
            out.append((rid, out_body, out_bytes))
            total_bytes += out_bytes
        shell.spawn(f"bre{bid}", self._send(
            shell, envelope["src_mac"], ("batchresp", bid, out),
            max(64, total_bytes + 16 * len(out))))

    def _handle(self, shell, body: Any) -> Tuple[Any, int]:
        """Process generator: one request body -> (response body, bytes)."""
        if isinstance(body, dict) and body.get("op") == "ping":
            self.pings_answered += 1
            return {"pong": True, "service": self.name}, 16
        span = 0
        spans = shell.spans
        if spans.enabled and isinstance(body, dict):
            trace = body.get("_trace")
            if trace:
                span = spans.open(trace[0], f"backend:{self.name}",
                                  "cluster", shell.name, shell.engine.now,
                                  parent_id=trace[1], port=self.port)
        cycles, out_body, out_bytes = self.handler(body)
        yield from self._work(cycles)
        self.requests_served += 1
        if span:
            spans.close(span, shell.engine.now)
        return out_body, out_bytes

    def _send(self, shell, dst_mac: str, data: Any, nbytes: int):
        yield shell.net_send(dst_mac, self.port, data=data, nbytes=nbytes)
