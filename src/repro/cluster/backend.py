"""Cluster execution backends: shared-engine, windowed, and parallel PDES.

``Cluster`` historically composed every board onto one shared
single-threaded :class:`~repro.sim.Engine`, so simulated throughput per
wall-second *fell* as boards were added.  This module factors that
assumption behind a :class:`ClusterBackend` and adds two windowed
backends built on conservative-lookahead parallel discrete-event
simulation (PDES):

* :class:`SharedEngineBackend` (``backend="shared"``, the default) — one
  engine, one fabric, one span recorder.  Byte-identical to the
  pre-backend code; every existing test and benchmark pins it.
* :class:`SequentialBackend` (``backend="sequential"``) — each board and
  the host side (front-end + clients) is a *partition* with a private
  engine, fabric view, and span recorder.  Partitions advance in lockstep
  windows of ``fabric_latency`` cycles, executed one after another in
  this process.  This is the determinism oracle: it performs exactly the
  window/barrier/exchange protocol of the parallel backend (including
  pickling every cross-partition envelope) with zero concurrency.
* :class:`ParallelBackend` (``backend="parallel"``) — the same protocol,
  with board windows executed by forked worker processes.  Byte-identical
  to ``sequential`` on the same seed, by construction: both run the same
  orchestration code, differing only in *where* a board window executes.

Soundness of the window (the classic null-message-free lookahead
argument): the Ethernet fabric is the only cross-partition channel and
delivers no earlier than ``fabric_latency`` cycles after send.  With
window length ``w <= fabric_latency``, a frame sent at any cycle ``c``
inside the window ``[t, t+w)`` arrives at ``c + latency >= t + w`` — at
or after the next barrier — so no partition can receive anything from the
current window while running it, and each window is embarrassingly
parallel.  Envelopes collected at the barrier are merge-sorted by
``(send_cycle, src_partition, seq)`` and injected at their exact arrival
cycle, making the global schedule a pure function of simulated behaviour.

Lifecycle of the windowed backends::

    cluster = Cluster(n_fpgas=4, backend="parallel")
    cluster.boot()
    cluster.deploy_stateless(...)     # pre-seal: runs in-process, serially
    cluster.run_until(started)
    cluster.start_frontend(...)
    cluster.seal()                    # parallel: fork one worker per board
    cluster.run(until=...)            # windows now execute in parallel
    cluster.shutdown()                # reap workers

Everything before ``seal()`` executes identically (serially, in-process)
in both windowed backends — deploys walk board management planes
directly, which is only legal while the boards live in this process.
After ``seal()`` boards are reachable only through the window protocol
and explicit control messages (kill/partition/heal/collect), so dynamic
placement (autoscaler, chain replication) stays on the shared backend.
"""

from __future__ import annotations

import multiprocessing
import traceback
from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigError, SimulationError, TileFault
from repro.kernel import message as _message
from repro.kernel.system import ApiarySystem
from repro.net.envelope import FrameEnvelope, PartitionFabric, pickle_roundtrip
from repro.net.frame import EthernetFabric
from repro.obs.span import SpanRecorder
from repro.sim import Engine, StatsRegistry

__all__ = ["ClusterBackend", "SharedEngineBackend", "SequentialBackend",
           "ParallelBackend", "BACKENDS"]

#: span/trace id stride between partitions (board i allocates from
#: (i + 1) * SPAN_ID_STRIDE); far above any realistic per-run span count
SPAN_ID_STRIDE = 1_000_000_000


def _board_kill(system: ApiarySystem, fabric: EthernetFabric) -> None:
    """Fail-stop one board in place (runs wherever the board lives).

    Mirrors the original shared-engine ``kill_fpga`` body: stop the
    recovery watchdog (no board left to restart tiles on), detach the MAC
    (frames to it drop), report a fault on every live tile.  Fault hooks
    run synchronously inside ``report`` — on windowed backends that is
    the per-board recorder hook, whose entries the backend forwards to
    the front-end at the barrier.
    """
    mac = system.config.net.mac_addr
    if system.recovery is not None:
        system.recovery.stop()
    fabric.detach(mac)
    # the black-box moment: freeze the flight ring with the pre-kill
    # history before the per-tile fault storm overwrites it.  The explicit
    # dump carries the "board-kill" reason; the per-fault hook dumps that
    # follow in the same cycle coalesce into it (see FlightRecorder.dump).
    if system.flight is not None:
        system.flight.record_event(system.engine.now, "kill", mac,
                                   "board lost power")
        system.flight.dump(system.engine.now, f"board-kill:{mac}")
    err = TileFault(f"board {mac} lost power")
    err.occurred_at = system.engine.now
    for tile in system.tiles:
        if not tile.failed:
            system.fault_manager.report(tile, "main", err)


def _worker_main(conn, system: ApiarySystem, fabric: PartitionFabric,
                 fault_log: List[Tuple[int, int, str, str]]) -> None:
    """Board worker loop (child side of a fork; one per board).

    Commands arrive strictly ordered on the pipe; the worker is a pure
    server — it never initiates traffic — so the parent's send/recv
    pairing fully determines execution.
    """
    engine = system.engine
    while True:
        msg = conn.recv()
        tag = msg[0]
        if tag == "win":
            _end, inbound = msg[1], msg[2]
            try:
                for env in inbound:
                    fabric.inject(env)
                engine.run_window(_end)
            except BaseException:
                conn.send(("err", traceback.format_exc()))
                continue
            faults = list(fault_log)
            del fault_log[:]
            conn.send(("ok", fabric.drain_outbox(), faults,
                       engine.pending_events()))
        elif tag == "op":
            name, args = msg[1], msg[2]
            try:
                if name == "kill":
                    _board_kill(system, fabric)
                    faults = list(fault_log)
                    del fault_log[:]
                    conn.send(("ok", faults))
                elif name == "mark_detached":
                    fabric.mark_remote_detached(args[0])
                    conn.send(("ok", None))
                elif name == "partition":
                    fabric.partition(args[0])
                    conn.send(("ok", None))
                elif name == "heal":
                    fabric.heal(args[0])
                    conn.send(("ok", None))
                elif name == "collect":
                    conn.send(("ok", (system.spans, system.stats,
                                      system.flight)))
                else:
                    conn.send(("err", f"unknown board op {name!r}"))
            except BaseException:
                conn.send(("err", traceback.format_exc()))
        elif tag == "stop":
            conn.send(("ok", None))
            return


class ClusterBackend:
    """How a :class:`~repro.cluster.cluster.Cluster` executes its boards."""

    name = "abstract"
    #: whether board placement may change after construction-time deploys
    #: (autoscaler scale-up, chain repair); only the shared backend walks
    #: board management planes at arbitrary simulated times
    supports_dynamic_placement = False

    def __init__(self) -> None:
        self.cluster = None
        self.sealed = False
        self._fault_listeners: List[Any] = []

    # -- construction ------------------------------------------------------

    def build(self, cluster, n_fpgas: int, engine: Optional[Engine],
              fabric: Optional[EthernetFabric], fabric_latency: int,
              swallow_orphan_errors: bool) -> None:
        """Create engines/fabrics/systems and attach them to ``cluster``."""
        raise NotImplementedError

    @staticmethod
    def _board_configs(base, n_fpgas: int):
        return [
            replace(base, seed=base.seed + i,
                    net=replace(base.net, mac_addr=f"fpga{i}"))
            for i in range(n_fpgas)
        ]

    # -- execution ---------------------------------------------------------

    def boot(self, extra_cycles: int) -> None:
        raise NotImplementedError

    def run(self, until: Optional[int]) -> None:
        raise NotImplementedError

    def run_until(self, events, limit: int = 10_000_000) -> None:
        raise NotImplementedError

    def seal(self) -> None:
        """Freeze placement; the parallel backend forks its workers here."""
        self.sealed = True

    def shutdown(self) -> None:
        """Release any execution resources (idempotent)."""

    def check_placement_open(self, what: str) -> None:
        if self.sealed:
            raise ConfigError(
                f"{what} after seal(): the {self.name!r} backend freezes "
                "placement when workers take over the boards"
            )

    # -- fault injection ---------------------------------------------------

    def kill_board(self, index: int) -> None:
        raise NotImplementedError

    def partition_board(self, index: int) -> None:
        raise NotImplementedError

    def heal_board(self, index: int) -> None:
        raise NotImplementedError

    # -- front-end wiring --------------------------------------------------

    def register_fault_listener(self, listener) -> None:
        """``listener.on_board_fault(fpga, node, action, endpoint)`` will be
        invoked for every board fault — synchronously on the shared
        backend, at the enclosing window's barrier on windowed backends."""
        self._fault_listeners.append(listener)

    # -- observability -----------------------------------------------------

    def enable_tracing(self) -> None:
        raise NotImplementedError

    def enable_flight_recorders(self, capacity: int = 256,
                                dump_dir: Optional[str] = None) -> None:
        """Attach one always-on flight recorder per board.

        On windowed backends this must happen before ``seal()`` so forked
        workers inherit the recorders and their fault hooks.
        """
        raise NotImplementedError

    def merged_spans(self) -> SpanRecorder:
        raise NotImplementedError

    def merged_stats(self) -> StatsRegistry:
        raise NotImplementedError

    def stats_snapshots(self) -> Dict[str, Dict]:
        raise NotImplementedError

    def flight_reports(self) -> Dict[str, Optional[Dict]]:
        """Per-board flight snapshot + retained dumps (None if disabled).

        On the parallel backend this collects each board's recorder from
        its worker, so the returned state is byte-identical to what the
        sequential oracle accumulates in-process.
        """
        raise NotImplementedError


class SharedEngineBackend(ClusterBackend):
    """Today's semantics: every board on one engine, one fabric, one
    recorder.  The default, pinned byte-for-byte by the existing suite."""

    name = "shared"
    supports_dynamic_placement = True

    def build(self, cluster, n_fpgas, engine, fabric, fabric_latency,
              swallow_orphan_errors):
        self.cluster = cluster
        cluster.engine = engine if engine is not None else Engine(
            swallow_orphan_errors=swallow_orphan_errors)
        cluster.fabric = fabric if fabric is not None else EthernetFabric(
            cluster.engine, latency_cycles=fabric_latency)
        cluster.spans = SpanRecorder()
        cluster.systems = [
            ApiarySystem(engine=cluster.engine, fabric=cluster.fabric,
                         config=cfg, spans=cluster.spans)
            for cfg in self._board_configs(cluster.base_config, n_fpgas)
        ]

    def boot(self, extra_cycles):
        for system in self.cluster.systems:
            system.boot(extra_cycles=extra_cycles)

    def run(self, until):
        self.cluster.engine.run(until=until)

    def run_until(self, events, limit=10_000_000):
        engine = self.cluster.engine
        engine.run_until_done(engine.all_of(list(events)), limit=limit)

    def kill_board(self, index):
        _board_kill(self.cluster.systems[index], self.cluster.fabric)

    def partition_board(self, index):
        mac = self.cluster.systems[index].config.net.mac_addr
        self.cluster.fabric.partition(mac)

    def heal_board(self, index):
        mac = self.cluster.systems[index].config.net.mac_addr
        self.cluster.fabric.heal(mac)

    def register_fault_listener(self, listener):
        super().register_fault_listener(listener)
        for fpga, system in enumerate(self.cluster.systems):
            def hook(tile, record, fpga=fpga, listener=listener):
                listener.on_board_fault(fpga, tile.node, record.action,
                                        tile.endpoint)
            system.fault_manager.on_fault.append(hook)

    def enable_tracing(self):
        self.cluster.spans.enable()

    def enable_flight_recorders(self, capacity=256, dump_dir=None):
        # all boards share one span recorder here, so each board's ring
        # sees cluster-wide spans (events stay board-local); the windowed
        # backends give each ring a board-local span view
        for i, system in enumerate(self.cluster.systems):
            system.enable_flight_recorder(board=f"fpga{i}",
                                          capacity=capacity,
                                          dump_dir=dump_dir)

    def merged_spans(self):
        return self.cluster.spans

    def merged_stats(self):
        merged = StatsRegistry()
        for system in self.cluster.systems:
            merged.merge(system.stats)
        return merged

    def stats_snapshots(self):
        return {f"fpga{i}": system.stats.snapshot()
                for i, system in enumerate(self.cluster.systems)}

    def flight_reports(self):
        return {f"fpga{i}": (system.flight.report()
                             if system.flight is not None else None)
                for i, system in enumerate(self.cluster.systems)}


class SequentialBackend(ClusterBackend):
    """Windowed execution, one partition after another, in this process.

    The determinism oracle for :class:`ParallelBackend`: identical
    partitioning, identical window/barrier/exchange schedule, identical
    envelope pickling — no concurrency.  Partition 0 is the host side
    (front-end, clients, anything attaching an unmapped MAC); partition
    ``i + 1`` is board ``i``.
    """

    name = "sequential"

    def __init__(self):
        super().__init__()
        self.window = 0
        self.partition_of: Dict[str, int] = {}
        self.board_engines: List[Engine] = []
        self.board_fabrics: List[PartitionFabric] = []
        self.board_spans: List[SpanRecorder] = []
        #: per-board fault entries (node, action, endpoint) captured by the
        #: recorder hook, forwarded to fault listeners at the barrier
        self.fault_logs: List[List[Tuple[int, str, str]]] = []
        #: per-board copies of the process-global message-id allocator,
        #: captured at seal() — the oracle's emulation of fork inheriting
        #: the counter into each worker (see :meth:`_enter_board`)
        self._mid_states: List[int] = []
        self._host_mid = 0

    # -- construction ------------------------------------------------------

    def build(self, cluster, n_fpgas, engine, fabric, fabric_latency,
              swallow_orphan_errors):
        if engine is not None or fabric is not None:
            raise ConfigError(
                f"the {self.name!r} backend builds one engine and fabric "
                "view per partition; passing engine=/fabric= is a shared-"
                "backend idiom"
            )
        self.cluster = cluster
        self.window = fabric_latency
        # a windowed cluster is a self-contained simulation: restart the
        # process-global mid stream so a run's ids depend only on its own
        # behaviour, not on whatever ran earlier in this process — the
        # identity contract compares mids across two runs
        _message._mid_counter.next_value = 1
        configs = self._board_configs(cluster.base_config, n_fpgas)
        self.partition_of = {cfg.net.mac_addr: i + 1
                             for i, cfg in enumerate(configs)}
        cluster.engine = Engine(swallow_orphan_errors=swallow_orphan_errors)
        cluster.fabric = PartitionFabric(
            cluster.engine, partition_id=0, partition_of=self.partition_of,
            latency_cycles=fabric_latency)
        cluster.spans = SpanRecorder(id_base=0)
        cluster.systems = []
        for i, cfg in enumerate(configs):
            board_engine = Engine(swallow_orphan_errors=swallow_orphan_errors)
            board_fabric = PartitionFabric(
                board_engine, partition_id=i + 1,
                partition_of=self.partition_of,
                latency_cycles=fabric_latency)
            spans = SpanRecorder(id_base=(i + 1) * SPAN_ID_STRIDE)
            system = ApiarySystem(engine=board_engine, fabric=board_fabric,
                                  config=cfg, spans=spans)
            self.board_engines.append(board_engine)
            self.board_fabrics.append(board_fabric)
            self.board_spans.append(spans)
            cluster.systems.append(system)
            log: List[Tuple[int, str, str]] = []
            self.fault_logs.append(log)

            def recorder(tile, record, log=log):
                log.append((tile.node, record.action, tile.endpoint))

            system.fault_manager.on_fault.append(recorder)

    # -- the window protocol ----------------------------------------------

    @property
    def clock(self) -> int:
        """The barrier cycle every partition is parked on."""
        return self.cluster.engine.now

    def seal(self):
        if self.sealed:
            return
        super().seal()
        # each forked worker inherits a copy of the process-global
        # message-id allocator; the oracle captures the same copies here
        # and swaps them in around each board's post-seal execution, so
        # both backends allocate identical mids everywhere
        self._mid_states = [_message._mid_counter.next_value
                            for _ in self.cluster.systems]

    def _enter_board(self, index: int) -> None:
        """Install board ``index``'s private mid-allocator copy (sealed)."""
        self._host_mid = _message._mid_counter.next_value
        _message._mid_counter.next_value = self._mid_states[index]

    def _exit_board(self, index: int) -> None:
        self._mid_states[index] = _message._mid_counter.next_value
        _message._mid_counter.next_value = self._host_mid

    def _run_board_windows(self, end: int) -> Tuple[
            List[List[FrameEnvelope]], List[List[Tuple[int, str, str]]],
            List[int]]:
        """Run every board's window to ``end``; return per-board
        (outbox, fault entries, pending event count)."""
        outboxes, faults, pending = [], [], []
        for i, engine in enumerate(self.board_engines):
            if self.sealed:
                self._enter_board(i)
            try:
                engine.run_window(end)
            finally:
                if self.sealed:
                    self._exit_board(i)
            outboxes.append(self.board_fabrics[i].drain_outbox())
            entries = list(self.fault_logs[i])
            del self.fault_logs[i][:]
            faults.append(entries)
            pending.append(engine.pending_events())
        return outboxes, faults, pending

    def _deliver(self, env: FrameEnvelope) -> None:
        """Route one envelope to its destination partition (in-process)."""
        pid = self.partition_of.get(env.dst_mac, 0)
        if pid == 0:
            self.cluster.fabric.inject(env)
        else:
            self.board_fabrics[pid - 1].inject(env)

    def _step(self, end: int) -> int:
        """One window for every partition + the barrier exchange.

        Returns the number of pending events across all partitions (the
        quiescence signal for :meth:`run_until`).
        """
        host = self.cluster.engine
        outboxes, faults, board_pending = self._run_board_windows(end)
        host.run_window(end)
        envelopes = self.cluster.fabric.drain_outbox()
        for box in outboxes:
            envelopes.extend(box)
        envelopes.sort(key=FrameEnvelope.sort_key)
        injected = 0
        for env in envelopes:
            # the oracle copies payloads exactly as the worker pipe would,
            # so sender/receiver aliasing can never diverge between modes
            self._deliver(pickle_roundtrip(env))
            injected += 1
        self._apply_faults(faults)
        return host.pending_events() + sum(board_pending) + injected

    def _apply_faults(self, faults: List[List[Tuple[int, str, str]]]) -> None:
        for fpga, entries in enumerate(faults):
            for node, action, endpoint in entries:
                for listener in self._fault_listeners:
                    listener.on_board_fault(fpga, node, action, endpoint)

    # -- execution ---------------------------------------------------------

    def boot(self, extra_cycles):
        # booting is board-local (no cross-board frames before a front-end
        # exists), so each board boots on its own clock; partitions then
        # align on the latest boot-completion cycle and the first barrier
        # exchange drains whatever a boot did emit
        for system in self.cluster.systems:
            system.boot(extra_cycles=extra_cycles)
        target = max([self.cluster.engine.now]
                     + [e.now for e in self.board_engines])
        self._step(target)

    def run(self, until):
        if until is None:
            raise ConfigError(
                f"the {self.name!r} backend needs a bounded run(until=...): "
                "partitions advance in windows, not to queue exhaustion"
            )
        now = self.clock
        while now < until:
            end = min(now + self.window, until)
            self._step(end)
            now = end

    def run_until(self, events, limit=10_000_000):
        events = list(events)
        deadline = self.clock + limit

        def settled() -> bool:
            for ev in events:
                if ev.failed:
                    raise ev.value
                if not ev.triggered:
                    return False
            return True

        while not settled():
            if self.clock >= deadline:
                raise SimulationError(
                    f"events not triggered within {limit} cycles"
                )
            pending = self._step(self.clock + self.window)
            if pending == 0 and not settled():
                raise SimulationError(
                    f"all partitions drained at cycle {self.clock} before "
                    "the awaited events triggered"
                )

    # -- fault injection ---------------------------------------------------

    def kill_board(self, index):
        mac = self.cluster.systems[index].config.net.mac_addr
        self.cluster.fabric.mark_remote_detached(mac)
        for i, fabric in enumerate(self.board_fabrics):
            if i != index:
                fabric.mark_remote_detached(mac)
        if self.sealed:
            self._enter_board(index)
        try:
            _board_kill(self.cluster.systems[index],
                        self.board_fabrics[index])
        finally:
            if self.sealed:
                self._exit_board(index)
        entries = list(self.fault_logs[index])
        del self.fault_logs[index][:]
        for node, action, endpoint in entries:
            for listener in self._fault_listeners:
                listener.on_board_fault(index, node, action, endpoint)

    def partition_board(self, index):
        mac = self.cluster.systems[index].config.net.mac_addr
        self.cluster.fabric.partition(mac)
        for fabric in self.board_fabrics:
            fabric.partition(mac)

    def heal_board(self, index):
        mac = self.cluster.systems[index].config.net.mac_addr
        self.cluster.fabric.heal(mac)
        for fabric in self.board_fabrics:
            fabric.heal(mac)

    # -- observability -----------------------------------------------------

    def enable_tracing(self):
        self.cluster.spans.enable()
        for spans in self.board_spans:
            spans.enable()

    def enable_flight_recorders(self, capacity=256, dump_dir=None):
        # must run pre-seal: the parallel backend's workers fork with the
        # recorders (and their fault hooks) already attached, which is how
        # worker-side rings stay byte-identical to the oracle's
        self.check_placement_open("enable_flight_recorders()")
        for i, system in enumerate(self.cluster.systems):
            system.enable_flight_recorder(board=f"fpga{i}",
                                          capacity=capacity,
                                          dump_dir=dump_dir)

    def _collect_board(self, index) -> Tuple[SpanRecorder, StatsRegistry,
                                             Optional[Any]]:
        system = self.cluster.systems[index]
        return system.spans, system.stats, system.flight

    def merged_spans(self):
        merged = SpanRecorder(id_base=0)
        merged.absorb(self.cluster.spans)
        for i in range(len(self.cluster.systems)):
            merged.absorb(self._collect_board(i)[0])
        return merged

    def merged_stats(self):
        merged = StatsRegistry()
        for i in range(len(self.cluster.systems)):
            merged.merge(self._collect_board(i)[1])
        return merged

    def stats_snapshots(self):
        return {f"fpga{i}": self._collect_board(i)[1].snapshot()
                for i in range(len(self.cluster.systems))}

    def flight_reports(self):
        out = {}
        for i in range(len(self.cluster.systems)):
            flight = self._collect_board(i)[2]
            out[f"fpga{i}"] = flight.report() if flight is not None else None
        return out


class ParallelBackend(SequentialBackend):
    """Windowed execution with board windows on forked worker processes.

    Until :meth:`seal` this *is* the sequential backend — construction,
    boot, and deploys run serially in-process, so the forked children
    inherit exactly the state the oracle would have at the same point.
    After ``seal()`` each board lives in its worker: the parent sends
    ``("win", end, inbound)`` to every child, runs its own host window
    while the children run theirs, then collects outboxes and fault logs
    and performs the same barrier exchange as the oracle.  Every value
    crossing the pipe is pickled, which is why the oracle pickles too.
    """

    name = "parallel"

    def __init__(self):
        super().__init__()
        self._workers: List[multiprocessing.Process] = []
        self._pipes: List[Any] = []
        #: envelopes routed to each board at the last barrier, shipped
        #: with that board's next window command
        self._inbound: List[List[FrameEnvelope]] = []
        self._board_pending: List[int] = []

    # -- lifecycle ---------------------------------------------------------

    def seal(self):
        if self.sealed:
            return
        super().seal()
        ctx = multiprocessing.get_context("fork")
        for i, system in enumerate(self.cluster.systems):
            parent_conn, child_conn = ctx.Pipe()
            worker = ctx.Process(
                target=_worker_main,
                args=(child_conn, system, self.board_fabrics[i],
                      self.fault_logs[i]),
                name=f"pdes-board{i}", daemon=True)
            worker.start()
            child_conn.close()
            self._workers.append(worker)
            self._pipes.append(parent_conn)
            self._inbound.append([])
            self._board_pending.append(1)

    def shutdown(self):
        for conn in self._pipes:
            try:
                conn.send(("stop",))
                conn.recv()
            except (OSError, EOFError):
                pass
            conn.close()
        for worker in self._workers:
            worker.join(timeout=10)
            if worker.is_alive():  # pragma: no cover - hung worker
                worker.terminate()
                worker.join(timeout=10)
        self._workers = []
        self._pipes = []

    def _board_op(self, index: int, name: str, *args):
        conn = self._pipes[index]
        conn.send(("op", name, args))
        reply = conn.recv()
        if reply[0] != "ok":
            raise SimulationError(
                f"board {index} op {name!r} failed:\n{reply[1]}")
        return reply[1]

    # -- the window protocol (worker edition) ------------------------------

    def _run_board_windows(self, end):
        if not self.sealed:
            return super()._run_board_windows(end)
        for i, conn in enumerate(self._pipes):
            conn.send(("win", end, self._inbound[i]))
            self._inbound[i] = []
        # note: the host window in _step() runs between these sends and
        # the receives below, overlapping with every board worker
        return None  # outboxes arrive in _finish_board_windows

    def _finish_board_windows(self):
        outboxes, faults = [], []
        for i, conn in enumerate(self._pipes):
            reply = conn.recv()
            if reply[0] != "ok":
                raise SimulationError(
                    f"board {i} window failed:\n{reply[1]}")
            outboxes.append(reply[1])
            faults.append(reply[2])
            self._board_pending[i] = reply[3]
        return outboxes, faults, list(self._board_pending)

    def _deliver(self, env):
        if not self.sealed:
            super()._deliver(env)
            return
        pid = self.partition_of.get(env.dst_mac, 0)
        if pid == 0:
            self.cluster.fabric.inject(env)
        else:
            self._inbound[pid - 1].append(env)

    def _step(self, end):
        if not self.sealed:
            return super()._step(end)
        host = self.cluster.engine
        self._run_board_windows(end)
        host.run_window(end)
        outboxes, faults, board_pending = self._finish_board_windows()
        envelopes = self.cluster.fabric.drain_outbox()
        for box in outboxes:
            envelopes.extend(box)
        envelopes.sort(key=FrameEnvelope.sort_key)
        injected = 0
        for env in envelopes:
            # envelopes to boards cross the worker pipe (pickled there);
            # host-bound ones came through it already — no copy needed here
            self._deliver(env)
            injected += 1
        self._apply_faults(faults)
        return host.pending_events() + sum(board_pending) + injected

    # -- fault injection ---------------------------------------------------

    def kill_board(self, index):
        if not self.sealed:
            super().kill_board(index)
            return
        mac = self.cluster.systems[index].config.net.mac_addr
        self.cluster.fabric.mark_remote_detached(mac)
        for i in range(len(self.cluster.systems)):
            if i != index:
                self._board_op(i, "mark_detached", mac)
        entries = self._board_op(index, "kill")
        for node, action, endpoint in entries:
            for listener in self._fault_listeners:
                listener.on_board_fault(index, node, action, endpoint)

    def partition_board(self, index):
        if not self.sealed:
            super().partition_board(index)
            return
        mac = self.cluster.systems[index].config.net.mac_addr
        self.cluster.fabric.partition(mac)
        for i in range(len(self.cluster.systems)):
            self._board_op(i, "partition", mac)

    def heal_board(self, index):
        if not self.sealed:
            super().heal_board(index)
            return
        mac = self.cluster.systems[index].config.net.mac_addr
        self.cluster.fabric.heal(mac)
        for i in range(len(self.cluster.systems)):
            self._board_op(i, "heal", mac)

    # -- observability -----------------------------------------------------

    def _collect_board(self, index):
        if not self.sealed:
            return super()._collect_board(index)
        return self._board_op(index, "collect")


BACKENDS = {
    "shared": SharedEngineBackend,
    "sequential": SequentialBackend,
    "parallel": ParallelBackend,
}
