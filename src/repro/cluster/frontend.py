"""FrontEnd: the cluster's health-aware load balancer.

A host on the datacenter fabric (same transport as every client) that
sits between clients and the FPGAs:

* **routing** — resolves ``{"service", "key", "body"}`` requests through
  the :class:`~repro.cluster.directory.ServiceDirectory`: keyed requests
  go to their shard's primary, stateless requests to the least-loaded
  healthy instance;
* **health** — three signals per instance: data-path responses (any
  response marks an instance healthy, so a loaded-but-alive backend is
  never declared dead), periodic pings, and the kernel's own fault
  reports (``fault_manager.on_fault`` fires the cycle a tile drains, so
  a dead FPGA's queued requests fail over immediately instead of waiting
  out a timeout);
* **failover** — each request runs under a :class:`~repro.policy.RetryPolicy`;
  a failed attempt rotates to the next replica (sharded) or another
  instance (stateless).  Writes to sharded services fan out to every
  healthy replica so the failover target has the data (handlers must be
  idempotent — retried writes may be re-applied);
* **admission control** — a bounded in-flight budget; excess requests
  get an immediate ``{"rejected": True}`` reply instead of queueing
  without bound (the difference between a p99 and a death spiral);
* **batching** — per-instance queues flushed as ``("batch", ...)``
  envelopes, amortizing transport round-trips under load.

Tracing: when the cluster's shared recorder is enabled, each request
opens ``frontend:<service>`` with one ``forward:<instance>`` child per
attempt; the trace context rides in the body so the backend span nests
under the forward span — :class:`~repro.obs.index.SpanIndex` then shows
the cross-FPGA critical path end to end.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cluster.directory import ServiceInstance, ServiceSpec
from repro.errors import ConfigError, ServiceUnavailable
from repro.net.transport import ReliableEndpoint
from repro.policy import RetryPolicy
from repro.sim import Event, StatsRegistry

__all__ = ["FRONTEND_PORT", "BackendHealth", "FrontEnd"]

#: the well-known port clients address their requests to
FRONTEND_PORT = 7000


class BackendHealth:
    """Liveness ledger for one service instance."""

    #: consecutive unanswered probes/attempts before an instance is dead
    DEAD_AFTER = 3

    __slots__ = ("misses", "outstanding", "served", "probes_sent",
                 "probe_misses")

    def __init__(self) -> None:
        self.misses = 0
        self.outstanding = 0  # requests dispatched, not yet resolved
        self.served = 0
        self.probes_sent = 0
        self.probe_misses = 0

    @property
    def healthy(self) -> bool:
        return self.misses < self.DEAD_AFTER

    def mark_ok(self) -> None:
        """Any response — data or pong — proves the instance alive."""
        self.misses = 0

    def mark_miss(self) -> None:
        self.misses += 1

    def mark_dead(self) -> None:
        """Kernel-reported fault: skip the probation period."""
        self.misses = max(self.misses, self.DEAD_AFTER)


class FrontEnd:
    """Health-aware, admission-controlled entry point for the cluster."""

    def __init__(
        self,
        cluster,
        mac: str = "frontend",
        max_pending: int = 64,
        batch_size: int = 4,
        batch_window: int = 200,
        retry: Optional[RetryPolicy] = None,
        heartbeat_interval: int = 10_000,
        window: int = 16,
        transport_timeout: int = 50_000,
        max_backlog: int = 256,
        queue_deadline: int = 120_000,
    ):
        if max_pending < 1:
            raise ConfigError(f"max_pending must be >= 1, got {max_pending}")
        if batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {batch_size}")
        if max_backlog < 0:
            raise ConfigError(f"max_backlog must be >= 0, got {max_backlog}")
        if queue_deadline < 0:
            raise ConfigError(
                f"queue_deadline must be >= 0, got {queue_deadline}")
        self.cluster = cluster
        self.engine = cluster.engine
        self.fabric = cluster.fabric
        self.directory = cluster.directory
        self.spans = cluster.spans
        self.mac = mac
        self.max_pending = max_pending
        self.batch_size = batch_size
        self.batch_window = batch_window
        self.retry = retry if retry is not None else RetryPolicy(
            deadline=300_000, attempt_timeout=30_000,
            backoff_base=200, backoff_cap=2_000,
        )
        self.heartbeat_interval = heartbeat_interval
        self.window = window
        self.transport_timeout = transport_timeout
        self.max_backlog = max_backlog
        self.queue_deadline = queue_deadline

        self._peers: Dict[str, ReliableEndpoint] = {}
        self._irid = itertools.count(1)
        #: internal request id -> (waiter event, instance iid, kind);
        #: kind is "req" (a client waits), "repl" (fire-and-forget write
        #: replication — nobody waits, but losses must be *counted*), or
        #: "probe" (health ping)
        self._awaiting: Dict[int, Tuple[Event, str, str]] = {}
        self._queues: Dict[str, List[Tuple[int, Any, int]]] = {}
        self._kicks: Dict[str, Event] = {}
        self._probe_stuck: Dict[str, int] = {}
        self._bid = itertools.count(1)
        self.health: Dict[str, BackendHealth] = {}
        self._tracked: Dict[str, ServiceInstance] = {}
        self._retired: set = set()

        #: the open-loop submit queue: (submitted_at, srid, req, on_done)
        self._backlog: List[
            Tuple[int, int, Dict[str, Any], Optional[Callable]]] = []
        self._srid = itertools.count(1)
        self._dispatch_kick: Optional[Event] = None
        self._dispatcher_started = False

        self.inflight = 0
        self.requests_admitted = 0
        self.requests_rejected = 0
        self.requests_failed = 0
        self.requests_dropped = 0
        self.responses_sent = 0
        self.batches_sent = 0
        self.failovers = 0
        self.chain_nacks = 0
        #: operator-facing counters (``frontend.writes_unreplicated`` is
        #: the satellite-1 divergence signal for the legacy fan-out path)
        self.stats = StatsRegistry()

        self.fabric.attach(mac, self._rx_frame)
        cluster.register_fault_listener(self)
        self.track_all()

    # -- instance tracking -------------------------------------------------

    def track_all(self) -> None:
        """Start health tracking for every deployed instance.

        Called at construction and by the cluster after each deploy;
        idempotent per instance.
        """
        for spec in self.directory.services.values():
            for inst in spec.instances:
                self._track(inst)

    def _track(self, inst: ServiceInstance) -> None:
        iid = inst.iid
        if iid in self._tracked or iid in self._retired:
            return
        self._tracked[iid] = inst
        self.health[iid] = BackendHealth()
        self._queues[iid] = []
        self._probe_stuck[iid] = 0
        self.engine.process(self._flusher(inst), name=f"fe.flush.{iid}")
        self.engine.process(self._prober(inst), name=f"fe.probe.{iid}")

    def retire(self, iid: str) -> None:
        """Stop tracking an instance removed by a scale-down.

        The directory already stopped routing to it; this ends its
        flusher/prober processes and fails anything still awaiting it so
        the retry policy re-routes to surviving replicas.  Permanent:
        replica ids are never reused, so a retired iid never comes back.
        """
        if iid not in self._tracked:
            return
        self._retired.add(iid)
        self._tracked.pop(iid, None)
        self._fail_instance(iid, "retired by scale-down")
        # wake a flusher parked on its kick event so it can exit
        kick = self._kicks.pop(iid, None)
        if kick is not None and not kick.triggered:
            kick.succeed(None)

    def on_board_fault(self, fpga: int, node: int, action: str,
                       endpoint: str) -> None:
        """Board fault stream, delivered through the cluster backend —
        synchronously on the shared engine, at the window barrier on
        windowed backends (at most one window late, never early)."""
        if action != "drained":
            return  # a killed context leaves the instance serving
        for inst in self.directory.instances_on(fpga, node=node):
            self._fail_instance(inst.iid, f"{endpoint} drained")

    def _fail_instance(self, iid: str, why: str) -> None:
        """Kernel said this instance is gone: fail its pending work now."""
        health = self.health.get(iid)
        if health is None:
            return
        health.mark_dead()
        queue = self._queues.get(iid, [])
        dead = [irid for irid, _body, _nb in queue]
        del queue[:]
        dead += [irid for irid, (_ev, owner, _kind) in self._awaiting.items()
                 if owner == iid]
        for irid in dead:
            entry = self._awaiting.pop(irid, None)
            if entry is not None:
                waiter, _owner, kind = entry
                health.outstanding -= 1
                if kind == "repl":
                    # nobody waits on a fire-and-forget replica write, but
                    # a silent drop here is exactly how replicas diverge —
                    # count it where operators can see it
                    self.stats.counter("frontend.writes_unreplicated").inc()
                    continue
                if not waiter.triggered:
                    waiter.fail(ServiceUnavailable(f"{iid} down: {why}"))

    # -- fabric plumbing ---------------------------------------------------

    def _peer(self, peer_mac: str) -> ReliableEndpoint:
        if peer_mac not in self._peers:
            endpoint = ReliableEndpoint(
                self.engine, self.fabric.transmit, self.mac, peer_mac,
                window=self.window, timeout=self.transport_timeout,
                name=f"fe.{self.mac}->{peer_mac}",
            )
            self._peers[peer_mac] = endpoint
            self.engine.process(self._pump(endpoint, peer_mac),
                                name=f"fe.pump.{peer_mac}")
        return self._peers[peer_mac]

    def _rx_frame(self, frame) -> None:
        if getattr(frame, "corrupted", False):
            return
        self._peer(frame.src_mac).deliver_frame(frame)

    def _pump(self, endpoint: ReliableEndpoint, peer_mac: str):
        """One pump per peer: client requests in, backend responses in."""
        while True:
            payload = yield endpoint.recv()
            data = payload.get("data")
            if not (isinstance(data, tuple) and len(data) == 3):
                continue
            tag, rid, body = data
            if tag == "req":
                self._admit(peer_mac, rid, body)
            elif tag == "resp":
                self._complete(rid, body)
            elif tag == "batchresp":
                for irid, out_body, _nbytes in body:
                    self._complete(irid, out_body)

    def _complete(self, irid: int, body: Any) -> None:
        entry = self._awaiting.pop(irid, None)
        if entry is None:
            return  # late response to an abandoned attempt
        waiter, iid, _kind = entry
        health = self.health[iid]
        health.mark_ok()
        health.outstanding -= 1
        health.served += 1
        if isinstance(body, dict) and "_chain_nack" in body:
            # the member answered but refused (not head/tail, fenced,
            # unconfigured): the node is *healthy*, the routing is stale —
            # fail the attempt so the retry re-resolves the chain
            self.chain_nacks += 1
            self.stats.counter("frontend.chain_nacks").inc()
            if not waiter.triggered:
                waiter.fail(ServiceUnavailable(
                    f"{iid} refused: {body['_chain_nack']}"))
            return
        if not waiter.triggered:
            waiter.succeed(body)

    def _abandon(self, irid: int) -> None:
        """Per-attempt timeout fired: stop waiting, count the miss."""
        entry = self._awaiting.pop(irid, None)
        if entry is None:
            return
        _waiter, iid, _kind = entry
        health = self.health[iid]
        health.outstanding -= 1
        health.mark_miss()

    # -- open-loop submission ---------------------------------------------

    def submit(self, service: str, body: Any = None, key: Any = None,
               write: bool = False, tenant: Optional[str] = None,
               nbytes: int = 64,
               on_done: Optional[Callable[[Dict[str, Any]], None]] = None,
               ) -> bool:
        """Fire-and-record entry point for open-loop traffic generators.

        Never blocks and never back-pressures the caller: the request
        lands in a bounded backlog and a dispatcher process admits from
        it as in-flight slots free up.  Three distinct outcomes:

        * **served** — dispatched within ``queue_deadline``; ``on_done``
          gets the same reply body a fabric client would (``{"ok": ...}``,
          retries and failover included);
        * **rejected** — admitted from the backlog only after waiting
          longer than ``queue_deadline`` (sustained overload): counted as
          an admission reject, ``on_done`` gets ``{"rejected": True}``;
        * **dropped** — the backlog itself is full (extreme overload):
          counted separately in ``requests_dropped``, ``on_done`` is not
          invoked, and ``submit`` returns ``False``.

        Every outcome feeds the SLO engine — an open-loop run's goodput
        is scored against *offered* load, not just admitted load.
        """
        req = {"service": service, "body": body, "key": key,
               "write": write, "tenant": tenant, "nbytes": nbytes}
        if len(self._backlog) >= self.max_backlog:
            self.requests_dropped += 1
            self.stats.counter("frontend.requests_dropped").inc()
            self._observe_slo(service, None, False, tenant)
            return False
        self._backlog.append((self.engine.now, next(self._srid), req,
                              on_done))
        if not self._dispatcher_started:
            self._dispatcher_started = True
            self.engine.process(self._dispatcher(), name="fe.dispatch")
        self._wake_dispatcher()
        return True

    def backlog_depth(self, service: Optional[str] = None) -> int:
        """Queued-but-not-admitted submissions (optionally per service) —
        the open-loop pressure signal the autoscaler folds into its queue
        depth."""
        if service is None:
            return len(self._backlog)
        return sum(1 for _at, _srid, req, _cb in self._backlog
                   if req["service"] == service)

    def _wake_dispatcher(self) -> None:
        kick = self._dispatch_kick
        if kick is not None and not kick.triggered:
            self._dispatch_kick = None
            kick.succeed(None)

    def _dispatcher(self):
        """Admit from the backlog whenever in-flight slots free up."""
        while True:
            while self._backlog and self.inflight < self.max_pending:
                submitted_at, srid, req, on_done = self._backlog.pop(0)
                reply = self._submit_reply(on_done)
                waited = self.engine.now - submitted_at
                if waited > self.queue_deadline:
                    # sustained overload: the slot freed up too late —
                    # this is an admission reject, not a silent drop
                    self.requests_rejected += 1
                    self.stats.counter(
                        "frontend.queue_deadline_rejects").inc()
                    self._observe_slo(req["service"], None, False,
                                      req.get("tenant"))
                    reply({"ok": False, "rejected": True})
                    continue
                self.inflight += 1
                self.requests_admitted += 1
                self.engine.process(
                    self._serve(reply, "submit", srid, req,
                                t0=submitted_at),
                    name=f"fe.submit.{srid}")
            kick = self.engine.event("fe.dispatch.kick")
            self._dispatch_kick = kick
            yield kick

    def _submit_reply(self, on_done: Optional[Callable]) -> Callable:
        """A reply path that lands in a callback instead of on the wire."""
        def reply(body: Any) -> None:
            if on_done is not None:
                on_done(body)
        return reply

    # -- admission + serving ----------------------------------------------

    def _admit(self, client_mac: str, rid: int, req: Any) -> None:
        if not isinstance(req, dict) or "service" not in req:
            self._reply(client_mac, rid, {"ok": False,
                                          "error": "malformed request"})
            return
        if self.inflight >= self.max_pending:
            self.requests_rejected += 1
            self._observe_slo(req["service"], None, False,
                              req.get("tenant"))
            self._reply(client_mac, rid,
                        {"ok": False, "rejected": True})
            return
        self.inflight += 1
        self.requests_admitted += 1
        reply = self._fabric_reply(client_mac, rid)
        self.engine.process(self._serve(reply, client_mac, rid, req),
                            name=f"fe.serve.{rid}")

    def _fabric_reply(self, client_mac: str, rid: int) -> Callable:
        def reply(body: Any) -> None:
            self._reply(client_mac, rid, body)
        return reply

    def _observe_slo(self, service: str, latency: Optional[int],
                     ok: bool, tenant: Optional[str]) -> None:
        """Feed the cluster's SLO engine, if one is enabled.

        A rejected admission observes ``latency=None`` — it consumed no
        budgeted latency but it *is* a bad event against goodput.
        """
        slo = getattr(self.cluster, "slo", None)
        if slo is not None:
            slo.observe(service, latency, ok, self.engine.now,
                        tenant=tenant)

    def _serve(self, reply: Callable, origin: str, rid: int,
               req: Dict[str, Any], t0: Optional[int] = None):
        service = req["service"]
        tenant = req.get("tenant")
        # submit-path requests measure latency from submission, so time
        # spent queued in the backlog counts against the SLO — open-loop
        # honesty: the client "sent" the request at its arrival time
        start = t0 if t0 is not None else self.engine.now
        try:
            spec = self.directory.spec(service)
        except ConfigError as err:
            self.inflight -= 1
            self.requests_failed += 1
            self._observe_slo(service, None, False, tenant)
            self._wake_dispatcher()
            reply({"ok": False, "error": str(err)})
            return
        key = req.get("key")
        is_write = bool(req.get("write"))
        if spec.chained and key is None:
            self.inflight -= 1
            self.requests_failed += 1
            self._observe_slo(service, None, False, tenant)
            self._wake_dispatcher()
            reply({
                "ok": False,
                "error": f"chained service {service!r} requires a key"})
            return
        candidates = spec.candidates(key)
        trace_id = root = 0
        if self.spans.enabled:
            trace_id = self.spans.new_trace()
            root = self.spans.open(trace_id, f"frontend:{service}",
                                   "cluster", self.mac, self.engine.now,
                                   service=service, key=key)
        rotation = itertools.count()
        # a stable write id across this request's *frontend* attempts:
        # the chain head dedups retried writes it already logged
        wid = f"{origin}#{rid}" if (spec.chained and is_write) else None

        def attempt(attempt_timeout: int) -> Event:
            if spec.chained:
                inst = self._pick_chain(spec, key, is_write)
            else:
                inst = self._pick(spec, candidates, next(rotation))
            return self._dispatch(spec, inst, req, attempt_timeout,
                                  trace_id, root, wid=wid)

        def count_failover() -> None:
            self.failovers += 1

        done = self.retry.drive(
            self.engine, attempt, retry_on=(ServiceUnavailable,),
            describe=f"route {service!r}", on_retry=count_failover,
            name=f"fe.route.{rid}",
        )
        failed = False
        try:
            out_body = yield done
        except BaseException as err:
            failed = True
            self.requests_failed += 1
            reply({"ok": False, "error": str(err)})
        else:
            reply({"ok": True, "body": out_body})
        finally:
            self.inflight -= 1
            self._observe_slo(service, self.engine.now - start,
                              not failed, tenant)
            self._wake_dispatcher()
            if root:
                self.spans.close(root, self.engine.now, failed=failed)

    def _pick(self, spec: ServiceSpec, candidates: List[ServiceInstance],
              rotation: int) -> ServiceInstance:
        """Choose the attempt's target; raises when nothing is healthy.

        Sharded requests walk the replica list in order (primary first),
        advancing one slot per retry.  Stateless requests go to the
        least-loaded healthy instance.  The raise is retryable — an
        instance may come back (recovery restart) before the deadline.
        """
        healthy = [i for i in candidates if self.health[i.iid].healthy]
        if not healthy:
            raise ServiceUnavailable(
                f"no healthy instance of {spec.name!r}"
            )
        if spec.sharded:
            return healthy[rotation % len(healthy)]
        return min(healthy,
                   key=lambda i: (self.health[i.iid].outstanding, i.replica))

    def _pick_chain(self, spec: ServiceSpec, key: Any,
                    is_write: bool) -> ServiceInstance:
        """Chained routing: writes to the head, reads to the tail.

        Re-resolved *per attempt* — chain repair flips the directory's
        chain order mid-request, and the retry must land on the new
        head/tail, not whatever the first attempt saw.  The raise is
        retryable: mid-repair there may briefly be no routable member.
        """
        shard = spec.ring.shard_for(key)
        chain = spec.chains.get(shard, [])
        if not chain:
            raise ServiceUnavailable(
                f"{spec.name!r} shard {shard} has no chain"
            )
        iid = chain[0] if is_write else chain[-1]
        inst = next((i for i in spec.instances if i.iid == iid), None)
        if inst is None or not inst.ready:
            raise ServiceUnavailable(f"{iid} is not ready")
        health = self.health.get(iid)
        if health is None or not health.healthy:
            raise ServiceUnavailable(f"{iid} is unhealthy")
        return inst

    def _dispatch(self, spec: ServiceSpec, inst: ServiceInstance,
                  req: Dict[str, Any], attempt_timeout: int,
                  trace_id: int, root: int,
                  wid: Optional[str] = None) -> Event:
        """Queue one attempt on ``inst``; event resolves with the body."""
        fwd = 0
        if trace_id:
            fwd = self.spans.open(trace_id, f"forward:{inst.iid}",
                                  "cluster", self.mac, self.engine.now,
                                  parent_id=root, fpga=inst.fpga,
                                  node=inst.node)
        nbytes = int(req.get("nbytes", 64))
        irid, inner = self._enqueue(inst,
                                    self._wire_body(req, trace_id, fwd,
                                                    wid=wid),
                                    nbytes)
        if (req.get("write") and spec.sharded and spec.replicate_writes
                and not spec.chained):
            # legacy best-effort replication (the client's ack is the
            # addressed replica's alone; chained services replicate
            # through the chain instead and never take this path)
            for other in spec.candidates(req.get("key")):
                if other.iid != inst.iid and self.health[other.iid].healthy:
                    self._enqueue(other,
                                  self._wire_body(req, trace_id, fwd),
                                  nbytes, fire_and_forget=True)
        outer = self.engine.event(f"fe.attempt.{inst.iid}")

        def settle(ev: Event) -> None:
            if fwd:
                self.spans.close(fwd, self.engine.now, failed=ev.failed)
            if outer.triggered:
                return
            if ev.failed:
                outer.fail(ev.value)
            else:
                outer.succeed(ev.value)

        inner.add_callback(settle)

        def expire(_ev: Event) -> None:
            if inner.triggered:
                return
            self._abandon(irid)
            if fwd:
                self.spans.close(fwd, self.engine.now, timed_out=True)
            if not outer.triggered:
                outer.fail(ServiceUnavailable(
                    f"{inst.iid} did not answer in {attempt_timeout}"
                ))

        self.engine.timeout(attempt_timeout).add_callback(expire)
        return outer

    @staticmethod
    def _wire_body(req: Dict[str, Any], trace_id: int, span: int,
                   wid: Optional[str] = None) -> Any:
        body = req.get("body")
        if isinstance(body, dict) and (trace_id or wid is not None):
            body = dict(body)
            if trace_id:
                body["_trace"] = (trace_id, span)
            if wid is not None:
                body["_wid"] = wid
        return body

    def _enqueue(self, inst: ServiceInstance, body: Any, nbytes: int,
                 fire_and_forget: bool = False) -> Tuple[int, Event]:
        irid = next(self._irid)
        waiter = self.engine.event(f"fe.req#{irid}")
        kind = "repl" if fire_and_forget else "req"
        self._awaiting[irid] = (waiter, inst.iid, kind)
        self.health[inst.iid].outstanding += 1
        self._queues[inst.iid].append((irid, body, nbytes))
        kick = self._kicks.pop(inst.iid, None)
        if kick is not None and not kick.triggered:
            kick.succeed(None)
        if fire_and_forget:
            # cap how long the bookkeeping lingers if the replica dies
            self.engine.timeout(self.retry.attempt_timeout).add_callback(
                lambda _ev, r=irid: self._abandon_quietly(r))
        return irid, waiter

    def _abandon_quietly(self, irid: int) -> None:
        """Timebox a fire-and-forget replica write.

        Still pending after a full attempt timeout means the replica
        never acked it — the write is, as far as anyone can prove,
        unreplicated.  The old code dropped this on the floor; divergence
        between replicas was invisible until a failover served stale
        data.  No health miss is charged (the primary path owns health).
        """
        entry = self._awaiting.pop(irid, None)
        if entry is not None:
            self.health[entry[1]].outstanding -= 1
            self.stats.counter("frontend.writes_unreplicated").inc()

    # -- per-instance batching + probing ----------------------------------

    def _flusher(self, inst: ServiceInstance):
        """Drain one instance's queue as batch envelopes."""
        iid = inst.iid
        queue = self._queues[iid]
        mac = self.cluster.systems[inst.fpga].config.net.mac_addr
        while True:
            if iid in self._retired:
                return
            if not queue:
                kick = self.engine.event(f"fe.kick.{iid}")
                self._kicks[iid] = kick
                yield kick
            if len(queue) < self.batch_size and self.batch_window > 0:
                yield self.batch_window  # brief accumulation window
            take = queue[:self.batch_size]
            del queue[:self.batch_size]
            # entries may have been failed over while we accumulated
            take = [(irid, body, nb) for irid, body, nb in take
                    if irid in self._awaiting]
            if not take:
                continue
            bid = next(self._bid)
            entries = [(irid, body) for irid, body, _nb in take]
            nbytes = sum(nb for _irid, _body, nb in take) + 16 * len(take)
            sent = self._peer(mac).send(
                {"port": inst.port, "data": ("batch", bid, entries),
                 "src_mac": self.mac},
                payload_bytes=max(64, nbytes),
            )
            self.batches_sent += 1
            # pace on the transport ack, but never wedge on a dead peer
            yield self.engine.any_of(
                [sent, self.engine.timeout(self.transport_timeout)])

    def _prober(self, inst: ServiceInstance):
        """Periodic liveness pings (answered without handler cost)."""
        iid = inst.iid
        mac = self.cluster.systems[inst.fpga].config.net.mac_addr
        health = self.health[iid]
        while True:
            yield self.heartbeat_interval
            if iid in self._retired:
                return
            if self._probe_stuck[iid] >= 2:
                # transport to this board is wedged (detached MAC):
                # further probes would only pile up in the send window
                continue
            irid = next(self._irid)
            waiter = self.engine.event(f"fe.probe#{irid}")
            self._awaiting[irid] = (waiter, iid, "probe")
            health.outstanding += 1
            health.probes_sent += 1
            self._probe_stuck[iid] += 1
            sent = self._peer(mac).send(
                {"port": inst.port, "data": ("req", irid, {"op": "ping"}),
                 "src_mac": self.mac},
                payload_bytes=16,
            )
            sent.add_callback(lambda _ev, i=iid: self._probe_unstick(i))
            expire = self.engine.timeout(self.heartbeat_interval)
            try:
                yield self.engine.any_of([waiter, expire])
            except ServiceUnavailable:
                # instance declared dead mid-probe (fault hook failed the
                # waiter); the bookkeeping is already cleaned up
                continue
            if not waiter.triggered:
                self._abandon(irid)
                health.probe_misses += 1

    def _probe_unstick(self, iid: str) -> None:
        self._probe_stuck[iid] -= 1

    # -- client replies ----------------------------------------------------

    def _reply(self, client_mac: str, rid: int, body: Any) -> None:
        self.responses_sent += 1
        self.engine.process(
            self._send_reply(client_mac, rid, body),
            name=f"fe.reply.{rid}",
        )

    def _send_reply(self, client_mac: str, rid: int, body: Any):
        yield self._peer(client_mac).send(
            {"port": FRONTEND_PORT, "data": ("resp", rid, body),
             "src_mac": self.mac},
            payload_bytes=64,
        )

    # -- introspection -----------------------------------------------------

    def telemetry(self) -> Dict[str, Any]:
        """Operator snapshot: routing counters + the stats registry.

        ``writes_unreplicated`` is the headline number — every
        best-effort replica write that was never acknowledged.  Nonzero
        means replicas of a legacy (non-chained) sharded service may have
        diverged and a failover can serve stale data.
        """
        counters = self.stats.snapshot()["counters"]
        return {
            "requests_admitted": self.requests_admitted,
            "requests_rejected": self.requests_rejected,
            "requests_failed": self.requests_failed,
            "requests_dropped": self.requests_dropped,
            "backlog_depth": len(self._backlog),
            "responses_sent": self.responses_sent,
            "batches_sent": self.batches_sent,
            "failovers": self.failovers,
            "inflight": self.inflight,
            "chain_nacks": self.chain_nacks,
            "writes_unreplicated": int(
                counters.get("frontend.writes_unreplicated", 0)),
            "counters": counters,
            "health": self.health_table(),
        }

    def health_table(self) -> Dict[str, Dict[str, Any]]:
        """Live health snapshot, keyed by instance id."""
        return {
            iid: {"healthy": h.healthy, "misses": h.misses,
                  "outstanding": h.outstanding, "served": h.served,
                  "probes_sent": h.probes_sent,
                  "probe_misses": h.probe_misses}
            for iid, h in self.health.items()
        }
