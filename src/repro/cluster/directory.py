"""ServiceDirectory: cluster-wide placement and naming of service instances.

Extends the kernel's :class:`~repro.kernel.naming.Namespace` — same
``bind/lookup/unbind/rebind`` verbs — but names resolve to ``(fpga,
node)`` placements instead of local tile numbers.  On top of the
namespace it owns the two placement policies the paper's scale-out story
needs (FOS and SYNERGY both argue this belongs in the OS layer, not in
each application):

* **stateless replication** (:meth:`deploy_stateless`) — N interchangeable
  instances spread round-robin across FPGAs; the front-end picks
  least-loaded;
* **consistent-hash sharding** (:meth:`deploy_sharded`) — keyed services
  such as ``kvstore`` are split into shards on a deterministic hash ring
  (CRC32, never Python's salted ``hash``), each shard replicated on
  ``replication`` distinct FPGAs so a dead board's shards fail over to
  surviving replicas.

Placement is deterministic: lowest free tile on the chosen FPGA, FPGAs
chosen round-robin — two identically-seeded cluster builds place
identically (the sharding-determinism test pins this).
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cluster.service import ClusterPortedService
from repro.errors import ConfigError
from repro.kernel.naming import Namespace
from repro.sim import Event

__all__ = ["HashRing", "ServiceInstance", "ServiceSpec", "ServiceDirectory"]


def _stable_hash(value: Any) -> int:
    """Deterministic 32-bit hash (process- and run-independent)."""
    return zlib.crc32(str(value).encode())


class HashRing:
    """Consistent-hash ring mapping keys to shards.

    ``vnodes`` virtual points per shard smooth the key distribution; the
    ring is rebuilt only when the shard count changes (never at runtime
    here — resharding is out of scope, replicas handle failures).
    """

    def __init__(self, n_shards: int, vnodes: int = 64):
        if n_shards < 1:
            raise ConfigError(f"need >= 1 shard, got {n_shards}")
        self.n_shards = n_shards
        self.vnodes = vnodes
        points = []
        for shard in range(n_shards):
            for v in range(vnodes):
                points.append((_stable_hash(f"shard{shard}#v{v}"), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._shards = [s for _, s in points]

    def shard_for(self, key: Any) -> int:
        """The shard owning ``key`` (clockwise successor on the ring)."""
        h = _stable_hash(key)
        i = bisect_right(self._points, h)
        if i == len(self._points):
            i = 0
        return self._shards[i]


@dataclass
class ServiceInstance:
    """One deployed copy of a service on one tile of one FPGA."""

    service: str
    fpga: int
    node: int
    port: int
    #: shard this instance serves (None for stateless services)
    shard: Optional[int] = None
    #: replica index within the shard (0 = primary) or instance index
    replica: int = 0
    #: True once the tile's partial reconfiguration finished and the
    #: service bound its port — only ready instances take traffic.
    #: Routing to a still-reconfiguring replica would strand requests on
    #: an unbound port (the board drops them, the client times out).
    ready: bool = False

    @property
    def iid(self) -> str:
        """Cluster-unique instance name (also its directory binding)."""
        if self.shard is None:
            return f"{self.service}#{self.replica}"
        return f"{self.service}/s{self.shard}r{self.replica}"

    @property
    def endpoint(self) -> str:
        """The on-FPGA logical endpoint name."""
        if self.shard is None:
            return f"app.{self.service}.{self.replica}"
        return f"app.{self.service}.s{self.shard}r{self.replica}"


@dataclass
class ServiceSpec:
    """Everything the front-end needs to route one service."""

    name: str
    sharded: bool
    instances: List[ServiceInstance] = field(default_factory=list)
    ring: Optional[HashRing] = None
    replication: int = 1
    #: sharded writes fan out to every replica of the shard, so a
    #: failover target has the data (set False for cache-like services)
    replicate_writes: bool = True
    #: next replica index to hand out (monotonic: replica ids are never
    #: reused, so scale-down + scale-up never aliases an old instance)
    next_replica: int = 0
    #: builds a fresh handler per instance; retained so the autoscaler
    #: can add replicas after the initial deploy (stateless services)
    handler_factory: Optional[Callable[[], Any]] = None
    #: True for chain-replicated services: shard replicas form an ordered
    #: chain (writes at the head, reads at the tail) instead of a
    #: best-effort fan-out set
    chained: bool = False
    #: shard -> member iids in chain order, head first (chained only)
    chains: Dict[int, List[str]] = field(default_factory=dict)
    #: shard -> configuration epoch; bumped on every repair, so members
    #: at an older epoch are fenced by their peers (chained only)
    epochs: Dict[int, int] = field(default_factory=dict)
    #: builds one shard's state machine (chained only; retained so chain
    #: repair can splice replacement replicas)
    machine_factory: Optional[Callable[[int], Any]] = None

    def candidates(self, key: Any = None) -> List[ServiceInstance]:
        """Routing candidates in preference order.

        Chained + key: the shard's chain, head first (the front-end sends
        writes to the head and reads to the tail).  Sharded + key: the
        shard's replicas, primary first.  Stateless (or keyless): every
        instance — the front-end picks least-loaded.
        """
        if self.chained and key is not None:
            shard = self.ring.shard_for(key)
            by_iid = {i.iid: i for i in self.instances}
            return [by_iid[iid] for iid in self.chains.get(shard, [])
                    if iid in by_iid and by_iid[iid].ready]
        if self.sharded and key is not None:
            shard = self.ring.shard_for(key)
            owners = [i for i in self.instances
                      if i.shard == shard and i.ready]
            return sorted(owners, key=lambda i: i.replica)
        return [i for i in self.instances if i.ready]


class ServiceDirectory(Namespace):
    """The cluster's service namespace + placement engine."""

    #: first port handed to deployed instances (one port per instance,
    #: unique per FPGA so svc.net demultiplexes cleanly)
    PORT_BASE = 7100

    def __init__(self, cluster):
        super().__init__()
        self.cluster = cluster
        self.services: Dict[str, ServiceSpec] = {}
        self._next_port = self.PORT_BASE
        self._next_fpga = 0  # round-robin placement cursor

    # -- placement ---------------------------------------------------------

    def deploy_stateless(
        self,
        service: str,
        handler_factory: Callable[[], Any],
        instances: int = 2,
        artifact=None,
    ) -> List[Event]:
        """Place ``instances`` interchangeable copies round-robin.

        ``handler_factory()`` builds a fresh handler per instance (state,
        if any, is per-instance).  ``artifact`` optionally supplies a
        pre-compiled :class:`~repro.hw.compile.BitstreamArtifact` for the
        service shell, skipping the cache/compile path entirely.  Returns
        the load-started events.
        """
        if service in self.services:
            raise ConfigError(f"service {service!r} already deployed")
        spec = ServiceSpec(name=service, sharded=False,
                           handler_factory=handler_factory)
        started = []
        for idx in range(instances):
            fpga = self._pick_fpga(
                ClusterPortedService.family_bitstream())
            inst = ServiceInstance(service=service, fpga=fpga, node=-1,
                                   port=self._alloc_port(), replica=idx)
            started.append(self._load(inst, handler_factory(),
                                      artifact=artifact))
            spec.instances.append(inst)
            self.bind(inst.iid, (inst.fpga, inst.node))
        spec.next_replica = instances
        self.services[service] = spec
        return started

    def add_instance(self, service: str, artifact=None):
        """Scale a stateless service out by one replica.

        Places the new instance exactly like :meth:`deploy_stateless`
        (round-robin FPGA, lowest free tile; with a bitstream cache
        enabled, boards whose cache is already warm for the service shell
        are preferred) and binds it; the caller (normally the autoscaler)
        re-tracks the front-end so the replica takes traffic once its
        reconfiguration completes.  Returns ``(instance,
        load_started_event)``.
        """
        spec = self.spec(service)
        if spec.sharded:
            raise ConfigError(
                f"{service!r} is sharded; resharding is out of scope — "
                "only stateless services scale by instance"
            )
        if spec.handler_factory is None:
            raise ConfigError(f"{service!r} kept no handler factory")
        fpga = self._pick_fpga(ClusterPortedService.family_bitstream())
        inst = ServiceInstance(service=service, fpga=fpga, node=-1,
                               port=self._alloc_port(),
                               replica=spec.next_replica)
        spec.next_replica += 1
        started = self._load(inst, spec.handler_factory(),
                             artifact=artifact)
        spec.instances.append(inst)
        self.bind(inst.iid, (inst.fpga, inst.node))
        return inst, started

    def remove_instance(self, service: str,
                        iid: Optional[str] = None) -> ServiceInstance:
        """Detach one stateless replica from routing (no teardown here).

        Removes the instance from the spec (so the front-end stops
        picking it) and unbinds its name.  The *tile* stays loaded — the
        caller drains in-flight work, retires front-end tracking, then
        calls ``mgmt.teardown`` itself; splitting it this way keeps the
        scale-down sequence graceful.  Defaults to the newest replica.
        """
        spec = self.spec(service)
        if spec.sharded:
            raise ConfigError(f"{service!r} is sharded; shards do not "
                              "scale down by instance")
        if not spec.instances:
            raise ConfigError(f"{service!r} has no instances left")
        if iid is None:
            inst = max(spec.instances, key=lambda i: i.replica)
        else:
            matches = [i for i in spec.instances if i.iid == iid]
            if not matches:
                raise ConfigError(f"no instance {iid!r} of {service!r}")
            inst = matches[0]
        spec.instances.remove(inst)
        self.unbind(inst.iid)
        system = self.cluster.systems[inst.fpga]
        if system.recovery is not None:
            system.recovery.forget(inst.endpoint)
        return inst

    def deploy_sharded(
        self,
        service: str,
        handler_factory: Callable[[int], Any],
        n_shards: int = 4,
        replication: int = 2,
        replicate_writes: bool = True,
        vnodes: int = 64,
    ) -> List[Event]:
        """Shard ``service`` across the cluster with replica failover.

        ``handler_factory(shard)`` builds a handler for one shard (each
        replica of a shard gets its own handler instance — writes are
        fanned out by the front-end to keep them aligned).  Shard ``s``'s
        replica ``r`` lands on FPGA ``(s + r) % n_fpgas``, so replicas of
        one shard always sit on distinct FPGAs (as long as
        ``replication <= n_fpgas``).
        """
        if service in self.services:
            raise ConfigError(f"service {service!r} already deployed")
        n_fpgas = len(self.cluster.systems)
        if replication < 1:
            raise ConfigError("replication must be >= 1")
        if replication > n_fpgas:
            raise ConfigError(
                f"replication {replication} exceeds cluster size {n_fpgas} "
                "(same-FPGA replicas share the failure domain)"
            )
        spec = ServiceSpec(name=service, sharded=True,
                           ring=HashRing(n_shards, vnodes=vnodes),
                           replication=replication,
                           replicate_writes=replicate_writes)
        started = []
        for shard in range(n_shards):
            for replica in range(replication):
                fpga = (shard + replica) % n_fpgas
                inst = ServiceInstance(service=service, fpga=fpga, node=-1,
                                       port=self._alloc_port(),
                                       shard=shard, replica=replica)
                started.append(self._load(inst, handler_factory(shard)))
                spec.instances.append(inst)
                self.bind(inst.iid, (inst.fpga, inst.node))
        self.services[service] = spec
        return started

    def deploy_chain(
        self,
        service: str,
        machine_factory: Callable[[int], Any],
        n_shards: int = 4,
        replication: int = 3,
        vnodes: int = 64,
        artifact=None,
    ) -> List[Event]:
        """Shard ``service`` into replication *chains* (zero-data-loss).

        ``machine_factory(shard)`` builds one shard's deterministic state
        machine; each replica runs its own copy inside a
        :class:`~repro.replic.chain.ChainNodeService`.  Placement matches
        :meth:`deploy_sharded` (replicas of one shard on distinct FPGAs).
        Chains start *unconfigured* (epoch 0, every request nacked) until
        a :class:`~repro.replic.manager.ReplicationManager` adopts the
        service and issues ``chain.cfg`` at epoch 1.
        """
        from repro.replic.chain import ChainNodeService

        if service in self.services:
            raise ConfigError(f"service {service!r} already deployed")
        n_fpgas = len(self.cluster.systems)
        if replication < 1:
            raise ConfigError("replication must be >= 1")
        if replication > n_fpgas:
            raise ConfigError(
                f"replication {replication} exceeds cluster size {n_fpgas} "
                "(same-FPGA replicas share the failure domain)"
            )
        spec = ServiceSpec(name=service, sharded=True, chained=True,
                           ring=HashRing(n_shards, vnodes=vnodes),
                           replication=replication,
                           replicate_writes=False,
                           machine_factory=machine_factory)
        started = []
        for shard in range(n_shards):
            spec.chains[shard] = []
            spec.epochs[shard] = 0
            for replica in range(replication):
                fpga = (shard + replica) % n_fpgas
                inst = ServiceInstance(service=service, fpga=fpga, node=-1,
                                       port=self._alloc_port(),
                                       shard=shard, replica=replica)
                node = ChainNodeService(inst.iid, inst.port,
                                        machine_factory(shard))
                started.append(self._load_chain(inst, node,
                                                artifact=artifact))
                spec.instances.append(inst)
                spec.chains[shard].append(inst.iid)
                self.bind(inst.iid, (inst.fpga, inst.node))
        spec.next_replica = replication
        self.services[service] = spec
        return started

    def add_chain_replica(self, service: str, shard: int,
                          exclude_fpgas=()) -> Tuple[ServiceInstance, Event]:
        """Place one fresh chain member for ``shard`` (repair splice).

        The board is the lowest-indexed FPGA outside ``exclude_fpgas``
        (callers pass dead, partitioned, and already-member boards) with a
        free tile.  The member is *loaded but not part of the chain* —
        the replication manager checkpoints it and flips the chain order
        once it has caught up.  Raises :class:`ConfigError` when no
        eligible board exists (the caller defers the replacement).
        """
        spec = self.spec(service)
        if not spec.chained:
            raise ConfigError(f"{service!r} is not chain-replicated")
        if spec.machine_factory is None:
            raise ConfigError(f"{service!r} kept no machine factory")
        from repro.replic.chain import ChainNodeService

        exclude = set(exclude_fpgas)
        fpga = None
        for i in range(len(self.cluster.systems)):
            if i in exclude:
                continue
            if self.cluster.systems[i].mgmt.free_tiles():
                fpga = i
                break
        if fpga is None:
            raise ConfigError(
                f"no eligible board for a new {service!r}/s{shard} replica"
            )
        inst = ServiceInstance(service=service, fpga=fpga, node=-1,
                               port=self._alloc_port(), shard=shard,
                               replica=spec.next_replica)
        spec.next_replica += 1
        node = ChainNodeService(inst.iid, inst.port,
                                spec.machine_factory(shard))
        started = self._load_chain(inst, node)
        spec.instances.append(inst)
        self.bind(inst.iid, (inst.fpga, inst.node))
        return inst, started

    def set_chain(self, service: str, shard: int, iids: List[str],
                  epoch: int) -> None:
        """Flip one shard's chain order + epoch (repair commit point).

        Called *last* in every reconfiguration, after the members hold
        the new epoch — so reads never route to a tail that has not yet
        caught up and writes never route to a demoted head.
        """
        spec = self.spec(service)
        if epoch < spec.epochs.get(shard, 0):
            raise ConfigError(
                f"chain epoch moved backwards for {service!r}/s{shard}: "
                f"{spec.epochs.get(shard)} -> {epoch}"
            )
        spec.chains[shard] = list(iids)
        spec.epochs[shard] = epoch

    def remove_chain_member(self, service: str, shard: int,
                            iid: str) -> None:
        """Forget a dead/fenced chain member entirely."""
        spec = self.spec(service)
        if shard in spec.chains and iid in spec.chains[shard]:
            spec.chains[shard].remove(iid)
        for inst in list(spec.instances):
            if inst.iid == iid:
                spec.instances.remove(inst)
                system = self.cluster.systems[inst.fpga]
                if system.recovery is not None:
                    system.recovery.forget(inst.endpoint)
        if iid in self:
            self.unbind(iid)

    def chain_head(self, service: str,
                   shard: int) -> Optional[ServiceInstance]:
        spec = self.spec(service)
        chain = spec.chains.get(shard, [])
        return self._chain_inst(spec, chain[0]) if chain else None

    def chain_tail(self, service: str,
                   shard: int) -> Optional[ServiceInstance]:
        spec = self.spec(service)
        chain = spec.chains.get(shard, [])
        return self._chain_inst(spec, chain[-1]) if chain else None

    @staticmethod
    def _chain_inst(spec: ServiceSpec,
                    iid: str) -> Optional[ServiceInstance]:
        for inst in spec.instances:
            if inst.iid == iid:
                return inst
        return None

    def _load_chain(self, inst: ServiceInstance, node_service,
                    artifact=None) -> Event:
        """Place one chain member on the lowest free tile of its FPGA.

        Unlike :meth:`_load`, faults are *delegated*: restarting a chain
        member in place would resurrect a stale replica (the split-brain
        epochs exist to fence), so the recovery manager only frees the
        slot and the replication manager repairs the chain.
        """
        system = self.cluster.systems[inst.fpga]
        free = system.mgmt.free_tiles()
        if not free:
            raise ConfigError(
                f"FPGA {inst.fpga} has no free tile for {inst.iid}"
            )
        inst.node = free[0]
        if system.recovery is not None:
            started = system.recovery.deploy(
                inst.node, lambda n=node_service: n,
                endpoint=inst.endpoint, delegate="replication",
                artifact=artifact)
        else:
            started = system.mgmt.load(inst.node, node_service,
                                       endpoint=inst.endpoint,
                                       artifact=artifact)

        def mark_ready(ev, i=inst):
            if not ev.failed:
                i.ready = True

        started.add_callback(mark_ready)
        return started

    def _load(self, inst: ServiceInstance, handler, artifact=None) -> Event:
        """Place one instance on the lowest free tile of its FPGA."""
        system = self.cluster.systems[inst.fpga]
        free = system.mgmt.free_tiles()
        if not free:
            raise ConfigError(
                f"FPGA {inst.fpga} has no free tile for {inst.iid}"
            )
        inst.node = free[0]

        def factory(port=inst.port, name=inst.iid, h=handler):
            return ClusterPortedService(name, port=port, handler=h)

        if system.recovery is not None:
            # keep the instance alive intra-FPGA (restart / spare failover)
            started = system.recovery.deploy(inst.node, factory,
                                             endpoint=inst.endpoint,
                                             artifact=artifact)
        else:
            started = system.mgmt.load(inst.node, factory(),
                                       endpoint=inst.endpoint,
                                       artifact=artifact)

        def mark_ready(ev, i=inst):
            if not ev.failed:
                i.ready = True

        started.add_callback(mark_ready)
        return started

    def _pick_fpga(self, bitstream=None) -> int:
        """Next board for a fresh instance.

        Legacy clusters (no bitstream plane): pure round-robin cursor,
        byte-identical to every earlier release.  With the compile cache
        enabled the cursor still advances identically, but the pick
        skips killed/full boards and — given ``bitstream`` and
        ``warm_placement`` — prefers boards whose artifact cache is
        already warm for it (cursor order breaks ties, so placement
        stays deterministic).
        """
        fpga = self._next_fpga
        self._next_fpga = (self._next_fpga + 1) % len(self.cluster.systems)
        if self.cluster.bitplane is None:
            return fpga
        n = len(self.cluster.systems)
        order = [(fpga + k) % n for k in range(n)]
        usable = [i for i in order
                  if i not in self.cluster.killed
                  and self.cluster.systems[i].mgmt.free_tiles()]
        if not usable:
            return fpga
        if bitstream is not None and self.cluster.warm_placement:
            from repro.sched.placement import warm_first
            usable = warm_first(usable, self.cluster, bitstream)
        return usable[0]

    def _alloc_port(self) -> int:
        port = self._next_port
        self._next_port += 1
        return port

    # -- routing queries (used by the front-end) ---------------------------

    def spec(self, service: str) -> ServiceSpec:
        found = self.services.get(service)
        if found is None:
            raise ConfigError(f"unknown service {service!r}")
        return found

    def candidates(self, service: str,
                   key: Any = None) -> List[ServiceInstance]:
        return self.spec(service).candidates(key)

    def instances_on(self, fpga: int,
                     node: Optional[int] = None) -> List[ServiceInstance]:
        """Instances on one FPGA (optionally one tile) — the blast radius
        of a board or tile failure."""
        out = []
        for spec in self.services.values():
            for inst in spec.instances:
                if inst.fpga == fpga and (node is None or inst.node == node):
                    out.append(inst)
        return out

    def placement_table(self) -> Dict[str, Any]:
        """Deterministic placement snapshot (for tests and reports)."""
        return {
            inst.iid: {"fpga": inst.fpga, "node": inst.node,
                       "port": inst.port, "shard": inst.shard,
                       "replica": inst.replica}
            for spec in self.services.values() for inst in spec.instances
        }
