"""Cluster: N Apiary FPGAs on one fabric, managed as a single system.

The scale-out unit the paper gestures at in Section 5: once each FPGA is
a first-class network citizen, a rack of them composes the same way a
rack of servers does — shared Ethernet fabric, a service directory, a
load-balancing front-end.  Construction::

    cluster = Cluster(n_fpgas=2, config=SystemConfig.figure1())
    cluster.boot()
    cluster.directory.deploy_sharded("kv", make_kv_handler, n_shards=4)
    fe = cluster.start_frontend()

Each FPGA derives its per-board config from the base via
``dataclasses.replace`` (unique MAC, shifted seed); all boards share one
:class:`~repro.sim.Engine` (one simulated clock domain), one
:class:`~repro.net.frame.EthernetFabric`, and one
:class:`~repro.obs.span.SpanRecorder` — so a single causal trace spans
client, front-end, and whichever board served the request.

``kill_fpga`` is the availability experiment's hammer: it detaches the
board's MAC (frames to it drop on the floor) and reports a fault on
every occupied tile, which reaches the front-end through the same
``on_fault`` hook intra-FPGA recovery uses — shards fail over to their
surviving replicas.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

from repro.cluster.directory import ServiceDirectory
from repro.cluster.frontend import FrontEnd
from repro.errors import ConfigError, TileFault
from repro.kernel.config import SystemConfig
from repro.kernel.system import ApiarySystem
from repro.net.frame import EthernetFabric
from repro.obs.index import SpanIndex
from repro.obs.span import SpanRecorder
from repro.sim import Engine

__all__ = ["Cluster"]


class Cluster:
    """A multi-FPGA Apiary deployment on one shared fabric."""

    def __init__(
        self,
        n_fpgas: int = 2,
        config: Optional[SystemConfig] = None,
        engine: Optional[Engine] = None,
        fabric: Optional[EthernetFabric] = None,
        fabric_latency: int = 500,
    ):
        if n_fpgas < 1:
            raise ConfigError(f"need >= 1 FPGA, got {n_fpgas}")
        base = config if config is not None else SystemConfig.figure1()
        self.base_config = base
        self.engine = engine if engine is not None else Engine()
        self.fabric = fabric if fabric is not None else EthernetFabric(
            self.engine, latency_cycles=fabric_latency)
        self.spans = SpanRecorder()
        self.systems: List[ApiarySystem] = []
        for i in range(n_fpgas):
            cfg = replace(
                base,
                seed=base.seed + i,
                net=replace(base.net, mac_addr=f"fpga{i}"),
            )
            self.systems.append(ApiarySystem(
                engine=self.engine, fabric=self.fabric,
                config=cfg, spans=self.spans,
            ))
        self.directory = ServiceDirectory(self)
        self.frontend: Optional[FrontEnd] = None
        self.replication = None
        self.killed: List[int] = []
        self.partitioned: List[int] = []

    @property
    def n_fpgas(self) -> int:
        return len(self.systems)

    def macs(self) -> List[str]:
        return [s.config.net.mac_addr for s in self.systems]

    # -- lifecycle ---------------------------------------------------------

    def boot(self, extra_cycles: int = 5000) -> None:
        """Bring every board's OS services up."""
        for system in self.systems:
            system.boot(extra_cycles=extra_cycles)

    def enable_recovery(self, **kwargs) -> None:
        """Attach an intra-FPGA recovery watchdog to every board.

        Cross-FPGA failover stays the front-end's job; recovery handles
        restart-in-place / spare tiles *within* a surviving board.
        """
        for system in self.systems:
            system.enable_recovery(**kwargs)

    def start_frontend(self, **kwargs) -> FrontEnd:
        """Attach the load-balancing front-end (once)."""
        if self.frontend is not None:
            raise ConfigError("front-end is already running")
        self.frontend = FrontEnd(self, **kwargs)
        return self.frontend

    def start_autoscaler(self, service: str, **kwargs):
        """Attach a :class:`~repro.sched.Autoscaler` to one service.

        Requires a running front-end (its per-instance queues are the
        scaling signal).  Returns the started autoscaler.
        """
        from repro.sched import Autoscaler  # avoid a cyclic import

        if self.frontend is None:
            raise ConfigError("start the front-end before the autoscaler")
        scaler = Autoscaler(self, service, **kwargs)
        scaler.start()
        return scaler

    def deploy_stateless(self, service, handler_factory, **kwargs):
        started = self.directory.deploy_stateless(service, handler_factory,
                                                  **kwargs)
        if self.frontend is not None:
            self.frontend.track_all()
        return started

    def deploy_sharded(self, service, handler_factory, **kwargs):
        started = self.directory.deploy_sharded(service, handler_factory,
                                                **kwargs)
        if self.frontend is not None:
            self.frontend.track_all()
        return started

    def start_replication(self, **kwargs):
        """Attach the chain-replication control plane (once)."""
        from repro.replic import ReplicationManager  # avoid a cyclic import

        if self.replication is not None:
            raise ConfigError("the replication manager is already running")
        self.replication = ReplicationManager(self, **kwargs)
        return self.replication

    def deploy_chain(self, service, machine_factory, **kwargs):
        """Deploy a chain-replicated stateful service.

        Requires :meth:`start_replication` first — chains are inert
        (epoch 0, rejecting everything) until the manager configures
        them.  Returns ``(load_started_events, configured_event)``.
        """
        if self.replication is None:
            raise ConfigError(
                "start_replication() before deploying a chained service"
            )
        started = self.directory.deploy_chain(service, machine_factory,
                                              **kwargs)
        if self.frontend is not None:
            self.frontend.track_all()
        configured = self.replication.manage(service)
        return started, configured

    def run(self, until: Optional[int] = None) -> None:
        self.engine.run(until=until)

    # -- observability -----------------------------------------------------

    def enable_tracing(self) -> SpanRecorder:
        """One switch for the whole cluster (shared recorder)."""
        self.spans.enable()
        return self.spans

    def span_index(self) -> SpanIndex:
        """Cross-FPGA causal index — every board plus the front-end."""
        return SpanIndex(self.spans)

    # -- fault injection ---------------------------------------------------

    def kill_fpga(self, index: int) -> None:
        """Fail-stop a whole board: MAC off the fabric, every tile dead.

        Reported through each tile's fault manager so every subscriber —
        the front-end above all — learns the same way it would for an
        organic fault.  The board's recovery watchdog (if any) is stopped
        first: there is no board left to restart tiles on.
        """
        system = self.systems[index]
        mac = system.config.net.mac_addr
        if index in self.killed:
            return
        self.killed.append(index)
        if system.recovery is not None:
            system.recovery.stop()
        self.fabric.detach(mac)
        err = TileFault(f"board {mac} lost power")
        err.occurred_at = self.engine.now
        for tile in system.tiles:
            if not tile.failed:
                system.fault_manager.report(tile, "main", err)

    def partition_fpga(self, index: int) -> None:
        """Cut a board off the Ethernet fabric — both directions.

        The board itself keeps running and *believes it is healthy*: its
        tiles heartbeat, its services keep trying to serve.  Nothing
        reports a fault, so only probe misses reveal the partition — the
        asymmetric failure that turns a stale chain head into a
        split-brain unless epochs fence it.
        """
        if index in self.partitioned or index in self.killed:
            return
        self.partitioned.append(index)
        self.fabric.partition(self.systems[index].config.net.mac_addr)

    def heal_fpga(self, index: int) -> None:
        """Reconnect a partitioned board.

        The board comes back exactly as it left — including any fenced
        stale chain members, which now finally hear their ``chain.fence``
        (and whose buffered writes get nacked).  The replication manager
        is nudged to retry deferred replica placements.
        """
        if index not in self.partitioned:
            return
        self.partitioned.remove(index)
        self.fabric.heal(self.systems[index].config.net.mac_addr)
        if self.replication is not None:
            self.replication.notify_heal()

    def describe(self) -> str:
        lines = [f"Apiary cluster: {self.n_fpgas} FPGA(s), "
                 f"{len(self.directory.services)} service(s)"]
        for i, system in enumerate(self.systems):
            status = "KILLED" if i in self.killed else "up"
            insts = self.directory.instances_on(i)
            lines.append(
                f"  fpga{i} [{status}] "
                f"{system.config.noc.width}x{system.config.noc.height}: "
                + ", ".join(inst.iid for inst in insts)
            )
        return "\n".join(lines)
