"""Cluster: N Apiary FPGAs on one fabric, managed as a single system.

The scale-out unit the paper gestures at in Section 5: once each FPGA is
a first-class network citizen, a rack of them composes the same way a
rack of servers does — shared Ethernet fabric, a service directory, a
load-balancing front-end.  Construction::

    cluster = Cluster(n_fpgas=2, config=SystemConfig.figure1())
    cluster.boot()
    cluster.directory.deploy_sharded("kv", make_kv_handler, n_shards=4)
    fe = cluster.start_frontend()

Each FPGA derives its per-board config from the base via
``dataclasses.replace`` (unique MAC, shifted seed).  *How* the boards
execute is a :class:`~repro.cluster.backend.ClusterBackend`:

* ``backend="shared"`` (default) — all boards share one
  :class:`~repro.sim.Engine`, one fabric, one span recorder; a single
  causal trace spans client, front-end, and server board.
* ``backend="sequential"`` / ``backend="parallel"`` — each board gets a
  private engine and advances in conservative lookahead windows (see
  ``backend.py``); ``parallel`` runs board windows on forked workers
  after :meth:`seal`.  ``cluster.engine`` / ``cluster.fabric`` /
  ``cluster.spans`` then name the *host* partition's objects (front-end
  and clients attach there); per-board state is reachable through
  :meth:`merged_spans` / :meth:`merged_stats` / :meth:`stats_snapshots`.

``kill_fpga`` is the availability experiment's hammer: it detaches the
board's MAC (frames to it drop on the floor) and reports a fault on
every occupied tile, which reaches the front-end through the same
``on_fault`` hook intra-FPGA recovery uses — shards fail over to their
surviving replicas.  On windowed backends the kill lands at the current
window barrier, identically in sequential and parallel runs.
"""

from __future__ import annotations

from typing import List, Optional

from typing import Union

from repro.cluster.backend import BACKENDS, ClusterBackend
from repro.cluster.config import ClusterConfig
from repro.cluster.directory import ServiceDirectory
from repro.cluster.frontend import FrontEnd
from repro.errors import ConfigError
from repro.kernel.config import SystemConfig
from repro.kernel.system import ApiarySystem
from repro.net.frame import EthernetFabric
from repro.obs.index import SpanIndex
from repro.obs.span import SpanRecorder
from repro.sim import Engine, StatsRegistry

__all__ = ["Cluster"]


class Cluster:
    """A multi-FPGA Apiary deployment on one shared fabric."""

    def __init__(
        self,
        n_fpgas: int = 2,
        config: Optional[Union[SystemConfig, ClusterConfig]] = None,
        engine: Optional[Engine] = None,
        fabric: Optional[EthernetFabric] = None,
        fabric_latency: int = 500,
        backend: str = "shared",
        swallow_orphan_errors: bool = False,
    ):
        # the config-object path: one ClusterConfig carries everything the
        # flat kwargs + post-construction enable_* calls used to; its
        # fields win over the flat kwargs (which stay at their defaults
        # when a ClusterConfig is given)
        if isinstance(config, ClusterConfig):
            self.cluster_config: Optional[ClusterConfig] = config
            n_fpgas = config.n_fpgas
            fabric_latency = config.fabric_latency
            backend = config.backend
            swallow_orphan_errors = config.swallow_orphan_errors
            base = config.system
        else:
            self.cluster_config = None
            base = config if config is not None else SystemConfig.figure1()
        if n_fpgas < 1:
            raise ConfigError(f"need >= 1 FPGA, got {n_fpgas}")
        if backend not in BACKENDS:
            raise ConfigError(
                f"unknown backend {backend!r}; pick one of "
                f"{sorted(BACKENDS)}"
            )
        self.base_config = base
        self.backend_name = backend
        self._backend: ClusterBackend = BACKENDS[backend]()
        # build() populates engine/fabric/spans/systems on self
        self.engine: Engine
        self.fabric: EthernetFabric
        self.spans: SpanRecorder
        self.systems: List[ApiarySystem]
        self._backend.build(self, n_fpgas, engine, fabric, fabric_latency,
                            swallow_orphan_errors)
        self.directory = ServiceDirectory(self)
        self.frontend: Optional[FrontEnd] = None
        self.replication = None
        self.slo = None
        #: BitstreamPlane once enable_bitstream_cache() ran (or the
        #: config asked for it); None = legacy direct-load clusters
        self.bitplane = None
        self.warm_placement = True
        self._cache_prefetch = True
        self.killed: List[int] = []
        self.partitioned: List[int] = []
        if self.cluster_config is not None:
            self._apply_config(self.cluster_config)

    def _apply_config(self, cfg: ClusterConfig) -> None:
        """Run the enable_* toggles the config asks for (build-time).

        Order matters only in that the cache comes first (so every
        subsequent deploy routes through it); ``boot()`` stays the
        caller's move, as in the flat spelling.
        """
        if cfg.cache.enabled:
            self.enable_bitstream_cache(
                capacity_cells=cfg.cache.capacity_cells,
                cycles_per_cell=cfg.cache.synth_cycles_per_cell,
                prefetch=cfg.cache.prefetch,
                warm_placement=cfg.cache.warm_placement,
            )
        if cfg.recovery.enabled:
            self.enable_recovery(**cfg.recovery.kwargs())
        if cfg.obs.tracing:
            self.enable_tracing()
        if cfg.obs.flight_recorders:
            self.enable_flight_recorders(
                capacity=cfg.obs.flight_capacity,
                dump_dir=cfg.obs.flight_dump_dir)
        if cfg.obs.slo_enabled:
            self.enable_slo(targets=cfg.obs.slo_targets,
                            bucket_cycles=cfg.obs.slo_bucket_cycles)
        if cfg.replication.enabled:
            self.start_replication(**cfg.replication.kwargs())

    @property
    def n_fpgas(self) -> int:
        return len(self.systems)

    @property
    def now(self) -> int:
        """The cluster clock (on windowed backends: the host partition's,
        which every board partition matches at each barrier)."""
        return self.engine.now

    def macs(self) -> List[str]:
        return [s.config.net.mac_addr for s in self.systems]

    def _require_dynamic_placement(self, what: str) -> None:
        if not self._backend.supports_dynamic_placement:
            raise ConfigError(
                f"{what} moves instances at simulated runtime, which only "
                f"the 'shared' backend supports (got "
                f"{self.backend_name!r})"
            )

    # -- lifecycle ---------------------------------------------------------

    def boot(self, extra_cycles: int = 5000) -> None:
        """Bring every board's OS services up."""
        self._backend.boot(extra_cycles)

    def enable_recovery(self, **kwargs) -> None:
        """Attach an intra-FPGA recovery watchdog to every board.

        Cross-FPGA failover stays the front-end's job; recovery handles
        restart-in-place / spare tiles *within* a surviving board.
        """
        self._backend.check_placement_open("enable_recovery()")
        for system in self.systems:
            system.enable_recovery(**kwargs)

    def enable_bitstream_cache(
        self,
        capacity_cells: Optional[int] = None,
        cycles_per_cell: Optional[int] = None,
        prefetch: bool = True,
        warm_placement: bool = True,
    ):
        """Attach the compile-and-cache pipeline to every board (once).

        From this call on, every deploy routes through each board's
        :class:`~repro.cluster.bitcache.BoardBitstreamStore` — cold
        designs pay one realistic synthesis run, warm ones reconfigure
        straight from the content-addressed artifact cache.  Also
        installs the cluster-level :attr:`bitplane` (prefetch + warm
        queries), makes the directory prefer warm boards
        (``warm_placement``), and makes autoscalers started later default
        to compile-ahead prefetch (``prefetch``).  Returns the plane.
        """
        from repro.cluster.bitcache import BitstreamPlane

        self._backend.check_placement_open("enable_bitstream_cache()")
        if self.bitplane is not None:
            raise ConfigError("the bitstream cache is already enabled")
        for i, system in enumerate(self.systems):
            system.enable_bitstream_cache(
                capacity_cells=capacity_cells,
                cycles_per_cell=cycles_per_cell,
                board=f"fpga{i}",
            )
        self.bitplane = BitstreamPlane(self)
        self.warm_placement = warm_placement
        self._cache_prefetch = prefetch
        return self.bitplane

    def start_frontend(self, **kwargs) -> FrontEnd:
        """Attach the load-balancing front-end (once)."""
        if self.frontend is not None:
            raise ConfigError("front-end is already running")
        self.frontend = FrontEnd(self, **kwargs)
        return self.frontend

    def start_autoscaler(self, service: str, **kwargs):
        """Attach a :class:`~repro.sched.Autoscaler` to one service.

        Requires a running front-end (its per-instance queues are the
        scaling signal).  Returns the started autoscaler.
        """
        from repro.sched import Autoscaler  # avoid a cyclic import

        self._require_dynamic_placement("the autoscaler")
        if self.frontend is None:
            raise ConfigError("start the front-end before the autoscaler")
        if self.cluster_config is not None:
            # config-object defaults; explicit kwargs win
            sched = self.cluster_config.sched
            kwargs = {**sched.autoscaler_kwargs(), **kwargs}
            if sched.prefetch is not None:
                kwargs.setdefault("prefetch", sched.prefetch)
            if self.slo is not None:
                kwargs.setdefault("slo", self.slo)
        # cache-aware default: scale-up prefetch follows the cache toggle
        kwargs.setdefault(
            "prefetch", self.bitplane is not None and self._cache_prefetch)
        scaler = Autoscaler(self, service, **kwargs)
        scaler.start()
        return scaler

    def deploy_stateless(self, service, handler_factory, **kwargs):
        self._backend.check_placement_open("deploy_stateless()")
        started = self.directory.deploy_stateless(service, handler_factory,
                                                  **kwargs)
        if self.frontend is not None:
            self.frontend.track_all()
        return started

    def deploy_sharded(self, service, handler_factory, **kwargs):
        self._backend.check_placement_open("deploy_sharded()")
        started = self.directory.deploy_sharded(service, handler_factory,
                                                **kwargs)
        if self.frontend is not None:
            self.frontend.track_all()
        return started

    def start_replication(self, **kwargs):
        """Attach the chain-replication control plane (once)."""
        from repro.replic import ReplicationManager  # avoid a cyclic import

        self._require_dynamic_placement("chain replication")
        if self.replication is not None:
            raise ConfigError("the replication manager is already running")
        self.replication = ReplicationManager(self, **kwargs)
        return self.replication

    def deploy_chain(self, service, machine_factory, **kwargs):
        """Deploy a chain-replicated stateful service.

        Requires :meth:`start_replication` first — chains are inert
        (epoch 0, rejecting everything) until the manager configures
        them.  Returns ``(load_started_events, configured_event)``.
        """
        if self.replication is None:
            raise ConfigError(
                "start_replication() before deploying a chained service"
            )
        started = self.directory.deploy_chain(service, machine_factory,
                                              **kwargs)
        if self.frontend is not None:
            self.frontend.track_all()
        configured = self.replication.manage(service)
        return started, configured

    def seal(self) -> None:
        """Freeze placement and hand boards to the backend's executors.

        A no-op on the shared backend; on ``parallel`` this is the fork
        point — deploys and recovery attachment must happen before it.
        Windowed runs work unsealed too (everything stays in-process),
        sealing is what unlocks actual parallelism.
        """
        self._backend.seal()

    def shutdown(self) -> None:
        """Release backend resources (parallel workers); idempotent."""
        self._backend.shutdown()

    def run(self, until: Optional[int] = None) -> None:
        self._backend.run(until)

    def run_until(self, events, limit: int = 10_000_000) -> None:
        """Advance the cluster until every event has triggered.

        The backend-portable way to wait for deploy/start events: on the
        shared backend this is ``engine.run_until_done(all_of(events))``;
        windowed backends step whole windows until the events settle (so
        the clock lands on the next barrier at or after the trigger).
        """
        self._backend.run_until(list(events), limit=limit)

    def register_fault_listener(self, listener) -> None:
        """Subscribe ``listener.on_board_fault(fpga, node, action,
        endpoint)`` to every board's fault stream — synchronously on the
        shared backend, at the window barrier on windowed ones."""
        self._backend.register_fault_listener(listener)

    # -- observability -----------------------------------------------------

    def enable_tracing(self) -> SpanRecorder:
        """One switch for the whole cluster (every partition's recorder)."""
        self._backend.enable_tracing()
        return self.spans

    def enable_flight_recorders(self, capacity: int = 256,
                                dump_dir: Optional[str] = None) -> None:
        """Attach one always-on flight recorder per board.

        Each board rings its most recent spans and operational events and
        dumps a validated JSON document on fault or kill (to ``dump_dir``
        when given).  On windowed backends call before :meth:`seal` —
        forked workers must inherit the recorders.
        """
        self._backend.enable_flight_recorders(capacity=capacity,
                                              dump_dir=dump_dir)

    def enable_slo(self, targets=(), bucket_cycles: int = 10_000):
        """Attach an :class:`~repro.obs.slo.SLOEngine` to the cluster.

        The front-end feeds it every admission rejection and completion;
        the autoscaler can scale on its burn signal (pass ``slo=`` to
        :meth:`start_autoscaler`).  Returns the engine; add further
        targets later via ``cluster.slo.add_target``.
        """
        from repro.obs.slo import SLOEngine

        if self.slo is None:
            self.slo = SLOEngine(bucket_cycles=bucket_cycles)
        for target in targets:
            self.slo.add_target(target)
        return self.slo

    def merged_spans(self) -> SpanRecorder:
        """Every partition's spans in one recorder (deterministic order)."""
        return self._backend.merged_spans()

    def merged_stats(self) -> StatsRegistry:
        """All boards' registries folded into one cluster roll-up."""
        return self._backend.merged_stats()

    def stats_snapshots(self) -> dict:
        """Per-board ``snapshot()`` dicts, keyed ``fpga0`` .. ``fpgaN-1``."""
        return self._backend.stats_snapshots()

    def flight_reports(self) -> dict:
        """Per-board flight snapshots + dumps, keyed ``fpga0``..``fpgaN-1``
        (``None`` for boards without a recorder)."""
        return self._backend.flight_reports()

    def span_index(self) -> SpanIndex:
        """Cross-FPGA causal index — every board plus the front-end."""
        return SpanIndex(self.merged_spans())

    # -- fault injection ---------------------------------------------------

    def kill_fpga(self, index: int) -> None:
        """Fail-stop a whole board: MAC off the fabric, every tile dead.

        Reported through each tile's fault manager so every subscriber —
        the front-end above all — learns the same way it would for an
        organic fault.  The board's recovery watchdog (if any) is stopped
        first: there is no board left to restart tiles on.
        """
        if index in self.killed:
            return
        self.killed.append(index)
        self._backend.kill_board(index)

    def partition_fpga(self, index: int) -> None:
        """Cut a board off the Ethernet fabric — both directions.

        The board itself keeps running and *believes it is healthy*: its
        tiles heartbeat, its services keep trying to serve.  Nothing
        reports a fault, so only probe misses reveal the partition — the
        asymmetric failure that turns a stale chain head into a
        split-brain unless epochs fence it.
        """
        if index in self.partitioned or index in self.killed:
            return
        self.partitioned.append(index)
        self._backend.partition_board(index)

    def heal_fpga(self, index: int) -> None:
        """Reconnect a partitioned board.

        The board comes back exactly as it left — including any fenced
        stale chain members, which now finally hear their ``chain.fence``
        (and whose buffered writes get nacked).  The replication manager
        is nudged to retry deferred replica placements.
        """
        if index not in self.partitioned:
            return
        self.partitioned.remove(index)
        self._backend.heal_board(index)
        if self.replication is not None:
            self.replication.notify_heal()

    def describe(self) -> str:
        lines = [f"Apiary cluster: {self.n_fpgas} FPGA(s), "
                 f"{len(self.directory.services)} service(s), "
                 f"backend={self.backend_name}"]
        for i, system in enumerate(self.systems):
            status = "KILLED" if i in self.killed else "up"
            insts = self.directory.instances_on(i)
            lines.append(
                f"  fpga{i} [{status}] "
                f"{system.config.noc.width}x{system.config.noc.height}: "
                + ", ".join(inst.iid for inst in insts)
            )
        return "\n".join(lines)
