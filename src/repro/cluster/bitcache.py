"""Per-board bitstream artifact caches + the cluster prefetch plane.

The other half of the compile pipeline (:mod:`repro.hw.compile`): once a
design is synthesized into a content-addressed
:class:`~repro.hw.compile.BitstreamArtifact`, re-synthesizing it for the
next replica is pure reconfiguration tax.  Each board carries a
:class:`BoardBitstreamStore` — an LRU artifact cache in front of one
deterministic :class:`~repro.hw.compile.CompileService`:

* **hit** — the artifact is returned synchronously; the load pays only
  the partial-reconfiguration write (the warm path S2's scale-up wants);
* **miss** — the design enters the board's synthesis queue (megacycles);
  requests for the same digest coalesce onto the in-flight build;
* **overlay reuse** — one cached artifact serves *every* region whose
  capacity fits its cost envelope (the digest covers the cost, which is
  the region-shape the artifact was floorplanned against), so all of a
  board's uniform tile slots share entries;
* **LRU eviction** — the cache is bounded in logic cells; least-recently
  used artifacts fall out first (re-acquirable at synthesis cost).

:class:`BitstreamPlane` is the thin cluster-level coordinator: it can
push a design family warm onto boards ahead of need (*prefetch*), answer
"which boards are warm?" for placement, and roll board telemetry up.
The autoscaler drives prefetch from its jump-scaling early-warning and
``slo_burn`` signals; accuracy (prefetched artifacts later used /
prefetches completed) is a first-class gauge.

Determinism/PDES contract: a store's entire state lives on its board —
its engine events, its LRU order, its counters (registered in the
board's :class:`~repro.sim.StatsRegistry`, so they ride the existing
deterministic cross-partition merge).  Nothing here reads another
partition's state at simulated runtime, which is what keeps sequential
and parallel windowed runs byte-identical through mid-run board kills.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional

from repro.errors import ConfigError
from repro.hw.bitstream import Bitstream, DesignRuleChecker
from repro.hw.compile import (
    SYNTH_CYCLES_PER_CELL,
    BitstreamArtifact,
    CompileService,
    artifact_digest,
)

__all__ = ["BoardBitstreamStore", "BitstreamPlane", "DEFAULT_CACHE_CELLS"]

#: Default LRU budget: four 60k-cell service shells' worth of artifacts.
DEFAULT_CACHE_CELLS = 256_000


class _Entry:
    """One cached artifact + its prefetch-accuracy bookkeeping."""

    __slots__ = ("artifact", "prefetch_unused")

    def __init__(self, artifact: BitstreamArtifact, prefetched: bool):
        self.artifact = artifact
        #: True while this entry arrived via prefetch and no load has
        #: used it yet — the denominator-side marker of the accuracy gauge
        self.prefetch_unused = prefetched


class BoardBitstreamStore:
    """One board's artifact cache + synthesis worker.

    ``acquire()`` is the single entry point the management plane calls on
    every load: it returns an event that succeeds with the artifact —
    synchronously on a hit, after synthesis on a miss.  ``prefetch()``
    warms the cache without a load attached.  All counters are mirrored
    into the board's stats registry under ``bitcache.*`` / ``synth.*``.
    """

    def __init__(
        self,
        engine,
        drc: Optional[DesignRuleChecker] = None,
        stats=None,
        board: str = "fpga0",
        capacity_cells: int = DEFAULT_CACHE_CELLS,
        cycles_per_cell: int = SYNTH_CYCLES_PER_CELL,
    ):
        if capacity_cells < 1:
            raise ConfigError(
                f"capacity_cells must be >= 1, got {capacity_cells}")
        self.engine = engine
        self.stats = stats
        self.board = board
        self.capacity_cells = capacity_cells
        self.compiler = CompileService(
            engine, drc=drc, stats=stats, name=f"synth.{board}",
            cycles_per_cell=cycles_per_cell)
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.prefetches_issued = 0
        self.prefetches_completed = 0
        self.prefetches_used = 0

    # -- cache mechanics ---------------------------------------------------

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    def warm(self, bitstream: Bitstream) -> bool:
        """Is this design's artifact resident (a load would be a hit)?"""
        return artifact_digest(bitstream) in self._entries

    def compiling(self, bitstream: Bitstream) -> bool:
        """Is this design currently queued/being synthesized here?"""
        return artifact_digest(bitstream) in self.compiler._in_flight

    def cached_cells(self) -> int:
        return sum(e.artifact.size_cells for e in self._entries.values())

    def _insert(self, artifact: BitstreamArtifact, prefetched: bool) -> None:
        if artifact.digest in self._entries:
            # a load and a prefetch raced onto one build; keep the entry,
            # a real use clears any pending prefetch marker
            if not prefetched:
                self._entries[artifact.digest].prefetch_unused = False
            self._entries.move_to_end(artifact.digest)
            return
        self._entries[artifact.digest] = _Entry(artifact, prefetched)
        self._entries.move_to_end(artifact.digest)
        while (self.cached_cells() > self.capacity_cells
               and len(self._entries) > 1):
            victim_digest, victim = next(iter(self._entries.items()))
            del self._entries[victim_digest]
            self.evictions += 1
            self._count("evictions")

    def _touch(self, digest: str) -> BitstreamArtifact:
        entry = self._entries[digest]
        self._entries.move_to_end(digest)
        if entry.prefetch_unused:
            entry.prefetch_unused = False
            self.prefetches_used += 1
            self._count("prefetch_used")
        return entry.artifact

    # -- the two entry points ----------------------------------------------

    def acquire(self, bitstream: Bitstream):
        """Event -> :class:`BitstreamArtifact` for a load of ``bitstream``.

        Hit: succeeds synchronously (zero added cycles — the warm path).
        Miss: succeeds after this board's synthesis queue builds the
        design (coalescing with any in-flight build of the same digest).
        Fails with the DRC rejection for screened-out designs.
        """
        digest = artifact_digest(bitstream)
        done = self.engine.event(f"{self.board}.bitcache.acquire")
        if digest in self._entries:
            self.hits += 1
            self._count("hits")
            done.succeed(self._touch(digest))
            return done
        self.misses += 1
        self._count("misses")
        build = self.compiler.compile(bitstream)

        def on_built(ev) -> None:
            if ev.failed:
                done.fail(ev.value)
                return
            self._insert(ev.value, prefetched=False)
            done.succeed(self._touch(ev.value.digest))

        build.add_callback(on_built)
        return done

    def prefetch(self, bitstream: Bitstream):
        """Warm the cache for ``bitstream`` without a load attached.

        Returns the completion event; succeeds with the artifact (or
        ``None`` when already warm — a redundant prefetch costs nothing
        and is not counted against accuracy).
        """
        done = self.engine.event(f"{self.board}.bitcache.prefetch")
        digest = artifact_digest(bitstream)
        if digest in self._entries:
            done.succeed(None)
            return done
        self.prefetches_issued += 1
        self._count("prefetch_issued")
        build = self.compiler.compile(bitstream)

        def on_built(ev) -> None:
            if ev.failed:
                done.fail(ev.value)
                return
            self.prefetches_completed += 1
            self._count("prefetch_completed")
            self._insert(ev.value, prefetched=True)
            done.succeed(ev.value)

        build.add_callback(on_built)
        return done

    # -- gauges ------------------------------------------------------------

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return round(self.hits / total, 4) if total else 0.0

    def prefetch_accuracy(self) -> float:
        if not self.prefetches_completed:
            return 0.0
        return round(self.prefetches_used / self.prefetches_completed, 4)

    def telemetry(self) -> Dict[str, float]:
        """The three gauges the tentpole promises, plus raw counters."""
        return {
            "hit_rate": self.hit_rate(),
            "prefetch_accuracy": self.prefetch_accuracy(),
            "synth_backlog": float(self.compiler.backlog),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
            "cached_artifacts": float(len(self._entries)),
            "cached_cells": float(self.cached_cells()),
            "prefetches_issued": float(self.prefetches_issued),
            "prefetches_completed": float(self.prefetches_completed),
            "prefetches_used": float(self.prefetches_used),
        }

    def _count(self, what: str) -> None:
        if self.stats is not None:
            self.stats.counter(f"bitcache.{what}").inc()


class BitstreamPlane:
    """Cluster-level coordinator over every board's store.

    Prefetch targets and warm queries are *advisory* routing state (like
    the service directory), never simulated-runtime cross-partition
    state — on windowed backends everything here happens in the serial
    pre-seal phase, matching the dynamic-placement restriction that
    already applies to the autoscaler driving it.
    """

    def __init__(self, cluster):
        self.cluster = cluster

    def store(self, fpga: int) -> BoardBitstreamStore:
        store = self.cluster.systems[fpga].bitstore
        if store is None:
            raise ConfigError(f"fpga{fpga} has no bitstream store")
        return store

    def _alive(self) -> List[int]:
        return [i for i in range(len(self.cluster.systems))
                if i not in self.cluster.killed]

    def warm_boards(self, bitstream: Bitstream) -> List[int]:
        """Alive boards whose cache already holds this design."""
        return [i for i in self._alive() if self.store(i).warm(bitstream)]

    def prefetch(self, bitstream: Bitstream,
                 fpgas: Optional[Iterable[int]] = None) -> Dict[int, object]:
        """Warm ``bitstream`` on boards (default: every alive board).

        Boards already warm — or already synthesizing the design — are
        skipped.  Returns ``{fpga: completion_event}`` for the prefetches
        actually issued.
        """
        targets = list(fpgas) if fpgas is not None else self._alive()
        issued: Dict[int, object] = {}
        for i in targets:
            if i in self.cluster.killed:
                continue
            store = self.store(i)
            if store.warm(bitstream) or store.compiling(bitstream):
                continue
            issued[i] = store.prefetch(bitstream)
        return issued

    def prefetch_service(self, service: str,
                         fpgas: Optional[Iterable[int]] = None
                         ) -> Dict[int, object]:
        """Warm a deployed service's design family on boards.

        The service's replicas all share one artifact family
        (:class:`~repro.cluster.service.ClusterPortedService` for
        stateless/sharded services, ``ChainNodeService`` for chains), so
        one prefetch per board covers every future replica there.
        """
        spec = self.cluster.directory.spec(service)
        if spec.chained:
            from repro.replic.chain import ChainNodeService
            bitstream = ChainNodeService.family_bitstream()
        else:
            from repro.cluster.service import ClusterPortedService
            bitstream = ClusterPortedService.family_bitstream()
        return self.prefetch(bitstream, fpgas=fpgas)

    def telemetry(self) -> Dict[str, Dict[str, float]]:
        """Per-board gauge dicts, keyed ``fpga0`` .. ``fpgaN-1``."""
        return {f"fpga{i}": self.store(i).telemetry()
                for i in range(len(self.cluster.systems))}
