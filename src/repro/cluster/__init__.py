"""Scale-out serving: multi-FPGA clusters of Apiary systems.

The paper treats one directly-attached FPGA as a network citizen; this
package composes N of them into a serving cluster — a shared fabric, a
:class:`ServiceDirectory` placing sharded/replicated service instances,
and a health-aware :class:`FrontEnd` that load-balances, batches,
admission-controls, and fails shards over to surviving replicas when a
board dies.
"""

from repro.cluster.bitcache import (
    DEFAULT_CACHE_CELLS,
    BitstreamPlane,
    BoardBitstreamStore,
)
from repro.cluster.cluster import Cluster
from repro.cluster.config import (
    CacheConfig,
    ClusterConfig,
    ObsConfig,
    RecoveryConfig,
    ReplicationConfig,
    SchedConfig,
)
from repro.cluster.directory import (
    HashRing,
    ServiceDirectory,
    ServiceInstance,
    ServiceSpec,
)
from repro.cluster.frontend import FRONTEND_PORT, BackendHealth, FrontEnd
from repro.cluster.service import ClusterPortedService
from repro.cluster.smoke import availability_smoke, scaling_smoke

__all__ = [
    "Cluster",
    "ClusterConfig",
    "RecoveryConfig",
    "ObsConfig",
    "SchedConfig",
    "ReplicationConfig",
    "CacheConfig",
    "BitstreamPlane",
    "BoardBitstreamStore",
    "DEFAULT_CACHE_CELLS",
    "ServiceDirectory",
    "ServiceInstance",
    "ServiceSpec",
    "HashRing",
    "FrontEnd",
    "BackendHealth",
    "FRONTEND_PORT",
    "ClusterPortedService",
    "scaling_smoke",
    "availability_smoke",
]
