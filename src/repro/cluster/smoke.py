"""Reusable cluster experiments: the S1 scaling and availability runs.

One parameterized harness shared by the unit tests, the S1 benchmark,
and the CI scaling smoke — so all three measure the same thing and the
CI byte-identity check pins the whole cluster stack (placement, routing,
batching, retries) to deterministic behaviour.

Every quantity is derived from the simulated clock and seeded streams;
two calls with the same arguments produce identical stats dicts.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.cluster.cluster import Cluster
from repro.kernel.config import SystemConfig
from repro.obs.span import SpanRecorder
from repro.policy import RetryPolicy
from repro.sim import Histogram
from repro.workloads.client import ClusterClient

__all__ = ["scaling_smoke", "availability_smoke", "span_dump"]


def span_dump(spans: SpanRecorder) -> List[tuple]:
    """Flatten a recorder to comparable tuples (the identity-check shape).

    Detail dicts are rendered through ``repr`` of their sorted items so
    any picklable payload compares deterministically.
    """
    return [
        (rec.trace_id, rec.span_id, rec.parent_id, rec.name, rec.category,
         rec.source, rec.start, rec.end, repr(sorted(rec.detail.items())))
        for rec in spans
    ]


def _echo_handler_factory(work_cycles: int):
    """A CPU-bound echo service: every request costs ``work_cycles``."""

    def make():
        def handler(body):
            return work_cycles, {"echo": body.get("x") if isinstance(body, dict) else None}, 64
        return handler

    return make


def _kv_handler_factory(work_cycles: int):
    """A tiny per-shard key-value store (get/put)."""

    def make(shard: int):
        store: Dict[Any, Any] = {}

        def handler(body):
            op = body.get("op")
            if op == "put":
                store[body["key"]] = body["value"]
                return work_cycles, {"ok": True, "shard": shard}, 32
            if op == "get":
                return work_cycles, {"ok": body["key"] in store,
                                     "value": store.get(body["key"]),
                                     "shard": shard}, 64
            return work_cycles, {"ok": False, "error": f"bad op {op!r}"}, 32

        return handler

    return make


def _build(n_fpgas: int, seed: int, swallow_orphan_errors: bool = False,
           backend: str = "shared", cache: bool = False) -> Cluster:
    config = SystemConfig.figure1()
    if seed:
        from dataclasses import replace
        config = replace(config, seed=seed)
    # fault-injection runs swallow orphan errors and observe faults
    # through the Apiary fault path (the Engine's documented contract)
    cluster = Cluster(n_fpgas=n_fpgas, config=config, backend=backend,
                      swallow_orphan_errors=swallow_orphan_errors)
    if cache:
        # before boot(), so even the OS-service loads route through the
        # per-board compile pipeline (a realistic cold boot)
        cluster.enable_bitstream_cache()
    cluster.boot()
    return cluster


def _identity_payload(cluster: Cluster) -> Dict[str, Any]:
    """What the determinism checks compare between backends."""
    return {
        "spans": span_dump(cluster.merged_spans()),
        "stats": cluster.stats_snapshots(),
    }


def scaling_smoke(
    n_fpgas: int = 2,
    seed: int = 0,
    duration: int = 300_000,
    clients: int = 16,
    requests_per_client: int = 200,
    work_cycles: int = 4_000,
    instances_per_fpga: int = 2,
    max_pending: int = 256,
    trace: bool = False,
    backend: str = "shared",
    identity: bool = False,
) -> Dict[str, Any]:
    """Closed-loop echo workload against ``n_fpgas`` boards.

    Returns aggregate throughput (requests per kilocycle), latency
    percentiles, and front-end counters.  Throughput should scale with
    ``n_fpgas`` while the backends are the bottleneck — the S1 claim.

    ``backend`` selects the cluster execution backend; ``identity=True``
    attaches the span/stats payload the PDES determinism checks compare
    between the sequential oracle and the parallel worker pool.
    """
    cluster = _build(n_fpgas, seed, backend=backend)
    if trace:
        cluster.enable_tracing()
    started = cluster.deploy_stateless(
        "echo", _echo_handler_factory(work_cycles),
        instances=instances_per_fpga * n_fpgas)
    # partial reconfiguration is hundreds of kilocycles per bitstream;
    # measure serving, not deployment
    cluster.run_until(started, limit=50_000_000)
    # a saturated (not dead) backend answers after its queue drains; the
    # per-attempt timeout must sit above worst-case queueing delay or
    # health tracking mistakes overload for death
    patient = RetryPolicy(
        deadline=duration,
        attempt_timeout=max(30_000,
                            2 * work_cycles * max(1, clients)),
        backoff_base=200, backoff_cap=2_000)
    frontend = cluster.start_frontend(max_pending=max_pending,
                                      retry=patient)
    cluster.run(until=cluster.engine.now + 5_000)
    cluster.seal()  # parallel backend forks its board workers here

    hosts = []
    start = cluster.engine.now
    for c in range(clients):
        host = ClusterClient(cluster.engine, cluster.fabric, f"host{c}")
        requests = [{"body": {"x": c * requests_per_client + i}}
                    for i in range(requests_per_client)]
        cluster.engine.process(
            host.closed_loop_service("echo", requests, timeout=duration),
            name=f"{host.mac}.loop")
        hosts.append(host)
    cluster.run(until=start + duration)
    elapsed = cluster.engine.now - start

    ok = sum(h.ok for h in hosts)
    merged = Histogram("cluster.latency")
    for h in hosts:
        merged.merge(h.latency)
    stats = {
        "n_fpgas": n_fpgas,
        "clients": clients,
        "work_cycles": work_cycles,
        "instances": instances_per_fpga * n_fpgas,
        "elapsed_cycles": elapsed,
        "completed": ok,
        "rejected": sum(h.rejected for h in hosts),
        "failed": sum(h.failed for h in hosts),
        "throughput_per_kcycle": round(ok * 1_000 / elapsed, 4) if elapsed else 0.0,
        "p50_cycles": merged.percentile(50) if merged.count else 0.0,
        "p99_cycles": merged.percentile(99) if merged.count else 0.0,
        "frontend": {
            "admitted": frontend.requests_admitted,
            "rejected": frontend.requests_rejected,
            "failed": frontend.requests_failed,
            "batches_sent": frontend.batches_sent,
            "failovers": frontend.failovers,
        },
    }
    if identity:
        stats["identity"] = _identity_payload(cluster)
    cluster.shutdown()
    return stats


def availability_smoke(
    n_fpgas: int = 2,
    seed: int = 0,
    n_shards: int = 4,
    replication: int = 2,
    work_cycles: int = 2_000,
    keys: int = 32,
    kill_index: Optional[int] = 1,
    kill_after: int = 150_000,
    post_kill: int = 400_000,
    trace: bool = False,
    backend: str = "shared",
    identity: bool = False,
    cache: bool = False,
) -> Dict[str, Any]:
    """Sharded kvstore + mid-run board kill; measures service continuity.

    Phase 1 writes ``keys`` keys (replicated per shard), phase 2 reads
    them back continuously; at ``kill_after`` one board dies.  The stat
    that matters: ``post_kill_hit_rate`` — reads answered correctly from
    surviving replicas after the kill.  On windowed backends the kill
    lands at a window barrier, identically for ``sequential`` and
    ``parallel`` — the chaos arm of the PDES determinism contract.
    ``cache=True`` routes every load through the per-board bitstream
    compile-and-cache pipeline, putting its counters/state into the same
    identity payload — the cache arm of that contract.
    """
    cluster = _build(n_fpgas, seed, swallow_orphan_errors=True,
                     backend=backend, cache=cache)
    if trace:
        cluster.enable_tracing()
    started = cluster.deploy_sharded("kv", _kv_handler_factory(work_cycles),
                                     n_shards=n_shards,
                                     replication=replication)
    cluster.run_until(started, limit=50_000_000)
    cluster.start_frontend(max_pending=256)
    cluster.run(until=cluster.engine.now + 5_000)
    cluster.seal()

    host = ClusterClient(cluster.engine, cluster.fabric, "host0")
    key_names = [f"key{i}" for i in range(keys)]
    writes = [{"body": {"op": "put", "key": k, "value": f"v-{k}"},
               "key": k, "write": True} for k in key_names]
    done_writes = cluster.engine.process(
        host.closed_loop_service("kv", writes, timeout=200_000),
        name="host0.writes")
    cluster.run_until([done_writes.done], limit=5_000_000)
    writes_ok = host.ok

    # continuous read phase, kill mid-way through
    outcome = {"pre_ok": 0, "pre_bad": 0, "post_ok": 0, "post_bad": 0}
    killed_at = []

    def reader():
        i = 0
        while True:
            k = key_names[i % len(key_names)]
            i += 1
            phase = "post" if killed_at else "pre"
            try:
                reply = yield host.call_service(
                    "kv", {"op": "get", "key": k}, key=k, timeout=100_000)
            except Exception:
                outcome[f"{phase}_bad"] += 1
                continue
            good = (isinstance(reply, dict) and reply.get("ok")
                    and isinstance(reply.get("body"), dict)
                    and reply["body"].get("value") == f"v-{k}")
            outcome[f"{phase}_ok" if good else f"{phase}_bad"] += 1

    cluster.engine.process(reader(), name="host0.reads")
    start = cluster.engine.now
    if kill_index is not None:
        cluster.run(until=start + kill_after)
        killed_at.append(cluster.engine.now)
        cluster.kill_fpga(kill_index)
        cluster.run(until=start + kill_after + post_kill)
    else:
        cluster.run(until=start + kill_after + post_kill)

    pre_total = outcome["pre_ok"] + outcome["pre_bad"]
    post_total = outcome["post_ok"] + outcome["post_bad"]
    stats = {
        "n_fpgas": n_fpgas,
        "n_shards": n_shards,
        "replication": replication,
        "writes_ok": writes_ok,
        "keys": keys,
        "killed_fpga": kill_index,
        "pre_kill_reads": pre_total,
        "pre_kill_hit_rate": round(outcome["pre_ok"] / pre_total, 4) if pre_total else 0.0,
        "post_kill_reads": post_total,
        "post_kill_ok": outcome["post_ok"],
        "post_kill_hit_rate": round(outcome["post_ok"] / post_total, 4) if post_total else 0.0,
        "failovers": cluster.frontend.failovers,
        "health": cluster.frontend.health_table(),
    }
    if identity:
        stats["identity"] = _identity_payload(cluster)
    cluster.shutdown()
    return stats
