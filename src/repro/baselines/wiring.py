"""Wiring/resource models: per-service ports vs. one NoC interface (A1).

Section 4.3: "In previous work, the number of physical interfaces is
coupled with the number of services available ... This means that when
adding or removing services, the number of physical interfaces and the
underlying wires are directly impacted."  These analytic models quantify
that: wire and logic cost of the port-per-service style (Coyote/AmorphOS)
versus Apiary's single NoC interface per tile, as service count grows.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigError
from repro.hw.resources import router_cost

__all__ = ["port_coupled_wiring", "noc_wiring"]

#: Width of one AXI4 service port in wires (data + addr + handshake).
AXI_PORT_WIRES = 350
#: Logic cells for one port's endpoint logic (protocol FSM + FIFOs).
PORT_ENDPOINT_CELLS = 900
#: Per-service central mux/demux cost scales with attached accelerators.
MUX_CELLS_PER_ATTACHMENT = 250

#: Width of one NoC link (data + flow control).
NOC_LINK_WIRES = 150
#: NI endpoint logic per tile.
NI_CELLS = 1_100


def port_coupled_wiring(num_accels: int, num_services: int) -> Dict[str, int]:
    """Coyote/AmorphOS style: every accelerator gets one port per service.

    Wires and endpoint logic grow with ``accels * services``; each service
    also needs a mux tree over all attached accelerators.
    """
    if num_accels < 1 or num_services < 0:
        raise ConfigError("need >= 1 accelerator and >= 0 services")
    ports = num_accels * num_services
    wires = ports * AXI_PORT_WIRES
    cells = (
        ports * PORT_ENDPOINT_CELLS
        + num_services * num_accels * MUX_CELLS_PER_ATTACHMENT
    )
    return {
        "ports": ports,
        "wires": wires,
        "logic_cells": cells,
    }


def noc_wiring(num_accels: int, num_services: int,
               mesh_width: int = 0, hardened: bool = False) -> Dict[str, int]:
    """Apiary style: one NI per tile, services addressed in the message.

    Wires grow with the *mesh links*, not the service count; adding a
    service adds zero physical interfaces ("the same physical interface to
    communicate with multiple services").
    """
    if num_accels < 1 or num_services < 0:
        raise ConfigError("need >= 1 accelerator and >= 0 services")
    tiles = num_accels + num_services
    if mesh_width <= 0:
        mesh_width = max(1, int(tiles ** 0.5 + 0.9999))
    mesh_height = (tiles + mesh_width - 1) // mesh_width
    # directed mesh links
    links = 2 * (mesh_width * (mesh_height - 1) + mesh_height * (mesh_width - 1))
    wires = (links + tiles) * NOC_LINK_WIRES  # +tiles for the local links
    cells = tiles * (NI_CELLS + router_cost(hardened=hardened).logic_cells)
    return {
        "ports": tiles,  # one local port each, regardless of service count
        "wires": wires,
        "logic_cells": cells,
    }
