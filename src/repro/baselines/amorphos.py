"""AmorphOS-style morphlet multiplexing — the time-sharing baseline.

AmorphOS "dynamically recompiles FPGA bitfiles and uses partial
reconfiguration to multiplex an FPGA between different applications" but
"does not provide higher-level services or address inter-accelerator
interactions" (Section 5).  The OS-relevant consequence we model: when more
apps than slots are resident, serving an app whose morphlet is not loaded
pays a *reconfiguration* delay — whereas Apiary keeps co-resident tiles and
pays only NoC hops.

Used by the composition/ablation experiments to show where time-sharing
loses to spatial sharing (and where it wins: very large morphlets that
couldn't co-reside).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.hw.region import RECONFIG_CYCLES_PER_CELL
from repro.sim import Engine, Resource

__all__ = ["MorphletScheduler", "Morphlet"]

Handler = Callable[[Any], Tuple[int, Any, int]]


class Morphlet:
    """One application's bitstream + handler in the AmorphOS model."""

    def __init__(self, name: str, handler: Handler, logic_cells: int):
        if logic_cells < 1:
            raise ConfigError("morphlet needs a positive size")
        self.name = name
        self.handler = handler
        self.logic_cells = logic_cells
        self.requests_served = 0
        self.reconfigs = 0

    @property
    def reconfig_cycles(self) -> int:
        return max(1, self.logic_cells * RECONFIG_CYCLES_PER_CELL)


class MorphletScheduler:
    """LRU-resident morphlet slots over one FPGA.

    ``invoke(name, body)`` is a process generator: it faults the morphlet
    in if needed (paying reconfiguration), then runs the handler.  The
    fabric itself is serialized per slot; distinct resident morphlets run
    concurrently (spatial sharing across slots, time sharing within).
    """

    def __init__(self, engine: Engine, slots: int = 2):
        if slots < 1:
            raise ConfigError("need at least one slot")
        self.engine = engine
        self.slots = slots
        self._morphlets: Dict[str, Morphlet] = {}
        #: name -> slot resource, for resident morphlets (LRU order)
        self._resident: "OrderedDict[str, Resource]" = OrderedDict()
        self._reconfig_port = Resource(engine, slots=1, name="icap")
        self.faults = 0
        self.hits = 0

    def register(self, morphlet: Morphlet) -> None:
        if morphlet.name in self._morphlets:
            raise ConfigError(f"morphlet {morphlet.name!r} already registered")
        self._morphlets[morphlet.name] = morphlet

    @property
    def resident_names(self):
        return list(self._resident)

    def invoke(self, name: str, body: Any):
        """Process generator: returns the handler's (out_body, out_bytes)."""
        morphlet = self._morphlets.get(name)
        if morphlet is None:
            raise ConfigError(f"unknown morphlet {name!r}")
        if name in self._resident:
            self.hits += 1
            self._resident.move_to_end(name)
        else:
            self.faults += 1
            morphlet.reconfigs += 1
            # only one reconfiguration at a time through the config port
            grant = yield self._reconfig_port.acquire()
            try:
                if len(self._resident) >= self.slots:
                    self._resident.popitem(last=False)  # evict LRU
                yield morphlet.reconfig_cycles
                self._resident[name] = Resource(
                    self.engine, slots=1, name=f"slot.{name}"
                )
            finally:
                self._reconfig_port.release(grant)
        unit = self._resident[name]
        grant = yield unit.acquire()
        try:
            cycles, out_body, out_bytes = morphlet.handler(body)
            yield cycles
        finally:
            unit.release(grant)
        morphlet.requests_served += 1
        return out_body, out_bytes
