"""Bare direct-attached FPGA — no OS at all.

The lower bound on latency and the zero-isolation point: accelerators hang
directly off the MAC with hand-wired dispatch, exactly the
everything-trusts-everything status quo Section 2 describes.  A fault in
*any* handler stops the whole board (there is no containment boundary), and
there is no rate limiting, no capabilities, no monitors.

Handlers follow the shared convention:
``handler(body) -> (compute_cycles, response_body, response_bytes)``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ConfigError, TileFault
from repro.net.frame import EthernetFabric, EthernetFrame
from repro.net.transport import ReliableEndpoint
from repro.sim import Engine, Resource

__all__ = ["BareFpgaSystem", "Handler"]

Handler = Callable[[Any], Tuple[int, Any, int]]


class BareFpgaSystem:
    """Direct-attached FPGA with hand-wired accelerators.

    Compute concurrency: each port's handler is a dedicated accelerator
    (its own :class:`Resource`), matching spatially shared fabric.
    """

    def __init__(self, engine: Engine, fabric: EthernetFabric, mac_addr: str,
                 transport_window: int = 16, transport_timeout: int = 50_000):
        self.engine = engine
        self.fabric = fabric
        self.mac_addr = mac_addr
        self.transport_window = transport_window
        self.transport_timeout = transport_timeout
        self._handlers: Dict[int, Handler] = {}
        self._units: Dict[int, Resource] = {}
        self._peers: Dict[str, ReliableEndpoint] = {}
        self.dead = False  # a fault anywhere kills the whole board
        self.requests_served = 0
        self.requests_lost_to_fault = 0
        self.fpga_busy_cycles = 0  # energy accounting
        fabric.attach(mac_addr, self._rx_frame)

    def register(self, port: int, handler: Handler) -> None:
        if port in self._handlers:
            raise ConfigError(f"port {port} already wired")
        self._handlers[port] = handler
        self._units[port] = Resource(self.engine, slots=1,
                                     name=f"{self.mac_addr}.accel{port}")

    # -- datapath ---------------------------------------------------------------

    def _peer(self, peer_mac: str) -> ReliableEndpoint:
        if peer_mac not in self._peers:
            endpoint = ReliableEndpoint(
                self.engine, self.fabric.transmit, self.mac_addr, peer_mac,
                window=self.transport_window, timeout=self.transport_timeout,
                name=f"bare.{self.mac_addr}->{peer_mac}",
            )
            self._peers[peer_mac] = endpoint
            self.engine.process(self._serve_loop(endpoint),
                                name=f"{self.mac_addr}.serve.{peer_mac}")
        return self._peers[peer_mac]

    def _rx_frame(self, frame: EthernetFrame) -> None:
        if self.dead:
            return  # a hung board drops everything silently
        self._peer(frame.src_mac).deliver_frame(frame)

    def _serve_loop(self, endpoint: ReliableEndpoint):
        while True:
            payload = yield endpoint.recv()
            if self.dead:
                self.requests_lost_to_fault += 1
                continue
            data = payload.get("data")
            if not (isinstance(data, tuple) and data[0] == "req"):
                continue
            self.engine.process(
                self._serve_one(endpoint, payload),
                name=f"{self.mac_addr}.req",
            )

    def _serve_one(self, endpoint: ReliableEndpoint, payload: Dict[str, Any]):
        _tag, rid, body = payload["data"]
        port = payload.get("port")
        handler = self._handlers.get(port)
        if handler is None:
            return  # nothing wired: silently dropped (no OS to NACK)
        unit = self._units[port]
        grant = yield unit.acquire()
        try:
            try:
                cycles, out_body, out_bytes = handler(body)
            except TileFault:
                # no isolation: the whole board wedges
                self.dead = True
                return
            self.fpga_busy_cycles += cycles
            yield cycles
        finally:
            unit.release(grant)
        self.requests_served += 1
        yield endpoint.send(
            {"port": port, "data": ("resp", rid, out_body),
             "src_mac": self.mac_addr},
            payload_bytes=out_bytes,
        )
