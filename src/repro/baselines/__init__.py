"""Comparison baselines: bare FPGA, Coyote-like hosted, AmorphOS morphlets,
and the analytic port-coupling wiring models."""

from repro.baselines.amorphos import Morphlet, MorphletScheduler
from repro.baselines.bare import BareFpgaSystem
from repro.baselines.hosted import HostedFpgaSystem
from repro.baselines.wiring import noc_wiring, port_coupled_wiring

__all__ = [
    "BareFpgaSystem",
    "HostedFpgaSystem",
    "MorphletScheduler",
    "Morphlet",
    "port_coupled_wiring",
    "noc_wiring",
]
