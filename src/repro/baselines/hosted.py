"""Host-mediated FPGA (Coyote-style) — the baseline Apiary argues against.

"Earlier efforts to build FPGA operating systems, such as Coyote and
AmorphOS, delegate key operating system functions such as memory management
and virtualization to an attached server CPU" (Section 1).  Here the
datapath is: NIC -> host kernel (or bypass) stack on a CPU core -> PCIe DMA
to the FPGA -> accelerator compute -> DMA back -> host stack -> NIC.

Every stage charges realistic costs from :mod:`repro.net.hoststack`; the
host CPU's scheduling jitter is the mechanism behind the hosted tail
latencies D2 measures, and ``cpu.cycles_used`` is D3's CPU-overhead metric.
Permissions are host-managed (a dict keyed by client MAC), mirroring
Coyote's "every accelerator is attached to a specific CPU process ... with
permissions managed by the host OS."
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Set, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.net.frame import EthernetFabric, EthernetFrame
from repro.net.hoststack import HostCpu, HostNetStack, PcieLink
from repro.net.transport import ReliableEndpoint
from repro.sim import Engine, Resource

__all__ = ["HostedFpgaSystem"]

Handler = Callable[[Any], Tuple[int, Any, int]]


class HostedFpgaSystem:
    """A server with a PCIe-attached FPGA, Coyote-style."""

    def __init__(
        self,
        engine: Engine,
        fabric: EthernetFabric,
        mac_addr: str,
        cores: int = 4,
        kernel_bypass: bool = False,
        pcie_gen: int = 3,
        vfpga_slots: int = 4,
        rng: Optional[np.random.Generator] = None,
        jitter_prob: float = 0.15,
        transport_window: int = 16,
        transport_timeout: int = 50_000,
    ):
        self.engine = engine
        self.fabric = fabric
        self.mac_addr = mac_addr
        self.cpu = HostCpu(engine, cores=cores, rng=rng,
                           jitter_prob=jitter_prob)
        self.netstack = HostNetStack(kernel_bypass=kernel_bypass)
        self.pcie = PcieLink(engine, gen=pcie_gen)
        self.vfpga = Resource(engine, slots=vfpga_slots, name="vfpga")
        self.transport_window = transport_window
        self.transport_timeout = transport_timeout
        self._handlers: Dict[int, Handler] = {}
        #: host-OS permission table: port -> allowed client MACs (None = any)
        self._acl: Dict[int, Optional[Set[str]]] = {}
        self._peers: Dict[str, ReliableEndpoint] = {}
        self.requests_served = 0
        self.requests_denied = 0
        self.fpga_busy_cycles = 0  # energy accounting
        fabric.attach(mac_addr, self._rx_frame)

    def register(self, port: int, handler: Handler,
                 allowed_clients: Optional[Set[str]] = None) -> None:
        if port in self._handlers:
            raise ConfigError(f"port {port} already registered")
        self._handlers[port] = handler
        self._acl[port] = allowed_clients

    # -- datapath -----------------------------------------------------------------

    def _peer(self, peer_mac: str) -> ReliableEndpoint:
        if peer_mac not in self._peers:
            endpoint = ReliableEndpoint(
                self.engine, self.fabric.transmit, self.mac_addr, peer_mac,
                window=self.transport_window, timeout=self.transport_timeout,
                name=f"hosted.{self.mac_addr}->{peer_mac}",
            )
            self._peers[peer_mac] = endpoint
            self.engine.process(self._serve_loop(endpoint, peer_mac),
                                name=f"{self.mac_addr}.serve.{peer_mac}")
        return self._peers[peer_mac]

    def _rx_frame(self, frame: EthernetFrame) -> None:
        self._peer(frame.src_mac).deliver_frame(frame)

    def _serve_loop(self, endpoint: ReliableEndpoint, peer_mac: str):
        while True:
            payload = yield endpoint.recv()
            data = payload.get("data")
            if not (isinstance(data, tuple) and data[0] == "req"):
                continue
            self.engine.process(
                self._serve_one(endpoint, peer_mac, payload),
                name=f"{self.mac_addr}.req",
            )

    def _serve_one(self, endpoint: ReliableEndpoint, peer_mac: str,
                   payload: Dict[str, Any]):
        _tag, rid, body = payload["data"]
        port = payload.get("port")
        nbytes_in = 64 if not isinstance(body, dict) else int(
            body.get("bytes", 64)
        )
        handler = self._handlers.get(port)
        if handler is None:
            return
        # host-OS permission check (on the CPU, naturally)
        acl = self._acl.get(port)
        if acl is not None and peer_mac not in acl:
            self.requests_denied += 1
            return
        # 1. host network stack processes the request packet
        yield from self.cpu.run(self.netstack.receive_cost(nbytes_in))
        # 2. DMA request data to the FPGA
        yield from self.pcie.dma(max(64, nbytes_in))
        # 3. accelerator computes (one vFPGA slot)
        grant = yield self.vfpga.acquire()
        try:
            cycles, out_body, out_bytes = handler(body)
            self.fpga_busy_cycles += cycles
            yield cycles
        finally:
            self.vfpga.release(grant)
        # 4. DMA the result back to host memory
        yield from self.pcie.dma(max(64, out_bytes))
        # 5. host stack sends the response (no fresh wakeup: the handler
        #    thread is already running on the core)
        yield from self.cpu.run(self.netstack.send_cost(out_bytes),
                                wakeup=False)
        self.requests_served += 1
        yield endpoint.send(
            {"port": port, "data": ("resp", rid, out_body),
             "src_mac": self.mac_addr},
            payload_bytes=out_bytes,
        )

    # -- D3 metrics -----------------------------------------------------------------

    def cpu_cycles_per_request(self) -> float:
        if self.requests_served == 0:
            return 0.0
        return self.cpu.cycles_used / self.requests_served
