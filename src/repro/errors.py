"""Exception hierarchy shared across the reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can distinguish simulator-level faults (bugs in the model) from
*modelled* faults (behaviour the paper's OS is supposed to contain, such as a
capability violation raised against a misbehaving accelerator).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The simulation engine was used incorrectly (model bug)."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still blocked."""


class ConfigError(ReproError):
    """Invalid configuration passed to a component constructor."""


class CapabilityError(ReproError):
    """A capability check failed (modelled security fault)."""


class CapabilityRevoked(CapabilityError):
    """The referenced capability has been revoked."""


class AccessDenied(CapabilityError):
    """The capability exists but does not carry the required rights."""


class SegmentFault(ReproError):
    """A memory access fell outside every mapped segment (modelled fault)."""


class AllocationError(ReproError):
    """A memory allocator could not satisfy a request."""


class RouteError(ReproError):
    """A NoC packet was addressed to an unreachable node."""


class ProtocolError(ReproError):
    """A message violated the Apiary message-format contract."""


class ServiceError(ReproError):
    """An Apiary service rejected a request."""


class ServiceUnavailable(ServiceError):
    """The named service is not registered or its tile is failed/drained."""


class DeadlineExceeded(ServiceUnavailable):
    """An RPC deadline expired before a response arrived.

    Subclasses :class:`ServiceUnavailable` so callers that treat timeouts as
    plain unavailability keep working; retry loops catch this specifically
    to stop retrying once the caller's overall deadline is spent.
    """


class TileFault(ReproError):
    """An accelerator on a tile raised a modelled hardware fault."""


class DramFault(ReproError):
    """A DRAM bank is (temporarily) failed; the access cannot complete."""


class ReconfigError(ReproError):
    """Partial reconfiguration of a tile slot failed."""


class BitstreamRejected(ReconfigError):
    """Design-rule checking rejected a bitstream (e.g. power-virus screen)."""


class ResourceExhausted(ReproError):
    """The FPGA device does not have enough logic/BRAM/DSP resources."""


class SchedulerError(ReproError):
    """Base class for tile-scheduler and autoscaler failures."""


class AdmissionRejected(SchedulerError):
    """The admission controller refused a job at submit time."""


class QuotaExceeded(AdmissionRejected):
    """A tenant is over its running-tile or queued-job quota."""


class PlacementFailed(SchedulerError):
    """No tile satisfies a job's resource/DRC/locality constraints."""
