"""ReplicationManager: the chain-replication control plane.

A fabric host (default MAC ``replic``) that owns chain *membership* the
way the front-end owns *routing*: it configures chains at deploy time,
watches members (kernel fault reports + its own stat probes, which are
what catch fabric partitions — a partitioned board reports nothing), and
repairs broken chains unattended:

* **promote** — drop the dead/partitioned members, re-issue
  ``chain.cfg`` to the survivors at ``epoch + 1`` (tail-first, so the
  member serving reads never advertises state its new upstream doesn't
  hold), and flip the directory's chain order.  Any acknowledged write
  exists on *every* member (acks require a tail commit and entries flow
  strictly head→tail), so survivors need no data movement — promotion is
  pure reconfiguration, which is what makes RPO = 0;
* **splice** — restore the replication factor: place a fresh replica on
  a board outside the shard's current failure domains, install the
  tail's checkpoint (``chain.snap`` → ``chain.restore``), then configure
  it as the new tail at yet another epoch — its predecessor streams the
  log suffix above the checkpoint.  The chain serves throughout;
* **fence** — members cut out of the chain are told ``chain.fence``
  (retried until it lands — a partitioned board only hears it after the
  partition heals).  Fencing is belt-and-braces: the epoch check already
  nacks a stale head's forwards, which self-fences it.

All repair ordering is deterministic (sorted shard order, fixed probe
cadence, fixed RPC timeouts) so same-seed chaos campaigns byte-match.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.net.transport import ReliableEndpoint
from repro.sim import Event

__all__ = ["RepairEvent", "ReplicationManager"]


@dataclass
class RepairEvent:
    """One completed repair action, for the R2 report."""

    kind: str  # "promote" | "splice" | "deferred" | "lost"
    service: str
    shard: int
    epoch: int
    detected_at: int
    completed_at: int

    @property
    def latency(self) -> int:
        return self.completed_at - self.detected_at

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "service": self.service,
                "shard": self.shard, "epoch": self.epoch,
                "detected_at": self.detected_at,
                "completed_at": self.completed_at,
                "latency": self.latency}


class ReplicationManager:
    """Configures, watches, and repairs replication chains."""

    def __init__(
        self,
        cluster,
        mac: str = "replic",
        rpc_timeout: int = 25_000,
        snapshot_timeout: int = 120_000,
        probe_interval: int = 20_000,
        miss_limit: int = 3,
        repair_settle: int = 2_000,
        reconfig_timeout: int = 1_200_000,
        window: int = 16,
        transport_timeout: int = 50_000,
    ):
        self.cluster = cluster
        self.engine = cluster.engine
        self.fabric = cluster.fabric
        self.directory = cluster.directory
        self.mac = mac
        self.rpc_timeout = rpc_timeout
        self.snapshot_timeout = snapshot_timeout
        self.probe_interval = probe_interval
        self.miss_limit = miss_limit
        self.repair_settle = repair_settle
        self.reconfig_timeout = reconfig_timeout
        self.window = window
        self.transport_timeout = transport_timeout

        self._peers: Dict[str, ReliableEndpoint] = {}
        self._rid = itertools.count(1)
        self._pending: Dict[int, Event] = {}
        self._managed: List[str] = []
        #: (service, shard) -> cycle the problem was first seen
        self._dirty: Dict[Tuple[str, int], int] = {}
        self._kick: Optional[Event] = None
        #: shards that could not be brought back to full replication yet
        self._deferred: Set[Tuple[str, int]] = set()
        #: shards with a splice in flight (guards duplicate replacements)
        self._splicing: Set[Tuple[str, int]] = set()
        #: iid -> (instance, fencing epoch): fence until acknowledged
        self._to_fence: Dict[str, Tuple[Any, int]] = {}
        self._probe_misses: Dict[str, int] = {}

        self.repairs: List[RepairEvent] = []
        self.chains_configured = 0
        self.promotes = 0
        self.splices = 0
        self.fences_acked = 0
        self.rpc_timeouts = 0
        self.replacements_deferred = 0

        self.fabric.attach(mac, self._rx_frame)
        for fpga, system in enumerate(cluster.systems):
            system.fault_manager.on_fault.append(self._fault_hook(fpga))
        self.engine.process(self._repair_loop(), name="replic.repair")
        self.engine.process(self._prober(), name="replic.probe")

    # -- fabric plumbing ---------------------------------------------------

    def _peer(self, peer_mac: str) -> ReliableEndpoint:
        if peer_mac not in self._peers:
            endpoint = ReliableEndpoint(
                self.engine, self.fabric.transmit, self.mac, peer_mac,
                window=self.window, timeout=self.transport_timeout,
                name=f"replic.{self.mac}->{peer_mac}",
            )
            self._peers[peer_mac] = endpoint
            self.engine.process(self._pump(endpoint),
                                name=f"replic.pump.{peer_mac}")
        return self._peers[peer_mac]

    def _rx_frame(self, frame) -> None:
        if getattr(frame, "corrupted", False):
            return
        self._peer(frame.src_mac).deliver_frame(frame)

    def _pump(self, endpoint: ReliableEndpoint):
        while True:
            payload = yield endpoint.recv()
            data = payload.get("data")
            if not (isinstance(data, tuple) and len(data) == 3
                    and data[0] == "resp"):
                continue
            _tag, rid, body = data
            waiter = self._pending.pop(rid, None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(body)

    def _rpc(self, inst, body: Dict[str, Any], nbytes: int = 64,
             timeout: Optional[int] = None):
        """Process generator: one control RPC to a chain member.
        Returns the reply body, or None on timeout (dead/partitioned)."""
        timeout = timeout if timeout is not None else self.rpc_timeout
        rid = next(self._rid)
        waiter = self.engine.event(f"replic.rpc#{rid}")
        self._pending[rid] = waiter
        board = self.cluster.systems[inst.fpga].config.net.mac_addr
        self._peer(board).send(
            {"port": inst.port, "data": ("req", rid, body),
             "src_mac": self.mac},
            payload_bytes=max(64, nbytes),
        )
        yield self.engine.any_of([waiter, self.engine.timeout(timeout)])
        if waiter.triggered:
            return waiter.value
        self._pending.pop(rid, None)
        self.rpc_timeouts += 1
        return None

    def _rpc_retry(self, inst, body: Dict[str, Any], attempts: int = 5,
                   nbytes: int = 64, timeout: Optional[int] = None):
        """Retry an RPC a bounded number of times (e.g. while the target
        tile is still reconfiguring)."""
        for _ in range(attempts):
            reply = yield from self._rpc(inst, body, nbytes=nbytes,
                                         timeout=timeout)
            if reply is not None:
                return reply
        return None

    # -- deploy-time configuration -----------------------------------------

    def manage(self, service: str) -> Event:
        """Adopt ``service`` (a deployed chain service): configure every
        chain at epoch 1 and watch it from then on.  Returns an event that
        succeeds once all chains are configured."""
        spec = self.directory.spec(service)
        if service not in self._managed:
            self._managed.append(service)
        done = self.engine.event(f"replic.cfg.{service}")

        def run():
            # wait out partial reconfiguration: configuring a chain whose
            # members haven't bound their ports would read as dead members
            # and trigger a bogus repair before the service ever served
            waited = 0
            while not all(inst.ready for inst in spec.instances) \
                    and waited < 2_000_000:
                yield 5_000
                waited += 5_000
            for shard in sorted(spec.chains):
                order = [self._inst(spec, iid) for iid in spec.chains[shard]]
                epoch = spec.epochs.get(shard, 0) + 1
                ok = yield from self._configure_chain(spec, order, epoch, {})
                if ok:
                    self.directory.set_chain(service, shard,
                                             [i.iid for i in order], epoch)
                    self.chains_configured += 1
                else:
                    self._mark_dirty(service, shard)
            done.succeed(None)

        self.engine.process(run(), name=f"replic.cfg.{service}")
        return done

    @staticmethod
    def _inst(spec, iid: str):
        for inst in spec.instances:
            if inst.iid == iid:
                return inst
        return None

    def _addr(self, inst) -> Tuple[str, int]:
        return (self.cluster.systems[inst.fpga].config.net.mac_addr,
                inst.port)

    def _alive(self, inst) -> bool:
        if inst.fpga in self.cluster.killed:
            return False
        board = self.cluster.systems[inst.fpga].config.net.mac_addr
        return not self.fabric.is_partitioned(board)

    # -- failure detection -------------------------------------------------

    def _fault_hook(self, fpga: int):
        def on_fault(tile, record) -> None:
            if record.action != "drained":
                return
            for inst in self.directory.instances_on(fpga, node=tile.node):
                spec = self.directory.services.get(inst.service)
                if spec is not None and getattr(spec, "chained", False) \
                        and inst.shard is not None:
                    self._mark_dirty(inst.service, inst.shard)
        return on_fault

    def _mark_dirty(self, service: str, shard: int) -> None:
        key = (service, shard)
        self._deferred.discard(key)
        if key not in self._dirty:
            self._dirty[key] = self.engine.now
        if self._kick is not None and not self._kick.triggered:
            self._kick.succeed(None)

    def notify_heal(self) -> None:
        """A board healed/joined: retry deferred replacements and pending
        fences (the cluster calls this from ``heal_fpga``)."""
        for key in sorted(self._deferred):
            self._deferred.discard(key)
            if key not in self._dirty:
                self._dirty[key] = self.engine.now
        if self._dirty and self._kick is not None \
                and not self._kick.triggered:
            self._kick.succeed(None)

    def _prober(self):
        """Periodic chain.stat probes: the partition detector.

        Kernel fault reports cover crashed tiles and killed boards; a
        *partitioned* board is healthy and silent, so only missed probes
        reveal it.  ``miss_limit`` consecutive misses mark the shard dirty.
        """
        while True:
            yield self.probe_interval
            for service in list(self._managed):
                spec = self.directory.services.get(service)
                if spec is None:
                    continue
                for shard in sorted(spec.chains):
                    for iid in list(spec.chains[shard]):
                        inst = self._inst(spec, iid)
                        if inst is None or not inst.ready:
                            continue
                        if not self._alive(inst):
                            # killed boards are handled by the fault hook;
                            # a *partitioned* board needs the probe path
                            self._mark_dirty(service, shard)
                            continue
                        stat = yield from self._rpc(
                            inst, {"op": "chain.stat"}, nbytes=16)
                        if stat is None:
                            n = self._probe_misses.get(iid, 0) + 1
                            self._probe_misses[iid] = n
                            if n >= self.miss_limit:
                                self._mark_dirty(service, shard)
                        else:
                            self._probe_misses[iid] = 0
            yield from self._retry_fences()
            self._retry_deferred()

    def _eligible_boards(self, spec, shard: int) -> List[int]:
        """Boards a fresh replica of ``shard`` could land on right now."""
        exclude = set(self.cluster.killed)
        for i in range(len(self.cluster.systems)):
            board = self.cluster.systems[i].config.net.mac_addr
            if self.fabric.is_partitioned(board):
                exclude.add(i)
        for iid in spec.chains.get(shard, []):
            inst = self._inst(spec, iid)
            if inst is not None:
                exclude.add(inst.fpga)
        return [i for i in range(len(self.cluster.systems))
                if i not in exclude
                and self.cluster.systems[i].mgmt.free_tiles()]

    def _retry_deferred(self) -> None:
        """Re-attempt deferred replacements once capacity exists.

        Capacity appears when a board heals or a fenced ex-member's tile
        is torn down; the deferral set would otherwise wait for the next
        heal event that may never come."""
        for key in sorted(self._deferred):
            service, shard = key
            spec = self.directory.services.get(service)
            if spec is None or not spec.chains.get(shard):
                continue
            if len(spec.chains[shard]) >= spec.replication:
                self._deferred.discard(key)
                continue
            if self._eligible_boards(spec, shard):
                self._deferred.discard(key)
                if key not in self._dirty:
                    self._dirty[key] = self.engine.now
        if self._dirty and self._kick is not None \
                and not self._kick.triggered:
            self._kick.succeed(None)

    def _retry_fences(self):
        for iid in sorted(self._to_fence):
            inst, epoch = self._to_fence[iid]
            if not self._alive(inst):
                continue  # unreachable; retry after heal
            reply = yield from self._rpc(
                inst, {"op": "chain.fence", "epoch": epoch}, nbytes=16)
            if reply is not None and reply.get("ok"):
                del self._to_fence[iid]
                self.fences_acked += 1
                self._teardown_fenced(inst)

    def _discard_replica(self, service: str, shard: int, inst) -> None:
        """Unwind a replacement replica that never joined its chain:
        drop the directory entry and free the tile it was loaded on."""
        self.directory.remove_chain_member(service, shard, inst.iid)
        self._teardown_fenced(inst)

    def _teardown_fenced(self, inst) -> None:
        """A fenced ex-member is inert forever; free its tile so repair
        splices can reuse the slot (fenced boards fill up otherwise)."""
        if inst.fpga in self.cluster.killed:
            return
        system = self.cluster.systems[inst.fpga]
        try:
            system.mgmt.teardown(inst.node)
        except Exception:
            pass  # tile already failed/freed; the slot is not coming back

    # -- repair ------------------------------------------------------------

    def _repair_loop(self):
        while True:
            if not self._dirty:
                self._kick = self.engine.event("replic.kick")
                yield self._kick
                self._kick = None
            # let a board's worth of fault reports coalesce into one pass
            yield self.repair_settle
            while self._dirty:
                # promotes first (cheap reconfiguration — restores every
                # shard's head/tail in microseconds), splices after
                # (checkpoint + partial reconfiguration — restores the
                # replication factor in peace, the chains already serve)
                to_splice = []
                while self._dirty:
                    key = min(self._dirty)
                    detected = self._dirty.pop(key)
                    short = yield from self._repair(key[0], key[1], detected)
                    if short:
                        to_splice.append((key[0], key[1], detected))
                # splices for different shards are independent (distinct
                # chains, distinct target tiles) and each one sits out a
                # full partial-reconfiguration — run them detached so the
                # loop keeps reacting to new faults meanwhile; the
                # in-flight set stops a re-dirtied shard from growing two
                # replacements at once
                for service, shard, detected in to_splice:
                    key = (service, shard)
                    if key in self._dirty or key in self._splicing:
                        continue  # re-dirtied or already growing a replica
                    self._splicing.add(key)
                    self.engine.process(
                        self._restore_replication(service, shard, detected),
                        name=f"replic.splice.{service}.{shard}")

    def _repair(self, service: str, shard: int, detected: int):
        """Promote the shard's survivors; returns True when the chain is
        left below its replication factor (the caller splices later)."""
        spec = self.directory.services.get(service)
        if spec is None or shard not in spec.chains:
            return False
        chain = list(spec.chains[shard])
        survivors: List[Tuple[Any, Dict[str, Any]]] = []
        cut: List[Any] = []
        for iid in chain:
            inst = self._inst(spec, iid)
            if inst is None:
                continue
            if not self._alive(inst):
                cut.append(inst)
                continue
            stat = yield from self._rpc(inst, {"op": "chain.stat"},
                                        nbytes=16)
            if stat is None or not stat.get("ok"):
                cut.append(inst)
            else:
                survivors.append((inst, stat))
        if not cut and len(survivors) == len(chain):
            # false alarm (e.g. probe lost to transient congestion) —
            # but a previously-deferred short chain still wants a splice
            return len(chain) < spec.replication
        if not survivors:
            self.repairs.append(RepairEvent(
                "lost", service, shard, spec.epochs.get(shard, 0),
                detected, self.engine.now))
            self._deferred.add((service, shard))
            return False

        if cut or len(survivors) < len(chain):
            # ---- promote: survivors-only chain at epoch + 1 ----
            epoch = spec.epochs.get(shard, 0) + 1
            order = [inst for inst, _ in survivors]
            stats = {inst.iid: stat for inst, stat in survivors}
            ok = yield from self._configure_chain(spec, order, epoch, stats)
            if not ok:
                # another member died mid-repair; take it from the top
                self._mark_dirty(service, shard)
                return False
            self.directory.set_chain(service, shard,
                                     [i.iid for i in order], epoch)
            for inst in cut:
                self._to_fence[inst.iid] = (inst, epoch)
                if self.cluster.frontend is not None:
                    self.cluster.frontend.retire(inst.iid)
                self.directory.remove_chain_member(service, shard, inst.iid)
            self.promotes += 1
            self.repairs.append(RepairEvent(
                "promote", service, shard, epoch, detected,
                self.engine.now))
        return len(spec.chains[shard]) < spec.replication

    def _restore_replication(self, service: str, shard: int, detected: int):
        """Splice fresh replicas until the chain is back to full strength."""
        try:
            spec = self.directory.services.get(service)
            if spec is None or shard not in spec.chains \
                    or not spec.chains[shard]:
                return
            while len(spec.chains[shard]) < spec.replication:
                grew = yield from self._splice(spec, service, shard,
                                              detected)
                if not grew:
                    self._deferred.add((service, shard))
                    self.replacements_deferred += 1
                    self.repairs.append(RepairEvent(
                        "deferred", service, shard, spec.epochs[shard],
                        detected, self.engine.now))
                    return
        finally:
            self._splicing.discard((service, shard))

    def _configure_chain(self, spec, order: List[Any], epoch: int,
                         stats: Dict[str, Dict[str, Any]]):
        """Issue ``chain.cfg`` tail-first.  ``stats`` carries each member's
        last known ``last_index`` so predecessors know where to stream
        from; cfg replies refresh it.  Returns True when every member
        acknowledged the new epoch."""
        n = len(order)
        for i in range(n - 1, -1, -1):
            inst = order[i]
            if n == 1:
                role = "solo"
            elif i == 0:
                role = "head"
            elif i == n - 1:
                role = "tail"
            else:
                role = "mid"
            succ = order[i + 1] if i < n - 1 else None
            body = {
                "op": "chain.cfg", "epoch": epoch, "role": role,
                "self": self._addr(inst),
                "pred": self._addr(order[i - 1]) if i > 0 else None,
                "succ": self._addr(succ) if succ is not None else None,
                "succ_index": (stats.get(succ.iid, {}).get("last_index", 0)
                               if succ is not None else None),
            }
            reply = yield from self._rpc_retry(inst, body)
            if reply is not None and not reply.get("ok") \
                    and reply.get("error") == "log truncated":
                # the successor is behind this member's retained log:
                # checkpoint transfer first, then stream the remainder
                moved = yield from self._snapshot_to(inst, succ)
                if moved is None:
                    return False
                body["succ_index"] = moved
                reply = yield from self._rpc_retry(inst, body)
            if reply is None or not reply.get("ok"):
                return False
            stats[inst.iid] = reply
        return True

    def _snapshot_to(self, src, dst):
        """Install ``src``'s checkpoint on ``dst``; returns the checkpoint
        index (what ``dst`` now holds) or None on failure."""
        snap = yield from self._rpc_retry(
            src, {"op": "chain.snap"}, attempts=3,
            timeout=self.snapshot_timeout)
        if snap is None or not snap.get("ok"):
            return None
        state = snap["state"]
        nbytes = 64 + 48 * len(state.get("store", {})) \
            if isinstance(state, dict) else 256
        reply = yield from self._rpc_retry(
            dst, {"op": "chain.restore", "state": state,
                  "index": snap["index"]},
            attempts=3, nbytes=nbytes, timeout=self.snapshot_timeout)
        if reply is None or not reply.get("ok"):
            return None
        return int(snap["index"])

    def _splice(self, spec, service: str, shard: int, detected: int):
        """Grow the chain by one replica without stopping it.

        Order matters: the new member is checkpointed and configured as
        tail *first* (at the new epoch), and the directory's chain/epoch
        flip *last* — reads keep landing on the old tail until the new
        tail provably holds at least its committed state."""
        exclude = set(self.cluster.killed)
        for i in range(len(self.cluster.systems)):
            board = self.cluster.systems[i].config.net.mac_addr
            if self.fabric.is_partitioned(board):
                exclude.add(i)
        for iid in spec.chains[shard]:
            inst = self._inst(spec, iid)
            if inst is not None:
                exclude.add(inst.fpga)
        try:
            new_inst, started = self.directory.add_chain_replica(
                service, shard, exclude_fpgas=exclude)
        except Exception:
            return False
        # wait out the tile's partial reconfiguration — hundreds of
        # kilocycles per bitstream, far beyond any RPC timeout
        yield self.engine.any_of(
            [started, self.engine.timeout(self.reconfig_timeout)])
        if not new_inst.ready:
            self._discard_replica(service, shard, new_inst)
            return False
        chain = list(spec.chains[shard])
        order = [self._inst(spec, iid) for iid in chain]
        tail = order[-1]
        base_epoch = spec.epochs[shard]
        moved = yield from self._snapshot_to(tail, new_inst)
        if moved is None:
            self._discard_replica(service, shard, new_inst)
            self._mark_dirty(service, shard)
            return False
        epoch = base_epoch + 1
        stats: Dict[str, Dict[str, Any]] = {
            new_inst.iid: {"last_index": moved}}
        ok = yield from self._configure_chain(
            spec, order + [new_inst], epoch, stats)
        if spec.epochs[shard] != base_epoch:
            # a promote reconfigured the chain underneath this splice —
            # the order just configured is stale; drop the replica and
            # let the repair loop re-evaluate from the new epoch
            self._discard_replica(service, shard, new_inst)
            self._mark_dirty(service, shard)
            return False
        if not ok:
            self._discard_replica(service, shard, new_inst)
            self._mark_dirty(service, shard)
            return False
        self.directory.set_chain(service, shard,
                                 [i.iid for i in order] + [new_inst.iid],
                                 epoch)
        if self.cluster.frontend is not None:
            self.cluster.frontend.track_all()
        self.splices += 1
        self.repairs.append(RepairEvent(
            "splice", service, shard, epoch, detected, self.engine.now))
        return True

    # -- reporting ---------------------------------------------------------

    def repair_summary(self) -> Dict[str, Any]:
        latencies = [r.latency for r in self.repairs
                     if r.kind in ("promote", "splice")]
        return {
            "chains_configured": self.chains_configured,
            "promotes": self.promotes,
            "splices": self.splices,
            "fences_acked": self.fences_acked,
            "rpc_timeouts": self.rpc_timeouts,
            "replacements_deferred": self.replacements_deferred,
            "repair_latency_max": max(latencies) if latencies else 0,
            "repair_latency_mean": (sum(latencies) // len(latencies)
                                    if latencies else 0),
            "events": [r.to_dict() for r in self.repairs],
        }
