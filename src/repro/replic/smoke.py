"""The R2 consistency campaign: chain-replicated KV under chaos.

One parameterized harness shared by the unit tests, the R2 benchmark,
and the CI consistency smoke — all three run the same campaign:

1. deploy a chain-replicated :class:`~repro.replic.machine.KvMachine`
   service across the cluster and start the replication manager;
2. drive sustained load: one writer per key (strictly increasing
   values — the monotone-register workload
   :mod:`repro.replic.history` checks completely), plus concurrent
   readers on seeded random keys;
3. inject chaos at fixed simulated times: ``kill_fpga`` on the board
   hosting a chain head mid-write, then a fabric *partition* of another
   head's board (the split-brain scenario — the board stays up and
   believes it is healthy), then heal it;
4. settle, read every key back end-to-end, and run the
   :class:`~repro.replic.history.HistoryChecker`.

The headline assertions: ``lost_acked_writes == 0`` and
``linearizable == True`` — no acknowledged write is ever lost and no
client observes a stale or reordered value, across a board kill *and*
a network partition.  Everything is derived from the simulated clock
and seeded streams, so same-seed runs produce byte-identical reports
(the CI job pins this).

Timeout layering matters for correctness, not just liveness: the
writer's per-request client timeout exceeds the front-end's whole
retry deadline, so when a writer re-submits (or moves on to its next
value) the front-end has provably stopped retrying the previous write
id — there is never a concurrent duplicate of the same logical write,
which is what lets the checker treat each value as written once.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional

from repro.cluster.cluster import Cluster
from repro.kernel.config import SystemConfig
from repro.policy import RetryPolicy
from repro.replic.history import HistoryChecker
from repro.replic.machine import KvMachine
from repro.sim import Engine
from repro.workloads.client import ClusterClient

__all__ = ["consistency_smoke"]


def _build(n_fpgas: int, seed: int) -> Cluster:
    # a 3x3 grid (7 app tiles after mem+net) leaves headroom for repair
    # splices to place replacement replicas even mid-chaos
    config = SystemConfig.from_flat(width=3, height=3, seed=seed)
    engine = Engine(swallow_orphan_errors=True)
    cluster = Cluster(n_fpgas=n_fpgas, config=config, engine=engine)
    cluster.boot()
    return cluster


def _reply_body(reply: Any) -> Optional[Dict[str, Any]]:
    """The backend body of a successful front-end reply, else None."""
    if isinstance(reply, dict) and reply.get("ok") \
            and isinstance(reply.get("body"), dict):
        return reply["body"]
    return None


def consistency_smoke(
    n_fpgas: int = 4,
    seed: int = 0,
    n_shards: int = 4,
    replication: int = 3,
    n_keys: int = 8,
    writes_per_key: int = 28,
    write_gap: int = 40_000,
    n_readers: int = 3,
    reads_per_reader: int = 70,
    read_gap: int = 14_000,
    kill_at: Optional[int] = 350_000,
    partition_at: Optional[int] = 1_000_000,
    heal_at: Optional[int] = 1_700_000,
    settle: int = 1_600_000,
    trace: bool = False,
) -> Dict[str, Any]:
    """Run the R2 chaos campaign; returns the deterministic report dict."""
    cluster = _build(n_fpgas, seed)
    if trace:
        cluster.enable_tracing()
    engine = cluster.engine
    cluster.enable_recovery()
    cluster.start_replication()
    started, configured = cluster.deploy_chain(
        "kv", lambda shard: KvMachine(shard),
        n_shards=n_shards, replication=replication)
    engine.run_until_done(engine.all_of(started), limit=50_000_000)
    # the front-end's whole retry deadline must cover a chain repair
    # (detection + promote), or every request in flight during a repair
    # fails instead of transparently landing on the new head/tail
    patient = RetryPolicy(deadline=250_000, attempt_timeout=25_000,
                          backoff_base=500, backoff_cap=4_000)
    cluster.start_frontend(max_pending=512, retry=patient)
    engine.run_until_done(configured, limit=50_000_000)
    cluster.run(until=engine.now + 5_000)

    checker = HistoryChecker()
    keys = [f"key{i}" for i in range(n_keys)]
    # client timeout > front-end deadline: see the module docstring
    client_timeout = 320_000
    failed_reads = [0]

    def writer(host: ClusterClient, key: str):
        for v in range(1, writes_per_key + 1):
            yield write_gap
            invoked = engine.now
            acked = False
            for _attempt in range(4):
                try:
                    reply = yield host.call_service(
                        "kv", {"op": "put", "key": key, "value": v},
                        key=key, write=True, timeout=client_timeout)
                except Exception:
                    continue
                body = _reply_body(reply)
                if body is not None and body.get("ok"):
                    acked = True
                    break
                yield 2_000  # rejected/error reply; breathe, then retry
            checker.record_write(key, v, invoked, engine.now, acked)

    def reader(host: ClusterClient, ridx: int):
        rng = random.Random((seed << 8) ^ (2654435769 * (ridx + 1)))
        for _ in range(reads_per_reader):
            yield read_gap
            k = keys[rng.randrange(len(keys))]
            invoked = engine.now
            try:
                reply = yield host.call_service(
                    "kv", {"op": "get", "key": k}, key=k,
                    timeout=client_timeout)
            except Exception:
                failed_reads[0] += 1
                continue
            body = _reply_body(reply)
            if body is None or not body.get("ok"):
                failed_reads[0] += 1
                continue
            value = body.get("value") if body.get("found") else 0
            checker.record_read(k, int(value or 0), invoked, engine.now)

    start = engine.now
    procs = []
    for i, key in enumerate(keys):
        host = ClusterClient(engine, cluster.fabric, f"w{i}")
        procs.append(engine.process(writer(host, key), name=f"w{i}.loop"))
    for i in range(n_readers):
        host = ClusterClient(engine, cluster.fabric, f"r{i}")
        procs.append(engine.process(reader(host, i), name=f"r{i}.loop"))

    # -- chaos at fixed simulated times -----------------------------------
    chaos: Dict[str, Any] = {"killed_fpga": None, "killed_at": None,
                             "partitioned_fpga": None,
                             "partitioned_at": None, "healed_at": None}
    spec = cluster.directory.spec("kv")

    def _head_fpga(excluding=()) -> Optional[int]:
        for shard in sorted(spec.chains):
            chain = spec.chains[shard]
            if not chain:
                continue
            inst = next((i for i in spec.instances if i.iid == chain[0]),
                        None)
            if inst is not None and inst.fpga not in excluding \
                    and inst.fpga not in cluster.killed:
                return inst.fpga
        return None

    if kill_at is not None:
        cluster.run(until=start + kill_at)
        target = _head_fpga()
        if target is not None:
            chaos["killed_fpga"] = target
            chaos["killed_at"] = engine.now
            cluster.kill_fpga(target)
    if partition_at is not None:
        cluster.run(until=start + partition_at)
        target = _head_fpga(excluding=set(cluster.partitioned))
        if target is not None:
            chaos["partitioned_fpga"] = target
            chaos["partitioned_at"] = engine.now
            cluster.partition_fpga(target)
    if heal_at is not None and chaos["partitioned_fpga"] is not None:
        cluster.run(until=start + heal_at)
        chaos["healed_at"] = engine.now
        cluster.heal_fpga(chaos["partitioned_fpga"])

    # drain the workload, then let repair finish (post-heal fences,
    # deferred splices) before the verification reads
    engine.run_until_done(engine.all_of([p.done for p in procs]),
                          limit=60_000_000)
    cluster.run(until=engine.now + settle)

    # -- end-to-end verification reads ------------------------------------
    verify_host = ClusterClient(engine, cluster.fabric, "verify")
    final_read_failures = [0]

    def final_reads():
        for k in keys:
            for _attempt in range(5):
                try:
                    reply = yield verify_host.call_service(
                        "kv", {"op": "get", "key": k}, key=k,
                        timeout=client_timeout)
                except Exception:
                    continue
                body = _reply_body(reply)
                if body is not None and body.get("ok"):
                    value = body.get("value") if body.get("found") else 0
                    checker.record_final(k, int(value or 0))
                    break
            else:
                final_read_failures[0] += 1

    done = engine.process(final_reads(), name="verify.loop")
    engine.run_until_done(done.done, limit=30_000_000)

    # -- report ------------------------------------------------------------
    chains: Dict[str, Any] = {}
    for shard in sorted(spec.chains):
        members = []
        for iid in spec.chains[shard]:
            inst = next((i for i in spec.instances if i.iid == iid), None)
            stat = None
            if inst is not None and inst.fpga not in cluster.killed:
                node = cluster.systems[inst.fpga].tiles[inst.node]
                accel = node.accelerator
                if accel is not None and hasattr(accel, "stat"):
                    stat = accel.stat()
            members.append({"iid": iid, "stat": stat})
        chains[str(shard)] = {"epoch": spec.epochs.get(shard, 0),
                              "members": members}

    consistency = checker.check()
    return {
        "n_fpgas": n_fpgas,
        "seed": seed,
        "n_shards": n_shards,
        "replication": replication,
        "keys": n_keys,
        "writes_per_key": writes_per_key,
        "readers": n_readers,
        "elapsed_cycles": engine.now - start,
        "chaos": chaos,
        "consistency": consistency,
        "failed_reads": failed_reads[0],
        "final_read_failures": final_read_failures[0],
        "chains": chains,
        "repair": cluster.replication.repair_summary(),
        "frontend": cluster.frontend.telemetry(),
    }
