"""Replicated state machines: what a chain node actually executes.

Chain replication is agnostic to the service it replicates; the contract
is the classic deterministic-state-machine one:

* :meth:`StateMachine.apply` must be **deterministic** — every replica
  applies the same log prefix and must land in the same state, which is
  what makes the head's locally-computed reply valid for a write the
  tail committed;
* :meth:`StateMachine.snapshot` / :meth:`StateMachine.restore` bound
  catch-up time — a spliced-in replica installs a checkpoint and replays
  only the log tail above it.

:class:`KvMachine` is the reference implementation: the versioned KV
store the R2 consistency bench drives.  Values carry the writer's
monotonic version so the linearizability checker can order what reads
observed without inspecting server internals.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

__all__ = ["StateMachine", "KvMachine"]


class StateMachine:
    """Deterministic state machine replicated by a chain."""

    def is_write(self, body: Dict[str, Any]) -> bool:
        """True when ``body`` mutates state (must go through the log)."""
        raise NotImplementedError

    def write_cycles(self, body: Dict[str, Any]) -> int:
        """Compute cycles one replica charges to apply ``body``."""
        raise NotImplementedError

    def read_cycles(self, body: Dict[str, Any]) -> int:
        raise NotImplementedError

    def apply(self, body: Dict[str, Any]) -> Tuple[Any, int]:
        """Apply one committed write; returns ``(reply_body, reply_bytes)``."""
        raise NotImplementedError

    def read(self, body: Dict[str, Any]) -> Tuple[Any, int]:
        """Serve one read from current (committed) state."""
        raise NotImplementedError

    def snapshot(self) -> Dict[str, Any]:
        """A self-contained checkpoint of the whole state."""
        raise NotImplementedError

    def snapshot_bytes(self) -> int:
        """Wire size of :meth:`snapshot` (models checkpoint streaming)."""
        raise NotImplementedError

    def restore(self, snap: Dict[str, Any]) -> None:
        raise NotImplementedError


class KvMachine(StateMachine):
    """A versioned key-value store (put / get / delete / scan).

    ``version`` bumps on every applied mutation, so snapshots are
    ordered and replies tell the caller exactly which state version
    served them — the raw material of the consistency checker.
    """

    WRITE_OPS = ("put", "delete")

    def __init__(self, shard: int = 0, work_cycles: int = 500):
        self.shard = shard
        self.work_cycles = work_cycles
        self.store: Dict[Any, Any] = {}
        self.version = 0
        self.applies = 0
        self.reads = 0

    def is_write(self, body: Dict[str, Any]) -> bool:
        return body.get("op") in self.WRITE_OPS

    def write_cycles(self, body: Dict[str, Any]) -> int:
        return self.work_cycles

    def read_cycles(self, body: Dict[str, Any]) -> int:
        return self.work_cycles

    def apply(self, body: Dict[str, Any]) -> Tuple[Any, int]:
        op = body.get("op")
        self.applies += 1
        if op == "put":
            self.store[body["key"]] = body.get("value")
            self.version += 1
            return {"ok": True, "shard": self.shard,
                    "version": self.version}, 32
        if op == "delete":
            existed = self.store.pop(body.get("key"), None) is not None
            self.version += 1
            return {"ok": True, "deleted": existed,
                    "shard": self.shard, "version": self.version}, 16
        return {"ok": False, "error": f"bad write op {op!r}"}, 16

    def read(self, body: Dict[str, Any]) -> Tuple[Any, int]:
        op = body.get("op")
        self.reads += 1
        if op == "get":
            key = body.get("key")
            found = key in self.store
            return {"ok": True, "found": found,
                    "value": self.store.get(key),
                    "shard": self.shard, "version": self.version}, 64
        if op == "scan":
            keys = sorted(map(str, self.store.keys()))
            return {"ok": True, "keys": keys,
                    "shard": self.shard, "version": self.version}, \
                max(16, 16 * len(keys))
        return {"ok": False, "error": f"bad read op {op!r}"}, 16

    def snapshot(self) -> Dict[str, Any]:
        return {"shard": self.shard, "version": self.version,
                "store": dict(self.store)}

    def snapshot_bytes(self) -> int:
        return 64 + 48 * len(self.store)

    def restore(self, snap: Dict[str, Any]) -> None:
        self.store = dict(snap.get("store", {}))
        self.version = int(snap.get("version", 0))
