"""Linearizability checking for the R2 chaos campaign.

Full linearizability checking (Wing & Gong / Knossos style) is
NP-complete in general; the R2 workload is deliberately shaped so a
linear-time checker is *complete*, not just sound, for the properties
we claim:

* **One writer per key**, writing strictly increasing integer values
  1, 2, 3, ... — so the value itself totally orders the writes of a
  key, and "version" bookkeeping in the state machine is unnecessary.
* Reads go through the front-end to the chain tail (or solo survivor).

Under that workload, zero-data-loss and linearizability reduce to four
per-key conditions over the recorded history:

1. **Durability** — the final value read back after the chaos campaign
   is >= the largest value whose write was *acknowledged* to the
   client.  An acked write that is missing from the final state is
   data loss, the headline violation R2 exists to catch.
2. **No stale reads** — a read that *started* after value ``v`` was
   acked must observe >= ``v``.  (The ack means the tail committed
   ``v``; any later-starting read that sees less has time-travelled.)
3. **No future reads** — a read must observe <= the largest value
   whose write had *started* before the read completed.  Seeing a
   value nobody had submitted yet means the history is corrupt.
4. **Read monotonicity** — for non-overlapping reads of the same key,
   the later read observes >= the earlier read's value.  (With one
   writer and increasing values this is exactly "no read re-ordering".)

Failed or timed-out writes are recorded too (``acked=False``): they
are allowed to be applied or lost — either outcome is linearizable —
so they widen what reads may legally observe but never count toward
durability.

The checker is deterministic: its report depends only on the recorded
history, so same-seed campaigns produce byte-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["HistoryChecker", "WriteRecord", "ReadRecord"]


@dataclass
class WriteRecord:
    key: str
    value: int
    invoked_at: int
    responded_at: int
    acked: bool


@dataclass
class ReadRecord:
    key: str
    value: int          # 0 when the key was not found
    invoked_at: int
    responded_at: int


@dataclass
class _KeyHistory:
    writes: List[WriteRecord] = field(default_factory=list)
    reads: List[ReadRecord] = field(default_factory=list)
    final: Optional[int] = None


class HistoryChecker:
    """Records a monotone-register history and checks it after the run."""

    def __init__(self) -> None:
        self._keys: Dict[str, _KeyHistory] = {}

    def _hist(self, key: str) -> _KeyHistory:
        if key not in self._keys:
            self._keys[key] = _KeyHistory()
        return self._keys[key]

    # -- recording ---------------------------------------------------------

    def record_write(self, key: str, value: int, invoked_at: int,
                     responded_at: int, acked: bool) -> None:
        self._hist(key).writes.append(
            WriteRecord(key, value, invoked_at, responded_at, acked))

    def record_read(self, key: str, value: int, invoked_at: int,
                    responded_at: int) -> None:
        self._hist(key).reads.append(
            ReadRecord(key, value, invoked_at, responded_at))

    def record_final(self, key: str, value: int) -> None:
        """The value a post-campaign client ``get`` observed (0 = missing)."""
        self._hist(key).final = value

    # -- checking ----------------------------------------------------------

    def check(self) -> Dict[str, object]:
        """Scan the whole history; returns a deterministic report dict."""
        violations: List[Dict[str, object]] = []
        acked_writes = 0
        failed_writes = 0
        total_reads = 0
        lost_acked = 0

        for key in sorted(self._keys):
            hist = self._keys[key]
            acked = [w for w in hist.writes if w.acked]
            acked_writes += len(acked)
            failed_writes += len(hist.writes) - len(acked)
            total_reads += len(hist.reads)
            max_acked = max((w.value for w in acked), default=0)

            # 1. durability: every acked write survives to the final state.
            if hist.final is not None and hist.final < max_acked:
                lost_acked += max_acked - hist.final
                violations.append({
                    "kind": "lost_acked_write", "key": key,
                    "final": hist.final, "max_acked": max_acked,
                })

            reads = sorted(hist.reads,
                           key=lambda r: (r.invoked_at, r.responded_at))
            for r in reads:
                # 2. stale read: acked strictly before the read started.
                floor = max((w.value for w in acked
                             if w.responded_at < r.invoked_at), default=0)
                if r.value < floor:
                    violations.append({
                        "kind": "stale_read", "key": key,
                        "observed": r.value, "acked_floor": floor,
                        "invoked_at": r.invoked_at,
                    })
                # 3. future read: nobody had even submitted a bigger value.
                ceiling = max((w.value for w in hist.writes
                               if w.invoked_at <= r.responded_at), default=0)
                if r.value > ceiling:
                    violations.append({
                        "kind": "future_read", "key": key,
                        "observed": r.value, "submitted_ceiling": ceiling,
                        "invoked_at": r.invoked_at,
                    })

            # 4. monotonicity across non-overlapping reads of one key.
            done = sorted(hist.reads,
                          key=lambda r: (r.responded_at, r.invoked_at))
            high = 0
            high_end = -1
            for r in done:
                if r.invoked_at > high_end and r.value < high:
                    violations.append({
                        "kind": "read_regression", "key": key,
                        "observed": r.value, "previously_read": high,
                        "invoked_at": r.invoked_at,
                    })
                if r.value > high:
                    high = r.value
                    high_end = r.responded_at

        return {
            "keys": len(self._keys),
            "acked_writes": acked_writes,
            "failed_writes": failed_writes,
            "reads": total_reads,
            "lost_acked_writes": lost_acked,
            "violations": violations,
            "linearizable": not violations,
        }
