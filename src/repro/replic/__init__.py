"""Replicated state machines on tiles: zero-data-loss stateful serving.

The cluster package's :class:`~repro.cluster.frontend.FrontEnd` keeps a
service *available* across board failures; this package keeps its state
*correct*.  Each shard of a chained service is a van Renesse–Schneider
replication chain of :class:`ChainNodeService` members across distinct
FPGAs: writes append to a per-shard write-ahead log at the head and are
acknowledged only after the tail commits, reads are served linearizably
at the tail, and configuration epochs fence stale members so a
partitioned ex-head can never split the brain.  The
:class:`ReplicationManager` control plane configures chains, detects
failures (kernel fault reports + stat probes), and repairs unattended —
promote on member loss, checkpoint-stream a fresh replica to splice the
chain back to full replication, all without stopping the service.

:func:`consistency_smoke` is the R2 chaos campaign proving the claim:
board kill + fabric partition under sustained load, checked by
:class:`HistoryChecker` for zero acknowledged-write loss and zero
linearizability violations.
"""

from repro.replic.chain import LOG_APPEND_CYCLES, STREAM_CHUNK, ChainNodeService
from repro.replic.history import HistoryChecker, ReadRecord, WriteRecord
from repro.replic.log import LogEntry, WriteAheadLog
from repro.replic.machine import KvMachine, StateMachine
from repro.replic.manager import RepairEvent, ReplicationManager
from repro.replic.smoke import consistency_smoke

__all__ = [
    "ChainNodeService",
    "LOG_APPEND_CYCLES",
    "STREAM_CHUNK",
    "HistoryChecker",
    "WriteRecord",
    "ReadRecord",
    "LogEntry",
    "WriteAheadLog",
    "StateMachine",
    "KvMachine",
    "RepairEvent",
    "ReplicationManager",
    "consistency_smoke",
]
