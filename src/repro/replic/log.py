"""Per-shard write-ahead log backing chain replication.

Every replicated write becomes a :class:`LogEntry` appended at the chain
head and propagated, in index order, down the chain.  The log is the
mechanism behind all three replication guarantees:

* **durability** — an entry is acknowledged only after the *tail* holds
  it, and entries only ever flow head → tail, so an acknowledged entry
  exists on every chain member; any single survivor can serve it;
* **catch-up** — a spliced-in replica restores a checkpoint at index
  ``N`` and then replays ``entries_from(N + 1)`` streamed by its new
  predecessor, without stopping the chain;
* **checkpoint truncation** — once state is checkpointed (the state
  machine *is* the checkpoint in this model), entries at or below the
  checkpoint index are dropped; :meth:`entries_from` reports the gap so
  the repair path falls back to a full snapshot transfer instead of
  silently streaming an incomplete history.

Indices are 1-based and dense: ``base_index`` is the highest truncated
index (0 for a fresh log), entries cover ``base_index + 1 .. last_index``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigError

__all__ = ["LogEntry", "WriteAheadLog"]


@dataclass
class LogEntry:
    """One replicated write."""

    index: int
    #: epoch under which the entry was *created* (entries survive epoch
    #: bumps; the chain message carrying them is what gets fenced)
    epoch: int
    #: frontend-stamped write id ``"client#rid"`` for at-most-once replay
    #: suppression at the head (None for internal/no-op entries)
    wid: Optional[str]
    #: canonical state-machine input (wire/trace metadata stripped)
    body: Dict[str, Any]

    def to_wire(self) -> Tuple[int, int, Optional[str], Dict[str, Any]]:
        return (self.index, self.epoch, self.wid, self.body)

    @classmethod
    def from_wire(cls, wire: Tuple) -> "LogEntry":
        index, epoch, wid, body = wire
        return cls(index=index, epoch=epoch, wid=wid, body=body)


class WriteAheadLog:
    """Dense, truncatable, 1-indexed entry log."""

    def __init__(self, base_index: int = 0):
        if base_index < 0:
            raise ConfigError(f"base_index must be >= 0, got {base_index}")
        self.base_index = base_index
        self._entries: List[LogEntry] = []
        self.appended_total = 0
        self.truncated_total = 0

    @property
    def last_index(self) -> int:
        return self.base_index + len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def append(self, epoch: int, wid: Optional[str],
               body: Dict[str, Any]) -> LogEntry:
        """Append a fresh entry at ``last_index + 1`` (head-side append)."""
        entry = LogEntry(index=self.last_index + 1, epoch=epoch,
                         wid=wid, body=body)
        self._entries.append(entry)
        self.appended_total += 1
        return entry

    def append_entry(self, entry: LogEntry) -> None:
        """Append a replicated entry; must be exactly the next index."""
        if entry.index != self.last_index + 1:
            raise ConfigError(
                f"log append out of order: got {entry.index}, "
                f"expected {self.last_index + 1}"
            )
        self._entries.append(entry)
        self.appended_total += 1

    def get(self, index: int) -> LogEntry:
        if not self.base_index < index <= self.last_index:
            raise ConfigError(
                f"index {index} outside retained range "
                f"({self.base_index}, {self.last_index}]"
            )
        return self._entries[index - self.base_index - 1]

    def entries_from(self, index: int) -> Optional[List[LogEntry]]:
        """Entries with ``entry.index >= index``.

        Returns ``None`` when ``index`` falls below the truncation point
        while entries that old would be needed — the caller must fall back
        to a checkpoint transfer.  An ``index`` beyond the log is simply an
        empty list (nothing to stream).
        """
        if index > self.last_index:
            return []
        if index <= self.base_index:
            return None
        return self._entries[index - self.base_index - 1:]

    def truncate_to(self, index: int) -> int:
        """Drop entries at or below ``index`` (post-checkpoint).  Returns
        how many entries were dropped."""
        if index <= self.base_index:
            return 0
        index = min(index, self.last_index)
        dropped = index - self.base_index
        del self._entries[:dropped]
        self.base_index = index
        self.truncated_total += dropped
        return dropped

    def reset(self, base_index: int) -> None:
        """Forget everything and restart above ``base_index`` (snapshot
        install on a spliced-in replica)."""
        self._entries.clear()
        self.base_index = base_index
