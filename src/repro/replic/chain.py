"""ChainNodeService: one chain-replication member on one tile.

The data plane of the replication subsystem.  Each replicated shard is a
*chain* of these services across distinct FPGAs; the protocol follows
van Renesse & Schneider's chain replication, carried over the same
NoC + Ethernet path every other cluster byte takes:

* **writes** enter at the *head* (the front-end routes them there),
  append to the write-ahead log, and propagate down the chain as
  ``chain.fwd`` events; the *tail* commits on receipt (everything that
  reaches it already exists upstream) and a cumulative ``chain.ack``
  flows back up.  The head replies to the client only when its own
  commit index covers the entry — i.e. **only after the tail committed**,
  which is what makes an acknowledged write unlosable while any single
  member survives;
* **reads** are served at the *tail* from committed state — linearizable
  because the tail's state is exactly the committed prefix;
* **epochs fence stale members**: every chain message carries the
  configuration epoch.  A member that was partitioned away keeps its old
  epoch; when it tries to forward a write, its (re-configured) successor
  answers ``chain.nack`` with the higher epoch and the stale member
  fences itself — pending writes fail loudly instead of splitting the
  brain;
* **catch-up without stopping the chain**: a member configured with a
  lagging successor streams the missing log suffix (``succ_index`` from
  the repair RPC) before normal forwarding resumes; a brand-new replica
  first installs a checkpoint (``chain.restore``) and only replays the
  tail above it.

Roles: ``head`` / ``mid`` / ``tail`` / ``solo`` (a degraded one-member
chain: commits locally).  A node with ``epoch == 0`` is unconfigured and
rejects everything retryably — the front-end keeps retrying until the
:class:`~repro.replic.manager.ReplicationManager` configures the chain.

Requests that cannot be served here answer ``{"_chain_nack": reason}``;
the front-end translates that into a retryable failure so the client
transparently lands on the post-repair head/tail.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.service import ClusterPortedService
from repro.replic.log import LogEntry, WriteAheadLog
from repro.replic.machine import StateMachine

__all__ = ["ChainNodeService", "LOG_APPEND_CYCLES", "STREAM_CHUNK"]

#: cycles to append one entry to the WAL (BRAM write + pointer bump)
LOG_APPEND_CYCLES = 8
#: entries per catch-up ``chain.fwd`` message
STREAM_CHUNK = 16
#: body keys that are transport/trace metadata, not state-machine input
_WIRE_KEYS = ("_wid", "_trace")


class ChainNodeService(ClusterPortedService):
    """A replicated-state-machine member behind one cluster port."""

    def __init__(self, name: str, port: int, machine: StateMachine,
                 checkpoint_every: int = 64, keep_log: int = 256,
                 result_cache: int = 128):
        super().__init__(name, port, handler=None)
        self.machine = machine
        self.checkpoint_every = checkpoint_every
        self.keep_log = keep_log
        self.result_cache_size = result_cache

        self.log = WriteAheadLog()
        self.epoch = 0
        self.role: Optional[str] = None
        self.self_addr: Optional[Tuple[str, int]] = None
        self.pred_addr: Optional[Tuple[str, int]] = None
        self.succ_addr: Optional[Tuple[str, int]] = None
        self.fenced = False
        self.commit_index = 0
        self.applied_index = 0

        #: log index -> [(client_mac, rid), ...] replies owed on commit
        self._pending: Dict[int, List[Tuple[str, int]]] = {}
        #: write id -> log index (at-most-once for front-end retries)
        self._wid_index: Dict[str, int] = {}
        #: log index -> (reply_body, reply_bytes) for deduped re-asks
        self._results: Dict[int, Tuple[Any, int]] = {}
        #: log index -> open replicate span id
        self._spans: Dict[int, int] = {}
        self._ctr = itertools.count(1)

        # counters (surfaced via chain.stat and the R2 report)
        self.writes_begun = 0
        self.writes_committed = 0
        self.reads_served = 0
        self.nacked = 0
        self.fenced_rejects = 0
        self.stale_drops = 0
        self.entries_forwarded = 0
        self.entries_received = 0
        self.acks_forwarded = 0
        self.snapshots_served = 0
        self.snapshots_installed = 0
        self.entries_streamed = 0
        self.checkpoints = 0
        self.gap_drops = 0

    # -- main loop ---------------------------------------------------------

    def main(self, shell):
        yield shell.net_bind(self.port)
        while True:
            msg = yield shell.recv()
            if msg.op != "net.rx":
                continue
            envelope = msg.payload
            data = envelope.get("data")
            if not (isinstance(data, tuple) and len(data) == 3):
                continue
            tag, rid, body = data
            if tag == "req":
                yield from self._serve_one(shell, envelope, rid, body)
            elif tag == "batch":
                yield from self._serve_batch(shell, envelope, rid, body)
            elif tag == "evt":
                yield from self._chain_evt(shell, body)

    def _serve_one(self, shell, envelope, rid, body):
        out = yield from self._dispatch(shell, envelope, rid, body)
        if out is not None:
            out_body, out_bytes = out
            self._spawn_send(shell, envelope["src_mac"],
                             ("resp", rid, out_body), out_bytes)

    def _serve_batch(self, shell, envelope, bid, entries):
        """Batch envelopes may mix reads (answered in the batchresp) and
        writes (answered individually once the tail commits)."""
        self.batches_served += 1
        out = []
        total_bytes = 0
        for rid, body in entries:
            result = yield from self._dispatch(shell, envelope, rid, body)
            if result is not None:
                out_body, out_bytes = result
                out.append((rid, out_body, out_bytes))
                total_bytes += out_bytes
        if out:
            self._spawn_send(shell, envelope["src_mac"],
                             ("batchresp", bid, out),
                             max(64, total_bytes + 16 * len(out)))

    def _dispatch(self, shell, envelope, rid, body):
        """Serve one request body.  Returns ``(reply, bytes)`` for an
        immediate answer or ``None`` when the reply is deferred (writes:
        sent on commit) — a generator, so handlers charge sim time."""
        if isinstance(body, dict):
            op = body.get("op")
            if op == "ping":
                self.pings_answered += 1
                return {"pong": True, "service": self.name,
                        "epoch": self.epoch, "role": self.role}, 16
            if isinstance(op, str) and op.startswith("chain."):
                out = yield from self._chain_ctl(shell, body)
                return out
            if self.machine.is_write(body):
                yield from self._begin_write(
                    shell, envelope["src_mac"], rid, body)
                return None
            return (yield from self._serve_read(shell, body))
        return {"_chain_nack": "malformed request"}, 16

    # -- client writes -----------------------------------------------------

    def _begin_write(self, shell, src_mac: str, rid: int, body: Dict):
        if self.fenced:
            self.fenced_rejects += 1
            self._nack(shell, src_mac, rid, "fenced (stale epoch)")
            return
        if self.epoch == 0 or self.role not in ("head", "solo"):
            self.nacked += 1
            self._nack(shell, src_mac, rid,
                       f"not the chain head (role={self.role})")
            return
        wid = body.get("_wid")
        if wid is not None and wid in self._wid_index:
            # front-end retry of a write we already hold: never re-append
            index = self._wid_index[wid]
            if index <= self.commit_index:
                out = self._results.get(index, ({"ok": True, "dup": True}, 16))
                self._spawn_send(shell, src_mac, ("resp", rid, out[0]), out[1])
            else:
                self._pending.setdefault(index, []).append((src_mac, rid))
            return
        yield from self._work(LOG_APPEND_CYCLES)
        clean = {k: v for k, v in body.items() if k not in _WIRE_KEYS}
        entry = self.log.append(epoch=self.epoch, wid=wid, body=clean)
        if wid is not None:
            self._wid_index[wid] = entry.index
        self._pending.setdefault(entry.index, []).append((src_mac, rid))
        self.writes_begun += 1
        spans = shell.spans
        trace = body.get("_trace") if spans.enabled else None
        if trace:
            self._spans[entry.index] = spans.open(
                trace[0], f"replicate:{self.name}", "replic", shell.name,
                shell.engine.now, parent_id=trace[1], index=entry.index,
                epoch=self.epoch)
        if self.role == "solo":
            yield from self._commit_up_to(shell, entry.index)
        else:
            self._forward(shell, [entry])

    def _nack(self, shell, src_mac: str, rid: int, reason: str) -> None:
        self._spawn_send(shell, src_mac,
                         ("resp", rid, {"_chain_nack": reason}), 16)

    # -- client reads ------------------------------------------------------

    def _serve_read(self, shell, body: Dict):
        if self.fenced:
            self.fenced_rejects += 1
            return {"_chain_nack": "fenced (stale epoch)"}, 16
        if self.epoch == 0 or self.role not in ("tail", "solo"):
            self.nacked += 1
            return {"_chain_nack":
                    f"not the chain tail (role={self.role})"}, 16
        yield from self._work(self.machine.read_cycles(body))
        clean = {k: v for k, v in body.items() if k not in _WIRE_KEYS}
        self.reads_served += 1
        return self.machine.read(clean)

    # -- chain events (peer-to-peer, one-way) ------------------------------

    def _chain_evt(self, shell, body):
        if not isinstance(body, dict):
            return
        op = body.get("op")
        if op == "chain.fwd":
            yield from self._on_fwd(shell, body)
        elif op == "chain.ack":
            yield from self._on_ack(shell, body)
        elif op == "chain.nack":
            self._on_nack(shell, body)
        elif op == "chain.pull":
            self._on_pull(shell, body)

    def _on_fwd(self, shell, body):
        if body.get("epoch") != self.epoch or self.fenced or self.epoch == 0:
            self.stale_drops += 1
            sender = body.get("from")
            if sender and body.get("epoch", 0) < self.epoch:
                # tell the stale sender which epoch fenced it
                self._send_evt(shell, tuple(sender),
                               {"op": "chain.nack", "epoch": self.epoch,
                                "from": self.self_addr})
            return
        appended = []
        for wire in body.get("entries", ()):
            entry = LogEntry.from_wire(tuple(wire))
            if entry.index <= self.log.last_index:
                continue  # overlap from a catch-up re-stream
            if entry.index != self.log.last_index + 1:
                self.gap_drops += 1
                break
            yield from self._work(LOG_APPEND_CYCLES)
            self.log.append_entry(entry)
            if entry.wid is not None:
                self._wid_index[entry.wid] = entry.index
            self.entries_received += 1
            appended.append(entry)
        if not appended:
            return
        if self.role in ("tail", "solo"):
            yield from self._commit_up_to(shell, self.log.last_index)
            if self.pred_addr is not None:
                self._send_ack(shell, self.pred_addr)
        elif self.succ_addr is not None:
            self._forward(shell, appended)

    def _on_ack(self, shell, body):
        if body.get("epoch") != self.epoch or self.fenced:
            self.stale_drops += 1
            return
        index = int(body.get("index", 0))
        if index <= self.commit_index:
            return
        yield from self._commit_up_to(shell, index)
        if self.role == "mid" and self.pred_addr is not None:
            self._send_ack(shell, self.pred_addr)
            self.acks_forwarded += 1

    def _on_nack(self, shell, body) -> None:
        """A successor at a higher epoch refused us: we are fenced."""
        if int(body.get("epoch", 0)) <= self.epoch:
            return
        self.fenced = True
        # fail every write we owe a reply for, loudly — the client's
        # retry lands on the new head, which dedups by wid
        for index in sorted(self._pending):
            if index <= self.commit_index:
                continue
            for src_mac, rid in self._pending.pop(index):
                self.fenced_rejects += 1
                self._nack(shell, src_mac, rid,
                           f"fenced by epoch {body['epoch']}")
            span = self._spans.pop(index, None)
            if span:
                shell.spans.close(span, shell.engine.now, failed=True)

    def _on_pull(self, shell, body) -> None:
        """A (re)configured predecessor asks where commit stands."""
        if body.get("epoch") != self.epoch or self.fenced:
            self.stale_drops += 1
            return
        sender = body.get("from")
        if sender and self.commit_index > 0:
            self._send_ack(shell, tuple(sender))

    # -- commit / apply ----------------------------------------------------

    def _commit_up_to(self, shell, index: int):
        index = min(index, self.log.last_index)
        if index > self.commit_index:
            self.commit_index = index
        while self.applied_index < self.commit_index:
            i = self.applied_index + 1
            entry = self.log.get(i)
            yield from self._work(self.machine.write_cycles(entry.body))
            out = self.machine.apply(entry.body)
            self.applied_index = i
            self.writes_committed += 1
            self._results[i] = out
            if len(self._results) > self.result_cache_size:
                del self._results[min(self._results)]
            for src_mac, rid in self._pending.pop(i, ()):
                self._spawn_send(shell, src_mac, ("resp", rid, out[0]),
                                 out[1])
            span = self._spans.pop(i, None)
            if span:
                shell.spans.close(span, shell.engine.now,
                                  commit_index=self.commit_index)
        self._maybe_checkpoint()

    def _maybe_checkpoint(self) -> None:
        """Incremental checkpoint: state is the checkpoint; truncate the
        log below it, keeping a catch-up margin for slow successors."""
        cut = self.applied_index - self.keep_log
        if cut > self.log.base_index and \
                cut - self.log.base_index >= self.checkpoint_every:
            self.log.truncate_to(cut)
            self.checkpoints += 1
            floor = self.log.base_index
            for wid in [w for w, i in self._wid_index.items() if i <= floor]:
                del self._wid_index[wid]

    # -- control RPCs (from the replication manager) -----------------------

    def _chain_ctl(self, shell, body):
        op = body.get("op")
        if op == "chain.cfg":
            return (yield from self._ctl_cfg(shell, body))
        if op == "chain.stat":
            return self.stat(), 64
        if op == "chain.snap":
            self.snapshots_served += 1
            return {"ok": True, "state": self.machine.snapshot(),
                    "index": self.applied_index, "epoch": self.epoch}, \
                self.machine.snapshot_bytes()
        if op == "chain.restore":
            self.machine.restore(body["state"])
            index = int(body["index"])
            self.applied_index = index
            self.commit_index = index
            self.log.reset(index)
            self.snapshots_installed += 1
            return {"ok": True, "index": index}, 16
        if op == "chain.fence":
            self.fenced = True
            self._on_nack(shell, {"epoch": int(body.get("epoch", 1 << 30))})
            return {"ok": True, "fenced": True}, 16
        return {"ok": False, "error": f"unknown chain op {op!r}"}, 16

    def _ctl_cfg(self, shell, body):
        epoch = int(body["epoch"])
        if epoch < self.epoch:
            return {"ok": False, "error": "stale cfg",
                    "epoch": self.epoch}, 32
        self.epoch = epoch
        self.role = body["role"]
        self.self_addr = self._addr(body.get("self"))
        self.pred_addr = self._addr(body.get("pred"))
        self.succ_addr = self._addr(body.get("succ"))
        self.fenced = False
        succ_index = body.get("succ_index")
        if self.succ_addr is not None and succ_index is not None:
            missing = self.log.entries_from(int(succ_index) + 1)
            if missing is None:
                return {"ok": False, "error": "log truncated",
                        "base_index": self.log.base_index,
                        "last_index": self.log.last_index}, 32
            for i in range(0, len(missing), STREAM_CHUNK):
                chunk = missing[i:i + STREAM_CHUNK]
                self._forward(shell, chunk)
                self.entries_streamed += len(chunk)
            # ask the successor where commit stands so acks resume
            self._send_evt(shell, self.succ_addr,
                           {"op": "chain.pull", "epoch": self.epoch,
                            "from": self.self_addr})
        if self.role in ("tail", "solo"):
            yield from self._commit_up_to(shell, self.log.last_index)
            if self.role == "tail" and self.pred_addr is not None \
                    and self.commit_index > 0:
                self._send_ack(shell, self.pred_addr)
        return {"ok": True, "epoch": self.epoch, "role": self.role,
                "last_index": self.log.last_index,
                "commit_index": self.commit_index}, 48

    def stat(self) -> Dict[str, Any]:
        return {
            "ok": True, "epoch": self.epoch, "role": self.role,
            "fenced": self.fenced, "last_index": self.log.last_index,
            "commit_index": self.commit_index,
            "applied_index": self.applied_index,
            "writes_begun": self.writes_begun,
            "writes_committed": self.writes_committed,
            "reads_served": self.reads_served,
            "nacked": self.nacked,
            "fenced_rejects": self.fenced_rejects,
            "stale_drops": self.stale_drops,
            "entries_forwarded": self.entries_forwarded,
            "entries_received": self.entries_received,
            "entries_streamed": self.entries_streamed,
            "snapshots_served": self.snapshots_served,
            "snapshots_installed": self.snapshots_installed,
            "checkpoints": self.checkpoints,
            "gap_drops": self.gap_drops,
        }

    # -- wire helpers ------------------------------------------------------

    @staticmethod
    def _addr(value) -> Optional[Tuple[str, int]]:
        if value is None:
            return None
        mac, port = value
        return (mac, int(port))

    def _forward(self, shell, entries: List[LogEntry]) -> None:
        if self.succ_addr is None:
            return
        self.entries_forwarded += len(entries)
        self._send_evt(shell, self.succ_addr,
                       {"op": "chain.fwd", "epoch": self.epoch,
                        "from": self.self_addr,
                        "entries": [e.to_wire() for e in entries]},
                       nbytes=max(64, 48 * len(entries)))

    def _send_ack(self, shell, addr: Tuple[str, int]) -> None:
        self._send_evt(shell, addr,
                       {"op": "chain.ack", "epoch": self.epoch,
                        "index": self.commit_index, "from": self.self_addr})

    def _send_evt(self, shell, addr: Tuple[str, int], body: Dict,
                  nbytes: int = 64) -> None:
        self._spawn_send(shell, addr[0], ("evt", 0, body), nbytes,
                         port=addr[1])

    def _spawn_send(self, shell, dst_mac: str, data: Any, nbytes: int,
                    port: Optional[int] = None) -> None:
        """Transmit off the worker loop; never wedge on a dead peer."""
        shell.spawn(f"cx{next(self._ctr)}",
                    self._send_bounded(shell, dst_mac,
                                       port if port is not None else self.port,
                                       data, nbytes))

    def _send_bounded(self, shell, dst_mac: str, port: int, data: Any,
                      nbytes: int):
        sent = shell.net_send(dst_mac, port, data=data, nbytes=nbytes)
        # bound the wait: a partitioned/dead peer would park this context
        # forever on the transport ack
        yield shell.engine.any_of([sent, shell.engine.timeout(60_000)])
