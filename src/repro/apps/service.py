"""PortedService: expose any handler as a network-facing Apiary service.

Bridges the datacenter RPC convention (``("req", rid, body)`` over a bound
port) onto an accelerator handler, so the *same handler function* can be
deployed on Apiary, on the hosted baseline and on the bare baseline — the
property that makes D1-D3 apples-to-apples.

Handler convention (shared with :mod:`repro.baselines`):
``handler(body) -> (compute_cycles, response_body, response_bytes)``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from repro.accel.base import Accelerator
from repro.errors import TileFault
from repro.hw.resources import ResourceVector

__all__ = ["PortedService"]

Handler = Callable[[Any], Tuple[int, Any, int]]


class PortedService(Accelerator):
    """Serves datacenter RPCs arriving through ``svc.net`` on one port."""

    COST = ResourceVector(logic_cells=60_000, bram_kb=512, dsp_slices=8)
    PRIMITIVES = {"lut_logic": 48_000, "bram": 128}

    def __init__(self, name: str, port: int, handler: Handler,
                 concurrency: int = 4):
        super().__init__(name)
        self.port = port
        self.handler = handler
        self.concurrency = concurrency
        self.requests_served = 0

    def main(self, shell):
        yield shell.net_bind(self.port)
        while True:
            msg = yield shell.recv()
            if msg.op != "net.rx":
                continue
            body = msg.payload
            data = body.get("data")
            if not (isinstance(data, tuple) and data[0] == "req"):
                continue
            shell.spawn(f"req{data[1]}", self._serve(shell, body, data))

    def _serve(self, shell, envelope, data):
        _tag, rid, body = data
        cycles, out_body, out_bytes = self.handler(body)
        yield from self._work(cycles)
        self.requests_served += 1
        yield shell.net_send(envelope["src_mac"], self.port,
                             data=("resp", rid, out_body), nbytes=out_bytes)
