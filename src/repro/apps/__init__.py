"""Application layer: deployable multi-accelerator applications.

The Section 2 workloads assembled from library accelerators: the video
pipeline (with composition and scale-out variants), the KV service
deployable across all systems under test, and generic microservice chains.
"""

from repro.apps.kv_service import KV_PORT, deploy_kv_on_apiary, make_kv_handler
from repro.apps.microservice import ChainStage, deploy_chain
from repro.apps.service import PortedService
from repro.apps.video_pipeline import (
    LoadBalancer,
    deploy_pipeline,
    deploy_replicated_encoder,
)

__all__ = [
    "PortedService",
    "make_kv_handler",
    "deploy_kv_on_apiary",
    "KV_PORT",
    "LoadBalancer",
    "deploy_pipeline",
    "deploy_replicated_encoder",
    "ChainStage",
    "deploy_chain",
]
