"""The KV-store application (Section 2's second tenant), deployable on
Apiary, on the hosted baseline and on the bare baseline via one handler.

The handler charges the same compute costs as
:class:`repro.accel.kvstore.KvStore` (hash + per-64B value movement), so
system comparisons isolate the *datapath* difference — exactly what D1/D2
need.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.accel.kvstore import KV_CYCLES_PER_64B, KV_HASH_CYCLES
from repro.apps.service import PortedService

__all__ = ["make_kv_handler", "deploy_kv_on_apiary", "KV_PORT"]

KV_PORT = 6379


def make_kv_handler() -> Tuple[Any, Dict]:
    """A KV request handler plus its (inspectable) backing table.

    Body format: ``{"op": "get"|"put", "key": k, "bytes": n}``.
    Returns ``(handler, table)``.
    """
    table: Dict[Any, int] = {}

    def handler(body: Any):
        op = body.get("op")
        key = body.get("key")
        if op == "put":
            nbytes = int(body.get("bytes", 64))
            table[key] = nbytes
            cycles = KV_HASH_CYCLES + KV_CYCLES_PER_64B * (nbytes // 64 + 1)
            return cycles, {"stored": True}, 16
        if op == "get":
            nbytes = table.get(key)
            if nbytes is None:
                return KV_HASH_CYCLES, {"found": False}, 16
            cycles = KV_HASH_CYCLES + KV_CYCLES_PER_64B * (nbytes // 64 + 1)
            return cycles, {"found": True, "bytes": nbytes}, nbytes
        return 1, {"error": f"bad op {op!r}"}, 16

    return handler, table


def deploy_kv_on_apiary(system, node: int, port: int = KV_PORT,
                        name: str = "kv"):
    """Load a KV PortedService onto ``node``; returns (service, started)."""
    handler, _table = make_kv_handler()
    service = PortedService(name, port=port, handler=handler)
    started = system.start_app(node, service, endpoint=f"app.{name}")
    return service, started
