"""Generic microservice call chains.

Section 2: "An accelerated service could have its own state that it needs
to maintain between invocations, it may be part of a complex call chain."
:class:`ChainStage` is a configurable stage that does local work and then
calls the next stage; chains of them measure how per-hop OS overheads
compound along realistic call graphs.
"""

from __future__ import annotations

from typing import List, Optional

from repro.accel.base import Accelerator
from repro.hw.resources import ResourceVector

__all__ = ["ChainStage", "deploy_chain"]


class ChainStage(Accelerator):
    """Does ``work_cycles`` of compute, then calls ``next_endpoint``.

    The last stage (``next_endpoint=None``) just replies.  Per-invocation
    state: a running request counter folded into the response, so chains
    are genuinely stateful services, not pure functions.
    """

    COST = ResourceVector(logic_cells=20_000, bram_kb=64, dsp_slices=4)
    PRIMITIVES = {"lut_logic": 16_000, "bram": 16}

    def __init__(self, name: str, work_cycles: int = 100,
                 next_endpoint: Optional[str] = None,
                 payload_bytes: int = 128):
        super().__init__(name)
        self.work_cycles = work_cycles
        self.next_endpoint = next_endpoint
        self.payload_bytes = payload_bytes
        self.invocations = 0

    def main(self, shell):
        while True:
            msg = yield shell.recv()
            shell.spawn(f"req{msg.mid}", self._serve(shell, msg))

    def _serve(self, shell, msg):
        yield from self._work(self.work_cycles)
        self.invocations += 1
        hops = (msg.payload or {}).get("hops", 0) if isinstance(msg.payload, dict) else 0
        if self.next_endpoint is not None:
            resp = yield shell.call(self.next_endpoint, msg.op,
                                    payload={"hops": hops + 1},
                                    payload_bytes=self.payload_bytes)
            result = resp.payload
        else:
            result = {"hops": hops + 1, "served_by": self.name,
                      "count": self.invocations}
        yield shell.reply(msg, payload=result, payload_bytes=self.payload_bytes)


def deploy_chain(system, nodes: List[int], work_cycles: int = 100,
                 payload_bytes: int = 128, name_prefix: str = "chain"):
    """Deploy a linear call chain across ``nodes``.

    Returns ``(stages, started_events, head_endpoint)``.
    """
    endpoints = [f"app.{name_prefix}.{i}" for i in range(len(nodes))]
    stages = []
    for i, node in enumerate(nodes):
        next_ep = endpoints[i + 1] if i + 1 < len(nodes) else None
        stages.append(ChainStage(f"{name_prefix}.{i}", work_cycles=work_cycles,
                                 next_endpoint=next_ep,
                                 payload_bytes=payload_bytes))
    started = [
        system.start_app(node, stage, endpoint=endpoints[i])
        for i, (node, stage) in enumerate(zip(nodes, stages))
    ]
    for i in range(len(nodes) - 1):
        system.mgmt.grant_send(f"tile{nodes[i]}", endpoints[i + 1])
    return stages, started, endpoints[0]
