"""The video-processing pipeline application (Section 2's running example).

Deployment helpers for:

* the encode→compress(→crypto) composition pipeline, including the
  third-party compressor with OS-managed memory (D9);
* the replicated encoder with an internal load balancer, the paper's
  "replicated accelerator with internal load balancing for higher
  bandwidth" (Section 4.1) and the D8 scale-out experiment.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.accel.base import Accelerator
from repro.accel.compress import Compressor
from repro.accel.crypto import CryptoAccel
from repro.accel.video import VideoEncoder
from repro.hw.resources import ResourceVector

__all__ = ["LoadBalancer", "deploy_pipeline", "deploy_replicated_encoder"]


class LoadBalancer(Accelerator):
    """Round-robin request distributor over replica endpoints.

    Forwards each incoming request to the next replica and relays the
    replica's response back to the original caller.  Requests fan out
    concurrently (one in flight per arrival, not one at a time), so the
    replicas genuinely run in parallel.
    """

    COST = ResourceVector(logic_cells=12_000, bram_kb=64, dsp_slices=0)
    PRIMITIVES = {"lut_logic": 10_000, "fifo": 4}

    def __init__(self, name: str, replicas: List[str]):
        super().__init__(name)
        self.replicas = list(replicas)
        self._next = 0
        self.forwarded = 0
        self.replica_counts: Dict[str, int] = {r: 0 for r in replicas}

    def main(self, shell):
        while True:
            msg = yield shell.recv()
            replica = self.replicas[self._next % len(self.replicas)]
            self._next += 1
            self.forwarded += 1
            self.replica_counts[replica] += 1
            shell.spawn(f"fwd{msg.mid}", self._forward(shell, msg, replica))

    def _forward(self, shell, msg, replica):
        resp = yield shell.call(replica, msg.op, payload=msg.payload,
                                payload_bytes=msg.payload_bytes)
        yield shell.reply(msg, payload=resp.payload,
                          payload_bytes=resp.payload_bytes)


def deploy_pipeline(system, nodes: List[int], with_crypto: bool = False,
                    third_party_compressor: bool = True,
                    name_prefix: str = "pipe"):
    """Deploy encode -> compress [-> crypto] across ``nodes``.

    Returns ``(stages, started_events)``.  Grants exactly the SEND
    capabilities the pipeline edges need — nothing more (least privilege).
    """
    needed = 3 if with_crypto else 2
    if len(nodes) < needed:
        raise ValueError(f"pipeline needs {needed} nodes, got {len(nodes)}")
    enc_ep = f"app.{name_prefix}.enc"
    zip_ep = f"app.{name_prefix}.zip"
    aes_ep = f"app.{name_prefix}.aes"

    compressor = Compressor(f"{name_prefix}.zip",
                            downstream=aes_ep if with_crypto else None,
                            use_dram_dictionary=third_party_compressor)
    encoder = VideoEncoder(f"{name_prefix}.enc", downstream=zip_ep)
    stages = [(nodes[0], encoder, enc_ep), (nodes[1], compressor, zip_ep)]
    if with_crypto:
        stages.append((nodes[2], CryptoAccel(f"{name_prefix}.aes"), aes_ep))

    started = []
    for node, accel, endpoint in stages:
        started.append(system.start_app(node, accel, endpoint=endpoint))
    # pipeline edges
    system.mgmt.grant_send(f"tile{nodes[0]}", zip_ep)
    if with_crypto:
        system.mgmt.grant_send(f"tile{nodes[1]}", aes_ep)
    return [s[1] for s in stages], started


def deploy_replicated_encoder(system, lb_node: int, replica_nodes: List[int],
                              name_prefix: str = "enc"):
    """Deploy N encoder replicas behind a load balancer.

    Returns ``(balancer, replicas, started_events)``.  The balancer's
    endpoint is ``app.{name_prefix}.lb``.
    """
    replica_eps = [f"app.{name_prefix}.r{i}" for i in range(len(replica_nodes))]
    replicas = [VideoEncoder(f"{name_prefix}.r{i}")
                for i in range(len(replica_nodes))]
    started = []
    for node, accel, endpoint in zip(replica_nodes, replicas, replica_eps):
        started.append(system.start_app(node, accel, endpoint=endpoint))
    balancer = LoadBalancer(f"{name_prefix}.lb", replicas=replica_eps)
    started.append(system.start_app(lb_node, balancer,
                                    endpoint=f"app.{name_prefix}.lb"))
    for endpoint in replica_eps:
        system.mgmt.grant_send(f"tile{lb_node}", endpoint)
    return balancer, replicas, started
