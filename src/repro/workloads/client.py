"""A remote client host on the datacenter fabric.

Models the *caller* side of a microservice RPC: a host somewhere in the
datacenter issuing requests to an accelerated service, over the same
reliable transport every system under test uses.  Collects per-request
latency into a histogram — the raw material of D1/D2.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ConfigError, DeadlineExceeded
from repro.net.frame import EthernetFabric
from repro.net.transport import ReliableEndpoint
from repro.policy import RetryPolicy
from repro.sim import Channel, Engine, Event, Histogram

__all__ = ["RemoteClientHost", "ClusterClient"]


class RemoteClientHost:
    """A fabric endpoint that issues port-addressed requests.

    The request payload format matches what the Apiary network service and
    the baseline systems deliver: ``{"port", "data", "src_mac"}`` with an
    application-level ``("req", rid, body)`` / ``("resp", rid, body)``
    convention handled here.
    """

    def __init__(self, engine: Engine, fabric: EthernetFabric, mac: str,
                 window: int = 16, transport_timeout: int = 50_000):
        self.engine = engine
        self.fabric = fabric
        self.mac = mac
        self.window = window
        self.transport_timeout = transport_timeout
        self._peers: Dict[str, ReliableEndpoint] = {}
        self._rid = itertools.count(1)
        self._pending: Dict[int, Event] = {}
        self.latency = Histogram(f"{mac}.latency")
        self.requests_sent = 0
        self.responses_received = 0
        self.timeouts = 0
        fabric.attach(mac, self._rx_frame)

    def _peer(self, peer_mac: str) -> ReliableEndpoint:
        if peer_mac not in self._peers:
            endpoint = ReliableEndpoint(
                self.engine, self.fabric.transmit, self.mac, peer_mac,
                window=self.window, timeout=self.transport_timeout,
                name=f"client.{self.mac}->{peer_mac}",
            )
            self._peers[peer_mac] = endpoint
            self.engine.process(self._rx_pump(endpoint),
                                name=f"{self.mac}.pump.{peer_mac}")
        return self._peers[peer_mac]

    def _rx_frame(self, frame) -> None:
        if getattr(frame, "corrupted", False):
            return  # host NIC drops bad-CRC frames; transport retransmits
        endpoint = self._peer(frame.src_mac)
        endpoint.deliver_frame(frame)

    def _rx_pump(self, endpoint: ReliableEndpoint):
        while True:
            payload = yield endpoint.recv()
            data = payload.get("data")
            if not (isinstance(data, tuple) and len(data) == 3
                    and data[0] == "resp"):
                continue
            _tag, rid, body = data
            waiter = self._pending.pop(rid, None)
            if waiter is not None and not waiter.triggered:
                self.responses_received += 1
                waiter.succeed(body)

    def request(self, peer_mac: str, port: int, body: Any,
                nbytes: int = 64, timeout: Optional[int] = None,
                retry: Optional[RetryPolicy] = None) -> Event:
        """Issue one request; event succeeds with the response body.

        With ``retry=RetryPolicy(...)`` the request is retried under that
        policy: each attempt re-sends with a fresh id, so a response to a
        timed-out attempt is simply dropped — the failover-survival
        behaviour the recovery subsystem assumes of well-behaved clients.
        ``timeout`` and ``retry`` are mutually exclusive.
        """
        if retry is not None:
            if timeout is not None:
                raise ConfigError(
                    "pass either timeout= or retry= to request, not both"
                )

            def attempt(attempt_timeout: int) -> Event:
                return self.request(peer_mac, port, body, nbytes=nbytes,
                                    timeout=attempt_timeout)

            return retry.drive(
                self.engine, attempt, retry_on=(ConfigError,),
                describe=f"request to {peer_mac}:{port}",
                name=f"{self.mac}.retry",
            )
        rid = next(self._rid)
        done = self.engine.event(f"{self.mac}.req#{rid}")
        self._pending[rid] = done
        self.requests_sent += 1
        endpoint = self._peer(peer_mac)
        endpoint.send({"port": port, "data": ("req", rid, body),
                       "src_mac": self.mac}, payload_bytes=nbytes)
        if timeout is not None:
            def expire(_ev) -> None:
                if rid in self._pending:
                    del self._pending[rid]
                    self.timeouts += 1
                    if not done.triggered:
                        done.fail(ConfigError(f"request {rid} timed out"))
            self.engine.timeout(timeout).add_callback(expire)
        return done

    def request_with_retry(self, peer_mac: str, port: int, body: Any,
                           nbytes: int = 64, deadline: int = 400_000,
                           attempt_timeout: int = 50_000,
                           backoff_base: int = 2_000,
                           backoff_cap: int = 32_000):
        """Process generator: one request, retried until ``deadline``.

        .. deprecated:: use ``yield client.request(...,
           retry=RetryPolicy(...))`` — this shim builds the equivalent
           policy and delegates.

        ``yield from`` it; returns the response body or raises
        :class:`DeadlineExceeded` once the deadline is spent.
        """
        policy = RetryPolicy(deadline=deadline,
                             attempt_timeout=attempt_timeout,
                             backoff_base=backoff_base,
                             backoff_cap=backoff_cap)
        response = yield self.request(peer_mac, port, body, nbytes=nbytes,
                                      retry=policy)
        return response

    def closed_loop(self, peer_mac: str, port: int, bodies: List[Any],
                    nbytes: int = 64, gaps: Optional[List[int]] = None,
                    timeout: Optional[int] = None):
        """Process generator: one request at a time, recording latencies."""
        for i, body in enumerate(bodies):
            if gaps is not None:
                yield gaps[i % len(gaps)]
            start = self.engine.now
            try:
                yield self.request(peer_mac, port, body, nbytes=nbytes,
                                   timeout=timeout)
            except ConfigError:
                continue  # timeout recorded; latency not
            self.latency.record(self.engine.now - start)

    def open_loop(self, peer_mac: str, port: int, bodies: List[Any],
                  gaps: List[int], nbytes: int = 64,
                  timeout: Optional[int] = None):
        """Process generator: fire per schedule regardless of completions."""
        outstanding: List[Event] = []
        for i, body in enumerate(bodies):
            yield gaps[i % len(gaps)]
            start = self.engine.now
            done = self.request(peer_mac, port, body, nbytes=nbytes,
                                timeout=timeout)

            def record(ev: Event, t0=start) -> None:
                if not ev.failed:
                    self.latency.record(self.engine.now - t0)

            done.add_callback(record)
            outstanding.append(done)
        # wait for stragglers (failures resolve via timeout)
        for done in outstanding:
            if not done.triggered:
                try:
                    yield done
                except ConfigError:
                    pass


class ClusterClient(RemoteClientHost):
    """A client that addresses *services*, not boards.

    The cluster-aware face of :class:`RemoteClientHost`: instead of a
    ``(mac, port)`` address the caller names a service; the front-end
    resolves it through the service directory (shard by ``key``,
    least-loaded for stateless), handles backend health and failover, and
    answers ``{"ok": True, "body": ...}`` — or ``{"ok": False,
    "rejected": True}`` when admission control sheds load.
    """

    def __init__(self, engine: Engine, fabric: EthernetFabric, mac: str,
                 frontend_mac: str = "frontend", frontend_port: int = 7000,
                 window: int = 16, transport_timeout: int = 50_000):
        super().__init__(engine, fabric, mac, window=window,
                         transport_timeout=transport_timeout)
        self.frontend_mac = frontend_mac
        self.frontend_port = frontend_port
        self.ok = 0
        self.rejected = 0
        self.failed = 0

    def call_service(self, service: str, body: Any, key: Any = None,
                     write: bool = False, nbytes: int = 64,
                     timeout: Optional[int] = None,
                     retry: Optional[RetryPolicy] = None,
                     tenant: Optional[str] = None) -> Event:
        """One request by service name; succeeds with the front-end reply.

        ``tenant`` tags the request for per-tenant SLO accounting at the
        front-end; it does not affect routing.
        """
        req = {"service": service, "body": body, "nbytes": nbytes}
        if key is not None:
            req["key"] = key
        if write:
            req["write"] = True
        if tenant is not None:
            req["tenant"] = tenant
        return self.request(self.frontend_mac, self.frontend_port, req,
                            nbytes=nbytes, timeout=timeout, retry=retry)

    def closed_loop_service(self, service: str, requests: List[Dict[str, Any]],
                            timeout: int = 400_000,
                            gap: int = 0):
        """Process generator: issue ``requests`` one at a time.

        Each entry is ``{"body": ..., "key"?: ..., "write"?: ...,
        "tenant"?: ...}``.
        Records latency for completed requests and tallies
        ``ok/rejected/failed`` — the raw material of the S1 scaling and
        availability numbers.
        """
        for req in requests:
            if gap:
                yield gap
            start = self.engine.now
            try:
                reply = yield self.call_service(
                    service, req.get("body"), key=req.get("key"),
                    write=bool(req.get("write")),
                    nbytes=int(req.get("nbytes", 64)), timeout=timeout,
                    tenant=req.get("tenant"))
            except (ConfigError, DeadlineExceeded):
                self.failed += 1
                continue
            if isinstance(reply, dict) and reply.get("ok"):
                self.ok += 1
                self.latency.record(self.engine.now - start)
            elif isinstance(reply, dict) and reply.get("rejected"):
                self.rejected += 1
            else:
                self.failed += 1
