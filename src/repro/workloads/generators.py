"""Workload generators: arrival processes and key/size distributions.

The evaluation harness drives every system (Apiary, hosted, bare) with the
same generators so comparisons differ only in the system under test.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "poisson_gaps",
    "constant_gaps",
    "bursty_gaps",
    "zipf_keys",
    "uniform_sizes",
    "bimodal_sizes",
    "video_chunks",
]


def constant_gaps(rate_per_kcycle: float, count: int) -> List[int]:
    """Deterministic arrivals: one request every ``1000/rate`` cycles."""
    if rate_per_kcycle <= 0:
        raise ConfigError("rate must be positive")
    gap = max(1, int(1000 / rate_per_kcycle))
    return [gap] * count


def poisson_gaps(rng: np.random.Generator, rate_per_kcycle: float,
                 count: int) -> List[int]:
    """Exponential inter-arrival gaps for an open-loop Poisson process."""
    if rate_per_kcycle <= 0:
        raise ConfigError("rate must be positive")
    mean_gap = 1000.0 / rate_per_kcycle
    gaps = rng.exponential(mean_gap, size=count)
    return [max(1, int(g)) for g in gaps]


def bursty_gaps(rng: np.random.Generator, rate_per_kcycle: float, count: int,
                burst_len: int = 8, burst_gap: int = 1) -> List[int]:
    """On/off bursts: ``burst_len`` back-to-back requests, then a long gap
    chosen to keep the long-run rate at ``rate_per_kcycle``."""
    if burst_len < 1:
        raise ConfigError("burst length must be >= 1")
    mean_gap = 1000.0 / rate_per_kcycle
    off_gap = max(1, int(mean_gap * burst_len - burst_gap * (burst_len - 1)))
    gaps: List[int] = []
    while len(gaps) < count:
        gaps.extend([burst_gap] * (burst_len - 1))
        gaps.append(off_gap)
    return gaps[:count]


def zipf_keys(rng: np.random.Generator, count: int, universe: int = 10_000,
              skew: float = 1.1) -> List[int]:
    """Zipf-distributed keys (KV workloads are heavily skewed)."""
    if skew <= 1.0:
        raise ConfigError("numpy zipf needs skew > 1.0")
    keys = rng.zipf(skew, size=count)
    return [int(k % universe) for k in keys]


def uniform_sizes(rng: np.random.Generator, count: int, low: int = 64,
                  high: int = 1024) -> List[int]:
    return [int(s) for s in rng.integers(low, high + 1, size=count)]


def bimodal_sizes(rng: np.random.Generator, count: int, small: int = 64,
                  large: int = 4096, large_fraction: float = 0.1) -> List[int]:
    """The classic datacenter mix: mostly small, occasionally large."""
    picks = rng.random(count) < large_fraction
    return [large if p else small for p in picks]


def video_chunks(rng: np.random.Generator, count: int,
                 frames_per_chunk: int = 30,
                 mean_chunk_bytes: int = 500_000) -> List[dict]:
    """Video chunks with log-normally distributed sizes (content-dependent)."""
    sizes = rng.lognormal(mean=np.log(mean_chunk_bytes), sigma=0.4, size=count)
    return [
        {"seq": i, "frames": frames_per_chunk,
         "bytes": max(10_000, int(sizes[i]))}
        for i in range(count)
    ]
