"""Workload generators: arrival processes and key/size distributions.

The evaluation harness drives every system (Apiary, hosted, bare) with the
same generators so comparisons differ only in the system under test.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, List, Optional, Union

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "poisson_gaps",
    "constant_gaps",
    "bursty_gaps",
    "lognormal_gaps",
    "pareto_gaps",
    "keyed_stream",
    "zipf_keys",
    "uniform_sizes",
    "bimodal_sizes",
    "video_chunks",
]


def keyed_stream(seed: int, *labels: str) -> np.random.Generator:
    """An independent generator keyed by ``(seed, labels...)``.

    Two streams with the same seed but different labels are statistically
    independent (the seed is mixed through SHA-256, exactly like
    :class:`~repro.sim.rng.RngPool`), so a tenant's key-popularity draws
    never correlate with its arrival process — or with another tenant's
    keys — even when everything shares one scenario seed.
    """
    tag = ":".join((str(seed),) + labels)
    digest = hashlib.sha256(tag.encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


def constant_gaps(rate_per_kcycle: float, count: int) -> List[int]:
    """Deterministic arrivals: one request every ``1000/rate`` cycles."""
    if rate_per_kcycle <= 0:
        raise ConfigError("rate must be positive")
    gap = max(1, int(1000 / rate_per_kcycle))
    return [gap] * count


def poisson_gaps(rng: np.random.Generator, rate_per_kcycle: float,
                 count: int) -> List[int]:
    """Exponential inter-arrival gaps for an open-loop Poisson process."""
    if rate_per_kcycle <= 0:
        raise ConfigError("rate must be positive")
    mean_gap = 1000.0 / rate_per_kcycle
    gaps = rng.exponential(mean_gap, size=count)
    return [max(1, int(g)) for g in gaps]


def bursty_gaps(rng: np.random.Generator, rate_per_kcycle: float, count: int,
                burst_len: int = 8, burst_gap: int = 1) -> List[int]:
    """On/off bursts: ``burst_len`` back-to-back requests, then a long gap
    chosen to keep the long-run rate at ``rate_per_kcycle``."""
    if burst_len < 1:
        raise ConfigError("burst length must be >= 1")
    mean_gap = 1000.0 / rate_per_kcycle
    off_gap = max(1, int(mean_gap * burst_len - burst_gap * (burst_len - 1)))
    gaps: List[int] = []
    while len(gaps) < count:
        gaps.extend([burst_gap] * (burst_len - 1))
        gaps.append(off_gap)
    return gaps[:count]


def lognormal_gaps(rng: np.random.Generator, rate_per_kcycle: float,
                   count: int, sigma: float = 1.0) -> List[int]:
    """Log-normally distributed inter-arrival gaps (heavy-tailed).

    ``sigma`` is the shape parameter: the log-scale ``mu`` is solved so
    the *mean* gap stays ``1000 / rate`` whatever the shape — the long-run
    offered rate is the contract, the tail weight is the knob.
    """
    if rate_per_kcycle <= 0:
        raise ConfigError("rate must be positive")
    if sigma <= 0:
        raise ConfigError("sigma must be positive")
    mean_gap = 1000.0 / rate_per_kcycle
    mu = np.log(mean_gap) - sigma * sigma / 2.0
    gaps = rng.lognormal(mean=mu, sigma=sigma, size=count)
    return [max(1, int(g)) for g in gaps]


def pareto_gaps(rng: np.random.Generator, rate_per_kcycle: float,
                count: int, alpha: float = 1.5) -> List[int]:
    """Pareto (Lomax) inter-arrival gaps — the classic flash-crowd tail.

    ``alpha`` must exceed 1 so the mean exists; the scale is solved so the
    mean gap is ``1000 / rate``.  Smaller ``alpha`` means heavier tails:
    long quiet stretches punctuated by dense request bursts at the same
    long-run rate.
    """
    if rate_per_kcycle <= 0:
        raise ConfigError("rate must be positive")
    if alpha <= 1.0:
        raise ConfigError("pareto needs alpha > 1.0 for a finite mean")
    mean_gap = 1000.0 / rate_per_kcycle
    scale = mean_gap * (alpha - 1.0)
    gaps = scale * rng.pareto(alpha, size=count)
    return [max(1, int(g)) for g in gaps]


def zipf_keys(rng: Union[np.random.Generator, int], count: int,
              universe: int = 10_000, skew: float = 1.1,
              stream: Optional[str] = None) -> List[int]:
    """Zipf-distributed keys over an explicit ``universe`` of key ids.

    ``rng`` may be a generator (legacy spelling) or a plain integer seed;
    with a seed, the draws come from an independent stream keyed by
    ``(seed, "zipf", stream)``, so two tenants sharing one scenario seed
    get *uncorrelated* key popularity as long as their ``stream`` labels
    differ — and neither perturbs (or is perturbed by) the arrival
    process drawn from the same seed.
    """
    if skew <= 1.0:
        raise ConfigError("numpy zipf needs skew > 1.0")
    if universe < 1:
        raise ConfigError("key universe must hold at least one key")
    if isinstance(rng, (int, np.integer)):
        rng = keyed_stream(int(rng), "zipf", stream or "")
    elif stream is not None:
        raise ConfigError(
            "stream= labels an independent draw from a seed; pass an "
            "integer seed with it, not a live generator"
        )
    keys = rng.zipf(skew, size=count)
    return [int(k % universe) for k in keys]


def uniform_sizes(rng: np.random.Generator, count: int, low: int = 64,
                  high: int = 1024) -> List[int]:
    return [int(s) for s in rng.integers(low, high + 1, size=count)]


def bimodal_sizes(rng: np.random.Generator, count: int, small: int = 64,
                  large: int = 4096, large_fraction: float = 0.1) -> List[int]:
    """The classic datacenter mix: mostly small, occasionally large."""
    picks = rng.random(count) < large_fraction
    return [large if p else small for p in picks]


def video_chunks(rng: np.random.Generator, count: int,
                 frames_per_chunk: int = 30,
                 mean_chunk_bytes: int = 500_000) -> List[dict]:
    """Video chunks with log-normally distributed sizes (content-dependent)."""
    sizes = rng.lognormal(mean=np.log(mean_chunk_bytes), sigma=0.4, size=count)
    return [
        {"seq": i, "frames": frames_per_chunk,
         "bytes": max(10_000, int(sizes[i]))}
        for i in range(count)
    ]
