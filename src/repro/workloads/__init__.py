"""Workload generation: arrival processes, distributions, remote clients."""

from repro.workloads.client import ClusterClient, RemoteClientHost
from repro.workloads.generators import (
    bimodal_sizes,
    bursty_gaps,
    constant_gaps,
    keyed_stream,
    lognormal_gaps,
    pareto_gaps,
    poisson_gaps,
    uniform_sizes,
    video_chunks,
    zipf_keys,
)

__all__ = [
    "RemoteClientHost",
    "ClusterClient",
    "constant_gaps",
    "poisson_gaps",
    "bursty_gaps",
    "lognormal_gaps",
    "pareto_gaps",
    "keyed_stream",
    "zipf_keys",
    "uniform_sizes",
    "bimodal_sizes",
    "video_chunks",
]
