"""Open-loop arrival synthesis: base processes shaped by rate envelopes.

The traffic engine materializes every tenant's arrival schedule *before*
the run: a sorted list of integer cycles at which requests fire, whatever
the cluster is doing at that moment.  That is the definition of an
open-loop workload — arrival times are a pure function of (seed, spec),
never of completions — and it is also what makes a scenario reproducible
to the byte across execution backends.

Two declarative pieces compose:

* :class:`ArrivalSpec` — the base point process (seeded Poisson, or
  heavy-tailed lognormal/Pareto gaps, or a deterministic constant drip)
  at a long-run ``rate_per_kcycle``;
* :class:`EnvelopeSpec` — a deterministic rate-shaping curve over the
  scenario window (diurnal sinusoid, linear ramp, flash-crowd spike,
  square wave), any number of which multiply together over the base.

Shaping uses Lewis–Shedler thinning: the base process is generated at the
envelope's *peak* rate and each arrival at cycle ``t`` survives with
probability ``factor(t) / peak`` drawn from an independent seeded stream.
Thinning is exact for Poisson (the result is the non-homogeneous process
with the composed rate) and is the standard modulation for heavy-tailed
gap processes, whose burst structure survives the envelope.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import ConfigError
from repro.sim import RngPool
from repro.workloads.generators import (
    constant_gaps,
    lognormal_gaps,
    pareto_gaps,
    poisson_gaps,
)

__all__ = ["EnvelopeSpec", "ArrivalSpec", "arrival_times"]

#: base gap draws per chunk while filling the scenario window
_CHUNK = 512

#: the base point processes an ArrivalSpec may name
PROCESSES = ("poisson", "lognormal", "pareto", "constant")

#: the envelope shapes an EnvelopeSpec may name
SHAPES = ("diurnal", "ramp", "spike", "square")


@dataclass(frozen=True)
class EnvelopeSpec:
    """One deterministic rate-shaping curve, as a multiplicative factor.

    ``shape`` selects the curve; the other fields are knobs whose meaning
    follows the shape (unused knobs are ignored but round-trip through
    ``to_dict``/``from_dict`` untouched):

    ``diurnal``
        a raised cosine swinging between ``low`` and ``high`` once per
        ``period`` cycles (``period=0`` means once per scenario), starting
        at the ``low`` point — a day compressed into simulated time;
    ``ramp``
        linear from ``low`` to ``high`` across ``[start, end)``, holding
        ``high`` after (``end=0`` means the scenario end);
    ``spike``
        factor ``high`` inside ``[start, end)`` and ``low`` outside — the
        flash crowd;
    ``square``
        alternating ``low``/``high`` half-periods of ``period`` cycles —
        the load-step soak.
    """

    shape: str
    low: float = 1.0
    high: float = 1.0
    period: int = 0
    start: int = 0
    end: int = 0

    def __post_init__(self):
        if self.shape not in SHAPES:
            raise ConfigError(
                f"unknown envelope shape {self.shape!r}; pick one of "
                f"{SHAPES}")
        if self.low < 0 or self.high < 0:
            raise ConfigError("envelope factors must be non-negative")
        if self.low > self.high:
            raise ConfigError(
                f"envelope low {self.low} exceeds high {self.high}")
        if self.shape in ("diurnal", "square") and self.period < 0:
            raise ConfigError("period must be >= 0 (0 = whole scenario)")
        if self.shape in ("ramp", "spike") and self.end \
                and self.end <= self.start:
            raise ConfigError("envelope end must sit after start")

    def peak(self) -> float:
        return self.high

    def factor_at(self, t: int, duration: int) -> float:
        """The multiplicative rate factor at cycle ``t`` (from window
        start); pure float math, identical on every backend."""
        if self.shape == "diurnal":
            period = self.period or duration
            phase = (t % period) / period
            return self.low + (self.high - self.low) * 0.5 * (
                1.0 - math.cos(2.0 * math.pi * phase))
        if self.shape == "ramp":
            end = self.end or duration
            if t < self.start:
                return self.low
            if t >= end:
                return self.high
            frac = (t - self.start) / (end - self.start)
            return self.low + (self.high - self.low) * frac
        if self.shape == "spike":
            end = self.end or duration
            return self.high if self.start <= t < end else self.low
        # square
        period = self.period or duration
        half = max(1, period // 2)
        return self.high if (t // half) % 2 else self.low


@dataclass(frozen=True)
class ArrivalSpec:
    """A seeded base process plus any number of shaping envelopes."""

    process: str = "poisson"
    rate_per_kcycle: float = 1.0
    #: lognormal shape (heavier tail as it grows)
    sigma: float = 1.0
    #: pareto tail index (must exceed 1; heavier tail as it shrinks)
    alpha: float = 1.5
    envelopes: Tuple[EnvelopeSpec, ...] = field(default_factory=tuple)

    def __post_init__(self):
        if self.process not in PROCESSES:
            raise ConfigError(
                f"unknown arrival process {self.process!r}; pick one of "
                f"{PROCESSES}")
        if self.rate_per_kcycle <= 0:
            raise ConfigError("rate_per_kcycle must be positive")
        if not isinstance(self.envelopes, tuple):
            object.__setattr__(self, "envelopes", tuple(self.envelopes))

    def peak_factor(self) -> float:
        factor = 1.0
        for env in self.envelopes:
            factor *= env.peak()
        return factor

    def factor_at(self, t: int, duration: int) -> float:
        factor = 1.0
        for env in self.envelopes:
            factor *= env.factor_at(t, duration)
        return factor

    def _gaps(self, rng, rate: float, count: int) -> List[int]:
        if self.process == "poisson":
            return poisson_gaps(rng, rate, count)
        if self.process == "lognormal":
            return lognormal_gaps(rng, rate, count, sigma=self.sigma)
        if self.process == "pareto":
            return pareto_gaps(rng, rate, count, alpha=self.alpha)
        return constant_gaps(rate, count)


def arrival_times(spec: ArrivalSpec, duration: int, pool: RngPool,
                  stream: str = "arrivals") -> List[int]:
    """Materialize one tenant's arrival cycles over ``[1, duration]``.

    The base process runs at ``rate * peak_factor`` and each arrival is
    thinned by ``factor(t) / peak_factor`` using the independent
    ``<stream>.thin`` stream — so the same pool always yields the same
    schedule, and an unshaped spec consumes zero thinning draws (the
    envelope-free fast path really is the bare process).
    """
    if duration <= 0:
        raise ConfigError("duration must be positive")
    peak = spec.peak_factor()
    if peak <= 0:
        raise ConfigError(
            "the composed envelope peak is zero; no arrivals could ever "
            "survive thinning")
    gap_rng = pool.stream(stream)
    thin_rng = pool.stream(f"{stream}.thin") if spec.envelopes else None
    times: List[int] = []
    now = 0
    while now <= duration:
        for gap in spec._gaps(gap_rng, spec.rate_per_kcycle * peak, _CHUNK):
            now += gap
            if now > duration:
                break
            if thin_rng is not None:
                keep = spec.factor_at(now, duration) / peak
                if thin_rng.random() >= keep:
                    continue
            times.append(now)
    return times
