"""ScenarioRunner: execute a Scenario against a Cluster, emit the report.

The runner is the bridge between the declarative spec and the simulated
datacenter: build the cluster on the requested backend, deploy the
declared services, park every partition at exactly ``scenario.start_at``,
then let pre-materialized per-tenant arrival schedules fire through the
front-end's non-blocking :meth:`~repro.cluster.frontend.FrontEnd.submit`
path while the chaos plan lands at its declared cycles.

Two properties are load-bearing:

* **genuinely open-loop** — every tenant's arrival cycles are computed
  up front from ``(seed, spec)`` (see :mod:`repro.loadgen.arrivals`) and
  the sources fire on schedule whatever the cluster is doing; overload
  therefore queues, rejects, and drops instead of silently slowing the
  generator down;
* **backend-independent bytes** — traffic originates on the host
  partition (no client fabric hosts), chaos lands via ``run(until=...)``
  at exact cycles, and the report is assembled from commutative
  artifacts (bucketed SLO counts, mergeable sketches, integer counters)
  at a *computed* end cycle — so the same seeded scenario produces a
  byte-identical :class:`~repro.loadgen.report.ScenarioReport` on the
  shared, sequential, and parallel backends, board kills included.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional

from repro.cluster.cluster import Cluster
from repro.cluster.smoke import _echo_handler_factory, _kv_handler_factory
from repro.errors import ConfigError
from repro.kernel.config import SystemConfig
from repro.loadgen.arrivals import arrival_times
from repro.loadgen.report import ScenarioReport, _safe
from repro.loadgen.scenario import Scenario, TenantSpec
from repro.obs.sketch import QuantileSketch
from repro.policy import RetryPolicy
from repro.sim import RngPool
from repro.workloads.generators import keyed_stream, zipf_keys

__all__ = ["ScenarioRunner", "run_scenario"]

#: cap on boot + deploy simulation (reconfiguration is slow but bounded)
_DEPLOY_LIMIT = 50_000_000


class ScenarioRunner:
    """One scenario, one cluster, one deterministic report."""

    def __init__(self, scenario: Scenario, backend: str = "shared"):
        self.scenario = scenario
        self.backend = backend
        self.cluster: Optional[Cluster] = None
        # per-tenant outcome ledgers, filled by submit callbacks
        self._counts: Dict[str, Dict[str, int]] = {}
        self._sketches: Dict[str, QuantileSketch] = {}

    # -- cluster assembly --------------------------------------------------

    def _build(self) -> Cluster:
        scn = self.scenario
        config = SystemConfig.figure1()
        if scn.seed:
            config = replace(config, seed=scn.seed)
        # chaos plans kill boards mid-flight; orphaned in-flight errors
        # are the fault path's job, not the engine's
        cluster = Cluster(n_fpgas=scn.n_fpgas, config=config,
                          backend=self.backend,
                          swallow_orphan_errors=True)
        cluster.boot()
        cluster.enable_slo(targets=scn.slos)
        started = []
        for svc in scn.services:
            if svc.kind == "echo":
                started += cluster.deploy_stateless(
                    svc.name, _echo_handler_factory(svc.work_cycles),
                    instances=svc.instances)
            else:
                started += cluster.deploy_sharded(
                    svc.name, _kv_handler_factory(svc.work_cycles),
                    n_shards=svc.shards, replication=svc.replicas,
                    replicate_writes=True)
        cluster.run_until(started, limit=_DEPLOY_LIMIT)
        cluster.start_frontend(
            max_pending=scn.max_pending,
            max_backlog=scn.max_backlog,
            queue_deadline=scn.queue_deadline,
            retry=RetryPolicy(deadline=scn.retry_deadline,
                              attempt_timeout=scn.attempt_timeout,
                              backoff_base=200, backoff_cap=2_000))
        if cluster.now > scn.start_at:
            raise ConfigError(
                f"boot + deploy ran to cycle {cluster.now}, past "
                f"start_at={scn.start_at}; raise Scenario.start_at")
        # park every partition at exactly the traffic start — the
        # backend contract (run lands on `until` on every backend) is
        # what lines the windowed clocks up with the shared one here
        cluster.run(until=scn.start_at)
        cluster.seal()
        return cluster

    # -- traffic sources ---------------------------------------------------

    def _materialize(self, tenant: TenantSpec):
        """(arrival cycles, keys, is_read flags) — pure f(seed, spec)."""
        scn = self.scenario
        pool = RngPool(scn.seed).fork(f"tenant.{tenant.name}")
        times = arrival_times(tenant.arrival, scn.duration, pool,
                              stream="gaps")
        n = len(times)
        keys = zipf_keys(keyed_stream(scn.seed, "tenant", tenant.name,
                                      "keys"),
                         n, universe=tenant.key_universe,
                         skew=tenant.zipf_skew)
        reads = keyed_stream(scn.seed, "tenant", tenant.name,
                             "ops").random(n) < tenant.read_fraction
        return times, keys, [bool(r) for r in reads]

    def _source(self, frontend, tenant: TenantSpec, times: List[int],
                keys: List[int], reads: List[bool]):
        """One tenant's open-loop firehose (runs on the host engine).

        Waits out the pre-computed gap to the next arrival and fires —
        never waits on a completion, so a drowning cluster changes
        nothing about what this process does next.
        """
        svc = next(s for s in self.scenario.services
                   if s.name == tenant.service)
        counts = self._counts[tenant.name]
        sketch = self._sketches[tenant.name]
        engine = frontend.engine
        now = 0
        for i, at in enumerate(times):
            if at > now:
                yield at - now
            now = at
            if svc.kind == "kv":
                is_read = reads[i]
                key = keys[i]
                body = ({"op": "get", "key": key} if is_read
                        else {"op": "put", "key": key, "value": i})
            else:
                is_read = True
                key = None
                body = {"x": i}

            def done(reply: Dict[str, Any], sent: int = engine.now,
                     counts: Dict[str, int] = counts,
                     sketch: QuantileSketch = sketch) -> None:
                if reply.get("rejected"):
                    counts["rejected"] += 1
                elif reply.get("ok"):
                    counts["served"] += 1
                    sketch.record(engine.now - sent)
                else:
                    counts["failed"] += 1

            accepted = frontend.submit(
                tenant.service, body=body, key=key, write=not is_read,
                tenant=tenant.name, nbytes=tenant.value_bytes,
                on_done=done)
            if not accepted:
                counts["dropped"] += 1

    # -- the run -----------------------------------------------------------

    def run(self) -> ScenarioReport:
        scn = self.scenario
        cluster = self.cluster = self._build()
        frontend = cluster.frontend
        t0 = scn.start_at

        offered: Dict[str, int] = {}
        for tenant in sorted(scn.tenants, key=lambda t: t.name):
            times, keys, reads = self._materialize(tenant)
            offered[tenant.name] = len(times)
            self._counts[tenant.name] = {
                "served": 0, "rejected": 0, "dropped": 0, "failed": 0}
            self._sketches[tenant.name] = QuantileSketch(
                f"tenant.{tenant.name}.latency")
            cluster.engine.process(
                self._source(frontend, tenant, times, keys, reads),
                name=f"loadgen.{tenant.name}")

        timeline: List[Dict[str, Any]] = []
        for act in sorted(scn.chaos, key=lambda a: (a.at, a.board)):
            cluster.run(until=t0 + act.at)
            if act.action == "kill":
                cluster.kill_fpga(act.board)
            elif act.action == "partition":
                cluster.partition_fpga(act.board)
            else:
                cluster.heal_fpga(act.board)
            timeline.append({"at": act.at, "action": act.action,
                             "board": act.board})

        cluster.run(until=t0 + scn.duration)
        drain = scn.drain_cycles()
        end = t0 + scn.duration + drain
        cluster.run(until=end)
        cluster.shutdown()

        return self._report(end, drain, offered, timeline)

    def _report(self, end: int, drain: int, offered: Dict[str, int],
                timeline: List[Dict[str, Any]]) -> ScenarioReport:
        scn = self.scenario
        cluster = self.cluster
        frontend = cluster.frontend
        slo_report = cluster.slo.report(end)

        tenants: Dict[str, Dict[str, Any]] = {}
        totals = {"offered": 0, "served": 0, "rejected": 0,
                  "dropped": 0, "failed": 0, "unresolved": 0}
        for tenant in scn.tenants:
            counts = self._counts[tenant.name]
            sketch = self._sketches[tenant.name]
            n = offered[tenant.name]
            resolved = sum(counts.values())
            row = {
                "service": tenant.service,
                "offered": n,
                "served": counts["served"],
                "rejected": counts["rejected"],
                "dropped": counts["dropped"],
                "failed": counts["failed"],
                # submissions still in flight when the drain window
                # closed — nonzero means drain was sized too small
                "unresolved": n - resolved,
                "latency_p50": _safe(sketch.percentile(50)),
                "latency_p99": _safe(sketch.percentile(99)),
                "latency_p999": _safe(sketch.percentile(99.9)),
                "goodput_per_kcycle": round(
                    1000.0 * counts["served"] / scn.duration, 6),
                "offered_per_kcycle": round(
                    1000.0 * n / scn.duration, 6),
            }
            tenants[tenant.name] = row
            totals["offered"] += n
            totals["served"] += counts["served"]
            totals["rejected"] += counts["rejected"]
            totals["dropped"] += counts["dropped"]
            totals["failed"] += counts["failed"]
            totals["unresolved"] += n - resolved

        passed = bool(slo_report["targets"]) and all(
            row["verdict"] == "pass" for row in slo_report["targets"])

        # note what the report does NOT contain: the backend name, engine
        # clock readings, span/trace ids — anything that could differ
        # between identical runs on different executors
        data = {
            "scenario": scn.to_dict(),
            "window": {"start": scn.start_at,
                       "end": end,
                       "duration": scn.duration,
                       "drain": drain},
            "tenants": tenants,
            "frontend": {
                "admitted": frontend.requests_admitted,
                "rejected": frontend.requests_rejected,
                "dropped": frontend.requests_dropped,
                "failed": frontend.requests_failed,
                "failovers": frontend.failovers,
                "backlog_left": frontend.backlog_depth(),
            },
            "slo": {"rows": slo_report["targets"],
                    "alerts": slo_report["alerts"]},
            "chaos": timeline,
            "totals": totals,
            "passed": passed,
        }
        return ScenarioReport(data)


def run_scenario(scenario, backend: str = "shared") -> ScenarioReport:
    """One-call convenience: dict or Scenario in, ScenarioReport out."""
    if isinstance(scenario, dict):
        scenario = Scenario.from_dict(scenario)
    return ScenarioRunner(scenario, backend=backend).run()
