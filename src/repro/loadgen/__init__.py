"""Internet-scale traffic & scenario engine with declarative SLO-scored runs.

The open-loop workload layer ROADMAP item 2 asks for: seeded arrival
processes shaped by rate envelopes (:mod:`~repro.loadgen.arrivals`), a
frozen declarative :class:`~repro.loadgen.scenario.Scenario` composing
arrival model × tenant mix × chaos plan × SLO targets, a
:class:`~repro.loadgen.runner.ScenarioRunner` that executes it on any
cluster backend with byte-identical results, and a canned scenario
library (:mod:`~repro.loadgen.library`) every scaling PR reports against.
"""

from repro.loadgen.arrivals import ArrivalSpec, EnvelopeSpec, arrival_times
from repro.loadgen.library import SCENARIOS, get_scenario, scenario_names
from repro.loadgen.report import ScenarioReport
from repro.loadgen.runner import ScenarioRunner, run_scenario
from repro.loadgen.scenario import (
    ChaosAction,
    Scenario,
    ServiceDecl,
    TenantSpec,
)

__all__ = [
    "ArrivalSpec",
    "EnvelopeSpec",
    "arrival_times",
    "Scenario",
    "ServiceDecl",
    "TenantSpec",
    "ChaosAction",
    "ScenarioReport",
    "ScenarioRunner",
    "run_scenario",
    "SCENARIOS",
    "get_scenario",
    "scenario_names",
]
