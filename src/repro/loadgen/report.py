"""ScenarioReport: the deterministic, machine-readable verdict of a run.

One report is one JSON-serializable dict — per-tenant latency quantiles
and goodput, the front-end's admission ledger (served / rejected /
dropped, which an open-loop run keeps distinct), the SLO engine's
verdicts and burn alerts, the chaos timeline as it actually landed, and
a single top-level ``passed``.  ``to_json()`` is byte-stable: the same
seeded :class:`~repro.loadgen.scenario.Scenario` must produce the same
bytes on the shared, sequential, and parallel backends, and CI pins
exactly that.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional

__all__ = ["ScenarioReport"]


def _safe(value: Optional[float]) -> Optional[float]:
    """NaN-free rendering: an empty sketch reports ``None``, not ``nan``
    (which is not JSON and compares unequal to itself)."""
    if value is None:
        return None
    if isinstance(value, float) and math.isnan(value):
        return None
    return value


class ScenarioReport:
    """A frozen-ish view over the run's result dict."""

    def __init__(self, data: Dict[str, Any]):
        self.data = data

    # -- the headline ------------------------------------------------------

    @property
    def passed(self) -> bool:
        return bool(self.data["passed"])

    @property
    def scenario_name(self) -> str:
        return self.data["scenario"]["name"]

    @property
    def tenants(self) -> Dict[str, Dict[str, Any]]:
        return self.data["tenants"]

    @property
    def slo_rows(self) -> List[Dict[str, Any]]:
        return self.data["slo"]["rows"]

    @property
    def alerts(self) -> List[Dict[str, Any]]:
        return self.data["slo"]["alerts"]

    @property
    def chaos_timeline(self) -> List[Dict[str, Any]]:
        return self.data["chaos"]

    def matches_expectation(self) -> bool:
        """True when the run's verdict agrees with the scenario author's
        declared ``expect_pass`` (vacuously true when none was declared)."""
        expect = self.data["scenario"].get("expect_pass")
        if expect is None:
            return True
        return self.passed is bool(expect)

    # -- serialization -----------------------------------------------------

    def to_json(self) -> str:
        """Canonical bytes: sorted keys, no float surprises — the string
        two backends must agree on for the identity pin."""
        return json.dumps(self.data, sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ScenarioReport":
        return cls(json.loads(text))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScenarioReport):
            return NotImplemented
        return self.to_json() == other.to_json()

    def __hash__(self) -> int:  # pragma: no cover - dict member, unused
        return hash(self.to_json())

    # -- human rendering ---------------------------------------------------

    def text(self) -> str:
        """An operator-facing summary (never pinned — the JSON is)."""
        d = self.data
        verdict = "PASS" if self.passed else "FAIL"
        lines = [
            f"scenario {d['scenario']['name']!r} "
            f"[seed {d['scenario']['seed']}, "
            f"{d['scenario']['n_fpgas']} board(s)]: {verdict}",
            f"  window: {d['window']['start']}..{d['window']['end']} "
            f"({d['window']['duration']} cycles + "
            f"{d['window']['drain']} drain)",
        ]
        for name in sorted(d["tenants"]):
            t = d["tenants"][name]
            p50, p99, p999 = (t["latency_p50"], t["latency_p99"],
                              t["latency_p999"])
            fmt = (lambda v: "-" if v is None else f"{int(v)}")
            lines.append(
                f"  tenant {name}: offered={t['offered']} "
                f"served={t['served']} rejected={t['rejected']} "
                f"dropped={t['dropped']} failed={t['failed']} "
                f"p50/p99/p99.9={fmt(p50)}/{fmt(p99)}/{fmt(p999)} "
                f"goodput={t['goodput_per_kcycle']:.3f}/kcycle")
        for row in d["slo"]["rows"]:
            lines.append(
                f"  slo {row['name']}: {row['verdict']} "
                f"(bad={row['bad']}/{row['total']}, "
                f"budget_spent={row['budget_spent']})")
        for alert in d["slo"]["alerts"]:
            lines.append(
                f"  alert [{alert['severity']}] "
                f"{'/'.join(alert['target'])} at cycle {alert['cycle']} "
                f"(burn {alert['burn_rate']})")
        for event in d["chaos"]:
            lines.append(
                f"  chaos @{event['at']}: {event['action']} "
                f"board {event['board']}")
        totals = d["totals"]
        lines.append(
            f"  totals: offered={totals['offered']} "
            f"served={totals['served']} rejected={totals['rejected']} "
            f"dropped={totals['dropped']} failed={totals['failed']} "
            f"unresolved={totals['unresolved']}")
        return "\n".join(lines)
