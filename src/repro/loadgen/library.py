"""The canned scenario library: six named, seeded, SLO-scored runs.

Each factory returns a frozen :class:`~repro.loadgen.scenario.Scenario`
tuned so its declared ``expect_pass`` holds with margin — these are the
fixtures every later scaling PR reports against, so their verdicts (and
their report bytes, for the two CI-pinned ones) must be boring.

Rough capacity math behind the tuning: a kv service serves from its
shard primaries, so capacity ≈ ``shards × 1000 / work_cycles`` requests
per kilocycle; an echo service ≈ ``instances × 1000 / work_cycles``.
Passing scenarios sit well under that; ``overload_probe`` sits ~7× over
it on purpose.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ConfigError
from repro.loadgen.arrivals import ArrivalSpec, EnvelopeSpec
from repro.loadgen.scenario import (
    ChaosAction,
    Scenario,
    ServiceDecl,
    TenantSpec,
)
from repro.obs.slo import SLOTarget

__all__ = ["SCENARIOS", "get_scenario", "scenario_names",
           "steady_state", "diurnal_day", "flash_crowd", "tenant_storm",
           "chaos_soak", "overload_probe"]


def steady_state(seed: int = 0) -> Scenario:
    """Two tenants, flat Poisson load at ~30% utilization: the baseline
    everything else perturbs.  Must pass."""
    kv = ServiceDecl("kv", kind="kv", shards=4, replicas=2,
                     work_cycles=2_000)
    return Scenario(
        name="steady_state", seed=seed, duration=600_000, n_fpgas=2,
        services=(kv,),
        tenants=(
            TenantSpec("alpha", "kv",
                       ArrivalSpec("poisson", rate_per_kcycle=0.3)),
            TenantSpec("beta", "kv",
                       ArrivalSpec("poisson", rate_per_kcycle=0.3),
                       read_fraction=0.5),
        ),
        slos=(
            SLOTarget("kv-availability", "kv", objective=0.99,
                      latency_cycles=50_000),
            SLOTarget("alpha-latency", "kv", objective=0.95,
                      latency_cycles=30_000, tenant="alpha"),
        ),
        expect_pass=True,
    )


def diurnal_day(seed: int = 0) -> Scenario:
    """A compressed day: one diurnal tenant swinging 0.3×–1.5× over the
    window on top of a flat colleague.  Peak stays under capacity, so
    the day must pass."""
    kv = ServiceDecl("kv", kind="kv", shards=4, replicas=2,
                     work_cycles=2_000)
    return Scenario(
        name="diurnal_day", seed=seed, duration=800_000, n_fpgas=2,
        services=(kv,),
        tenants=(
            TenantSpec("daily", "kv",
                       ArrivalSpec("poisson", rate_per_kcycle=0.4,
                                   envelopes=(EnvelopeSpec(
                                       "diurnal", low=0.3, high=1.5),))),
            TenantSpec("flat", "kv",
                       ArrivalSpec("poisson", rate_per_kcycle=0.2)),
        ),
        slos=(
            SLOTarget("kv-availability", "kv", objective=0.99,
                      latency_cycles=50_000),
        ),
        expect_pass=True,
    )


def flash_crowd(seed: int = 0) -> Scenario:
    """A 4× crowd spike for 100 kilocycles against a 4-board cluster.

    The spike pushes the crowd tenant to ~2.0 requests/kcycle against
    ~8/kcycle of shard capacity — Zipf popularity concentrates roughly a
    quarter of each tenant's traffic on the hottest shard, so the *hot
    shard* peaks near 60% utilization: queues grow, admission control
    holds, and both tenants' SLOs must survive the surge.  One of the
    two CI-pinned T2 scenarios.
    """
    kv = ServiceDecl("kv", kind="kv", shards=8, replicas=2,
                     work_cycles=1_000)
    return Scenario(
        name="flash_crowd", seed=seed, duration=600_000, n_fpgas=4,
        services=(kv,),
        tenants=(
            TenantSpec("crowd", "kv",
                       ArrivalSpec("poisson", rate_per_kcycle=0.5,
                                   envelopes=(EnvelopeSpec(
                                       "spike", low=1.0, high=4.0,
                                       start=200_000, end=300_000),))),
            TenantSpec("background", "kv",
                       ArrivalSpec("poisson", rate_per_kcycle=0.5),
                       read_fraction=0.8),
        ),
        slos=(
            SLOTarget("kv-availability", "kv", objective=0.99,
                      latency_cycles=60_000),
            SLOTarget("crowd-latency", "kv", objective=0.95,
                      latency_cycles=60_000, tenant="crowd"),
            SLOTarget("background-latency", "kv", objective=0.95,
                      latency_cycles=60_000, tenant="background"),
        ),
        expect_pass=True,
    )


def tenant_storm(seed: int = 0) -> Scenario:
    """Two polite Poisson tenants share a service with a heavy-tailed
    rogue whose bursts overrun the cluster.  Per-tenant SLO rows show
    who actually suffered; no top-level expectation is declared — the
    interesting output is the per-tenant breakdown, not the verdict."""
    kv = ServiceDecl("kv", kind="kv", shards=4, replicas=2,
                     work_cycles=2_000)
    return Scenario(
        name="tenant_storm", seed=seed, duration=600_000, n_fpgas=2,
        services=(kv,),
        tenants=(
            TenantSpec("alpha", "kv",
                       ArrivalSpec("poisson", rate_per_kcycle=0.3)),
            TenantSpec("beta", "kv",
                       ArrivalSpec("poisson", rate_per_kcycle=0.3)),
            TenantSpec("rogue", "kv",
                       ArrivalSpec("lognormal", rate_per_kcycle=1.6,
                                   sigma=2.0),
                       read_fraction=0.2, key_universe=64),
        ),
        slos=(
            SLOTarget("alpha-latency", "kv", objective=0.95,
                      latency_cycles=40_000, tenant="alpha"),
            SLOTarget("beta-latency", "kv", objective=0.95,
                      latency_cycles=40_000, tenant="beta"),
            SLOTarget("rogue-latency", "kv", objective=0.95,
                      latency_cycles=40_000, tenant="rogue"),
        ),
    )


def chaos_soak(seed: int = 0) -> Scenario:
    """Moderate load on 4 boards through a board kill, a network
    partition, and a heal.  Replication is arranged so every shard
    keeps a live replica throughout; failovers absorb the faults and
    the run must still pass.  The second CI-pinned T2 scenario."""
    kv = ServiceDecl("kv", kind="kv", shards=4, replicas=2,
                     work_cycles=2_000)
    return Scenario(
        name="chaos_soak", seed=seed, duration=800_000, n_fpgas=4,
        services=(kv,),
        tenants=(
            TenantSpec("alpha", "kv",
                       ArrivalSpec("poisson", rate_per_kcycle=0.4)),
            TenantSpec("beta", "kv",
                       ArrivalSpec("poisson", rate_per_kcycle=0.4),
                       read_fraction=0.5),
        ),
        chaos=(
            # shard s lives on boards (s, s+1) mod 4: killing board 3
            # and partitioning board 1 still leaves every shard one
            # reachable replica — failover territory, not an outage
            ChaosAction(at=250_000, action="kill", board=3),
            ChaosAction(at=450_000, action="partition", board=1),
            ChaosAction(at=600_000, action="heal", board=1),
        ),
        slos=(
            SLOTarget("kv-availability", "kv", objective=0.95,
                      latency_cycles=80_000),
        ),
        expect_pass=True,
    )


def overload_probe(seed: int = 0) -> Scenario:
    """~7× sustained overload of a tiny echo deployment.

    The open-loop acceptance probe: arrivals keep firing at 3.5/kcycle
    against ~0.5/kcycle of capacity, so offered load must exceed served
    goodput by a wide margin, the backlog must drop, and the SLO must
    fail — ``expect_pass=False`` is the *correct* outcome."""
    echo = ServiceDecl("echo", kind="echo", instances=2,
                       work_cycles=4_000)
    return Scenario(
        name="overload_probe", seed=seed, duration=300_000, n_fpgas=2,
        services=(echo,),
        tenants=(
            TenantSpec("firehose", "echo",
                       ArrivalSpec("pareto", rate_per_kcycle=3.5,
                                   alpha=1.5)),
        ),
        slos=(
            SLOTarget("echo-availability", "echo", objective=0.99,
                      latency_cycles=50_000),
        ),
        expect_pass=False,
    )


SCENARIOS: Dict[str, Callable[..., Scenario]] = {
    "steady_state": steady_state,
    "diurnal_day": diurnal_day,
    "flash_crowd": flash_crowd,
    "tenant_storm": tenant_storm,
    "chaos_soak": chaos_soak,
    "overload_probe": overload_probe,
}


def scenario_names() -> List[str]:
    return sorted(SCENARIOS)


def get_scenario(name: str, seed: int = 0) -> Scenario:
    """The canned scenario called ``name``, seeded."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {name!r}; pick one of {scenario_names()}"
        ) from None
    return factory(seed=seed)
