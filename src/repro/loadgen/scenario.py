"""The declarative scenario spec: one frozen object = one reproducible run.

A :class:`Scenario` composes everything a run needs — cluster shape,
deployed services, per-tenant traffic (arrival process × envelopes ×
key popularity × read/write split), a chaos plan, and the SLO targets the
run is scored against — into a single validated, frozen dataclass.  It
round-trips losslessly through plain dicts (``to_dict``/``from_dict``),
so a scenario is equally at home as Python, JSON on disk, or a CI
artifact; and because every stochastic element is derived from
``Scenario.seed`` through named streams, the same dict produces the same
:class:`~repro.loadgen.report.ScenarioReport` byte for byte on any
execution backend.

FOS and Funky motivate the shape: a shared FPGA OS lives under dynamic
multi-tenant mixes, not a single closed loop — so tenants, not clients,
are the unit of workload description here.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.loadgen.arrivals import ArrivalSpec, EnvelopeSpec
from repro.obs.slo import SLOTarget

__all__ = ["ServiceDecl", "TenantSpec", "ChaosAction", "Scenario"]

#: the service handler kinds the runner knows how to deploy
SERVICE_KINDS = ("echo", "kv")

#: the chaos verbs a plan may schedule
CHAOS_ACTIONS = ("kill", "partition", "heal")


@dataclass(frozen=True)
class ServiceDecl:
    """One deployed service: what it is and how much of it exists.

    ``kind="echo"`` deploys ``instances`` stateless CPU-bound echoes;
    ``kind="kv"`` deploys a sharded key-value store with ``shards`` ×
    ``replicas`` instances (replicas of a shard on distinct boards).
    ``work_cycles`` is the handler cost per request.
    """

    name: str
    kind: str = "kv"
    instances: int = 2
    shards: int = 2
    replicas: int = 2
    work_cycles: int = 2_000

    def __post_init__(self):
        if not self.name:
            raise ConfigError("a service needs a name")
        if self.kind not in SERVICE_KINDS:
            raise ConfigError(
                f"unknown service kind {self.kind!r}; pick one of "
                f"{SERVICE_KINDS}")
        if self.kind == "echo" and self.instances < 1:
            raise ConfigError("an echo service needs >= 1 instance")
        if self.kind == "kv" and (self.shards < 1 or self.replicas < 1):
            raise ConfigError("a kv service needs >= 1 shard and replica")
        if self.work_cycles < 0:
            raise ConfigError("work_cycles must be >= 0")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic: arrivals, key popularity, read/write split.

    Each tenant draws from streams keyed by ``(scenario seed, tenant
    name)`` — two tenants under one seed are statistically independent,
    and adding a tenant never perturbs another's schedule.
    """

    name: str
    service: str
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    #: fraction of requests that are reads (kv only; echo ignores it)
    read_fraction: float = 0.9
    #: explicit key-universe size for the tenant's Zipf popularity
    key_universe: int = 1_024
    zipf_skew: float = 1.2
    value_bytes: int = 64

    def __post_init__(self):
        if not self.name:
            raise ConfigError("a tenant needs a name")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigError("read_fraction must be in [0, 1]")
        if self.key_universe < 1:
            raise ConfigError("key_universe must be >= 1")
        if self.zipf_skew <= 1.0:
            raise ConfigError("zipf_skew must exceed 1.0")
        if self.value_bytes < 1:
            raise ConfigError("value_bytes must be >= 1")


@dataclass(frozen=True)
class ChaosAction:
    """One planned intervention: ``action`` on ``board`` at cycle ``at``
    (relative to the traffic window's start)."""

    at: int
    action: str
    board: int

    def __post_init__(self):
        if self.at < 0:
            raise ConfigError("chaos actions fire at cycles >= 0")
        if self.action not in CHAOS_ACTIONS:
            raise ConfigError(
                f"unknown chaos action {self.action!r}; pick one of "
                f"{CHAOS_ACTIONS}")
        if self.board < 0:
            raise ConfigError("board index must be >= 0")


@dataclass(frozen=True)
class Scenario:
    """Arrival model × tenant mix × chaos plan × SLO targets, frozen.

    ``start_at`` is the *absolute* cycle traffic begins: the runner parks
    every backend exactly there after boot + deploy, which is what makes
    the report byte-identical across shared, sequential, and parallel
    execution.  ``expect_pass`` is the scenario author's declared verdict
    (``None`` = no expectation), carried into the report so a CI job can
    pin "this scenario must fail its SLOs" as easily as the opposite.
    """

    name: str
    seed: int = 0
    duration: int = 600_000
    n_fpgas: int = 2
    services: Tuple[ServiceDecl, ...] = field(default_factory=tuple)
    tenants: Tuple[TenantSpec, ...] = field(default_factory=tuple)
    chaos: Tuple[ChaosAction, ...] = field(default_factory=tuple)
    slos: Tuple[SLOTarget, ...] = field(default_factory=tuple)
    #: absolute cycle the traffic window opens (must clear boot + deploy)
    start_at: int = 2_000_000
    #: cycles simulated past the window so every in-flight request
    #: resolves (None = derived from the timeout fields below)
    drain: Optional[int] = None
    #: front-end knobs (see :class:`~repro.cluster.frontend.FrontEnd`)
    max_pending: int = 64
    max_backlog: int = 256
    queue_deadline: int = 120_000
    attempt_timeout: int = 40_000
    retry_deadline: int = 240_000
    expect_pass: Optional[bool] = None

    def __post_init__(self):
        for name, value in (("services", self.services),
                            ("tenants", self.tenants),
                            ("chaos", self.chaos), ("slos", self.slos)):
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
        if not self.name:
            raise ConfigError("a scenario needs a name")
        if self.duration <= 0:
            raise ConfigError("duration must be positive")
        if self.n_fpgas < 1:
            raise ConfigError("need >= 1 FPGA")
        if self.start_at <= 0:
            raise ConfigError("start_at must be positive")
        if not self.services:
            raise ConfigError("a scenario deploys at least one service")
        if not self.tenants:
            raise ConfigError("a scenario drives at least one tenant")
        if not self.slos:
            raise ConfigError(
                "a scenario states at least one SLO target — an unscored "
                "run cannot produce a pass/fail report")
        declared = {svc.name for svc in self.services}
        if len(declared) != len(self.services):
            raise ConfigError("service names must be unique")
        if len({t.name for t in self.tenants}) != len(self.tenants):
            raise ConfigError("tenant names must be unique")
        for tenant in self.tenants:
            if tenant.service not in declared:
                raise ConfigError(
                    f"tenant {tenant.name!r} drives undeclared service "
                    f"{tenant.service!r}")
        for target in self.slos:
            if target.service not in declared:
                raise ConfigError(
                    f"SLO target {target.name!r} scores undeclared "
                    f"service {target.service!r}")
        for svc in self.services:
            if svc.kind == "kv" and svc.replicas > self.n_fpgas:
                raise ConfigError(
                    f"service {svc.name!r} wants {svc.replicas} replicas "
                    f"on {self.n_fpgas} board(s)")
        healable = set()
        for act in self.chaos:
            if act.at >= self.duration:
                raise ConfigError(
                    f"chaos action at cycle {act.at} falls outside the "
                    f"{self.duration}-cycle traffic window")
            if act.board >= self.n_fpgas:
                raise ConfigError(
                    f"chaos action targets board {act.board} of "
                    f"{self.n_fpgas}")
            if act.action == "partition":
                healable.add(act.board)
            elif act.action == "heal" and act.board not in healable:
                raise ConfigError(
                    f"heal of board {act.board} without a prior partition")

    # -- derived -----------------------------------------------------------

    def drain_cycles(self) -> int:
        """How long past the window the runner simulates: enough for the
        deepest queued request to clear its queue deadline *and* its full
        retry budget, plus a margin for the last transport round-trip."""
        if self.drain is not None:
            return self.drain
        return self.queue_deadline + self.retry_deadline + 60_000

    def tenant(self, name: str) -> TenantSpec:
        for t in self.tenants:
            if t.name == name:
                return t
        raise ConfigError(f"no tenant {name!r} in scenario {self.name!r}")

    # -- dict round-trip ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A plain-dict rendering that :meth:`from_dict` inverts exactly."""
        return {
            "name": self.name,
            "seed": self.seed,
            "duration": self.duration,
            "n_fpgas": self.n_fpgas,
            "services": [asdict(s) for s in self.services],
            "tenants": [asdict(t) for t in self.tenants],
            "chaos": [asdict(a) for a in self.chaos],
            "slos": [asdict(t) for t in self.slos],
            "start_at": self.start_at,
            "drain": self.drain,
            "max_pending": self.max_pending,
            "max_backlog": self.max_backlog,
            "queue_deadline": self.queue_deadline,
            "attempt_timeout": self.attempt_timeout,
            "retry_deadline": self.retry_deadline,
            "expect_pass": self.expect_pass,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output (or any dict
        with the same shape — unknown keys are a validation error)."""
        if not isinstance(data, dict):
            raise ConfigError(f"expected a scenario dict, got {data!r}")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown scenario field(s): {sorted(unknown)}")
        kwargs = dict(data)
        kwargs["services"] = tuple(
            _build(ServiceDecl, s, "service")
            for s in kwargs.get("services", ()))
        kwargs["tenants"] = tuple(
            _build_tenant(t) for t in kwargs.get("tenants", ()))
        kwargs["chaos"] = tuple(
            _build(ChaosAction, a, "chaos action")
            for a in kwargs.get("chaos", ()))
        kwargs["slos"] = tuple(
            _build(SLOTarget, t, "SLO target")
            for t in kwargs.get("slos", ()))
        return cls(**kwargs)


def _build(cls, data: Any, what: str):
    if isinstance(data, cls):
        return data
    if not isinstance(data, dict):
        raise ConfigError(f"expected a {what} dict, got {data!r}")
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ConfigError(f"unknown {what} field(s): {sorted(unknown)}")
    try:
        return cls(**data)
    except (TypeError, ValueError) as err:
        raise ConfigError(f"bad {what}: {err}") from err


def _build_tenant(data: Any) -> TenantSpec:
    if isinstance(data, TenantSpec):
        return data
    if not isinstance(data, dict):
        raise ConfigError(f"expected a tenant dict, got {data!r}")
    kwargs = dict(data)
    arrival = kwargs.get("arrival")
    if isinstance(arrival, dict):
        akw = dict(arrival)
        akw["envelopes"] = tuple(
            _build(EnvelopeSpec, e, "envelope")
            for e in akw.get("envelopes", ()))
        kwargs["arrival"] = _build(ArrivalSpec, akw, "arrival spec")
    return _build(TenantSpec, kwargs, "tenant")
