"""repro — a simulated reproduction of "Apiary: An OS for the Modern FPGA"
(HotOS 2025).

The package implements the paper's proposed hardware microkernel in full on
a from-scratch cycle-level simulator: a wormhole NoC with virtual channels,
per-tile monitors enforcing capabilities and rate limits, segment-based
memory isolation, fail-stop/preemptible fault handling, OS services in tile
slots, and the host-mediated baselines the paper positions against.

Quickstart::

    from repro.kernel import ApiarySystem
    from repro.accel import EchoAccel

    system = ApiarySystem(width=3, height=2)
    system.boot()
    system.run_until(system.start_app(3, EchoAccel("hello"),
                                      endpoint="app.hello"))

See README.md, DESIGN.md and the examples/ directory.
"""

__version__ = "1.0.0"

__all__ = [
    "sim",
    "noc",
    "hw",
    "mem",
    "cap",
    "kernel",
    "accel",
    "net",
    "baselines",
    "apps",
    "workloads",
    "eval",
    "__version__",
]
