"""Telemetry time-series: what every tile is doing *while the run runs*.

End-of-run ``StatsRegistry`` snapshots tell you what happened; operators of
the paper's "production-scale system serving heavy traffic" need to know
what tile 7 is doing *right now*.  :class:`TelemetrySampler` is a sim
process that periodically samples per-tile counters and gauges — monitor
traffic, injection backlog, router buffer occupancy, DRAM bus queue depth —
into fixed-capacity ring buffers (old samples fall off; memory is bounded
no matter how long the run), plus a NoC utilization heatmap computed from
per-router flit deltas between ticks.

The sampler observes components through attributes they already expose; it
adds no code to any hot path, so a system without a sampler pays nothing.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

__all__ = ["TelemetrySampler"]

#: node key for device-global series (DRAM, totals)
GLOBAL = -1


class TelemetrySampler:
    """Ring-buffered time-series over a running Apiary system.

    Parameters
    ----------
    engine: the simulation engine (provides the clock and the process).
    tiles: the system's tile list (monitors are sampled through it).
    network: the NoC (per-NI backlog, per-router buffered flits, heatmap).
    dram: optional DRAM device (bus queue depth, bytes moved).
    interval: cycles between samples.
    capacity: samples retained per series (ring buffer depth).
    """

    def __init__(self, engine, tiles=None, network=None, dram=None,
                 interval: int = 1_000, capacity: int = 512):
        if interval < 1:
            raise ValueError(f"sample interval must be >= 1, got {interval}")
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.tiles = tiles or []
        self.network = network
        self.dram = dram
        self.interval = interval
        self.capacity = capacity
        self.samples_taken = 0
        self._series: Dict[Tuple[str, int], Deque[Tuple[int, float]]] = {}
        self._last_flits: Dict[int, int] = {}
        self._last_sample_at: int = engine.now
        self._heat: List[List[float]] = []
        self._running = False

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "TelemetrySampler":
        """Begin periodic sampling (idempotent)."""
        if not self._running:
            self._running = True
            self.engine.process(self._run(), name="obs.sampler")
        return self

    def _run(self):
        while True:
            self.sample()
            yield self.interval

    # -- sampling --------------------------------------------------------

    def _record(self, metric: str, node: int, now: int, value: float) -> None:
        key = (metric, node)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = deque(maxlen=self.capacity)
        series.append((now, value))

    def sample(self) -> None:
        """Take one sample immediately (also callable outside the process)."""
        now = self.engine.now
        self.samples_taken += 1
        # heartbeat series: proves the sampler is alive even on a system
        # with nothing attached, and demonstrates the ring-buffer bound
        self._record("sampled_at", GLOBAL, now, float(now))
        for node, tile in enumerate(self.tiles):
            mon = tile.monitor
            self._record("messages_sent", node, now, float(mon.messages_sent))
            self._record("messages_received", node, now,
                         float(mon.messages_received))
            self._record("denials", node, now, float(mon.denials))
            self._record("egress_backlog", node, now,
                         float(mon.egress_backlog))
            self._record("inject_backlog", node, now,
                         float(mon.ni.inject_backlog))
        if self.network is not None:
            for node in self.network.topo.nodes():
                router = self.network.router(node)
                self._record("buffered_flits", node, now,
                             float(router.buffered_flits))
            self._sample_heatmap(now)
        if self.dram is not None:
            depth = sum(ch.bus.queue_length for ch in self.dram.channels)
            moved = sum(ch.bytes_moved for ch in self.dram.channels)
            self._record("dram_queue_depth", GLOBAL, now, float(depth))
            self._record("dram_bytes_moved", GLOBAL, now, float(moved))
        self._last_sample_at = now

    def _sample_heatmap(self, now: int) -> None:
        """Per-router flit throughput (flits/cycle) since the last sample."""
        topo = self.network.topo
        elapsed = max(1, now - self._last_sample_at)
        grid = [[0.0] * topo.width for _ in range(topo.height)]
        for node in topo.nodes():
            total = self.network.router(node).flits_forwarded
            delta = total - self._last_flits.get(node, 0)
            self._last_flits[node] = total
            x, y = topo.coords(node)
            rate = delta / elapsed if self.samples_taken > 1 else 0.0
            grid[y][x] = rate
            self._record("router_flit_rate", node, now, rate)
        self._heat = grid

    # -- queries ---------------------------------------------------------

    @property
    def last_sample_at(self) -> int:
        """Cycle of the most recent sample (construction time before any)."""
        return self._last_sample_at

    def series(self, metric: str, node: int = GLOBAL) -> List[Tuple[int, float]]:
        """The ``(cycle, value)`` ring for one metric/node (empty if none)."""
        return list(self._series.get((metric, node), ()))

    def metrics(self) -> List[str]:
        return sorted({metric for metric, _node in self._series})

    def latest(self, node: int) -> Dict[str, float]:
        """Most recent sampled values for one tile, plus the sample time.

        Empty until the first sample; merged into
        :meth:`repro.kernel.mgmt.MgmtPlane.telemetry` per-tile snapshots so
        the operator plane answers "what is tile N doing right now".
        """
        out: Dict[str, float] = {}
        for (metric, n), series in self._series.items():
            if n == node and series:
                out[metric] = series[-1][1]
        if out:
            out["sampled_at"] = float(self._last_sample_at)
        return out

    def noc_heatmap(self) -> List[List[float]]:
        """Latest width x height grid of per-router flit rates (row-major,
        ``grid[y][x]``), e.g. the 8x8 utilization view of a flooded mesh."""
        return [row[:] for row in self._heat]

    def heatmap_text(self) -> str:
        """ASCII rendering of :meth:`noc_heatmap` for reports/shell."""
        if not self._heat:
            return "(no heatmap samples yet)"
        lines = []
        for row in self._heat:
            lines.append(" ".join(f"{v:5.2f}" for v in row))
        return "\n".join(lines)
