"""Reusable observability-plane experiment: the O1 run.

One parameterized harness shared by the unit tests, the O1 benchmark,
the CI ``obs-smoke`` job, and the SLO demo — a cluster serving a
closed-loop echo workload while one board dies mid-run, with the whole
observability plane either on (sketches ride along always; tracing, SLO
engine, flight recorders, profiler) or off (the overhead baseline).

Everything returned derives from the simulated clock and seeded
streams, so two calls with the same arguments produce identical dicts —
and with ``identity=True`` the payload extends the sequential ≡ parallel
PDES byte-identity check across merged sketches, SLO verdicts, and
flight-recorder dumps.

Lives outside ``repro.obs.__init__`` on purpose: it imports the cluster
stack, which the obs package itself must stay independent of.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.smoke import span_dump
from repro.kernel.config import SystemConfig
from repro.obs.flight import validate_flight_dump
from repro.obs.profile import CycleProfiler
from repro.obs.slo import SLOTarget
from repro.policy import RetryPolicy
from repro.workloads.client import ClusterClient

__all__ = ["obs_plane_smoke", "default_targets"]


def default_targets(service: str = "echo",
                    latency_cycles: int = 60_000) -> List[SLOTarget]:
    """The two objectives every serving system states first.

    Availability (answered, not rejected/failed) and a latency bound —
    plus a per-tenant copy of the latency objective so the multi-tenant
    accounting path stays exercised.
    """
    return [
        SLOTarget("availability", service, objective=0.99),
        SLOTarget("latency-p", service, objective=0.95,
                  latency_cycles=latency_cycles),
        SLOTarget("latency-p", service, objective=0.95,
                  latency_cycles=latency_cycles, tenant="tenant0"),
    ]


def _echo_handler_factory(work_cycles: int):
    def make():
        def handler(body):
            x = body.get("x") if isinstance(body, dict) else None
            return work_cycles, {"echo": x}, 64
        return handler

    return make


def obs_plane_smoke(
    n_fpgas: int = 2,
    seed: int = 0,
    duration: int = 400_000,
    clients: int = 8,
    requests_per_client: int = 150,
    work_cycles: int = 3_000,
    instances_per_fpga: int = 1,
    max_pending: int = 64,
    observability: bool = True,
    kill_index: Optional[int] = 1,
    kill_after: int = 150_000,
    backend: str = "shared",
    identity: bool = False,
    dump_dir: Optional[str] = None,
    trace_path: Optional[str] = None,
    folded_path: Optional[str] = None,
    latency_slo: int = 60_000,
    targets: Optional[Sequence[SLOTarget]] = None,
) -> Dict[str, Any]:
    """Closed-loop echo against ``n_fpgas`` boards with a mid-run kill.

    With ``observability=True`` the full plane is armed: cluster-wide
    tracing, per-board flight recorders (dumping on the kill), an SLO
    engine fed by the front-end, and a cycle profiler over the merged
    span tree.  With ``False`` none of it runs — the pair of runs is the
    O1 enabled-vs-disabled overhead measurement (time the calls from the
    outside; the simulated workload is identical).

    ``identity=True`` attaches the payload the PDES determinism checks
    compare between backends: spans, per-board stats snapshots (which
    now carry the sketch summaries), the SLO report, and per-board
    flight reports including retained dump documents.
    """
    from dataclasses import replace

    config = SystemConfig.figure1()
    if seed:
        config = replace(config, seed=seed)
    cluster = Cluster(n_fpgas=n_fpgas, config=config, backend=backend,
                      swallow_orphan_errors=True)
    cluster.boot()
    if observability:
        cluster.enable_tracing()
        cluster.enable_flight_recorders(dump_dir=dump_dir)
        cluster.enable_slo(targets if targets is not None
                           else default_targets("echo", latency_slo))

    started = cluster.deploy_stateless(
        "echo", _echo_handler_factory(work_cycles),
        instances=instances_per_fpga * n_fpgas)
    cluster.run_until(started, limit=50_000_000)
    patient = RetryPolicy(
        deadline=duration,
        attempt_timeout=max(30_000, 2 * work_cycles * max(1, clients)),
        backoff_base=200, backoff_cap=2_000)
    frontend = cluster.start_frontend(max_pending=max_pending,
                                      retry=patient)
    cluster.run(until=cluster.engine.now + 5_000)
    cluster.seal()

    hosts = []
    start = cluster.engine.now
    for c in range(clients):
        host = ClusterClient(cluster.engine, cluster.fabric, f"host{c}")
        requests = [{"body": {"x": c * requests_per_client + i},
                     "tenant": f"tenant{c % 2}"}
                    for i in range(requests_per_client)]
        cluster.engine.process(
            host.closed_loop_service("echo", requests, timeout=duration),
            name=f"{host.mac}.loop")
        hosts.append(host)
    if kill_index is not None and n_fpgas > 1:
        cluster.run(until=start + kill_after)
        cluster.kill_fpga(kill_index)
    cluster.run(until=start + duration)
    end = cluster.engine.now

    ok = sum(h.ok for h in hosts)
    stats: Dict[str, Any] = {
        "n_fpgas": n_fpgas,
        "backend": backend,
        "observability": observability,
        "killed_fpga": kill_index if n_fpgas > 1 else None,
        "elapsed_cycles": end - start,
        "completed": ok,
        "rejected": sum(h.rejected for h in hosts),
        "failed": sum(h.failed for h in hosts),
        "frontend": {
            "admitted": frontend.requests_admitted,
            "rejected": frontend.requests_rejected,
            "failed": frontend.requests_failed,
            "failovers": frontend.failovers,
        },
    }

    if observability:
        stats["slo"] = cluster.slo.report(end)
        stats["slo_text"] = cluster.slo.report_text(end)
        index = cluster.span_index()
        profiler = CycleProfiler(index)
        stats["profile"] = {
            "traces": profiler.traces,
            "total_cycles": profiler.total_cycles,
            "top": profiler.top(10),
        }
        if folded_path is not None:
            stats["profile"]["folded_lines"] = profiler.write_folded(
                folded_path)
        if trace_path is not None:
            from repro.obs.export import export_chrome_trace
            doc = export_chrome_trace(trace_path, cluster.merged_spans())
            stats["trace_events"] = len(doc["traceEvents"])
        flights: Dict[str, Any] = {}
        for board, report in sorted(cluster.flight_reports().items()):
            if report is None:
                flights[board] = None
                continue
            # every retained dump must be structurally valid — the same
            # gate CI applies to the on-disk artifact before uploading
            flights[board] = {
                "seen": report["seen"],
                "ring": len(report["entries"]),
                "dumps": len(report["dumps"]),
                "dump_reasons": [d["reason"] for d in report["dumps"]],
                "dump_entries": [validate_flight_dump(d)
                                 for d in report["dumps"]],
            }
        stats["flight"] = flights

    if identity:
        payload: Dict[str, Any] = {
            "spans": span_dump(cluster.merged_spans()),
            "stats": cluster.stats_snapshots(),
        }
        if observability:
            payload["slo"] = cluster.slo.report(end)
            payload["flight"] = cluster.flight_reports()
        stats["identity"] = payload
    cluster.shutdown()
    return stats
