"""Always-on bounded flight recorder: the last N things a board did.

A killed board takes its recent history with it — exactly the history an
operator needs to explain the kill.  The :class:`FlightRecorder` is the
aviation black box for a board: a fixed-size ring of the most recent
closed spans and operational events (chaos injections, fault reports,
recovery actions), cheap enough to leave on for the lifetime of a run,
dumped automatically to a JSON artifact the moment something dies.

Design constraints, in order:

* **bounded** — one ``deque(maxlen=capacity)``; an entry is a flat tuple,
  so memory is O(capacity) regardless of run length;
* **deterministic** — entries are pure functions of the simulation
  stream (span close order, fault order), so two identically-seeded runs
  produce byte-identical rings and dumps, and the sequential ≡ parallel
  PDES identity extends to flight state;
* **picklable** — windowed backends ship each board's recorder over the
  worker pipe at collection time, so the recorder holds no file handles
  or engine references;
* **validated** — :func:`validate_flight_dump` structurally checks a dump
  the way ``validate_chrome_trace`` checks a trace export, so CI can
  assert an artifact is readable before uploading it.

Dumps coalesce per cycle: a board kill reports one fault per tile within
the same cycle, and six dumps of the same ring would bury the one that
matters.  The recorder keeps the most recent :data:`MAX_KEPT_DUMPS` dump
documents in memory (tests and the cluster read them there) and writes
files only when a ``dump_dir`` is configured.

Must stay import-free of ``repro.sim``/``repro.cluster``.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.obs.span import SpanRecord

__all__ = ["FlightRecorder", "validate_flight_dump",
           "DEFAULT_CAPACITY", "MAX_KEPT_DUMPS"]

#: ring size — enough for several requests' worth of spans per board
DEFAULT_CAPACITY = 256
#: most recent dump documents kept in memory per recorder
MAX_KEPT_DUMPS = 8

#: entry kinds in the ring
_SPAN = "span"
_EVENT = "event"


class FlightRecorder:
    """Bounded ring of recent spans + events for one board."""

    def __init__(self, board: str = "board0",
                 capacity: int = DEFAULT_CAPACITY,
                 dump_dir: Optional[str] = None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.board = board
        self.capacity = capacity
        self.dump_dir = dump_dir
        self._ring: Deque[Tuple] = deque(maxlen=capacity)
        self._seen = 0
        #: most recent dump documents, newest last (bounded)
        self.dumps: List[Dict] = []
        self._last_dump_cycle: Optional[int] = None

    # -- ingest ----------------------------------------------------------

    def record_span(self, rec: SpanRecord) -> None:
        """Ring a just-closed span (wired as a ``SpanRecorder`` sink)."""
        self._seen += 1
        self._ring.append((_SPAN, rec.trace_id, rec.span_id, rec.parent_id,
                           rec.name, rec.category, rec.source, rec.start,
                           rec.end))

    def record_event(self, now: int, kind: str, subject: str,
                     detail: str = "") -> None:
        """Ring an operational event (fault, injection, recovery action)."""
        self._seen += 1
        self._ring.append((_EVENT, now, kind, subject, detail))

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def seen(self) -> int:
        """Entries ever recorded (>= len once the ring has wrapped)."""
        return self._seen

    def entries(self) -> List[Dict[str, Any]]:
        """The ring as JSON-shaped dicts, oldest first."""
        out: List[Dict[str, Any]] = []
        for entry in self._ring:
            if entry[0] == _SPAN:
                (_, trace_id, span_id, parent_id, name, category, source,
                 start, end) = entry
                out.append({"type": _SPAN, "trace_id": trace_id,
                            "span_id": span_id, "parent_id": parent_id,
                            "name": name, "category": category,
                            "source": source, "start": start, "end": end})
            else:
                _, now, kind, subject, detail = entry
                out.append({"type": _EVENT, "cycle": now, "kind": kind,
                            "subject": subject, "detail": detail})
        return out

    def snapshot(self) -> Dict[str, Any]:
        return {"board": self.board, "capacity": self.capacity,
                "seen": self._seen, "entries": self.entries()}

    def report(self) -> Dict[str, Any]:
        """Snapshot plus the retained dump documents (identity payloads)."""
        out = self.snapshot()
        out["dumps"] = list(self.dumps)
        return out

    # -- merge (PDES roll-up) -------------------------------------------

    def absorb(self, other: "FlightRecorder") -> None:
        """Adopt a collected sibling's state (cluster-side aggregation).

        Flight rings are per-board — unlike counters they are not summed;
        the cluster keeps one recorder per board and ``absorb`` replaces
        local state with the collected worker copy, so the cluster-side
        view equals the worker-side view byte for byte.
        """
        self._ring = deque(other._ring, maxlen=self.capacity)
        self._seen = other._seen
        self.dumps = list(other.dumps)
        self._last_dump_cycle = other._last_dump_cycle

    # -- dumping ---------------------------------------------------------

    def dump(self, now: int, reason: str,
             path: Optional[str] = None) -> Optional[Dict]:
        """Freeze the ring into a dump document; at most one per cycle.

        A board kill raises one fault per tile in the same cycle; the
        first fault's dump already holds the history, so same-cycle
        repeats coalesce into it (the reason keeps the *first* trigger).
        Returns the document, or ``None`` when coalesced away.
        """
        if self._last_dump_cycle == now:
            return None
        self._last_dump_cycle = now
        doc = {"flight_recorder": 1, "board": self.board, "cycle": now,
               "reason": reason, "capacity": self.capacity,
               "seen": self._seen, "entries": self.entries()}
        self.dumps.append(doc)
        if len(self.dumps) > MAX_KEPT_DUMPS:
            del self.dumps[0]
        target = path
        if target is None and self.dump_dir is not None:
            target = os.path.join(
                self.dump_dir, f"flight_{self.board}_{now}.json")
        if target is not None:
            os.makedirs(os.path.dirname(target) or ".", exist_ok=True)
            with open(target, "w") as fh:
                json.dump(doc, fh, indent=1, sort_keys=True)
        return doc


def validate_flight_dump(doc: Dict) -> int:
    """Structurally validate a dump document; returns its entry count.

    Checks what a post-mortem consumer needs: the format marker, board
    and trigger metadata, and per-entry required keys with plausible
    values.  Raises ``ValueError`` on the first violation.
    """
    if not isinstance(doc, dict) or doc.get("flight_recorder") != 1:
        raise ValueError("not a flight-recorder dump (missing marker)")
    for field, kind in (("board", str), ("cycle", int), ("reason", str),
                        ("capacity", int), ("seen", int),
                        ("entries", list)):
        if not isinstance(doc.get(field), kind):
            raise ValueError(f"dump field {field!r} missing or wrong type")
    if len(doc["entries"]) > doc["capacity"]:
        raise ValueError("more entries than capacity")
    if doc["seen"] < len(doc["entries"]):
        raise ValueError("seen count below ring occupancy")
    for i, entry in enumerate(doc["entries"]):
        if not isinstance(entry, dict):
            raise ValueError(f"entry {i} is not an object")
        if entry.get("type") == "span":
            for field in ("trace_id", "span_id", "parent_id", "start",
                          "end"):
                if not isinstance(entry.get(field), int):
                    raise ValueError(f"span entry {i}: bad {field!r}")
            for field in ("name", "category", "source"):
                if not isinstance(entry.get(field), str):
                    raise ValueError(f"span entry {i}: bad {field!r}")
        elif entry.get("type") == "event":
            if not isinstance(entry.get("cycle"), int):
                raise ValueError(f"event entry {i}: bad 'cycle'")
            for field in ("kind", "subject", "detail"):
                if not isinstance(entry.get(field), str):
                    raise ValueError(f"event entry {i}: bad {field!r}")
        else:
            raise ValueError(f"entry {i}: unknown type {entry.get('type')!r}")
    return len(doc["entries"])
