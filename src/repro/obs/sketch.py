"""Mergeable log-bucketed quantile sketches (DDSketch-style).

The exact-sample :class:`~repro.sim.stats.Histogram` stores every value it
ever sees — fine for a bench that records a few hundred thousand latencies,
unbounded for a production hot path like ``noc.packet_latency`` on a run
that never ends.  :class:`QuantileSketch` replaces the sample list with
log-spaced buckets: a value ``v`` lands in bucket ``ceil(log_gamma(v))``
with ``gamma = (1 + alpha) / (1 - alpha)``, so any value reconstructed
from its bucket's midpoint is within **relative error ``alpha``** of the
original (the DDSketch guarantee; Masson et al., VLDB 2019).  Defaults:
``alpha = 0.01`` — quantile estimates within 1% of the exact order
statistic — with at most ``max_bins`` live buckets.

Why this shape (and not, say, t-digest or sampling):

* **deterministic** — bucket assignment is a pure function of the value;
  no randomness, no insertion-order sensitivity, so two identically-seeded
  runs produce byte-identical sketches (the property every stat in this
  repo must have);
* **commutative, associative merge** — merging adds bucket counts, so
  per-board sketches folded in any order give the same cluster-wide
  sketch.  This is what lets :meth:`StatsRegistry.merge
  <repro.sim.stats.StatsRegistry.merge>` roll windowed/parallel PDES
  partitions up into one registry whose snapshot is byte-identical to the
  sequential run's;
* **bounded memory** — with ``alpha = 0.01`` and ``max_bins = 2048`` the
  sketch spans a value range of ``gamma**2048 ≈ e**41`` (17 orders of
  magnitude) in at most ~2k dict entries, whatever the sample count.  If
  the range is ever exceeded the lowest buckets collapse into one —
  biasing the extreme *low* tail only, never the p99s operators page on.

Count, sum, min, and max are tracked exactly, so ``count``/``mean()``/
``min()``/``max()`` carry no sketch error at all; only interior quantiles
are approximate.

This module is imported by :mod:`repro.sim.stats` and must stay free of
``repro.sim`` imports (it would be a cycle).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["QuantileSketch", "DEFAULT_ALPHA", "DEFAULT_MAX_BINS"]

#: default relative-accuracy guarantee for quantile estimates
DEFAULT_ALPHA = 0.01
#: default live-bucket ceiling (memory bound; see module docstring)
DEFAULT_MAX_BINS = 2048

#: values at or below this magnitude land in the exact "zero" bucket —
#: integer cycle latencies are >= 1, so in practice only true zeros do
_MIN_TRACKED = 1e-9


class QuantileSketch:
    """Bounded-memory quantile estimator with an exact, commutative merge.

    API-compatible with the summary surface of
    :class:`~repro.sim.stats.Histogram` (``record``/``record_many``/
    ``count``/``mean``/``min``/``max``/``percentile``/``summary``/
    ``merge``/``reset``) so call sites can swap kinds without changing
    shape — minus ``samples``, which a sketch by definition cannot return.
    """

    __slots__ = ("name", "alpha", "max_bins", "_gamma", "_log_gamma",
                 "_bins", "_zero_count", "_count", "_sum", "_min", "_max",
                 "collapsed")

    def __init__(self, name: str = "", alpha: float = DEFAULT_ALPHA,
                 max_bins: int = DEFAULT_MAX_BINS):
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if max_bins < 2:
            raise ValueError(f"max_bins must be >= 2, got {max_bins}")
        self.name = name
        self.alpha = alpha
        self.max_bins = max_bins
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self._gamma)
        self._bins: Dict[int, int] = {}
        self._zero_count = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        #: how many times the low-bucket collapse ran (0 in healthy runs)
        self.collapsed = 0

    # -- recording -------------------------------------------------------

    def _key(self, value: float) -> int:
        return math.ceil(math.log(value) / self._log_gamma)

    def record(self, value: float) -> None:
        value = float(value)
        if value < 0.0 or math.isnan(value) or math.isinf(value):
            raise ValueError(
                f"sketch {self.name!r} takes finite non-negative values, "
                f"got {value!r}")
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value <= _MIN_TRACKED:
            self._zero_count += 1
            return
        key = self._key(value)
        self._bins[key] = self._bins.get(key, 0) + 1
        if len(self._bins) > self.max_bins:
            self._collapse()

    def record_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    def _collapse(self) -> None:
        """Fold the lowest buckets together until the bound holds.

        Collapsing only ever merges *low* buckets upward into the lowest
        survivor, so upper quantiles (the ones SLOs page on) keep their
        accuracy guarantee; the extreme low tail degrades gracefully.
        """
        keys = sorted(self._bins)
        while len(keys) > self.max_bins:
            lowest = keys.pop(0)
            self._bins[keys[0]] = self._bins.get(keys[0], 0) + \
                self._bins.pop(lowest)
            self.collapsed += 1

    # -- summary surface (Histogram-compatible) --------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def bins(self) -> int:
        """Live bucket count (the memory footprint, in dict entries)."""
        return len(self._bins) + (1 if self._zero_count else 0)

    def mean(self) -> float:
        if not self._count:
            return math.nan
        return self._sum / self._count

    def min(self) -> float:
        return self._min if self._count else math.nan

    def max(self) -> float:
        return self._max if self._count else math.nan

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-th percentile (``p`` in [0, 100]).

        Returns a value within ``alpha`` relative error of the exact order
        statistic ``sorted(samples)[floor(p/100 * (count - 1))]``; the
        exact ``min``/``max`` are returned at the extremes.
        """
        if not self._count:
            return math.nan
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        rank = math.floor(p / 100.0 * (self._count - 1))
        if rank <= 0 and self._zero_count == 0:
            return self._min
        if rank >= self._count - 1:
            return self._max
        if rank < self._zero_count:
            return 0.0
        seen = self._zero_count
        for key in sorted(self._bins):
            seen += self._bins[key]
            if seen > rank:
                # bucket (gamma^(k-1), gamma^k]; the midpoint in log space
                # is within alpha of every value in the bucket
                est = 2.0 * self._gamma ** key / (self._gamma + 1.0)
                return min(max(est, self._min), self._max)
        return self._max  # pragma: no cover - rank < count guarantees a hit

    def summary(self) -> Dict[str, float]:
        """Same row shape as ``Histogram.summary`` (EXPERIMENTS tables)."""
        return {
            "count": float(self._count),
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "p999": self.percentile(99.9),
            "max": self.max(),
        }

    # -- merge / lifecycle ----------------------------------------------

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` in; commutative and associative by construction.

        Bucket counts add (both sides use the same ``alpha``-determined
        bucket boundaries), exact fields combine exactly — so merging
        per-board sketches in any order yields the same result as one
        sketch that saw every sample, which is what makes the parallel
        PDES roll-up byte-identical to the sequential one.
        """
        if abs(other.alpha - self.alpha) > 1e-12:
            raise ValueError(
                f"cannot merge sketches with different alpha "
                f"({self.alpha} vs {other.alpha})")
        for key, n in other._bins.items():
            self._bins[key] = self._bins.get(key, 0) + n
        self._zero_count += other._zero_count
        self._count += other._count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        self.collapsed += other.collapsed
        if len(self._bins) > self.max_bins:
            self._collapse()

    def reset(self) -> None:
        self._bins.clear()
        self._zero_count = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self.collapsed = 0

    # -- introspection ----------------------------------------------------

    def bucket_counts(self) -> List[Tuple[int, int]]:
        """``(bucket_key, count)`` pairs in key order (tests, debugging)."""
        return sorted(self._bins.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<QuantileSketch {self.name!r} n={self._count} "
                f"bins={self.bins} alpha={self.alpha}>")
