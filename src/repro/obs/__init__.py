"""Observability: tracing, telemetry, SLOs, profiling, flight recording.

The Apiary pitch (Design Goals, Programmability) is that because *every*
inter-accelerator interaction crosses the monitor/NoC boundary, the OS can
observe all of it.  This package is that observation layer, built on top of
the flat :class:`~repro.sim.trace.Tracer` and end-of-run
:class:`~repro.sim.stats.StatsRegistry`:

* :class:`SpanRecorder` / :class:`SpanIndex` — follow one request through
  injection, NoC hops, monitor interposition, service dispatch and DRAM
  access; rebuild per-request span trees, critical paths and stage
  breakdowns whose cycle sums equal the measured end-to-end latency.
* :class:`TelemetrySampler` — ring-buffered per-tile time-series (inject
  backlog, buffered flits, denials, DRAM queue depth) and a NoC utilization
  heatmap, exposed mid-run via ``MgmtPlane.telemetry()``.
* :class:`QuantileSketch` — bounded-memory mergeable latency quantiles
  (DDSketch-style, documented ``alpha`` relative error) for hot paths that
  record for the lifetime of a run; registered via ``StatsRegistry.sketch``.
* :class:`SLOTarget` / :class:`SLOEngine` — declarative per-service and
  per-tenant objectives with multi-window fast/slow burn-rate alerting;
  verdicts and alerts are deterministic and PDES-mergeable.
* :class:`CycleProfiler` — cycle-accounting attribution over the span
  trees, emitting folded-stack flamegraph files and a top-N table.
* :class:`FlightRecorder` — always-on bounded ring of recent spans +
  events per board, dumped to a validated JSON artifact on fault/kill
  (:func:`validate_flight_dump` is the CI-side structural check).
* :func:`chrome_trace` / :func:`export_chrome_trace` — Chrome trace-event
  JSON loadable in Perfetto / ``chrome://tracing``; :func:`run_report` — a
  plain-text summary, :func:`run_report_json` its machine-readable twin.

Everything is zero-cost when disabled: every instrumented hot path guards
on ``spans.enabled`` exactly like ``Tracer.emit``, an invariant the P1
benchmark enforces with a recorded overhead floor and O1 pins for the
full plane end to end.
"""

from repro.obs.export import (
    chrome_trace,
    export_chrome_trace,
    run_report,
    run_report_json,
    validate_chrome_trace,
)
from repro.obs.flight import FlightRecorder, validate_flight_dump
from repro.obs.index import QUEUE_STAGE, SpanIndex, SpanNode
from repro.obs.profile import CycleProfiler
from repro.obs.sketch import QuantileSketch
from repro.obs.slo import SLOEngine, SLOTarget
from repro.obs.span import SpanRecord, SpanRecorder
from repro.obs.telemetry import TelemetrySampler

__all__ = [
    "SpanRecord",
    "SpanRecorder",
    "SpanIndex",
    "SpanNode",
    "QUEUE_STAGE",
    "TelemetrySampler",
    "QuantileSketch",
    "SLOTarget",
    "SLOEngine",
    "CycleProfiler",
    "FlightRecorder",
    "validate_flight_dump",
    "chrome_trace",
    "export_chrome_trace",
    "validate_chrome_trace",
    "run_report",
    "run_report_json",
]
