"""Observability: causal request tracing, telemetry time-series, exporters.

The Apiary pitch (Design Goals, Programmability) is that because *every*
inter-accelerator interaction crosses the monitor/NoC boundary, the OS can
observe all of it.  This package is that observation layer, built on top of
the flat :class:`~repro.sim.trace.Tracer` and end-of-run
:class:`~repro.sim.stats.StatsRegistry`:

* :class:`SpanRecorder` / :class:`SpanIndex` — follow one request through
  injection, NoC hops, monitor interposition, service dispatch and DRAM
  access; rebuild per-request span trees, critical paths and stage
  breakdowns whose cycle sums equal the measured end-to-end latency.
* :class:`TelemetrySampler` — ring-buffered per-tile time-series (inject
  backlog, buffered flits, denials, DRAM queue depth) and a NoC utilization
  heatmap, exposed mid-run via ``MgmtPlane.telemetry()``.
* :func:`chrome_trace` / :func:`export_chrome_trace` — Chrome trace-event
  JSON loadable in Perfetto / ``chrome://tracing``; :func:`run_report` — a
  plain-text summary.

Everything is zero-cost when disabled: every instrumented hot path guards
on ``spans.enabled`` exactly like ``Tracer.emit``, an invariant the P1
benchmark enforces with a recorded overhead floor.
"""

from repro.obs.export import (
    chrome_trace,
    export_chrome_trace,
    run_report,
    validate_chrome_trace,
)
from repro.obs.index import QUEUE_STAGE, SpanIndex, SpanNode
from repro.obs.span import SpanRecord, SpanRecorder
from repro.obs.telemetry import TelemetrySampler

__all__ = [
    "SpanRecord",
    "SpanRecorder",
    "SpanIndex",
    "SpanNode",
    "QUEUE_STAGE",
    "TelemetrySampler",
    "chrome_trace",
    "export_chrome_trace",
    "validate_chrome_trace",
    "run_report",
]
