"""Per-request span trees, stage breakdowns, and critical paths.

:class:`SpanIndex` turns the flat record list a
:class:`~repro.obs.span.SpanRecorder` accumulates back into causality:
one tree per trace id, rooted at the span with no parent (the shell
``call``), children ordered by start time.

The stage breakdown is computed by an *innermost-wins timeline sweep* over
the root interval: at every cycle the deepest active span owns that cycle,
and cycles no instrumented span covers are attributed to ``"queueing"``
(egress/inbox channel waits, scheduling).  Attribution is therefore a
partition of the root interval — the per-stage cycle counts of a request
sum *exactly* to its end-to-end latency, which is the invariant the
tracing tests and the tracing demo assert.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.span import SpanRecord, SpanRecorder

__all__ = ["SpanNode", "SpanIndex", "QUEUE_STAGE"]

#: Stage name for root-interval cycles not covered by any child span.
QUEUE_STAGE = "queueing"


class SpanNode:
    """One span plus its children, ordered by start time."""

    __slots__ = ("record", "children")

    def __init__(self, record: SpanRecord):
        self.record = record
        self.children: List[SpanNode] = []

    def walk(self) -> Iterable["SpanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def render(self, indent: int = 0) -> str:
        """Human-readable tree dump for reports and failed tests."""
        rec = self.record
        end = rec.end if rec.closed else "open"
        dur = f"{rec.duration:>6}" if rec.closed else "     ?"
        lines = [f"{'  ' * indent}{rec.name:<20} {rec.source:<10} "
                 f"[{rec.start:>8} .. {end:>8}] {dur} cyc"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


class SpanIndex:
    """Reconstructs span trees from a recorder (or a record iterable)."""

    def __init__(self, spans: Union[SpanRecorder, Iterable[SpanRecord]]):
        self._by_trace: Dict[int, List[SpanRecord]] = {}
        for rec in spans:
            self._by_trace.setdefault(rec.trace_id, []).append(rec)

    def trace_ids(self) -> List[int]:
        return list(self._by_trace)

    def records(self, trace_id: int) -> List[SpanRecord]:
        return list(self._by_trace.get(trace_id, []))

    def root(self, trace_id: int) -> Optional[SpanRecord]:
        """The trace's root span: no parent, or a parent outside the trace."""
        records = self._by_trace.get(trace_id, [])
        ids = {rec.span_id for rec in records}
        for rec in records:
            if rec.parent_id == 0 or rec.parent_id not in ids:
                return rec
        return None

    def complete(self, trace_id: int) -> bool:
        """True when the trace has a root and every span closed."""
        records = self._by_trace.get(trace_id)
        if not records or self.root(trace_id) is None:
            return False
        return all(rec.closed for rec in records)

    def tree(self, trace_id: int) -> Optional[SpanNode]:
        records = self._by_trace.get(trace_id)
        if not records:
            return None
        nodes = {rec.span_id: SpanNode(rec) for rec in records}
        root_rec = self.root(trace_id)
        if root_rec is None:
            return None
        root = nodes[root_rec.span_id]
        for rec in records:
            if rec is root_rec:
                continue
            parent = nodes.get(rec.parent_id, root)
            parent.children.append(nodes[rec.span_id])
        for node in nodes.values():
            node.children.sort(key=lambda n: (n.record.start,
                                              n.record.span_id))
        return root

    # -- timeline attribution -------------------------------------------

    def _depths(self, records: List[SpanRecord]) -> Dict[int, int]:
        by_id = {rec.span_id: rec for rec in records}
        depths: Dict[int, int] = {}

        def depth_of(span_id: int) -> int:
            if span_id in depths:
                return depths[span_id]
            rec = by_id[span_id]
            d = 0 if rec.parent_id not in by_id else (
                depth_of(rec.parent_id) + 1)
            depths[span_id] = d
            return d

        for rec in records:
            depth_of(rec.span_id)
        return depths

    def segment_owners(self, trace_id: int
                       ) -> List[Tuple[int, int, Optional[SpanRecord]]]:
        """Partition the root interval into ``(start, end, owner)`` pieces.

        The innermost (deepest; ties: latest-started) closed span active at
        each point owns it; uncovered time has owner ``None`` (queueing).
        The pieces tile ``[root.start, root.end]`` exactly.  This is the
        raw form :class:`~repro.obs.profile.CycleProfiler` consumes — it
        needs the owning *record* (for ancestry and source), not just the
        stage name :meth:`segments` reduces it to.
        """
        root = self.root(trace_id)
        if root is None or not root.closed:
            return []
        records = [rec for rec in self._by_trace[trace_id]
                   if rec is not root and rec.closed and rec.duration > 0]
        depths = self._depths(self._by_trace[trace_id])
        lo, hi = root.start, root.end
        if hi <= lo:
            return []
        # clamp children into the root interval and collect cut points
        spans = []
        for rec in records:
            start, end = max(rec.start, lo), min(rec.end, hi)
            if end > start:
                spans.append((start, end, rec))
        cuts = {lo, hi}
        for start, end, _rec in spans:
            cuts.add(start)
            cuts.add(end)
        points = sorted(cuts)
        pieces: List[Tuple[int, int, Optional[SpanRecord]]] = []
        for a, b in zip(points, points[1:]):
            active = [rec for start, end, rec in spans
                      if start <= a and end >= b]
            winner = max(active, key=lambda r: (depths[r.span_id],
                                                r.start, r.span_id)) \
                if active else None
            if pieces and pieces[-1][2] is winner:
                pieces[-1] = (pieces[-1][0], b, winner)
            else:
                pieces.append((a, b, winner))
        return pieces

    def segments(self, trace_id: int) -> List[Tuple[int, int, str]]:
        """Partition the root interval into ``(start, end, stage)`` pieces.

        The innermost (deepest; ties: latest-started) closed span active at
        each point owns it; uncovered time is :data:`QUEUE_STAGE`.  The
        pieces tile ``[root.start, root.end]`` exactly.
        """
        segments: List[Tuple[int, int, str]] = []
        for a, b, owner in self.segment_owners(trace_id):
            stage = owner.name if owner is not None else QUEUE_STAGE
            if segments and segments[-1][2] == stage:
                segments[-1] = (segments[-1][0], b, stage)
            else:
                segments.append((a, b, stage))
        return segments

    def stage_breakdown(self, trace_id: int) -> Dict[str, int]:
        """Cycles per stage; values sum to the request's measured latency."""
        out: Dict[str, int] = {}
        for start, end, stage in self.segments(trace_id):
            out[stage] = out.get(stage, 0) + (end - start)
        return out

    def critical_path(self, trace_id: int) -> List[Tuple[str, str, int, int]]:
        """The request's timeline as ``(stage, source, start, end)`` hops.

        This *is* the critical path of an RPC-shaped request: the root is a
        single causal chain, so the sequence of innermost spans over time is
        the sequence of stages the request was actually blocked on.
        """
        root = self.root(trace_id)
        if root is None:
            return []
        out = []
        for start, end, stage in self.segments(trace_id):
            source = root.source
            # find the span that owns this segment to report its source
            best = None
            for rec in self._by_trace[trace_id]:
                if (rec is not root and rec.closed and rec.name == stage
                        and rec.start <= start and rec.end >= end):
                    if best is None or rec.start >= best.start:
                        best = rec
            if best is not None:
                source = best.source
            out.append((stage, source, start, end))
        return out

    def latency(self, trace_id: int) -> int:
        """Root end-to-end latency in cycles (-1 if incomplete)."""
        root = self.root(trace_id)
        if root is None or not root.closed:
            return -1
        return root.duration

    # -- aggregation -----------------------------------------------------

    def complete_traces(self) -> List[int]:
        return [tid for tid in self._by_trace if self.complete(tid)]

    def aggregate_stages(self) -> Dict[str, int]:
        """Total cycles per stage across every complete trace."""
        totals: Dict[str, int] = {}
        for tid in self.complete_traces():
            for stage, cycles in self.stage_breakdown(tid).items():
                totals[stage] = totals.get(stage, 0) + cycles
        return totals
