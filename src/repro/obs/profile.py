"""Cycle-accounting profiler: where did the simulated cycles go?

FASE's argument (PAPERS.md) is that cycle-accurate *attribution* — not
just end-to-end numbers — is what makes a performance model trustworthy.
:class:`CycleProfiler` walks every complete trace in a
:class:`~repro.obs.span.SpanRecorder` and charges each cycle of each
request to the innermost span active at that instant (the same
innermost-wins sweep :meth:`SpanIndex.stage_breakdown
<repro.obs.index.SpanIndex.stage_breakdown>` uses, via
:meth:`~repro.obs.index.SpanIndex.segment_owners`), labelling the full
ancestor chain so the output is a *stack*, not a flat bucket:

    ``frontend:kv;dispatch;kv/0:execute 5120``

That is Brendan Gregg's folded-stack format — one line per unique stack,
semicolon-joined frames, space, cycle count — which ``flamegraph.pl`` and
every modern flamegraph viewer (speedscope, Firefox Profiler) consume
directly.  Frames are ``source:name`` (component-qualified stage, the
component being the engine-process/span source that emitted the span), so
the x-axis answers "which component, doing what"; cycles covered by no
instrumented span appear as the ``queueing`` frame rather than vanishing —
attribution is a partition, the flamegraph totals equal the sum of request
latencies.

Aggregation is integer addition over sorted keys: two profilers built
from byte-identical span sets render byte-identical output, and the
cluster roll-up (profile of merged spans) is deterministic like the rest
of the plane.

Must stay import-free of ``repro.sim`` (imported from the stats side).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.index import QUEUE_STAGE, SpanIndex
from repro.obs.span import SpanRecord, SpanRecorder

__all__ = ["CycleProfiler"]


def _frame(rec: SpanRecord) -> str:
    """``source:name`` component-qualified frame label (no ';' allowed)."""
    label = f"{rec.source}:{rec.name}" if rec.source else rec.name
    return label.replace(";", ",")


class CycleProfiler:
    """Folded-stack cycle attribution over every complete trace."""

    def __init__(self, spans: Union[SpanIndex, SpanRecorder,
                                    Iterable[SpanRecord]]):
        self.index = spans if isinstance(spans, SpanIndex) \
            else SpanIndex(spans)
        self._folded: Dict[Tuple[str, ...], int] = {}
        self._traces = 0
        self._total_cycles = 0
        self._build()

    def _build(self) -> None:
        for tid in sorted(self.index.complete_traces()):
            records = {rec.span_id: rec for rec in self.index.records(tid)}
            root = self.index.root(tid)
            root_frame = _frame(root)
            self._traces += 1
            for start, end, owner in self.index.segment_owners(tid):
                cycles = end - start
                self._total_cycles += cycles
                if owner is None:
                    stack = (root_frame, QUEUE_STAGE)
                else:
                    # ancestor chain root -> owner, one frame per span
                    chain: List[SpanRecord] = []
                    rec: Optional[SpanRecord] = owner
                    while rec is not None and rec is not root:
                        chain.append(rec)
                        rec = records.get(rec.parent_id)
                    chain.append(root)
                    stack = tuple(_frame(r) for r in reversed(chain))
                self._folded[stack] = self._folded.get(stack, 0) + cycles

    # -- flamegraph output ----------------------------------------------

    @property
    def traces(self) -> int:
        return self._traces

    @property
    def total_cycles(self) -> int:
        """Sum of all attributed cycles == sum of complete-trace latencies."""
        return self._total_cycles

    def folded(self) -> Dict[str, int]:
        """``"frame;frame;frame" -> cycles`` in sorted-stack order."""
        return {";".join(stack): cycles
                for stack, cycles in sorted(self._folded.items())}

    def folded_lines(self) -> List[str]:
        """The folded-stack file body, one ``stack count`` line per stack."""
        return [f"{stack} {cycles}" for stack, cycles in
                self.folded().items()]

    def write_folded(self, path: str) -> int:
        """Write the folded file; feed to flamegraph.pl / speedscope.

        Returns the number of stack lines written.
        """
        lines = self.folded_lines()
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + ("\n" if lines else ""))
        return len(lines)

    # -- top-N table ------------------------------------------------------

    def top(self, n: int = 10) -> List[Tuple[str, int]]:
        """Hottest frames by *self* cycles (the leaf of each stack).

        Self time is the flamegraph's box width at the leaf — the place
        the cycles were actually spent, as opposed to inclusive time which
        double-counts parents.
        """
        self_cycles: Dict[str, int] = {}
        for stack, cycles in self._folded.items():
            leaf = stack[-1]
            self_cycles[leaf] = self_cycles.get(leaf, 0) + cycles
        ranked = sorted(self_cycles.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]

    def render_top(self, n: int = 10) -> str:
        """Operator-facing table of the hottest frames."""
        total = self._total_cycles or 1
        lines = [f"cycle profile: {self._traces} traces, "
                 f"{self._total_cycles} cycles attributed",
                 f"{'frame':<40} {'self cycles':>12} {'share':>7}"]
        for frame, cycles in self.top(n):
            lines.append(f"{frame:<40} {cycles:>12} {cycles / total:>6.1%}")
        return "\n".join(lines)
