"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SLOTarget` states an objective the way an operator would write
it in a runbook: "99.9% of ``kv`` requests good (completed within 40k
cycles) per tenant".  The :class:`SLOEngine` turns the request stream into
verdicts against those objectives:

* every completed (or rejected) request is classified **good** or **bad**
  against each matching target — bad means failed, rejected, or slower
  than the target's latency bound;
* classifications land in fixed-width **sim-time buckets** of integer
  counts, so the engine's state is a pure function of the request stream —
  deterministic, and mergeable across PDES partitions by adding bucket
  counts (commutative, like everything else in the stats plane);
* **burn rate** over a window is ``bad_fraction / error_budget`` where
  ``error_budget = 1 - objective``: burn 1.0 spends the budget exactly at
  the sustainable rate, burn 14 exhausts a 30-day budget in ~2 days.  The
  standard multi-window discipline (Google SRE workbook, ch. 5) pages on a
  *fast* window at a high burn threshold (catches cliffs in minutes) and
  tickets on a *slow* window at a low threshold (catches slow leaks);
  both are swept deterministically over the buckets after the run, and
  the fast window doubles as the live :meth:`firing` signal the
  autoscaler consumes mid-run.

Per-target latency is also folded into a mergeable
:class:`~repro.obs.sketch.QuantileSketch`, so the report can state the
observed p99/p99.9 next to each verdict without unbounded storage.

This module must stay import-free of ``repro.sim``/``repro.cluster``
(it is imported from both sides).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.sketch import QuantileSketch

__all__ = ["SLOTarget", "SLOEngine", "DEFAULT_BUCKET_CYCLES"]

#: width of a classification bucket in sim cycles.  Small enough that
#: windows hold many buckets, large enough that bucket dicts stay tiny.
DEFAULT_BUCKET_CYCLES = 10_000


@dataclass(frozen=True)
class SLOTarget:
    """One objective: service (optionally one tenant), goodness, windows.

    ``objective`` is the fraction of requests that must be good; a request
    is good when it completed successfully and, if ``latency_cycles`` is
    set, within that bound.  ``tenant=None`` matches every request of the
    service (the service-wide objective); a named tenant matches only
    requests tagged with it — FOS-style multi-tenant workloads get one
    target per tenant on top of the service-wide one.
    """

    name: str
    service: str
    objective: float = 0.999
    latency_cycles: Optional[int] = None
    tenant: Optional[str] = None
    #: slow ("ticket") burn window, sim cycles
    window: int = 400_000
    #: fast ("page") burn window, sim cycles
    fast_window: int = 100_000
    #: burn-rate thresholds for the two windows
    fast_burn: float = 14.0
    slow_burn: float = 6.0

    def __post_init__(self):
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {self.objective}")
        if self.fast_window > self.window:
            raise ValueError("fast_window must not exceed window")

    @property
    def key(self) -> Tuple[str, str, str]:
        """Stable identity for bucket maps and cross-partition merge."""
        return (self.service, self.tenant or "", self.name)

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective


class SLOEngine:
    """Classifies requests against targets; verdicts, burn alerts, merge."""

    def __init__(self, bucket_cycles: int = DEFAULT_BUCKET_CYCLES):
        if bucket_cycles <= 0:
            raise ValueError("bucket_cycles must be positive")
        self.bucket_cycles = bucket_cycles
        self.targets: Dict[Tuple[str, str, str], SLOTarget] = {}
        # target key -> bucket index -> [good, bad] (integer counts only:
        # integers merge exactly, floats would accumulate rounding skew)
        self._buckets: Dict[Tuple[str, str, str], Dict[int, List[int]]] = {}
        self._sketches: Dict[Tuple[str, str, str], QuantileSketch] = {}

    # -- registration ----------------------------------------------------

    def add_target(self, target: SLOTarget) -> SLOTarget:
        existing = self.targets.get(target.key)
        if existing is not None and existing != target:
            raise ValueError(
                f"conflicting SLO target for {target.key}: "
                f"{existing} vs {target}")
        self.targets[target.key] = target
        self._buckets.setdefault(target.key, {})
        self._sketches.setdefault(
            target.key, QuantileSketch("slo." + ".".join(target.key)))
        return target

    def targets_for(self, service: str) -> List[SLOTarget]:
        return [t for k, t in sorted(self.targets.items())
                if t.service == service]

    # -- ingest ----------------------------------------------------------

    def observe(self, service: str, latency: Optional[int], ok: bool,
                now: int, tenant: Optional[str] = None) -> None:
        """Classify one finished request against every matching target.

        ``latency`` is sim cycles from admission to completion; pass
        ``None`` for requests that never produced one (rejected at
        admission) — they are bad against every latency bound.
        """
        bucket = now // self.bucket_cycles
        for key, target in self.targets.items():
            if target.service != service:
                continue
            if target.tenant is not None and target.tenant != tenant:
                continue
            good = ok and latency is not None and (
                target.latency_cycles is None
                or latency <= target.latency_cycles)
            cell = self._buckets[key].setdefault(bucket, [0, 0])
            cell[0 if good else 1] += 1
            if latency is not None:
                self._sketches[key].record(latency)

    # -- merge (PDES roll-up) -------------------------------------------

    def merge(self, other: "SLOEngine") -> None:
        """Fold a sibling partition's engine in; commutative.

        Targets union (identical definitions required — partitions are
        built from one config, so a conflict is a bug, not a race);
        bucket counts and latency sketches add.
        """
        if other.bucket_cycles != self.bucket_cycles:
            raise ValueError("cannot merge engines with different buckets")
        for target in other.targets.values():
            self.add_target(target)
        for key, buckets in other._buckets.items():
            mine = self._buckets.setdefault(key, {})
            for bucket, (good, bad) in buckets.items():
                cell = mine.setdefault(bucket, [0, 0])
                cell[0] += good
                cell[1] += bad
        for key, sketch in other._sketches.items():
            self._sketches[key].merge(sketch)

    # -- burn rates ------------------------------------------------------

    def _window_counts(self, key: Tuple[str, str, str], end_bucket: int,
                       window_cycles: int) -> Tuple[int, int]:
        """(good, bad) over the window ending at ``end_bucket`` inclusive."""
        n_buckets = max(1, window_cycles // self.bucket_cycles)
        buckets = self._buckets.get(key, {})
        good = bad = 0
        for b in range(end_bucket - n_buckets + 1, end_bucket + 1):
            cell = buckets.get(b)
            if cell is not None:
                good += cell[0]
                bad += cell[1]
        return good, bad

    def burn_rate(self, target: SLOTarget, now: int,
                  window_cycles: Optional[int] = None) -> float:
        """Burn over the window ending now (0.0 when the window is empty)."""
        window_cycles = window_cycles if window_cycles is not None \
            else target.window
        good, bad = self._window_counts(
            target.key, now // self.bucket_cycles, window_cycles)
        total = good + bad
        if total == 0:
            return 0.0
        return (bad / total) / target.error_budget

    def firing(self, service: str, now: int) -> bool:
        """Live page signal: any target of ``service`` past its fast burn.

        This is what the autoscaler polls each tick — deterministic,
        since it reads the same bucket counts the post-run report sweeps.
        """
        for target in self.targets_for(service):
            if self.burn_rate(target, now, target.fast_window) >= \
                    target.fast_burn:
                return True
        return False

    # -- reporting -------------------------------------------------------

    def alerts(self, now: int) -> List[Dict]:
        """Deterministic post-hoc alert sweep over every bucket boundary.

        Replays both burn windows at each bucket end and records rising
        edges: a ``page`` when the fast window crosses ``fast_burn``, a
        ``ticket`` when the slow window crosses ``slow_burn``.  Output
        order is (target key, cycle) — byte-stable for identical streams.
        """
        out: List[Dict] = []
        end_bucket = now // self.bucket_cycles
        for key in sorted(self.targets):
            target = self.targets[key]
            buckets = self._buckets.get(key, {})
            if not buckets:
                continue
            first = min(buckets)
            page = ticket = False
            for b in range(first, end_bucket + 1):
                cycle = (b + 1) * self.bucket_cycles
                fast = self.burn_rate(target, cycle - 1, target.fast_window)
                slow = self.burn_rate(target, cycle - 1, target.window)
                if fast >= target.fast_burn and not page:
                    page = True
                    out.append({"cycle": cycle, "target": list(key),
                                "severity": "page",
                                "burn_rate": round(fast, 4)})
                elif fast < target.fast_burn:
                    page = False
                if slow >= target.slow_burn and not ticket:
                    ticket = True
                    out.append({"cycle": cycle, "target": list(key),
                                "severity": "ticket",
                                "burn_rate": round(slow, 4)})
                elif slow < target.slow_burn:
                    ticket = False
        return out

    def report(self, now: int) -> Dict:
        """Machine-readable verdicts: one row per target, plus alerts.

        Byte-stable for identical request streams (sorted keys, integer
        counts, rounded floats) — the PDES identity tests compare the
        JSON dump of this structure across backends.
        """
        rows = []
        for key in sorted(self.targets):
            target = self.targets[key]
            good = bad = 0
            for g, b in self._buckets.get(key, {}).values():
                good += g
                bad += b
            total = good + bad
            bad_fraction = (bad / total) if total else 0.0
            sketch = self._sketches[key]
            rows.append({
                "name": target.name,
                "service": target.service,
                "tenant": target.tenant,
                "objective": target.objective,
                "latency_cycles": target.latency_cycles,
                "total": total,
                "good": good,
                "bad": bad,
                "bad_fraction": round(bad_fraction, 6),
                "budget_spent": round(
                    bad_fraction / target.error_budget, 4) if total else 0.0,
                "latency_p99": _safe(sketch.percentile(99)),
                "latency_p999": _safe(sketch.percentile(99.9)),
                "verdict": "pass" if (
                    total and bad_fraction <= target.error_budget
                ) else ("no-data" if not total else "fail"),
            })
        return {"now": now, "targets": rows, "alerts": self.alerts(now)}

    def report_text(self, now: int) -> str:
        """Operator-facing table of the same verdicts."""
        rep = self.report(now)
        lines = [f"SLO report @ cycle {now}",
                 f"{'target':<28} {'objective':>9} {'total':>8} "
                 f"{'bad':>6} {'budget':>7} {'p99':>10} verdict"]
        for row in rep["targets"]:
            label = row["name"]
            if row["tenant"]:
                label += f"[{row['tenant']}]"
            p99 = row["latency_p99"]
            lines.append(
                f"{label:<28} {row['objective']:>9.4%} {row['total']:>8} "
                f"{row['bad']:>6} {row['budget_spent']:>6.0%} "
                f"{p99 if p99 is None else round(p99):>10} {row['verdict']}")
        if rep["alerts"]:
            lines.append("alerts:")
            for al in rep["alerts"]:
                lines.append(
                    f"  cycle {al['cycle']:>10}  {al['severity']:<7} "
                    f"{'/'.join(al['target'])}  burn={al['burn_rate']}")
        else:
            lines.append("alerts: none")
        return "\n".join(lines)


def _safe(value: float) -> Optional[float]:
    return None if value != value else value
