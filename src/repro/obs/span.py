"""Causal span records — one request followed across every boundary.

The flat :class:`~repro.sim.trace.Tracer` answers "what happened"; spans
answer "what happened *to this request*".  Every :class:`~repro.kernel.
message.Message` optionally carries a ``trace_id`` (one per root request)
and a ``span_id`` (the parent for whatever stage handles it next).  Each
instrumented stage — monitor egress/ingress, NoC transit, service dispatch,
DRAM access — opens a span parented under the id it received and closes it
when its work completes, so the recorder accumulates the raw material for a
per-request tree (:class:`~repro.obs.index.SpanIndex` rebuilds it).

The emit path is zero-cost when disabled, exactly like ``Tracer.emit``:
every instrumented site guards on :attr:`SpanRecorder.enabled` before
building any arguments, and :meth:`SpanRecorder.open` itself returns 0
immediately when disabled, so a recorder that was never enabled costs one
attribute load and branch per site.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["SpanRecord", "SpanRecorder"]


class SpanRecord:
    """One span: a named interval in one trace, parented under another span.

    ``end`` is -1 while the span is open; an end of -1 in a finished run
    means the stage never completed (the request timed out, the sim stopped
    mid-flight) — :class:`SpanIndex` reports such traces as incomplete.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "category",
                 "source", "start", "end", "detail")

    def __init__(self, trace_id: int, span_id: int, parent_id: int,
                 name: str, category: str, source: str, start: int,
                 detail: Optional[Dict[str, Any]] = None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.source = source
        self.start = start
        self.end = -1
        self.detail: Dict[str, Any] = detail if detail is not None else {}

    @property
    def closed(self) -> bool:
        return self.end >= 0

    @property
    def duration(self) -> int:
        """Cycles from open to close (-1 while open)."""
        if self.end < 0:
            return -1
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = self.end if self.closed else "…"
        return (f"<Span t{self.trace_id} s{self.span_id}<-{self.parent_id} "
                f"{self.name} {self.source} [{self.start},{end}]>")


class SpanRecorder:
    """Collects :class:`SpanRecord` objects for causal request tracing.

    Disabled by default and free when disabled: instrumented hot paths
    guard on :attr:`enabled` before touching any span machinery (the same
    contract ``Tracer.emit`` honours, verified by the P1 benchmark's
    obs-overhead floor).
    """

    def __init__(self, id_base: int = 0):
        self._enabled = False
        self._records: List[SpanRecord] = []
        self._open: Dict[int, SpanRecord] = {}
        #: first id minus one; windowed cluster backends give each board's
        #: recorder a disjoint base (partition * 10^9) so trace/span ids
        #: allocated independently per partition never collide and the
        #: merged record set is identical however many processes produced
        #: it.  The default base 0 reproduces the shared-recorder ids.
        self.id_base = id_base
        self._next_trace = id_base
        self._next_span = id_base
        # flight-recorder rings fed every closed span (kept out of the
        # enabled-guard contract: when tracing is off no spans open, so
        # close() never runs and sinks cost nothing)
        self._flight_sinks: List[Any] = []

    def attach_flight(self, sink: Any) -> None:
        """Feed every subsequently closed span to ``sink.record_span``."""
        self._flight_sinks.append(sink)

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def clear(self) -> None:
        self._records.clear()
        self._open.clear()

    def absorb(self, other: "SpanRecorder") -> None:
        """Append another recorder's records (cluster span merge).

        Record identity is untouched — with disjoint ``id_base`` values the
        id spaces cannot collide — and per-recorder emission order is
        preserved, so absorbing per-partition recorders in partition order
        yields a deterministic merged record list whichever backend
        (in-process or worker pool) produced them.
        """
        self._records.extend(other._records)
        self._open.update(other._open)

    # -- emission --------------------------------------------------------

    def new_trace(self) -> int:
        """Allocate a trace id for a new root request (0 = untraced)."""
        if not self._enabled:
            return 0
        self._next_trace += 1
        return self._next_trace

    def open(self, trace_id: int, name: str, category: str, source: str,
             start: int, parent_id: int = 0, **detail: Any) -> int:
        """Open a span; returns its id (0 when disabled or untraced)."""
        if not self._enabled or not trace_id:
            return 0
        self._next_span += 1
        record = SpanRecord(trace_id, self._next_span, parent_id, name,
                            category, source, start, detail or None)
        self._records.append(record)
        self._open[self._next_span] = record
        return self._next_span

    def close(self, span_id: int, end: int, **detail: Any) -> None:
        """Close an open span (no-op for id 0 or an unknown/closed span)."""
        if not span_id:
            return
        record = self._open.pop(span_id, None)
        if record is None:
            return
        record.end = end
        if detail:
            record.detail.update(detail)
        if self._flight_sinks:
            for sink in self._flight_sinks:
                sink.record_span(record)

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[SpanRecord]:
        return iter(self._records)

    @property
    def open_spans(self) -> int:
        return len(self._open)

    def records(self, trace_id: Optional[int] = None,
                category: Optional[str] = None) -> List[SpanRecord]:
        out = []
        for rec in self._records:
            if trace_id is not None and rec.trace_id != trace_id:
                continue
            if category is not None and rec.category != category:
                continue
            out.append(rec)
        return out

    def trace_ids(self) -> List[int]:
        """Distinct trace ids in first-seen order."""
        seen: Dict[int, None] = {}
        for rec in self._records:
            seen.setdefault(rec.trace_id, None)
        return list(seen)
