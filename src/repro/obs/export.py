"""Trace exporters: Chrome trace-event JSON (Perfetto) and text reports.

The Chrome trace-event format is the lingua franca of timeline viewers:
the exported file loads directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.  Spans become complete ("X") events on one track per
emitting source (tile monitor, NI, service, DRAM device), and telemetry
series become counter ("C") tracks, so a whole Apiary run — every request's
causal path over the per-tile utilization curves — is scrubbable in a
browser.  One simulated cycle is exported as one microsecond.

:func:`validate_chrome_trace` is the structural validator CI runs against
the demo's exported file: required keys, known phases, non-negative
durations, and monotonic timestamps.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.index import SpanIndex
from repro.obs.span import SpanRecorder
from repro.obs.telemetry import TelemetrySampler

__all__ = ["chrome_trace", "export_chrome_trace", "validate_chrome_trace",
           "run_report", "run_report_json"]

#: Phases this exporter produces (subset of the Chrome trace-event spec).
_PHASES = {"X", "M", "C", "I"}


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def chrome_trace(spans: SpanRecorder,
                 sampler: Optional[TelemetrySampler] = None) -> Dict[str, Any]:
    """Build a Chrome trace-event document from spans (+ optional counters).

    Spans land on one thread track per ``source``; open (never-closed)
    spans are exported as instant events so nothing is silently dropped.
    Counter tracks come from the sampler's ring buffers.
    """
    events: List[Dict[str, Any]] = []
    tids: Dict[str, int] = {}

    def tid_for(source: str) -> int:
        if source not in tids:
            tids[source] = len(tids) + 1
        return tids[source]

    for rec in spans:
        args = {"trace_id": rec.trace_id, "span_id": rec.span_id,
                "parent_id": rec.parent_id}
        for key, value in rec.detail.items():
            args[key] = _json_safe(value)
        base = {"name": rec.name, "cat": rec.category, "pid": 1,
                "tid": tid_for(rec.source), "args": args}
        if rec.closed:
            events.append({**base, "ph": "X", "ts": rec.start,
                           "dur": rec.end - rec.start})
        else:
            events.append({**base, "ph": "I", "ts": rec.start, "s": "t"})

    if sampler is not None:
        for metric in sampler.metrics():
            nodes = sorted({n for (m, n) in sampler._series if m == metric})
            for node in nodes:
                label = metric if node < 0 else f"{metric}.tile{node}"
                for t, value in sampler.series(metric, node):
                    events.append({"name": label, "ph": "C", "pid": 1,
                                   "tid": 0, "ts": t,
                                   "args": {"value": value}})

    events.sort(key=lambda e: (e["ts"], e.get("dur", 0)))

    meta: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 0, "ts": 0,
        "args": {"name": "apiary-sim"},
    }]
    for source, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        meta.append({"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                     "ts": 0, "args": {"name": source}})
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {"timeUnit": "1 simulated cycle = 1us",
                      "source": "repro.obs"},
    }


def export_chrome_trace(path: str, spans: SpanRecorder,
                        sampler: Optional[TelemetrySampler] = None
                        ) -> Dict[str, Any]:
    """Write the Chrome trace JSON to ``path``; returns the document."""
    doc = chrome_trace(spans, sampler)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return doc


def validate_chrome_trace(doc: Dict[str, Any]) -> int:
    """Structural validation of an exported trace; returns the event count.

    Raises ``ValueError`` on the first violation.  Checked: the document
    shape, per-event required keys, known phases, non-negative integer
    timestamps/durations, and monotonically non-decreasing ``ts`` across
    non-metadata events (the order viewers rely on).
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("trace document must be a dict with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("'traceEvents' must be a non-empty list")
    last_ts = None
    for i, event in enumerate(events):
        for key in ("name", "ph", "pid", "ts"):
            if key not in event:
                raise ValueError(f"event {i} missing required key {key!r}")
        ph = event["ph"]
        if ph not in _PHASES:
            raise ValueError(f"event {i} has unknown phase {ph!r}")
        ts = event["ts"]
        if not isinstance(ts, int) or ts < 0:
            raise ValueError(f"event {i} has bad ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, int) or dur < 0:
                raise ValueError(f"event {i} has bad dur {dur!r}")
        if ph != "M":
            if last_ts is not None and ts < last_ts:
                raise ValueError(
                    f"event {i} ts {ts} goes backwards (prev {last_ts})")
            last_ts = ts
    return len(events)


def run_report(index: SpanIndex,
               sampler: Optional[TelemetrySampler] = None,
               stats: Optional[Any] = None,
               max_traces: int = 5,
               slo: Optional[Any] = None,
               now: Optional[int] = None) -> str:
    """Plain-text run report: trees + stage totals + heatmap + SLOs."""
    lines: List[str] = ["=== Apiary observability report ==="]
    complete = index.complete_traces()
    lines.append(f"traces: {len(index.trace_ids())} total, "
                 f"{len(complete)} complete")
    for tid in complete[:max_traces]:
        tree = index.tree(tid)
        lines.append(f"\n-- trace {tid} "
                     f"(latency {index.latency(tid)} cyc) --")
        lines.append(tree.render())
        breakdown = index.stage_breakdown(tid)
        total = sum(breakdown.values()) or 1
        parts = ", ".join(f"{stage}={cyc} ({cyc / total:.0%})"
                          for stage, cyc in sorted(breakdown.items(),
                                                   key=lambda kv: -kv[1]))
        lines.append(f"  stages: {parts}")
    if len(complete) > max_traces:
        lines.append(f"\n({len(complete) - max_traces} more complete "
                     f"traces not shown)")
    totals = index.aggregate_stages()
    if totals:
        grand = sum(totals.values()) or 1
        lines.append("\n-- aggregate stage time (all complete traces) --")
        for stage, cyc in sorted(totals.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {stage:<18} {cyc:>10} cyc  {cyc / grand:6.1%}")
    if sampler is not None and sampler.samples_taken:
        lines.append(f"\n-- NoC utilization heatmap (flits/cycle, last "
                     f"sample at {sampler.last_sample_at}) --")
        lines.append(sampler.heatmap_text())
    if stats is not None:
        snap = stats.snapshot()
        counters = snap.get("counters", {})
        if counters:
            lines.append("\n-- counters --")
            for name in sorted(counters):
                lines.append(f"  {name:<32} {counters[name]:>12.0f}")
    if slo is not None:
        end = now if now is not None else (
            sampler.last_sample_at if sampler is not None else 0)
        lines.append("\n-- SLO verdicts --")
        lines.append(slo.report_text(end))
    return "\n".join(lines)


def run_report_json(index: SpanIndex,
                    sampler: Optional[TelemetrySampler] = None,
                    stats: Optional[Any] = None,
                    max_traces: int = 5,
                    slo: Optional[Any] = None,
                    now: Optional[int] = None) -> Dict[str, Any]:
    """Machine-readable twin of :func:`run_report` for CI artifacts.

    Same information, JSON-shaped: per-trace latency and stage breakdowns
    (first ``max_traces`` complete traces), aggregate stage totals, the
    latest heatmap grid, counters, and — when an SLO engine is supplied —
    its full verdict/alert report.  ``json.dumps(..., sort_keys=True)``
    of this document is byte-stable for identical runs, which is how the
    O1 identity harness compares backends.
    """
    complete = index.complete_traces()
    traces = []
    for tid in complete[:max_traces]:
        traces.append({
            "trace_id": tid,
            "latency": index.latency(tid),
            "stages": dict(sorted(index.stage_breakdown(tid).items())),
        })
    doc: Dict[str, Any] = {
        "traces_total": len(index.trace_ids()),
        "traces_complete": len(complete),
        "traces": traces,
        "aggregate_stages": dict(sorted(index.aggregate_stages().items())),
    }
    if sampler is not None:
        doc["telemetry"] = {
            "samples_taken": sampler.samples_taken,
            "last_sample_at": sampler.last_sample_at,
            "noc_heatmap": sampler.noc_heatmap(),
        }
    if stats is not None:
        doc["stats"] = stats.snapshot()
    if slo is not None:
        end = now if now is not None else (
            sampler.last_sample_at if sampler is not None else 0)
        doc["slo"] = slo.report(end)
    return doc
