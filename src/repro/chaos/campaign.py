"""Chaos campaigns: fault-rate sweeps with a survival workload.

A :class:`Campaign` builds a *fresh* :class:`ApiarySystem` per measurement
point, deploys a checksum service plus a set of closed-loop clients, arms a
seeded :class:`~repro.chaos.injector.FaultPlan` against it, and measures
**availability** — the fraction of client requests that complete, with a
*correct* checksum, inside their deadline.  Each (rate, recovery) point is
run twice per rate: once with the :class:`~repro.kernel.recovery.
RecoveryManager` attached and once bare, which is the experiment backing
the repo's recovery benchmark: at every non-zero fault rate, availability
with recovery must strictly exceed availability without it.

Everything is derived from the campaign seed (per-point seeds fork off it),
so a campaign's report text is byte-identical across runs with the same
parameters — checked in CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.accel import Accelerator
from repro.chaos.injector import FaultKind, FaultPlan, Injector
from repro.errors import ConfigError, DeadlineExceeded
from repro.eval import report
from repro.eval.tables import format_table
from repro.hw.resources import ResourceVector
from repro.kernel.system import ApiarySystem
from repro.sim import Engine, RngPool

__all__ = ["checksum", "ChecksumService", "SurvivalClient", "CampaignPoint",
           "Campaign"]


def checksum(data: Any) -> int:
    """A tiny deterministic digest both sides can compute independently."""
    if isinstance(data, str):
        data = data.encode()
    acc = 0
    for b in bytes(data):
        acc = (acc * 131 + b) & 0xFFFFFFFF
    return acc


class ChecksumService(Accelerator):
    """The service under attack: checksums request bodies.

    Small footprint on purpose — reconfiguration time scales with logic
    cells, and the recovery claim only holds when MTTR (detection + unload
    + reload) fits inside the clients' retry deadline, as it would for a
    real service bitstream an operator sized for failover.
    """

    COST = ResourceVector(logic_cells=10_000, bram_kb=64, dsp_slices=4)
    PRIMITIVES = {"lut_logic": 8_000, "bram": 16}
    preemptible = True

    CYCLES_PER_REQUEST = 400

    def __init__(self, name: str = "checksum"):
        super().__init__(name)
        self.served = 0

    def main(self, shell):
        while True:
            msg = yield shell.recv()
            if msg.op != "sum":
                yield shell.reply(msg, payload=f"bad op {msg.op!r}",
                                  error=True)
                continue
            yield from self._work(self.CYCLES_PER_REQUEST)
            self.served += 1
            yield shell.reply(msg, payload=checksum(msg.payload))

    def externalize_state(self) -> Dict[str, Any]:
        return {"served": self.served}

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.served = int(state.get("served", 0))


class SurvivalClient(Accelerator):
    """Closed-loop caller that keeps score.

    Issues requests through :meth:`Shell.call_with_retry` until ``until``
    (sim cycles), verifying every response against a locally computed
    checksum.  ``ok`` / ``failed`` / ``checksum_errors`` feed the campaign's
    availability numbers.
    """

    COST = ResourceVector(logic_cells=5_000, bram_kb=32, dsp_slices=2)
    PRIMITIVES = {"lut_logic": 4_000, "bram": 8}

    def __init__(self, name: str, service: str, until: int,
                 gap: int = 25_000, deadline: int = 300_000,
                 attempt_timeout: int = 25_000):
        super().__init__(name)
        self.service = service
        self.until = until
        self.gap = gap
        self.deadline = deadline
        self.attempt_timeout = attempt_timeout
        self.ok = 0
        self.failed = 0
        self.checksum_errors = 0
        self.finished = False

    def main(self, shell):
        i = 0
        while self.engine_now(shell) < self.until:
            body = f"{self.name}/req{i}"
            expected = checksum(body)
            i += 1
            try:
                resp = yield from shell.call_with_retry(
                    self.service, "sum", payload=body,
                    payload_bytes=len(body),
                    deadline=self.deadline,
                    attempt_timeout=self.attempt_timeout,
                )
            except DeadlineExceeded:
                self.failed += 1
            else:
                if resp.payload == expected:
                    self.ok += 1
                else:
                    self.checksum_errors += 1
            yield self.gap
        self.finished = True
        while True:  # stay resident; the tile owns this process
            yield 1_000_000

    @staticmethod
    def engine_now(shell) -> int:
        return shell.engine.now

    @property
    def total(self) -> int:
        return self.ok + self.failed + self.checksum_errors


@dataclass
class CampaignPoint:
    """One measured (fault rate, recovery on/off) configuration."""

    rate: float
    recovery: bool
    requests: int = 0
    ok: int = 0
    failed: int = 0
    checksum_errors: int = 0
    faults_applied: int = 0
    faults_skipped: int = 0
    recoveries: int = 0
    restarts: int = 0
    failovers: int = 0
    mean_mttr: float = 0.0
    events: List[str] = field(default_factory=list)

    @property
    def availability(self) -> float:
        return self.ok / self.requests if self.requests else 0.0


class Campaign:
    """Sweep fault rates, with and without recovery, and report survival.

    Parameters
    ----------
    seed: root seed; every point's fault plan and rng derive from it.
    rates: crash rates in expected events per million cycles (0 = control).
    duration: fault-plan horizon; client load runs past its window so every
        injected fault has requests in flight to hurt.
    clients: number of closed-loop caller tiles.
    extra_rates: additional background fault kinds (NoC/DRAM/Ethernet) at
        fixed rates, applied identically to every non-zero-rate point.
    """

    SERVICE = "svc.checksum"

    def __init__(
        self,
        seed: int = 0,
        rates: Sequence[float] = (0.0, 2.0, 5.0),
        duration: int = 1_200_000,
        clients: int = 3,
        width: int = 4,
        height: int = 4,
        service_node: int = 1,
        spares: Sequence[int] = (14, 15),
        client_gap: int = 25_000,
        client_deadline: int = 300_000,
        heartbeat_interval: int = 5_000,
        window: Tuple[float, float] = (0.05, 0.5),
        extra_rates: Optional[Mapping[FaultKind, float]] = None,
    ):
        if clients < 1:
            raise ConfigError("a campaign needs at least one client")
        self.seed = seed
        self.rates = list(rates)
        self.duration = duration
        self.clients = clients
        self.width = width
        self.height = height
        self.service_node = service_node
        self.spares = list(spares)
        self.client_gap = client_gap
        self.client_deadline = client_deadline
        self.heartbeat_interval = heartbeat_interval
        self.window = window
        self.extra_rates = dict(extra_rates or {})
        self.points: List[CampaignPoint] = []

    # -- one measurement point ----------------------------------------------

    def _client_nodes(self) -> List[int]:
        tiles = self.width * self.height
        reserved = {0, self.service_node} | set(self.spares)
        nodes = [n for n in range(tiles) if n not in reserved]
        if len(nodes) < self.clients:
            raise ConfigError(
                f"{self.clients} clients do not fit: only {len(nodes)} free "
                f"tiles"
            )
        return nodes[: self.clients]

    def _plan(self, rate: float, point_seed: int) -> FaultPlan:
        tiles = self.width * self.height
        rates: Dict[FaultKind, float] = {FaultKind.TILE_CRASH: rate}
        rates.update(self.extra_rates)
        targets: Dict[FaultKind, Sequence[Any]] = {
            FaultKind.TILE_CRASH: [self.SERVICE],
            FaultKind.NOC_ROUTER_STALL: list(range(tiles)),
            FaultKind.NOC_DROP: list(range(tiles)),
            FaultKind.NOC_LINK_SLOW: list(range(4 * tiles)),
            FaultKind.DRAM_BITFLIP: list(range(0, 1 << 20, 4096)),
            FaultKind.DRAM_BANK_FAIL: list(range(64)),
            FaultKind.ETH_LOSS_BURST: ["fabric"],
            FaultKind.ETH_CORRUPT_BURST: ["fabric"],
        }
        # at least one crash whenever the rate is non-zero, so sparse sweep
        # points still measure recovery rather than an uneventful run
        floor = {FaultKind.TILE_CRASH: 1} if rate > 0 else {}
        return FaultPlan.generate(
            seed=point_seed, duration=self.duration, rates=rates,
            targets=targets, window=self.window, min_events=floor,
        )

    def run_point(self, rate: float, recovery: bool) -> CampaignPoint:
        point_seed = RngPool(self.seed).fork(
            f"point/{rate}/{int(recovery)}").seed
        engine = Engine()
        system = ApiarySystem(width=self.width, height=self.height,
                              engine=engine, seed=point_seed)
        if recovery:
            manager = system.enable_recovery(
                spares=list(self.spares),
                heartbeat_interval=self.heartbeat_interval,
            )
            started = manager.deploy(self.service_node, ChecksumService,
                                     self.SERVICE)
        else:
            manager = None
            started = system.mgmt.load(self.service_node, ChecksumService(),
                                       endpoint=self.SERVICE)
        system.boot()
        engine.run_until_done(started, limit=10_000_000)

        # clients call past the fault window so late faults still have
        # victims; the hard stop bounds the recovery-off runs
        load_until = engine.now + int(self.duration * self.window[1]) \
            + self.client_deadline
        client_accels: List[SurvivalClient] = []
        for node in self._client_nodes():
            accel = SurvivalClient(
                f"client{node}", self.SERVICE, until=load_until,
                gap=self.client_gap, deadline=self.client_deadline,
            )
            started = system.start_app(node, accel)
            system.mgmt.grant_send(f"tile{node}", self.SERVICE)
            engine.run_until_done(started, limit=10_000_000)
            client_accels.append(accel)

        injector = Injector(system, self._plan(rate, point_seed))
        injector.arm()

        hard_stop = load_until + self.client_deadline + 400_000
        while (not all(c.finished for c in client_accels)
               and engine.now < hard_stop):
            engine.run(until=engine.now + 50_000)
        if manager is not None:
            manager.stop()

        point = CampaignPoint(rate=rate, recovery=recovery)
        for accel in client_accels:
            point.requests += accel.total
            point.ok += accel.ok
            point.failed += accel.failed
            point.checksum_errors += accel.checksum_errors
        point.faults_applied = injector.applied
        point.faults_skipped = injector.skipped
        point.events = [f"{t}: {ev.kind.value} -> {outcome}"
                        for t, ev, outcome in injector.log]
        if manager is not None:
            point.recoveries = len(manager.recoveries)
            point.restarts = sum(1 for r in manager.recoveries
                                 if r.kind == "restart")
            point.failovers = sum(1 for r in manager.recoveries
                                  if r.kind == "failover")
            if manager.recoveries:
                point.mean_mttr = (sum(r.mttr for r in manager.recoveries)
                                   / len(manager.recoveries))
        return point

    # -- the sweep -----------------------------------------------------------

    def run(self) -> List[CampaignPoint]:
        self.points = []
        for rate in self.rates:
            for recovery in (False, True):
                self.points.append(self.run_point(rate, recovery))
        return self.points

    def report_text(self) -> str:
        rows = []
        for p in self.points:
            rows.append([
                f"{p.rate:g}",
                "on" if p.recovery else "off",
                p.requests,
                p.ok,
                p.failed,
                p.checksum_errors,
                f"{p.availability:.3f}",
                p.faults_applied,
                p.recoveries,
                f"{p.mean_mttr:.0f}" if p.recoveries else "-",
            ])
        return format_table(
            ["crash rate (/Mcyc)", "recovery", "requests", "ok", "failed",
             "bad sums", "availability", "faults", "recoveries",
             "mean MTTR (cyc)"],
            rows,
            title=f"chaos campaign (seed={self.seed}, "
                  f"{self.clients} clients, {self.width}x{self.height})",
        )

    def record(self, experiment_id: str = "R1") -> str:
        """Emit the campaign table through the experiment report registry."""
        text = self.report_text()
        report.record(experiment_id, "Fault-injection campaign: availability "
                                     "with and without recovery", text)
        return text
