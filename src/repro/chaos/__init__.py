"""Fault-injection campaigns against the simulated FPGA.

``injector`` plans and applies deterministic, seeded faults across every
hardware layer the repo models (NoC, DRAM, Ethernet, tiles); ``campaign``
sweeps fault rates against a checksum workload and reports availability
with and without the kernel's recovery subsystem.
"""

from repro.chaos.campaign import (
    Campaign,
    CampaignPoint,
    ChecksumService,
    SurvivalClient,
    checksum,
)
from repro.chaos.injector import (
    DEFAULT_FAULT_PARAMS,
    FaultEvent,
    FaultKind,
    FaultPlan,
    Injector,
)

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultPlan",
    "Injector",
    "DEFAULT_FAULT_PARAMS",
    "Campaign",
    "CampaignPoint",
    "ChecksumService",
    "SurvivalClient",
    "checksum",
]
