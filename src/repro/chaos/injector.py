"""Deterministic fault injection against the simulated hardware.

A :class:`FaultPlan` is generated ahead of time from a seed: a sorted list
of :class:`FaultEvent` entries saying *what* breaks, *where*, and *when*
(cycle offsets relative to arming).  An :class:`Injector` then arms the
plan against a live :class:`~repro.kernel.system.ApiarySystem` and applies
each event at its exact cycle.  Because the plan is materialized before the
run and every stochastic draw comes from named
:class:`~repro.sim.rng.RngPool` streams, two runs with the same seed inject
byte-identical fault sequences — the property the CI determinism check
enforces.

Fault surface (one kind per hardware layer the repo models):

======================  ======================================================
kind                    effect
======================  ======================================================
``TILE_CRASH``          spontaneous accelerator death via
                        :meth:`~repro.kernel.tile.Tile.inject_crash`; the
                        normal §4.4 containment (and recovery) machinery runs
``NOC_ROUTER_STALL``    one router's switch allocation freezes; backpressure
                        spreads through credit exhaustion
``NOC_DROP``            one NI silently discards injected packets for a
                        window (lossy tile-to-NoC interface)
``NOC_LINK_SLOW``       one directed link gains extra hop latency (marginal
                        SerDes lane)
``DRAM_BITFLIP``        a single-event upset at one physical address;
                        visible to readers until a write scrubs it
``DRAM_BANK_FAIL``      one bank rejects accesses with ``DramFault`` for a
                        window
``ETH_LOSS_BURST``      the datacenter fabric drops a fraction of frames for
                        a window
``ETH_CORRUPT_BURST``   frames are corrupted in flight; MACs count CRC drops
======================  ======================================================

``TILE_CRASH`` targets may be logical endpoint names; they are resolved via
the name table *at apply time*, so a crash campaign keeps chasing a service
across failovers — precisely the adversary a recovery subsystem must beat.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.sim import RngPool

__all__ = ["FaultKind", "FaultEvent", "FaultPlan", "Injector",
           "DEFAULT_FAULT_PARAMS"]


class FaultKind(enum.Enum):
    TILE_CRASH = "tile-crash"
    NOC_ROUTER_STALL = "noc-router-stall"
    NOC_DROP = "noc-drop"
    NOC_LINK_SLOW = "noc-link-slow"
    DRAM_BITFLIP = "dram-bitflip"
    DRAM_BANK_FAIL = "dram-bank-fail"
    ETH_LOSS_BURST = "eth-loss-burst"
    ETH_CORRUPT_BURST = "eth-corrupt-burst"


#: per-kind knobs merged under any caller overrides at plan time
DEFAULT_FAULT_PARAMS: Dict[FaultKind, Dict[str, Any]] = {
    FaultKind.TILE_CRASH: {},
    FaultKind.NOC_ROUTER_STALL: {"cycles": 20_000},
    FaultKind.NOC_DROP: {"cycles": 10_000},
    FaultKind.NOC_LINK_SLOW: {"extra_latency": 20, "cycles": 50_000},
    FaultKind.DRAM_BITFLIP: {},
    FaultKind.DRAM_BANK_FAIL: {"cycles": 50_000},
    FaultKind.ETH_LOSS_BURST: {"loss_rate": 0.5, "cycles": 50_000},
    FaultKind.ETH_CORRUPT_BURST: {"corrupt_rate": 0.5, "cycles": 50_000},
}


@dataclass(frozen=True)
class FaultEvent:
    """One planned fault: apply ``kind`` to ``target`` at ``time``.

    ``time`` is relative to :meth:`Injector.arm`.  ``params`` is a sorted
    tuple of key/value pairs (kept hashable so plans can be compared and
    deduplicated).
    """

    time: int
    kind: FaultKind
    target: Any
    params: Tuple[Tuple[str, Any], ...] = ()

    def param(self, key: str, default: Any = None) -> Any:
        return dict(self.params).get(key, default)

    def describe(self) -> str:
        args = " ".join(f"{k}={v}" for k, v in self.params)
        return f"t+{self.time}: {self.kind.value} -> {self.target!r}" + (
            f" [{args}]" if args else ""
        )


@dataclass
class FaultPlan:
    """A seeded, pre-materialized fault schedule."""

    seed: int
    duration: int
    events: List[FaultEvent] = field(default_factory=list)

    @classmethod
    def generate(
        cls,
        seed: int,
        duration: int,
        rates: Mapping[FaultKind, float],
        targets: Mapping[FaultKind, Sequence[Any]],
        params: Optional[Mapping[FaultKind, Mapping[str, Any]]] = None,
        window: Tuple[float, float] = (0.05, 0.75),
        min_events: Optional[Mapping[FaultKind, int]] = None,
    ) -> "FaultPlan":
        """Draw a plan from named rng streams.

        ``rates`` are expected events per **million cycles** of ``duration``
        (event counts are Poisson); ``targets`` lists the candidates each
        kind may hit; ``window`` confines event times to a fraction of the
        duration so late faults still have observable consequences;
        ``min_events`` forces at least N events of a kind whenever its rate
        is non-zero (so sparse sweeps still exercise the machinery).

        Streams are keyed per kind, so adding a kind to a sweep never
        perturbs the schedule of the others.
        """
        if duration < 1:
            raise ConfigError(f"plan duration must be >= 1, got {duration}")
        lo_f, hi_f = window
        if not 0.0 <= lo_f < hi_f <= 1.0:
            raise ConfigError(f"bad plan window {window}")
        pool = RngPool(seed=seed)
        events: List[FaultEvent] = []
        for kind in sorted(rates, key=lambda k: k.value):
            rate = rates[kind]
            floor = (min_events or {}).get(kind, 0)
            if rate <= 0.0:
                continue
            candidates = list(targets.get(kind, ()))
            if not candidates:
                raise ConfigError(f"no targets for {kind.value}")
            rng = pool.stream(f"chaos.{kind.value}")
            count = max(int(rng.poisson(rate * duration / 1_000_000)), floor)
            if count == 0:
                continue
            lo = int(duration * lo_f)
            hi = max(lo + 1, int(duration * hi_f))
            times = sorted(int(t) for t in rng.integers(lo, hi, size=count))
            merged = dict(DEFAULT_FAULT_PARAMS.get(kind, {}))
            merged.update((params or {}).get(kind, {}))
            frozen = tuple(sorted(merged.items()))
            for t in times:
                pick = candidates[int(rng.integers(0, len(candidates)))]
                events.append(FaultEvent(time=t, kind=kind, target=pick,
                                         params=frozen))
        events.sort(key=lambda e: (e.time, e.kind.value, repr(e.target)))
        return cls(seed=seed, duration=duration, events=events)

    def describe(self) -> str:
        lines = [f"fault plan seed={self.seed} duration={self.duration} "
                 f"events={len(self.events)}"]
        lines.extend(ev.describe() for ev in self.events)
        return "\n".join(lines)


class Injector:
    """Arms a :class:`FaultPlan` against a live system.

    The injector is a simulation process: it sleeps to each event's cycle
    and applies it through the target layer's public fault hook.  Every
    application (or skip, e.g. a crash aimed at an already-dead tile) is
    logged with its outcome for the campaign report.
    """

    def __init__(self, system, plan: FaultPlan):
        self.system = system
        self.plan = plan
        self.engine = system.engine
        self._rng = RngPool(seed=plan.seed).fork("injector")
        self.log: List[Tuple[int, FaultEvent, str]] = []
        self.applied = 0
        self.skipped = 0
        self._armed = False

    def arm(self) -> None:
        """Start applying the plan, with event times relative to now."""
        if self._armed:
            raise ConfigError("injector is already armed")
        self._armed = True
        self._t0 = self.engine.now
        self.engine.process(self._run(), name="chaos.injector")

    def _run(self):
        for ev in self.plan.events:
            delay = self._t0 + ev.time - self.engine.now
            if delay > 0:
                yield delay
            outcome = self._apply(ev)
            self.log.append((self.engine.now, ev, outcome))
            flight = getattr(self.system, "flight", None)
            if flight is not None:
                flight.record_event(self.engine.now, "chaos",
                                    ev.kind.value, outcome)
            if outcome == "applied":
                self.applied += 1
                self.system.stats.counter("chaos.faults_applied").inc()
            else:
                self.skipped += 1
                self.system.stats.counter("chaos.faults_skipped").inc()

    # -- per-kind application ------------------------------------------------

    def _apply(self, ev: FaultEvent) -> str:
        handler = {
            FaultKind.TILE_CRASH: self._tile_crash,
            FaultKind.NOC_ROUTER_STALL: self._router_stall,
            FaultKind.NOC_DROP: self._noc_drop,
            FaultKind.NOC_LINK_SLOW: self._link_slow,
            FaultKind.DRAM_BITFLIP: self._dram_bitflip,
            FaultKind.DRAM_BANK_FAIL: self._dram_bank_fail,
            FaultKind.ETH_LOSS_BURST: self._eth_loss,
            FaultKind.ETH_CORRUPT_BURST: self._eth_corrupt,
        }[ev.kind]
        return handler(ev)

    def _resolve_node(self, target: Any) -> Optional[int]:
        if isinstance(target, str):
            return self.system.namespace.get(target)
        return int(target)

    def _tile_crash(self, ev: FaultEvent) -> str:
        node = self._resolve_node(ev.target)
        if node is None:
            return "skipped: endpoint not bound"
        if self.system.tiles[node].inject_crash(f"chaos {ev.kind.value}"):
            return "applied"
        return "skipped: tile empty or already failed"

    def _router_stall(self, ev: FaultEvent) -> str:
        node = self._resolve_node(ev.target)
        if node is None:
            return "skipped: endpoint not bound"
        self.system.network.router(node).stall(ev.param("cycles", 20_000))
        return "applied"

    def _noc_drop(self, ev: FaultEvent) -> str:
        node = self._resolve_node(ev.target)
        if node is None:
            return "skipped: endpoint not bound"
        self.system.network.interface(node).drop_for(ev.param("cycles", 10_000))
        return "applied"

    def _link_slow(self, ev: FaultEvent) -> str:
        links = list(self.system.topo.links())
        src, port, _dst = links[int(ev.target) % len(links)]
        self.system.network.slow_link(
            src, port, ev.param("extra_latency", 20),
            ev.param("cycles", 50_000),
        )
        return "applied"

    def _dram_bitflip(self, ev: FaultEvent) -> str:
        dram = self.system.dram
        if dram is None:
            return "skipped: no DRAM"
        dram.flip_bit(int(ev.target) % dram.capacity_bytes)
        return "applied"

    def _dram_bank_fail(self, ev: FaultEvent) -> str:
        dram = self.system.dram
        if dram is None:
            return "skipped: no DRAM"
        flat = int(ev.target)
        channel = flat % len(dram.channels)
        bank = (flat // len(dram.channels)) % len(dram.channels[channel].banks)
        dram.fail_bank(channel, bank, ev.param("cycles", 50_000))
        return "applied"

    def _fabric(self):
        mac = getattr(self.system, "mac", None)
        return mac.fabric if mac is not None else None

    def _eth_loss(self, ev: FaultEvent) -> str:
        fabric = self._fabric()
        if fabric is None:
            return "skipped: no Ethernet attachment"
        previous = fabric.loss_rate
        fabric.set_loss(ev.param("loss_rate", 0.5),
                        rng=self._rng.stream("eth.loss"))
        self.engine.schedule(ev.param("cycles", 50_000),
                             lambda _: fabric.set_loss(previous))
        return "applied"

    def _eth_corrupt(self, ev: FaultEvent) -> str:
        fabric = self._fabric()
        if fabric is None:
            return "skipped: no Ethernet attachment"
        previous = fabric.corrupt_rate
        fabric.set_corruption(ev.param("corrupt_rate", 0.5),
                              rng=self._rng.stream("eth.corrupt"))
        self.engine.schedule(ev.param("cycles", 50_000),
                             lambda _: fabric.set_corruption(previous))
        return "applied"
