"""Hash-join accelerator — the data-processing-pipeline representative.

Section 1 names "data processing pipeline[s]" as the other target besides
microservices.  A build/probe hash join is the canonical FPGA-accelerated
relational operator: the build side stages a hash table in a DRAM segment,
the probe side streams rows against it.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.accel.base import Accelerator
from repro.hw.resources import ResourceVector

__all__ = ["HashJoinAccel", "JOIN_CYCLES_PER_ROW"]

JOIN_CYCLES_PER_ROW = 4
ROW_BYTES = 32


class HashJoinAccel(Accelerator):
    """Build/probe hash join over OS-managed memory.

    Ops:
    * ``join.build {rows}`` — hash ``rows`` build-side rows into a DRAM
      segment (allocated on first build, sized to the row count).
    * ``join.probe {rows, selectivity}`` — stream probe rows; replies with
      the match count; cost per row plus DRAM reads for bucket fetches.
    * ``join.reset {}`` — drop the build table.
    """

    COST = ResourceVector(logic_cells=70_000, bram_kb=1024, dsp_slices=32)
    PRIMITIVES = {"lut_logic": 56_000, "bram": 256, "dsp": 32}

    def __init__(self, name: str):
        super().__init__(name)
        self._seg = None
        self.build_rows = 0
        self.probe_rows = 0
        self.matches = 0

    def main(self, shell):
        while True:
            msg = yield shell.recv()
            body = msg.payload if isinstance(msg.payload, dict) else {}
            if msg.op == "join.build":
                yield from self._build(shell, msg, body)
            elif msg.op == "join.probe":
                yield from self._probe(shell, msg, body)
            elif msg.op == "join.reset":
                self.build_rows = 0
                yield shell.reply(msg, payload="reset")
            else:
                yield shell.reply(msg, payload=f"unknown op {msg.op!r}",
                                  error=True)

    def _build(self, shell, msg, body):
        rows = int(body.get("rows", 0))
        if rows < 1:
            yield shell.reply(msg, payload="build needs rows >= 1", error=True)
            return
        table_bytes = rows * ROW_BYTES * 2  # 50% fill factor
        if self._seg is None or self._seg.size < table_bytes:
            if self._seg is not None:
                yield shell.free(self._seg)
            self._seg = yield shell.alloc(table_bytes,
                                          label=f"{self.name}.hash")
        yield from self._work(rows * JOIN_CYCLES_PER_ROW)
        # write the table out in row-sized strides (DRAM time via svc.mem)
        chunk = 4096
        for offset in range(0, min(table_bytes, 8 * chunk), chunk):
            yield shell.mem_write(self._seg, offset, b"", chunk)
        self.build_rows = rows
        yield shell.reply(msg, payload={"built": rows}, payload_bytes=8)

    def _probe(self, shell, msg, body):
        if self.build_rows == 0:
            yield shell.reply(msg, payload="probe before build", error=True)
            return
        rows = int(body.get("rows", 0))
        selectivity = float(body.get("selectivity", 0.1))
        yield from self._work(rows * JOIN_CYCLES_PER_ROW)
        # bucket fetches: one 64B read per ~16 probe rows (cache-batched)
        for _ in range(min(8, max(1, rows // 16))):
            yield shell.mem_read(self._seg, 0, 64)
        found = int(rows * selectivity)
        self.probe_rows += rows
        self.matches += found
        yield shell.reply(msg, payload={"matches": found}, payload_bytes=8)
