"""Video encoding accelerator — the motivating workload of Section 2.

"Consider customizing a video encoding service to accelerate part of a
video processing pipeline.  Requests to the service are a chunk of video,
which the service processes and then sends to the next stage."

The model encodes chunks (cost proportional to frame count), keeps
per-stream encoder state between invocations (the paper's point that
microservices are stateful), and optionally forwards output to a
``downstream`` endpoint — which is how the encode→compress pipeline of the
composition experiment (D9) is assembled.

:class:`PreemptibleVideoEncoder` additionally externalizes its per-stream
contexts, enabling the preempt fault model (Section 4.4 / D6).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.accel.base import Accelerator
from repro.errors import ProtocolError, TileFault
from repro.hw.resources import ResourceVector

__all__ = ["VideoEncoder", "PreemptibleVideoEncoder", "ENCODE_CYCLES_PER_FRAME"]

#: Encoding cost per frame at the model's granularity: a hardware encoder
#: pipeline processes a frame in tens of microseconds; ~6000 fabric cycles.
ENCODE_CYCLES_PER_FRAME = 6000

#: Output bytes per input byte after encoding.
ENCODE_RATIO = 0.12


class VideoEncoder(Accelerator):
    """Encodes video chunks; stateful per stream; optionally pipelined.

    Request: op ``encode``, payload
    ``{"stream": id, "seq": n, "frames": f, "bytes": b}``.
    Reply: ``{"stream", "seq", "bytes": encoded_size}``.

    If ``downstream`` is set, the encoded chunk is also forwarded there as
    an ``encode.out`` request (and the reply to the client is sent after
    the downstream stage accepted it, keeping end-to-end backpressure).
    """

    COST = ResourceVector(logic_cells=120_000, bram_kb=1024, dsp_slices=400)
    PRIMITIVES = {"lut_logic": 90_000, "bram": 256, "dsp": 400}
    TOGGLE_RATE = 0.4

    def __init__(self, name: str, downstream: Optional[str] = None,
                 cycles_per_frame: int = ENCODE_CYCLES_PER_FRAME):
        super().__init__(name)
        self.downstream = downstream
        self.cycles_per_frame = cycles_per_frame
        #: per-stream encoder contexts: last seq + rate-control state
        self.streams: Dict[Any, Dict[str, Any]] = {}
        self.chunks_encoded = 0
        self.out_of_order = 0

    def main(self, shell):
        while True:
            msg = yield shell.recv()
            if msg.op != "encode":
                yield shell.reply(msg, payload=f"unknown op {msg.op!r}",
                                  error=True)
                continue
            yield from self._encode(shell, msg)

    def _encode(self, shell, msg):
        body = msg.payload
        if not isinstance(body, dict) or "frames" not in body:
            yield shell.reply(msg, payload="bad encode request", error=True)
            return
        stream = body.get("stream", 0)
        ctx = self.streams.setdefault(
            stream, {"last_seq": -1, "rate_state": 0.5, "chunks": 0}
        )
        seq = body.get("seq", ctx["last_seq"] + 1)
        if seq <= ctx["last_seq"]:
            self.out_of_order += 1
        ctx["last_seq"] = max(ctx["last_seq"], seq)
        ctx["chunks"] += 1
        # rate control adapts slowly toward the stream's complexity
        complexity = min(1.0, body["bytes"] / max(1, body["frames"]) / 100_000)
        ctx["rate_state"] = 0.9 * ctx["rate_state"] + 0.1 * complexity

        yield from self._work(body["frames"] * self.cycles_per_frame)
        out_bytes = max(64, int(body["bytes"] * ENCODE_RATIO
                                * (0.8 + 0.4 * ctx["rate_state"])))
        self.chunks_encoded += 1
        result = {"stream": stream, "seq": seq, "bytes": out_bytes}
        if self.downstream is not None:
            yield shell.call(self.downstream, "encode.out", payload=result,
                             payload_bytes=out_bytes)
        yield shell.reply(msg, payload=result, payload_bytes=32)


class PreemptibleVideoEncoder(VideoEncoder):
    """A video encoder built for the preemptible execution model.

    Declares :attr:`preemptible` and externalizes its per-stream contexts,
    so the fault manager can kill one stream's context without draining the
    tile (Section 4.4: "other independent processes on the accelerator can
    keep running").
    """

    preemptible = True
    # SYNERGY-style state externalization costs fabric: ~15% logic overhead
    COST = ResourceVector(logic_cells=138_000, bram_kb=1152, dsp_slices=400)

    def externalize_state(self) -> Dict[str, Any]:
        return {
            stream: dict(ctx) for stream, ctx in self.streams.items()
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.streams.update({k: dict(v) for k, v in state.items()})

    def main(self, shell):
        """Serve each stream in its own context process.

        A context killed by the fault manager is *respawned* when the next
        message for its stream arrives, restoring the externalized state
        the fault manager saved — the paper's preemption payoff: the tile
        never drains, and even the faulted stream recovers.
        """
        self._shell = shell
        self._stream_queues: Dict[Any, Any] = {}
        self._stream_procs: Dict[Any, Any] = {}
        while True:
            msg = yield shell.recv()
            if msg.op != "encode":
                yield shell.reply(msg, payload=f"unknown op {msg.op!r}",
                                  error=True)
                continue
            stream = msg.payload.get("stream", 0) if isinstance(msg.payload, dict) else 0
            queue = self._stream_queues.get(stream)
            if queue is None:
                from repro.sim import Channel

                queue = Channel(shell.engine, capacity=None,
                                name=f"{self.name}.s{stream}")
                self._stream_queues[stream] = queue
            proc = self._stream_procs.get(stream)
            if proc is None or not proc.alive:
                if proc is not None:
                    self._recover_stream_state(stream)
                self._spawn_context(shell, stream, queue)
            queue.try_put(msg)

    def _recover_stream_state(self, stream) -> None:
        """Restore the stream's context from the fault manager's save."""
        tile = getattr(self, "tile", None)
        if tile is None:
            return
        saved = tile.saved_contexts.pop(f"stream{stream}", None)
        if saved and stream in saved:
            self.streams[stream] = dict(saved[stream])

    def _spawn_context(self, shell, stream, queue):
        def context():
            while True:
                msg = yield queue.get()
                yield from self._encode(shell, msg)

        # contexts run inside the tile fault domain via Tile.spawn_context
        # (system-managed tiles) so the fault manager sees them; plain
        # shell.spawn is the standalone fallback.
        tile = getattr(self, "tile", None)
        if tile is not None:
            proc = tile.spawn_context(f"stream{stream}", context())
        else:
            proc = shell.spawn(f"stream{stream}", context())
        self._stream_procs[stream] = proc
        return proc
