"""Compression accelerator — the "third-party accelerator" of Section 2.

"Since compression is a common function, we might want to use a third-party
accelerator.  This accelerator would not be designed to participate in a
bespoke memory partitioning setup and would require memory isolation."

The model compresses byte streams at a fixed throughput (cycles per KB) and
optionally stages its dictionary in an OS-allocated segment — obtained via
the standard shell API, never via a bespoke partitioning arrangement, which
is exactly what makes it composable with anyone's pipeline (D9).
"""

from __future__ import annotations

from typing import Optional

from repro.accel.base import Accelerator
from repro.hw.resources import ResourceVector

__all__ = ["Compressor", "COMPRESS_CYCLES_PER_KB"]

#: Throughput model: a few GB/s of compression => ~60 cycles per KB.
COMPRESS_CYCLES_PER_KB = 60

#: Output bytes per input byte.
COMPRESS_RATIO = 0.62


class Compressor(Accelerator):
    """Compresses payloads; accepts both direct requests and pipeline input.

    Ops:
    * ``compress`` — request/response: ``{"bytes": n}`` -> ``{"bytes": m}``.
    * ``encode.out`` — pipeline input from an upstream encoder; compressed
      and forwarded to ``downstream`` if set, else just acknowledged.
    """

    COST = ResourceVector(logic_cells=60_000, bram_kb=512, dsp_slices=8)
    PRIMITIVES = {"lut_logic": 48_000, "bram": 128}

    def __init__(self, name: str, downstream: Optional[str] = None,
                 use_dram_dictionary: bool = False,
                 cycles_per_kb: int = COMPRESS_CYCLES_PER_KB):
        super().__init__(name)
        self.downstream = downstream
        self.use_dram_dictionary = use_dram_dictionary
        self.cycles_per_kb = cycles_per_kb
        self.dictionary_seg = None
        self.chunks_compressed = 0
        self.bytes_in = 0
        self.bytes_out = 0

    def main(self, shell):
        if self.use_dram_dictionary:
            # third-party module using OS memory like any other tenant
            self.dictionary_seg = yield shell.alloc(64 * 1024,
                                                    label=f"{self.name}.dict")
        while True:
            msg = yield shell.recv()
            if msg.op in ("compress", "encode.out"):
                yield from self._compress(shell, msg)
            else:
                yield shell.reply(msg, payload=f"unknown op {msg.op!r}",
                                  error=True)

    def _compress(self, shell, msg):
        body = msg.payload if isinstance(msg.payload, dict) else {}
        nbytes = int(body.get("bytes", msg.payload_bytes))
        if self.use_dram_dictionary and self.dictionary_seg is not None:
            # dictionary lookups touch DRAM: one small read per 4KB of input
            reads = max(1, nbytes // 4096)
            for _ in range(min(reads, 4)):  # cap modelled lookups per chunk
                yield shell.mem_read(self.dictionary_seg, 0, 256)
        yield from self._work(max(1, nbytes * self.cycles_per_kb // 1024))
        out_bytes = max(32, int(nbytes * COMPRESS_RATIO))
        self.chunks_compressed += 1
        self.bytes_in += nbytes
        self.bytes_out += out_bytes
        result = dict(body)
        result["bytes"] = out_bytes
        if self.downstream is not None:
            yield shell.call(self.downstream, "compress.out", payload=result,
                             payload_bytes=out_bytes)
        yield shell.reply(msg, payload=result, payload_bytes=32)
