"""Key-value store accelerator — the second tenant of Section 2.

"Another user might want to use the FPGA to host an independent key-value
store application" (after Caribou [23] and its multi-tenant extension
[24]).  The model serves GET/PUT/DELETE with hash + value-transfer costs,
keeps values in OS-allocated DRAM segments, and supports multiple client
contexts so the multi-tenancy tests have something real to isolate.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.accel.base import Accelerator
from repro.hw.resources import ResourceVector

__all__ = ["KvStore", "KV_HASH_CYCLES", "KV_CYCLES_PER_64B"]

#: Hash + bucket walk per operation.
KV_HASH_CYCLES = 12
#: Value movement cost per 64B line.
KV_CYCLES_PER_64B = 2


class KvStore(Accelerator):
    """A hash-table KV store with optional DRAM-backed values.

    Ops: ``get {key}``, ``put {key, bytes}``, ``delete {key}``,
    ``stats {}``.  Replies carry ``payload_bytes`` equal to the value size
    for GETs, so network/NoC serialization is modelled faithfully.

    With ``value_segments=True``, values above ``inline_bytes`` live in a
    DRAM segment allocated from ``svc.mem``; every access pays DRAM time.

    Writes are **at-most-once** when the client cooperates: a put/delete
    body carrying ``client``/``seq`` (the RPC layer's logical-request
    identity) is remembered in a bounded per-client dedup window, and a
    retransmission of the same logical write — the classic
    retried-after-timeout duplicate — replays the original reply instead
    of applying the write a second time.
    """

    COST = ResourceVector(logic_cells=80_000, bram_kb=2048, dsp_slices=0)
    PRIMITIVES = {"lut_logic": 64_000, "bram": 512, "fifo": 8}

    def __init__(self, name: str, value_segments: bool = False,
                 inline_bytes: int = 256, segment_bytes: int = 1 << 20,
                 dedup_window: int = 64):
        super().__init__(name)
        self.value_segments = value_segments
        self.inline_bytes = inline_bytes
        self.segment_bytes = segment_bytes
        self.dedup_window = dedup_window
        self._table: Dict[Any, Dict[str, Any]] = {}
        #: client -> {seq: reply payload} for recent acknowledged writes
        self._dedup: Dict[str, Dict[int, Dict[str, Any]]] = {}
        self._seg = None
        self._seg_cursor = 0
        self.gets = 0
        self.puts = 0
        self.deletes = 0
        self.misses = 0
        self.dupes_suppressed = 0

    def main(self, shell):
        if self.value_segments:
            self._seg = yield shell.alloc(self.segment_bytes,
                                          label=f"{self.name}.values")
        while True:
            msg = yield shell.recv()
            yield from self._serve(shell, msg)

    def _serve(self, shell, msg):
        body = msg.payload if isinstance(msg.payload, dict) else {}
        op = msg.op
        if op == "kv.get":
            yield from self._get(shell, msg, body)
        elif op == "kv.put":
            yield from self._put(shell, msg, body)
        elif op == "kv.delete":
            yield from self._delete(shell, msg, body)
        elif op == "kv.stats":
            yield shell.reply(msg, payload={
                "keys": len(self._table), "gets": self.gets,
                "puts": self.puts, "misses": self.misses,
                "dupes_suppressed": self.dupes_suppressed,
            }, payload_bytes=32)
        else:
            yield shell.reply(msg, payload=f"unknown op {op!r}", error=True)

    def _get(self, shell, msg, body):
        self.gets += 1
        yield from self._work(KV_HASH_CYCLES)
        entry = self._table.get(body.get("key"))
        if entry is None:
            self.misses += 1
            yield shell.reply(msg, payload={"found": False}, payload_bytes=8)
            return
        nbytes = entry["bytes"]
        yield from self._work(KV_CYCLES_PER_64B * (nbytes // 64 + 1))
        if entry.get("offset") is not None and self._seg is not None:
            yield shell.mem_read(self._seg, entry["offset"], nbytes)
        yield shell.reply(msg, payload={"found": True, "bytes": nbytes,
                                        "value": entry.get("value")},
                          payload_bytes=nbytes)

    def _dedup_hit(self, body) -> Optional[Dict[str, Any]]:
        client, seq = body.get("client"), int(body.get("seq") or 0)
        if not client or not seq:
            return None
        return self._dedup.get(client, {}).get(seq)

    def _dedup_store(self, body, payload: Dict[str, Any]) -> None:
        client, seq = body.get("client"), int(body.get("seq") or 0)
        if not client or not seq:
            return
        window = self._dedup.setdefault(client, {})
        window[seq] = dict(payload)
        if len(window) > self.dedup_window:
            for old in sorted(window)[:len(window) - self.dedup_window]:
                del window[old]

    def _put(self, shell, msg, body):
        cached = self._dedup_hit(body)
        if cached is not None:
            self.dupes_suppressed += 1
            yield shell.reply(msg, payload=dict(cached), payload_bytes=8)
            return
        self.puts += 1
        yield from self._work(KV_HASH_CYCLES)
        nbytes = int(body.get("bytes", 64))
        yield from self._work(KV_CYCLES_PER_64B * (nbytes // 64 + 1))
        entry = {"bytes": nbytes, "value": body.get("value"), "offset": None}
        if (self.value_segments and self._seg is not None
                and nbytes > self.inline_bytes):
            if self._seg_cursor + nbytes > self._seg.size:
                self._seg_cursor = 0  # simple wrap (log-structured style)
            entry["offset"] = self._seg_cursor
            yield shell.mem_write(self._seg, self._seg_cursor,
                                  body.get("value"), nbytes)
            self._seg_cursor += nbytes
        self._table[body.get("key")] = entry
        payload = {"stored": True}
        self._dedup_store(body, payload)
        yield shell.reply(msg, payload=payload, payload_bytes=8)

    def _delete(self, shell, msg, body):
        cached = self._dedup_hit(body)
        if cached is not None:
            self.dupes_suppressed += 1
            yield shell.reply(msg, payload=dict(cached), payload_bytes=8)
            return
        self.deletes += 1
        yield from self._work(KV_HASH_CYCLES)
        existed = self._table.pop(body.get("key"), None) is not None
        payload = {"deleted": existed}
        self._dedup_store(body, payload)
        yield shell.reply(msg, payload=payload, payload_bytes=8)
