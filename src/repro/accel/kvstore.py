"""Key-value store accelerator — the second tenant of Section 2.

"Another user might want to use the FPGA to host an independent key-value
store application" (after Caribou [23] and its multi-tenant extension
[24]).  The model serves GET/PUT/DELETE with hash + value-transfer costs,
keeps values in OS-allocated DRAM segments, and supports multiple client
contexts so the multi-tenancy tests have something real to isolate.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.accel.base import Accelerator
from repro.hw.resources import ResourceVector

__all__ = ["KvStore", "KV_HASH_CYCLES", "KV_CYCLES_PER_64B"]

#: Hash + bucket walk per operation.
KV_HASH_CYCLES = 12
#: Value movement cost per 64B line.
KV_CYCLES_PER_64B = 2


class KvStore(Accelerator):
    """A hash-table KV store with optional DRAM-backed values.

    Ops: ``get {key}``, ``put {key, bytes}``, ``delete {key}``,
    ``stats {}``.  Replies carry ``payload_bytes`` equal to the value size
    for GETs, so network/NoC serialization is modelled faithfully.

    With ``value_segments=True``, values above ``inline_bytes`` live in a
    DRAM segment allocated from ``svc.mem``; every access pays DRAM time.
    """

    COST = ResourceVector(logic_cells=80_000, bram_kb=2048, dsp_slices=0)
    PRIMITIVES = {"lut_logic": 64_000, "bram": 512, "fifo": 8}

    def __init__(self, name: str, value_segments: bool = False,
                 inline_bytes: int = 256, segment_bytes: int = 1 << 20):
        super().__init__(name)
        self.value_segments = value_segments
        self.inline_bytes = inline_bytes
        self.segment_bytes = segment_bytes
        self._table: Dict[Any, Dict[str, Any]] = {}
        self._seg = None
        self._seg_cursor = 0
        self.gets = 0
        self.puts = 0
        self.deletes = 0
        self.misses = 0

    def main(self, shell):
        if self.value_segments:
            self._seg = yield shell.alloc(self.segment_bytes,
                                          label=f"{self.name}.values")
        while True:
            msg = yield shell.recv()
            yield from self._serve(shell, msg)

    def _serve(self, shell, msg):
        body = msg.payload if isinstance(msg.payload, dict) else {}
        op = msg.op
        if op == "kv.get":
            yield from self._get(shell, msg, body)
        elif op == "kv.put":
            yield from self._put(shell, msg, body)
        elif op == "kv.delete":
            yield from self._delete(shell, msg, body)
        elif op == "kv.stats":
            yield shell.reply(msg, payload={
                "keys": len(self._table), "gets": self.gets,
                "puts": self.puts, "misses": self.misses,
            }, payload_bytes=32)
        else:
            yield shell.reply(msg, payload=f"unknown op {op!r}", error=True)

    def _get(self, shell, msg, body):
        self.gets += 1
        yield from self._work(KV_HASH_CYCLES)
        entry = self._table.get(body.get("key"))
        if entry is None:
            self.misses += 1
            yield shell.reply(msg, payload={"found": False}, payload_bytes=8)
            return
        nbytes = entry["bytes"]
        yield from self._work(KV_CYCLES_PER_64B * (nbytes // 64 + 1))
        if entry.get("offset") is not None and self._seg is not None:
            yield shell.mem_read(self._seg, entry["offset"], nbytes)
        yield shell.reply(msg, payload={"found": True, "bytes": nbytes,
                                        "value": entry.get("value")},
                          payload_bytes=nbytes)

    def _put(self, shell, msg, body):
        self.puts += 1
        yield from self._work(KV_HASH_CYCLES)
        nbytes = int(body.get("bytes", 64))
        yield from self._work(KV_CYCLES_PER_64B * (nbytes // 64 + 1))
        entry = {"bytes": nbytes, "value": body.get("value"), "offset": None}
        if (self.value_segments and self._seg is not None
                and nbytes > self.inline_bytes):
            if self._seg_cursor + nbytes > self._seg.size:
                self._seg_cursor = 0  # simple wrap (log-structured style)
            entry["offset"] = self._seg_cursor
            yield shell.mem_write(self._seg, self._seg_cursor,
                                  body.get("value"), nbytes)
            self._seg_cursor += nbytes
        self._table[body.get("key")] = entry
        yield shell.reply(msg, payload={"stored": True}, payload_bytes=8)

    def _delete(self, shell, msg, body):
        self.deletes += 1
        yield from self._work(KV_HASH_CYCLES)
        existed = self._table.pop(body.get("key"), None) is not None
        yield shell.reply(msg, payload={"deleted": existed}, payload_bytes=8)
