"""Accelerator model library.

Behavioural accelerator models programmed against the Apiary shell: the
Section 2 workloads (video encoder, third-party compressor, KV store), a
crypto stage and a hash join for pipelines, measurement probes (echo,
sink), and the misbehaving accelerators the isolation experiments need.
"""

from repro.accel.base import Accelerator
from repro.accel.compress import COMPRESS_CYCLES_PER_KB, Compressor
from repro.accel.crypto import CRYPTO_CYCLES_PER_BLOCK, CryptoAccel
from repro.accel.echo import EchoAccel, SinkAccel
from repro.accel.faulty import (
    CrashingAccel,
    FloodingAccel,
    SnoopingAccel,
    WildWriterAccel,
)
from repro.accel.hashjoin import JOIN_CYCLES_PER_ROW, HashJoinAccel
from repro.accel.kvstore import KV_HASH_CYCLES, KvStore
from repro.accel.video import (
    ENCODE_CYCLES_PER_FRAME,
    PreemptibleVideoEncoder,
    VideoEncoder,
)

__all__ = [
    "Accelerator",
    "EchoAccel",
    "SinkAccel",
    "VideoEncoder",
    "PreemptibleVideoEncoder",
    "ENCODE_CYCLES_PER_FRAME",
    "Compressor",
    "COMPRESS_CYCLES_PER_KB",
    "KvStore",
    "KV_HASH_CYCLES",
    "CryptoAccel",
    "CRYPTO_CYCLES_PER_BLOCK",
    "HashJoinAccel",
    "JOIN_CYCLES_PER_ROW",
    "FloodingAccel",
    "SnoopingAccel",
    "CrashingAccel",
    "WildWriterAccel",
]
