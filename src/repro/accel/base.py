"""Accelerator model base class.

An accelerator in this reproduction is *behavioural*: a Python object whose
``main(shell)`` generator runs as a simulation process on a tile, consuming
cycles the way the real RTL would (per-item compute costs), holding state
between invocations (the paper's stateful-microservice point), and speaking
only through the :class:`~repro.kernel.shell.Shell`.

Fault-model hooks (Section 4.4):

* ``preemptible`` — if True, the accelerator externalizes per-context state
  (``externalize_state``/``restore_state``) and a fault in one context
  leaves other contexts running; if False the tile is fail-stop.
* fault injection — tests arm ``inject_fault_after`` to make the model
  raise :class:`~repro.errors.TileFault` mid-computation.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.errors import TileFault
from repro.hw.bitstream import Bitstream
from repro.hw.resources import ResourceVector

__all__ = ["Accelerator"]


class Accelerator:
    """Base class for every accelerator and OS service model.

    Subclasses override :meth:`main` and declare their fabric footprint via
    class attributes (used for resource budgeting and reconfiguration time).
    """

    #: resource footprint of the bitstream
    COST = ResourceVector(logic_cells=50_000, bram_kb=256, dsp_slices=16)
    #: primitive histogram declared to the DRC
    PRIMITIVES: Dict[str, int] = {"lut_logic": 40_000, "bram": 64}
    #: declared worst-case switching activity
    TOGGLE_RATE = 0.25
    #: design-family identity for bitstream content-addressing; ``None``
    #: means "this class" — every instance of one accelerator class is
    #: the same synthesized design, so replicas share a compiled artifact
    FAMILY: Optional[str] = None
    #: whether per-context state can be externalized (Section 4.4)
    preemptible = False

    def __init__(self, name: str):
        self.name = name
        self.shell = None  # set by the tile at start
        self.tile = None   # set by the tile at start
        self.inject_fault_after: Optional[int] = None
        self._work_items = 0
        self.busy_cycles = 0  # accumulated compute time (energy accounting)

    # -- identity / packaging ---------------------------------------------------

    @classmethod
    def design_family(cls) -> str:
        """The content-addressing identity shared by all instances."""
        return cls.FAMILY if cls.FAMILY is not None else cls.__name__

    def bitstream(self, signed_by: Optional[str] = None) -> Bitstream:
        return Bitstream.build(
            name=self.name,
            cost=self.COST,
            primitives=dict(self.PRIMITIVES),
            max_toggle_rate=self.TOGGLE_RATE,
            signed_by=signed_by,
            family=self.design_family(),
        )

    @classmethod
    def family_bitstream(cls, signed_by: Optional[str] = None) -> Bitstream:
        """The canonical bitstream of this design family (no instance).

        What the cache/prefetch layer hands the compile pipeline when it
        wants the *design* warm before any particular replica exists —
        it digests identically to every instance's :meth:`bitstream`.
        """
        return Bitstream.build(
            name=cls.design_family(),
            cost=cls.COST,
            primitives=dict(cls.PRIMITIVES),
            max_toggle_rate=cls.TOGGLE_RATE,
            signed_by=signed_by,
            family=cls.design_family(),
        )

    # -- execution ----------------------------------------------------------------

    def main(self, shell):
        """The accelerator's top-level process.  Override.

        Must be a generator (yield sim commands).  The default is an idle
        loop so bare tiles are valid.
        """
        while True:
            yield 1_000_000

    def _work(self, cost: int):
        """Charge ``cost`` cycles of compute, honouring fault injection.

        Subclasses call ``yield from self._work(n)`` for their busy loops so
        fault-injection tests work uniformly across accelerator types.
        """
        self._work_items += 1
        if (
            self.inject_fault_after is not None
            and self._work_items > self.inject_fault_after
        ):
            self.inject_fault_after = None
            raise TileFault(f"{self.name}: injected fault")
        self.busy_cycles += cost
        yield cost

    # -- preemption hooks (Section 4.4) ----------------------------------------------

    def externalize_state(self) -> Dict[str, Any]:
        """Architectural state to save when this accelerator is preempted.

        Only meaningful when :attr:`preemptible` is True.  The default
        captures nothing (a stateless accelerator).
        """
        return {}

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Restore previously externalized state."""

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name!r}>"
