"""Misbehaving accelerators — the adversaries the isolation story is for.

Section 2: "This could occur due to misbehavior from a bug or maliciously,
if the KV-store is attempting to interfere or snoop on the computation of
the encoder."  Each class here is one concrete misbehaviour; the isolation
tests and D5/D6 experiments run them against victims and check the blast
radius.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.accel.base import Accelerator
from repro.errors import AccessDenied, CapabilityError, SegmentFault, ServiceError, ServiceUnavailable, TileFault
from repro.hw.resources import ResourceVector
from repro.kernel.message import MemAccess, Message, MessageKind

__all__ = ["FloodingAccel", "SnoopingAccel", "CrashingAccel", "WildWriterAccel"]


class FloodingAccel(Accelerator):
    """Floods a victim endpoint with back-to-back events (resource
    exhaustion).  The D5 experiment shows the monitor's token bucket
    bounding its damage."""

    COST = ResourceVector(logic_cells=5_000, bram_kb=8, dsp_slices=0)
    PRIMITIVES = {"lut_logic": 4_000}
    TOGGLE_RATE = 0.5

    def __init__(self, name: str, victim: str, message_bytes: int = 256,
                 count: Optional[int] = None):
        super().__init__(name)
        self.victim = victim
        self.message_bytes = message_bytes
        self.count = count
        self.sent = 0
        self.denied = 0

    def main(self, shell):
        while self.count is None or self.sent < self.count:
            try:
                yield shell.notify(self.victim, "flood", payload=self.sent,
                                   payload_bytes=self.message_bytes)
                self.sent += 1
            except (AccessDenied, ServiceUnavailable, TileFault):
                self.denied += 1
                yield 100  # back off a little and try again


class SnoopingAccel(Accelerator):
    """Tries to reach endpoints and memory it was never authorized for.

    Logs every outcome; a correct Apiary build shows denials only.
    """

    COST = ResourceVector(logic_cells=5_000, bram_kb=8, dsp_slices=0)
    PRIMITIVES = {"lut_logic": 4_000}

    def __init__(self, name: str, target_endpoint: str,
                 stolen_cap: Any = None):
        super().__init__(name)
        self.target_endpoint = target_endpoint
        self.stolen_cap = stolen_cap  # a CapabilityRef leaked from a victim
        self.outcomes = []

    def main(self, shell):
        # 1. message an endpoint without a SEND capability
        try:
            yield shell.call(self.target_endpoint, "kv.get",
                             payload={"key": "secret"}, timeout=50_000)
            self.outcomes.append(("send-unauthorized", "SUCCEEDED"))
        except (AccessDenied, ServiceError, ServiceUnavailable) as err:
            self.outcomes.append(("send-unauthorized", type(err).__name__))
        # 2. replay a capability reference leaked from another tile
        if self.stolen_cap is not None:
            try:
                yield shell.call(shell.mem_service, "mem.read",
                                 payload=MemAccess(offset=0, nbytes=64),
                                 cap=self.stolen_cap, timeout=50_000)
                self.outcomes.append(("stolen-cap", "SUCCEEDED"))
            except (AccessDenied, ServiceError, ServiceUnavailable) as err:
                self.outcomes.append(("stolen-cap", type(err).__name__))
        # 3. behave: allocate own memory and stay inside it
        seg = yield shell.alloc(4096)
        try:
            yield shell.mem_read(seg, 0, 64)
            self.outcomes.append(("own-memory", "ok"))
        except Exception as err:  # pragma: no cover - should not happen
            self.outcomes.append(("own-memory", type(err).__name__))
        # 4. overrun own segment bounds
        try:
            yield shell.mem_read(seg, 4090, 64)
            self.outcomes.append(("overrun", "SUCCEEDED"))
        except (SegmentFault, ServiceError) as err:
            self.outcomes.append(("overrun", type(err).__name__))


class CrashingAccel(Accelerator):
    """Serves requests normally, then hits a hardware fault mid-request.

    The workhorse of the fault-containment experiment (D6): wraps a normal
    request loop with fault injection after ``crash_after`` items.
    """

    COST = ResourceVector(logic_cells=10_000, bram_kb=32, dsp_slices=0)
    PRIMITIVES = {"lut_logic": 8_000}

    def __init__(self, name: str, crash_after: int = 10,
                 service_cycles: int = 50):
        super().__init__(name)
        self.service_cycles = service_cycles
        self.inject_fault_after = crash_after
        self.served = 0

    def main(self, shell):
        while True:
            msg = yield shell.recv()
            yield from self._work(self.service_cycles)
            self.served += 1
            yield shell.reply(msg, payload="ok")


class WildWriterAccel(Accelerator):
    """Allocates a segment, then probes addresses outside it.

    Models the Section 2 DRAM-sharing problem: without isolation these
    writes land in a neighbour's buffer; with segments+caps every probe
    faults at the monitor.
    """

    COST = ResourceVector(logic_cells=5_000, bram_kb=8, dsp_slices=0)
    PRIMITIVES = {"lut_logic": 4_000}

    def __init__(self, name: str, probes: int = 8):
        super().__init__(name)
        self.probes = probes
        self.faults = 0
        self.landed = 0

    def main(self, shell):
        seg = yield shell.alloc(4096)
        for i in range(self.probes):
            offset = seg.size + i * 4096  # always out of bounds
            try:
                yield shell.mem_write(seg, offset, b"junk", 64)
                self.landed += 1
            except (SegmentFault, ServiceError):
                self.faults += 1
