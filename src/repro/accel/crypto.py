"""Block-cipher accelerator — a generic composable stage.

Encryption is the other classic "common function" used when composing
pipelines (compress-then-encrypt before shipping to storage).  The model
charges per-16B-block cost and keeps per-session key schedules as state.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.accel.base import Accelerator
from repro.hw.resources import ResourceVector

__all__ = ["CryptoAccel", "CRYPTO_CYCLES_PER_BLOCK"]

#: One AES-128 round-pipelined block per cycle at steady state; count setup.
CRYPTO_CYCLES_PER_BLOCK = 1
KEY_SCHEDULE_CYCLES = 44


class CryptoAccel(Accelerator):
    """Encrypts/decrypts payloads per session.

    Ops:
    * ``crypto.open {session}`` — derive a key schedule (setup cost).
    * ``crypto.encrypt {session, bytes}`` / ``crypto.decrypt`` — per-block
      cost; unknown sessions are rejected (state is real here).
    * ``compress.out`` — pipeline input: encrypt with the default session
      and forward to ``downstream`` if configured.
    """

    COST = ResourceVector(logic_cells=40_000, bram_kb=64, dsp_slices=0)
    PRIMITIVES = {"lut_logic": 34_000, "bram": 16}
    TOGGLE_RATE = 0.35

    def __init__(self, name: str, downstream: Optional[str] = None):
        super().__init__(name)
        self.downstream = downstream
        self._sessions: Dict[Any, Dict[str, Any]] = {}
        self.blocks_processed = 0

    def main(self, shell):
        self._sessions["default"] = {"ops": 0}
        while True:
            msg = yield shell.recv()
            body = msg.payload if isinstance(msg.payload, dict) else {}
            if msg.op == "crypto.open":
                yield from self._work(KEY_SCHEDULE_CYCLES)
                self._sessions[body.get("session")] = {"ops": 0}
                yield shell.reply(msg, payload={"opened": True})
            elif msg.op in ("crypto.encrypt", "crypto.decrypt"):
                session = body.get("session", "default")
                if session not in self._sessions:
                    yield shell.reply(msg, payload=f"no session {session!r}",
                                      error=True)
                    continue
                yield from self._process(shell, msg, body, session)
            elif msg.op == "compress.out":
                yield from self._process(shell, msg, body, "default")
            else:
                yield shell.reply(msg, payload=f"unknown op {msg.op!r}",
                                  error=True)

    def _process(self, shell, msg, body, session):
        nbytes = int(body.get("bytes", msg.payload_bytes))
        blocks = max(1, (nbytes + 15) // 16)
        yield from self._work(blocks * CRYPTO_CYCLES_PER_BLOCK)
        self.blocks_processed += blocks
        self._sessions[session]["ops"] += 1
        result = dict(body)
        result["bytes"] = nbytes  # ciphertext size == plaintext (block mode)
        if self.downstream is not None:
            yield shell.call(self.downstream, "crypto.out", payload=result,
                             payload_bytes=nbytes)
        yield shell.reply(msg, payload=result, payload_bytes=32)
