"""Echo and sink accelerators — measurement probes for tests/benchmarks.

``EchoAccel`` answers every request after a fixed compute cost; it is the
standard peer for latency measurements (the A2 interposition bench).
``SinkAccel`` consumes events and counts them; it is the flood victim in
the rate-limiting experiment (D5).
"""

from __future__ import annotations

from repro.accel.base import Accelerator
from repro.hw.resources import ResourceVector

__all__ = ["EchoAccel", "SinkAccel"]


class EchoAccel(Accelerator):
    """Replies to any request with the same payload after ``cost`` cycles."""

    COST = ResourceVector(logic_cells=8_000, bram_kb=32, dsp_slices=0)
    PRIMITIVES = {"lut_logic": 6_000, "fifo": 2}

    def __init__(self, name: str, cost: int = 10):
        super().__init__(name)
        self.cost = cost
        self.served = 0

    def main(self, shell):
        while True:
            msg = yield shell.recv()
            yield from self._work(self.cost)
            self.served += 1
            yield shell.reply(msg, payload=msg.payload,
                              payload_bytes=msg.payload_bytes)


class SinkAccel(Accelerator):
    """Consumes incoming messages at a bounded service rate.

    ``service_cycles`` models the per-item work; when flooded faster than
    it can serve, its inbox backlog grows and (with bounded NoC queues)
    backpressure propagates — exactly the resource-exhaustion vector
    Section 4.5's rate limiting defends against.
    """

    COST = ResourceVector(logic_cells=6_000, bram_kb=16, dsp_slices=0)
    PRIMITIVES = {"lut_logic": 5_000, "fifo": 1}

    def __init__(self, name: str, service_cycles: int = 20):
        super().__init__(name)
        self.service_cycles = service_cycles
        self.consumed = 0
        self.consumed_by_src = {}

    def main(self, shell):
        while True:
            msg = yield shell.recv()
            yield from self._work(self.service_cycles)
            self.consumed += 1
            self.consumed_by_src[msg.src] = self.consumed_by_src.get(msg.src, 0) + 1
            if msg.kind.value == "request":
                yield shell.reply(msg, payload="ok")
