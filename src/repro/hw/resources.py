"""FPGA resource accounting.

Section 6, open question 1: *"It is important for scalability that this
monitor's resource utilization remain low since the amount of FPGA logic
resources devoted to Apiary grows with the number of tiles."*

This module is the ledger that question is answered against: every Apiary
component (router, monitor, service, accelerator slot) declares a
:class:`ResourceVector` cost, and a :class:`ResourceBudget` for a given part
tracks allocation and computes the OS overhead share reported in D4.

Cost models are parameterised, not hard numbers: e.g. the monitor's logic
cost grows with its capability-table size, matching how CAM/BRAM-backed
tables scale in real RTL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError, ResourceExhausted
from repro.hw.device import FpgaPart

__all__ = [
    "ResourceVector",
    "ResourceBudget",
    "router_cost",
    "monitor_cost",
    "noc_overhead",
]


@dataclass(frozen=True)
class ResourceVector:
    """A bundle of FPGA resources: logic cells, BRAM (KB), DSP slices."""

    logic_cells: int = 0
    bram_kb: int = 0
    dsp_slices: int = 0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.logic_cells + other.logic_cells,
            self.bram_kb + other.bram_kb,
            self.dsp_slices + other.dsp_slices,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.logic_cells - other.logic_cells,
            self.bram_kb - other.bram_kb,
            self.dsp_slices - other.dsp_slices,
        )

    def scale(self, factor: int) -> "ResourceVector":
        return ResourceVector(
            self.logic_cells * factor,
            self.bram_kb * factor,
            self.dsp_slices * factor,
        )

    def fits_in(self, other: "ResourceVector") -> bool:
        return (
            self.logic_cells <= other.logic_cells
            and self.bram_kb <= other.bram_kb
            and self.dsp_slices <= other.dsp_slices
        )

    @property
    def nonnegative(self) -> bool:
        return self.logic_cells >= 0 and self.bram_kb >= 0 and self.dsp_slices >= 0


class ResourceBudget:
    """Tracks resource allocation against one FPGA part."""

    def __init__(self, part: FpgaPart):
        self.part = part
        self.total = ResourceVector(part.logic_cells, part.bram_kb, part.dsp_slices)
        self._allocated: Dict[str, ResourceVector] = {}

    @property
    def used(self) -> ResourceVector:
        used = ResourceVector()
        for vec in self._allocated.values():
            used = used + vec
        return used

    @property
    def free(self) -> ResourceVector:
        return self.total - self.used

    def allocate(self, owner: str, cost: ResourceVector) -> None:
        """Reserve ``cost`` for ``owner``; raises when the part is too small."""
        if owner in self._allocated:
            raise ConfigError(f"owner {owner!r} already holds an allocation")
        if not cost.nonnegative:
            raise ConfigError(f"negative resource request from {owner!r}")
        if not cost.fits_in(self.free):
            raise ResourceExhausted(
                f"{owner!r} needs {cost} but only {self.free} free on "
                f"{self.part.name}"
            )
        self._allocated[owner] = cost

    def release(self, owner: str) -> ResourceVector:
        if owner not in self._allocated:
            raise ConfigError(f"owner {owner!r} holds no allocation")
        return self._allocated.pop(owner)

    def allocation(self, owner: str) -> Optional[ResourceVector]:
        return self._allocated.get(owner)

    def owners(self) -> List[str]:
        return sorted(self._allocated)

    def share_of_device(self, owners_prefix: str) -> float:
        """Fraction of the part's logic cells held by owners whose name
        starts with ``owners_prefix`` (e.g. ``"apiary."`` for OS overhead)."""
        held = sum(
            vec.logic_cells
            for name, vec in self._allocated.items()
            if name.startswith(owners_prefix)
        )
        return held / self.total.logic_cells


# -- cost models ---------------------------------------------------------------
#
# Grounded in published FPGA NoC / shell numbers: a 5-port VC wormhole router
# in soft logic costs on the order of 1-2k LUTs (≈2-4k logic cells); shell
# logic for per-accelerator management in Coyote-class systems runs a few
# thousand LUTs.  The *absolute* numbers matter less than how they scale
# with configuration, which is what D4 sweeps.

ROUTER_BASE_CELLS = 1_800
ROUTER_CELLS_PER_VC_BUFFER = 160  # per (port, VC) buffer slot group
MONITOR_BASE_CELLS = 2_400
MONITOR_CELLS_PER_CAP = 12       # capability-table entry (CAM-ish)
MONITOR_CELLS_PER_SERVICE = 40   # service name-table entry
MONITOR_RATELIMIT_CELLS = 350    # token-bucket datapath
MONITOR_BRAM_KB_PER_64_CAPS = 4


def router_cost(num_ports: int = 5, num_vcs: int = 2, buffer_depth: int = 4,
                hardened: bool = False) -> ResourceVector:
    """Soft-logic cost of one NoC router; ~zero when the NoC is hardened.

    Hardened NoCs (Versal, Agilex-M) burn dedicated silicon, not fabric —
    the advantage the paper cites for building Apiary on a NoC.
    """
    if hardened:
        return ResourceVector(logic_cells=120)  # just the fabric-side adapters
    cells = ROUTER_BASE_CELLS + (
        ROUTER_CELLS_PER_VC_BUFFER * num_ports * num_vcs * buffer_depth // 4
    )
    return ResourceVector(logic_cells=cells)


def monitor_cost(cap_table_size: int = 64, service_table_size: int = 16,
                 rate_limited: bool = True) -> ResourceVector:
    """Logic + BRAM cost of one per-tile Apiary monitor.

    Grows linearly in the capability-table size — the knob the D4 sweep
    turns to answer "what is the overhead of the per-tile monitor?".
    """
    if cap_table_size < 1 or service_table_size < 1:
        raise ConfigError("monitor tables need at least one entry")
    cells = (
        MONITOR_BASE_CELLS
        + MONITOR_CELLS_PER_CAP * cap_table_size
        + MONITOR_CELLS_PER_SERVICE * service_table_size
        + (MONITOR_RATELIMIT_CELLS if rate_limited else 0)
    )
    bram = MONITOR_BRAM_KB_PER_64_CAPS * ((cap_table_size + 63) // 64)
    return ResourceVector(logic_cells=cells, bram_kb=bram)


def noc_overhead(
    part: FpgaPart,
    tiles: int,
    num_vcs: int = 2,
    buffer_depth: int = 4,
    cap_table_size: int = 64,
) -> Dict[str, float]:
    """The D4 headline: Apiary's share of a part as tile count grows.

    Returns the per-tile costs and the fraction of the device's logic cells
    Apiary's static framework (routers + monitors) consumes.
    """
    r = router_cost(num_vcs=num_vcs, buffer_depth=buffer_depth,
                    hardened=part.hardened_noc)
    m = monitor_cost(cap_table_size=cap_table_size)
    total_cells = tiles * (r.logic_cells + m.logic_cells)
    return {
        "router_cells": float(r.logic_cells),
        "monitor_cells": float(m.logic_cells),
        "tiles": float(tiles),
        "total_overhead_cells": float(total_cells),
        "device_cells": float(part.logic_cells),
        "overhead_fraction": total_cells / part.logic_cells,
        "cells_per_tile_slot": (part.logic_cells - total_cells) / tiles,
    }
