"""Bitstream compilation: logical designs -> content-addressed artifacts.

The reconfiguration tax S2 measures has two very different parts.  The
partial-reconfiguration *write* (~hundreds of kilocycles, ICAP-bound,
:func:`~repro.hw.region.reconfig_duration`) is physics — every load pays
it.  *Synthesis* — place-and-route of the design into a region-shaped
partial bitstream — is minutes of CPU on real tools, megacycles here, and
is pure waste when the same design is rebuilt for every replica.  SYNERGY
kills that waste by virtualizing bitstreams; FOS by pre-building
shell-compatible modules.  This module is our equivalent:

* :func:`artifact_digest` content-addresses a design: the digest covers
  the design family, resource cost (which doubles as the region-shape
  envelope the artifact was floorplanned for), primitive histogram,
  toggle declaration, and signer — *not* the per-instance name, so every
  replica of one service class maps to one artifact;
* :class:`BitstreamArtifact` is the immutable compiled output, carrying
  the digest, the canonical bitstream, and the fact that design rules
  were screened at build time (``drc_clean`` — loads of the artifact skip
  the per-load DRC re-check);
* :class:`CompileService` is one deterministic synthesis worker: a FIFO
  queue, realistic per-design cost, in-flight deduplication by digest
  (ten replicas requested mid-build coalesce onto one run), and the DRC
  screen applied exactly once per artifact — "bitstream analysis after
  the build process" (Section 3.1), where vendors actually run it.

Everything is driven by the simulation engine and seeded state only, so
identically-seeded runs compile identically — the per-board caches built
on top (:mod:`repro.cluster.bitcache`) inherit that determinism, which is
what lets the PDES backends fork a compile pipeline per partition and
still merge byte-identical stats.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.hw.bitstream import Bitstream, DesignRuleChecker

__all__ = [
    "SYNTH_CYCLES_PER_CELL",
    "SYNTH_CYCLES_PER_BRAM_KB",
    "SYNTH_CYCLES_PER_DSP",
    "synthesis_duration",
    "artifact_digest",
    "BitstreamArtifact",
    "CompileService",
]

#: Synthesis cost in fabric cycles per logic cell.  Place-and-route of a
#: 60k-cell service shell is minutes of CPU time; against a 250 MHz
#: fabric clock even a deliberately conservative 64 cycles/cell puts one
#: compile (~4M cycles) at ~5x the partial-reconfiguration write — the
#: gap the artifact cache exists to close.
SYNTH_CYCLES_PER_CELL = 64

#: BRAM placement/init generation is cheaper per bit than logic routing.
SYNTH_CYCLES_PER_BRAM_KB = 512

#: DSP slices route through dedicated columns; modest per-slice cost.
SYNTH_CYCLES_PER_DSP = 1_024


def synthesis_duration(cost, cycles_per_cell: int = SYNTH_CYCLES_PER_CELL) -> int:
    """Cycles one synthesis run of a design of ``cost`` takes.

    ``cycles_per_cell`` rescales the whole vector proportionally (the
    reduced-CI knob), keeping the cell/BRAM/DSP mix ratio fixed.
    """
    base = (cost.logic_cells * SYNTH_CYCLES_PER_CELL
            + cost.bram_kb * SYNTH_CYCLES_PER_BRAM_KB
            + cost.dsp_slices * SYNTH_CYCLES_PER_DSP)
    return max(1, base * cycles_per_cell // SYNTH_CYCLES_PER_CELL)


def artifact_digest(bitstream: Bitstream) -> str:
    """Content address of the *design* a bitstream instantiates.

    Covers the design family (never the per-instance name), the resource
    cost — which is also the region-shape envelope the artifact is
    floorplanned against, so any region with capacity >= cost can host it
    — the primitive histogram, the declared toggle rate, and the signer.
    Two replicas of one service class digest identically and share a
    cache entry; changing any design-visible property changes the digest.
    """
    payload = repr((
        bitstream.design_family,
        (bitstream.cost.logic_cells, bitstream.cost.bram_kb,
         bitstream.cost.dsp_slices),
        bitstream.primitives,
        bitstream.max_toggle_rate,
        bitstream.signed_by,
    ))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class BitstreamArtifact:
    """One compiled, content-addressed partial bitstream.

    ``bitstream`` is the canonical copy the artifact was synthesized from
    (the first instance submitted); every same-digest request receives
    this artifact.  ``drc_clean`` records that the design-rule screen ran
    at build time, which is what authorizes
    :meth:`~repro.hw.region.ReconfigRegion.load` to skip its per-load
    re-check (``precleared=True``).
    """

    digest: str
    bitstream: Bitstream
    #: synthesis cycles this artifact cost to build (provenance/metrics)
    synth_cycles: int
    drc_clean: bool = True

    @property
    def cost(self):
        return self.bitstream.cost

    @property
    def size_cells(self) -> int:
        """Cache-accounting size: the logic-cell envelope of the design."""
        return self.bitstream.cost.logic_cells

    def fits_in(self, capacity) -> bool:
        """Overlay-reuse check: can a region of ``capacity`` host this?"""
        return self.bitstream.cost.fits_in(capacity)


class CompileService:
    """One deterministic synthesis worker with a FIFO queue.

    ``compile()`` returns an event that succeeds with the
    :class:`BitstreamArtifact` (or fails with the DRC rejection).
    Requests for a digest already being built coalesce onto the in-flight
    run — the queue never holds two builds of the same design.  All
    timing comes from :func:`synthesis_duration` and the engine clock, so
    two identically-seeded runs compile in identical order at identical
    cycles.
    """

    def __init__(
        self,
        engine,
        drc: Optional[DesignRuleChecker] = None,
        stats=None,
        name: str = "synth",
        cycles_per_cell: int = SYNTH_CYCLES_PER_CELL,
    ):
        if cycles_per_cell < 1:
            raise ConfigError(
                f"cycles_per_cell must be >= 1, got {cycles_per_cell}")
        self.engine = engine
        self.drc = drc
        self.stats = stats
        self.name = name
        self.cycles_per_cell = cycles_per_cell
        #: FIFO of (digest, bitstream) waiting for the worker
        self._queue: List[Tuple[str, Bitstream]] = []
        #: digest -> completion event for queued + running builds
        self._in_flight: Dict[str, object] = {}
        self._busy = False
        self.compiles_started = 0
        self.compiles_completed = 0
        self.compiles_rejected = 0
        self.compiles_coalesced = 0
        self.synth_busy_cycles = 0

    @property
    def backlog(self) -> int:
        """Queued + running builds — the synthesis-backlog gauge."""
        return len(self._queue) + (1 if self._busy else 0)

    def duration(self, bitstream: Bitstream) -> int:
        return synthesis_duration(bitstream.cost, self.cycles_per_cell)

    def compile(self, bitstream: Bitstream):
        """Submit a design; returns the (possibly shared) build event."""
        digest = artifact_digest(bitstream)
        pending = self._in_flight.get(digest)
        if pending is not None:
            self.compiles_coalesced += 1
            self._count("coalesced")
            return pending
        done = self.engine.event(f"{self.name}.compile")
        if self.drc is not None:
            # screened once per artifact, at build submission — loads of
            # the resulting artifact are precleared and never re-check
            try:
                self.drc.check(bitstream)
            except Exception as err:  # BitstreamRejected
                self.compiles_rejected += 1
                self._count("rejected")
                done.fail(err)
                return done
        self._in_flight[digest] = done
        self._queue.append((digest, bitstream))
        self.compiles_started += 1
        self._count("started")
        self._pump()
        return done

    def _pump(self) -> None:
        if self._busy or not self._queue:
            return
        self._busy = True
        digest, bitstream = self._queue.pop(0)
        duration = self.duration(bitstream)

        def finish(_arg, d=digest, bs=bitstream, took=duration) -> None:
            self._busy = False
            self.compiles_completed += 1
            self.synth_busy_cycles += took
            self._count("completed")
            if self.stats is not None:
                self.stats.gauge(f"{self.name}.busy_cycles").add(took)
            artifact = BitstreamArtifact(
                digest=d, bitstream=bs, synth_cycles=took,
                drc_clean=True)
            done = self._in_flight.pop(d)
            done.succeed(artifact)
            self._pump()

        self.engine.schedule(duration, finish)

    def _count(self, what: str) -> None:
        if self.stats is not None:
            self.stats.counter(f"{self.name}.{what}").inc()
