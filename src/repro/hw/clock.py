"""Clock-domain bookkeeping: converting between cycles, time and rates.

The simulator's unit is one fabric cycle.  Components that live in other
clock domains (Ethernet MACs at line rate, DRAM at memory-bus rate, a host
CPU at GHz) convert through a :class:`ClockDomain`, so cross-domain numbers
(ns of latency, GB/s of bandwidth, nJ of energy) stay consistent in the
reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["ClockDomain", "FABRIC_CLOCK"]


@dataclass(frozen=True)
class ClockDomain:
    """A named clock with frequency in MHz."""

    name: str
    mhz: float

    def __post_init__(self) -> None:
        if self.mhz <= 0:
            raise ConfigError(f"clock {self.name!r} needs positive MHz")

    @property
    def ns_per_cycle(self) -> float:
        return 1e3 / self.mhz

    def cycles_to_ns(self, cycles: int) -> float:
        return cycles * self.ns_per_cycle

    def ns_to_cycles(self, ns: float) -> int:
        """Round up: hardware can't finish mid-cycle."""
        if ns < 0:
            raise ConfigError(f"negative duration {ns}ns")
        cycles = ns / self.ns_per_cycle
        whole = int(cycles)
        return whole if cycles == whole else whole + 1

    def bytes_per_cycle(self, gbps: float) -> float:
        """Payload bytes moved per fabric cycle at a given line rate."""
        if gbps <= 0:
            raise ConfigError(f"line rate must be positive, got {gbps}")
        bytes_per_ns = gbps / 8.0
        return bytes_per_ns * self.ns_per_cycle

    def cycles_for_bytes(self, nbytes: int, gbps: float) -> int:
        """Cycles to serialize ``nbytes`` at ``gbps`` (rounded up, >= 1)."""
        per_cycle = self.bytes_per_cycle(gbps)
        cycles = nbytes / per_cycle
        whole = int(cycles)
        return max(1, whole if cycles == whole else whole + 1)


#: The default fabric clock: 250 MHz, a common shell frequency on
#: UltraScale+ data-center cards.
FABRIC_CLOCK = ClockDomain("fabric", 250.0)
