"""Partial-reconfiguration regions.

Each Apiary tile's accelerator slot is a dynamically reconfigurable region
(Section 4.1: "these untrusted tile slots are dynamically instantiated
regions, while Apiary's framework resides in the static area").  A
:class:`ReconfigRegion` models the slot: it holds at most one bitstream,
loading takes time proportional to bitstream size (ICAP/PCAP bandwidth is
the bottleneck on real parts), and loads go through the design-rule checker.

The paper explicitly *omits* scheduling of what gets configured into slots
(deferring to AmorphOS/Coyote); we match that scope: regions expose
load/unload mechanics and the management plane calls them, but no placement
policy lives here.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ReconfigError
from repro.hw.bitstream import Bitstream, DesignRuleChecker
from repro.hw.resources import ResourceVector
from repro.sim import Engine, Event

__all__ = [
    "ReconfigRegion",
    "RECONFIG_CYCLES_PER_CELL",
    "RECONFIG_CYCLES_PER_BRAM_KB",
    "RECONFIG_CYCLES_PER_DSP",
    "reconfig_duration",
]

#: Reconfiguration cost in fabric cycles per logic cell.  ICAP moves
#: ~400 MB/s = ~1.6 B per 250 MHz cycle = ~13 config bits/cycle; at ~100
#: bits of configuration per logic cell that is ~8 cycles per cell —
#: loading a 120k-cell accelerator takes ~1M cycles (~4 ms), matching
#: published partial-reconfiguration times.
RECONFIG_CYCLES_PER_CELL = 8

#: BRAM configuration frames at the same ~13 config bits/cycle: one KB of
#: block RAM is 8192 content bits, ~640 cycles through the config port.
#: Memory-heavy bitstreams honestly pay for their initialization frames
#: instead of hiding behind the per-cell constant.
RECONFIG_CYCLES_PER_BRAM_KB = 640

#: A DSP slice carries ~2.6k configuration bits (opmode, pipeline
#: registers, cascade routing) — ~200 cycles each at 13 bits/cycle.
RECONFIG_CYCLES_PER_DSP = 200


def reconfig_duration(cost: ResourceVector) -> int:
    """Cycles to stream a partial bitstream of ``cost`` through the
    config port.  Scales with the *full* resource vector — logic frames,
    BRAM initialization frames, DSP configuration — so a memory-heavy
    accelerator pays more than a LUT-only one of equal cell count.  The
    single source of truth for reconfiguration time: regions, the
    autoscaler's jump-scaling prediction, and the compile pipeline's
    warm-path accounting all call this."""
    return max(
        1,
        cost.logic_cells * RECONFIG_CYCLES_PER_CELL
        + cost.bram_kb * RECONFIG_CYCLES_PER_BRAM_KB
        + cost.dsp_slices * RECONFIG_CYCLES_PER_DSP,
    )


class ReconfigRegion:
    """One reconfigurable slot with a capacity and an optional DRC screen."""

    def __init__(
        self,
        engine: Engine,
        capacity: ResourceVector,
        drc: Optional[DesignRuleChecker] = None,
        name: str = "slot",
        stats=None,
    ):
        self.engine = engine
        self.capacity = capacity
        self.drc = drc
        self.name = name
        self.stats = stats
        self.loaded: Optional[Bitstream] = None
        self._busy = False
        self.loads_completed = 0
        self.loads_rejected = 0
        self.unloads_completed = 0
        #: cycles the config port spent streaming frames (loads + unloads) —
        #: the reconfiguration overhead the scheduler's decisions cost
        self.busy_cycles_total = 0
        #: cycles the slot has held a live bitstream (occupancy accounting)
        self.occupied_cycles_total = 0
        self.occupied_since: Optional[int] = None

    @property
    def reconfig_count(self) -> int:
        """Completed reconfiguration operations (loads + unloads)."""
        return self.loads_completed + self.unloads_completed

    def occupied_cycles(self, now: Optional[int] = None) -> int:
        """Total cycles the slot has been occupied, up to ``now``."""
        total = self.occupied_cycles_total
        if self.occupied_since is not None:
            total += (now if now is not None else self.engine.now) \
                - self.occupied_since
        return total

    def _account(self, duration: int) -> None:
        """Record one completed reconfiguration of ``duration`` cycles."""
        self.busy_cycles_total += duration
        if self.stats is not None:
            self.stats.gauge(f"region.{self.name}.busy_cycles").add(duration)
            self.stats.counter(f"region.{self.name}.reconfigs").inc()

    @property
    def occupied(self) -> bool:
        return self.loaded is not None

    @property
    def reconfiguring(self) -> bool:
        return self._busy

    def load_duration(self, bitstream: Bitstream) -> int:
        """Cycles to stream the partial bitstream through the config port."""
        return reconfig_duration(bitstream.cost)

    def load(self, bitstream: Bitstream, precleared: bool = False) -> Event:
        """Begin loading; the event succeeds when the region is live.

        Rejections (DRC, capacity, busy) fail the event with
        :class:`ReconfigError` rather than raising synchronously, because the
        management plane treats them as runtime outcomes, not caller bugs.

        ``precleared=True`` skips the per-load DRC screen: the caller holds
        a :class:`~repro.hw.compile.BitstreamArtifact` whose design rules
        were checked once at synthesis time, so re-screening every load of
        the same artifact would double-count (and double-charge) the check.
        Capacity and busy checks still apply — they are per-slot, not
        per-design.
        """
        done = self.engine.event(f"{self.name}.load")
        if self._busy:
            done.fail(ReconfigError(f"{self.name} is mid-reconfiguration"))
            return done
        if self.loaded is not None:
            done.fail(ReconfigError(
                f"{self.name} already holds {self.loaded.name!r}; unload first"
            ))
            return done
        if not bitstream.cost.fits_in(self.capacity):
            self.loads_rejected += 1
            done.fail(ReconfigError(
                f"{bitstream.name!r} needs {bitstream.cost}, slot capacity is "
                f"{self.capacity}"
            ))
            return done
        if self.drc is not None and not precleared:
            try:
                self.drc.check(bitstream)
            except Exception as err:  # BitstreamRejected
                self.loads_rejected += 1
                done.fail(err)
                return done
        self._busy = True
        duration = self.load_duration(bitstream)

        def finish(_arg) -> None:
            self._busy = False
            self.loaded = bitstream
            self.loads_completed += 1
            self.occupied_since = self.engine.now
            self._account(duration)
            done.succeed(bitstream)

        self.engine.schedule(duration, finish)
        return done

    def unload(self) -> Event:
        """Clear the region (fast: just blanks the slot's frames)."""
        done = self.engine.event(f"{self.name}.unload")
        if self._busy:
            done.fail(ReconfigError(f"{self.name} is mid-reconfiguration"))
            return done
        if self.loaded is None:
            done.fail(ReconfigError(f"{self.name} is already empty"))
            return done
        previous = self.loaded
        self._busy = True
        duration = max(1, self.load_duration(previous) // 10)
        if self.occupied_since is not None:
            self.occupied_cycles_total += self.engine.now - self.occupied_since
            self.occupied_since = None

        def finish(_arg) -> None:
            self._busy = False
            self.loaded = None
            self.unloads_completed += 1
            self._account(duration)
            done.succeed(previous)

        self.engine.schedule(duration, finish)
        return done
