"""Partial-reconfiguration regions.

Each Apiary tile's accelerator slot is a dynamically reconfigurable region
(Section 4.1: "these untrusted tile slots are dynamically instantiated
regions, while Apiary's framework resides in the static area").  A
:class:`ReconfigRegion` models the slot: it holds at most one bitstream,
loading takes time proportional to bitstream size (ICAP/PCAP bandwidth is
the bottleneck on real parts), and loads go through the design-rule checker.

The paper explicitly *omits* scheduling of what gets configured into slots
(deferring to AmorphOS/Coyote); we match that scope: regions expose
load/unload mechanics and the management plane calls them, but no placement
policy lives here.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ReconfigError
from repro.hw.bitstream import Bitstream, DesignRuleChecker
from repro.hw.resources import ResourceVector
from repro.sim import Engine, Event

__all__ = ["ReconfigRegion", "RECONFIG_CYCLES_PER_CELL"]

#: Reconfiguration cost in fabric cycles per logic cell.  ICAP moves
#: ~400 MB/s = ~1.6 B per 250 MHz cycle = ~13 config bits/cycle; at ~100
#: bits of configuration per logic cell that is ~8 cycles per cell —
#: loading a 120k-cell accelerator takes ~1M cycles (~4 ms), matching
#: published partial-reconfiguration times.
RECONFIG_CYCLES_PER_CELL = 8


class ReconfigRegion:
    """One reconfigurable slot with a capacity and an optional DRC screen."""

    def __init__(
        self,
        engine: Engine,
        capacity: ResourceVector,
        drc: Optional[DesignRuleChecker] = None,
        name: str = "slot",
    ):
        self.engine = engine
        self.capacity = capacity
        self.drc = drc
        self.name = name
        self.loaded: Optional[Bitstream] = None
        self._busy = False
        self.loads_completed = 0
        self.loads_rejected = 0

    @property
    def occupied(self) -> bool:
        return self.loaded is not None

    @property
    def reconfiguring(self) -> bool:
        return self._busy

    def load_duration(self, bitstream: Bitstream) -> int:
        """Cycles to stream the partial bitstream through the config port."""
        return max(1, bitstream.cost.logic_cells * RECONFIG_CYCLES_PER_CELL)

    def load(self, bitstream: Bitstream) -> Event:
        """Begin loading; the event succeeds when the region is live.

        Rejections (DRC, capacity, busy) fail the event with
        :class:`ReconfigError` rather than raising synchronously, because the
        management plane treats them as runtime outcomes, not caller bugs.
        """
        done = self.engine.event(f"{self.name}.load")
        if self._busy:
            done.fail(ReconfigError(f"{self.name} is mid-reconfiguration"))
            return done
        if self.loaded is not None:
            done.fail(ReconfigError(
                f"{self.name} already holds {self.loaded.name!r}; unload first"
            ))
            return done
        if not bitstream.cost.fits_in(self.capacity):
            self.loads_rejected += 1
            done.fail(ReconfigError(
                f"{bitstream.name!r} needs {bitstream.cost}, slot capacity is "
                f"{self.capacity}"
            ))
            return done
        if self.drc is not None:
            try:
                self.drc.check(bitstream)
            except Exception as err:  # BitstreamRejected
                self.loads_rejected += 1
                done.fail(err)
                return done
        self._busy = True

        def finish(_arg) -> None:
            self._busy = False
            self.loaded = bitstream
            self.loads_completed += 1
            done.succeed(bitstream)

        self.engine.schedule(self.load_duration(bitstream), finish)
        return done

    def unload(self) -> Event:
        """Clear the region (fast: just blanks the slot's frames)."""
        done = self.engine.event(f"{self.name}.unload")
        if self._busy:
            done.fail(ReconfigError(f"{self.name} is mid-reconfiguration"))
            return done
        if self.loaded is None:
            done.fail(ReconfigError(f"{self.name} is already empty"))
            return done
        previous = self.loaded
        self._busy = True

        def finish(_arg) -> None:
            self._busy = False
            self.loaded = None
            done.succeed(previous)

        self.engine.schedule(max(1, self.load_duration(previous) // 10), finish)
        return done
