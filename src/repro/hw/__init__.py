"""FPGA hardware model: parts, boards, resources, regions, bitstreams, clocks.

This package is the substitution for physical FPGAs (DESIGN.md Section 2):
the parts database reproduces Table 1, resource accounting answers the
monitor-overhead open question (D4), reconfigurable regions model the
dynamic tile slots of Figure 1, and the design-rule checker models the
bitstream screening that Section 3.1 delegates to build tools.
"""

from repro.hw.bitstream import (
    FORBIDDEN_PRIMITIVES,
    Bitstream,
    DesignRuleChecker,
    DrcViolation,
)
from repro.hw.clock import FABRIC_CLOCK, ClockDomain
from repro.hw.compile import (
    SYNTH_CYCLES_PER_CELL,
    BitstreamArtifact,
    CompileService,
    artifact_digest,
    synthesis_duration,
)
from repro.hw.device import BOARDS, PARTS, Board, FpgaPart, board, part, table1_rows
from repro.hw.device import table1_scaling
from repro.hw.region import (
    RECONFIG_CYCLES_PER_BRAM_KB,
    RECONFIG_CYCLES_PER_CELL,
    RECONFIG_CYCLES_PER_DSP,
    ReconfigRegion,
    reconfig_duration,
)
from repro.hw.resources import (
    ResourceBudget,
    ResourceVector,
    monitor_cost,
    noc_overhead,
    router_cost,
)

__all__ = [
    "FpgaPart",
    "Board",
    "PARTS",
    "BOARDS",
    "part",
    "board",
    "table1_rows",
    "table1_scaling",
    "ResourceVector",
    "ResourceBudget",
    "router_cost",
    "monitor_cost",
    "noc_overhead",
    "Bitstream",
    "DesignRuleChecker",
    "DrcViolation",
    "FORBIDDEN_PRIMITIVES",
    "ReconfigRegion",
    "RECONFIG_CYCLES_PER_CELL",
    "RECONFIG_CYCLES_PER_BRAM_KB",
    "RECONFIG_CYCLES_PER_DSP",
    "reconfig_duration",
    "BitstreamArtifact",
    "CompileService",
    "artifact_digest",
    "synthesis_duration",
    "SYNTH_CYCLES_PER_CELL",
    "ClockDomain",
    "FABRIC_CLOCK",
]
