"""FPGA parts database — the data behind the paper's Table 1.

Table 1 of the paper compares logic-cell counts for the smallest and largest
parts of the previous (Virtex-7) and current (Virtex UltraScale+) Xilinx
families to motivate multi-accelerator FPGAs.  We encode those four parts
exactly as printed, plus the board-level context (I/O mix) that Section 2
argues makes modern development hard.

Counts for the Table-1 parts are transcribed from the paper; the remaining
entries carry representative public datasheet figures and exist to give the
experiments a spread of device sizes (they are not part of Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError

__all__ = ["FpgaPart", "Board", "PARTS", "BOARDS", "table1_rows", "part", "board"]


@dataclass(frozen=True)
class FpgaPart:
    """One FPGA part.

    ``logic_cells`` is the marketing "logic cell" count used in Table 1;
    ``bram_kb`` and ``dsp_slices`` give the other resource axes the
    monitor-overhead experiment (D4) budgets against.
    """

    name: str
    family: str
    year: int
    logic_cells: int
    bram_kb: int
    dsp_slices: int
    hardened_noc: bool = False
    in_table1: bool = False

    def __post_init__(self) -> None:
        if self.logic_cells <= 0:
            raise ConfigError(f"{self.name}: logic cells must be positive")


@dataclass(frozen=True)
class Board:
    """An FPGA board: a part plus its I/O devices.

    ``ethernet_gbps`` lists the line rates of the MACs on the board; the
    paper's portability complaint is precisely that the 10G and 100G IP
    cores have different interfaces and reset processes — our
    :mod:`repro.net.ethernet` models that difference and the Apiary network
    service hides it.
    """

    name: str
    part_name: str
    ethernet_gbps: List[int]
    dram_gb: int
    dram_kind: str = "DDR4"
    pcie_gen: int = 3
    has_cxl: bool = False
    has_nvme: bool = False

    @property
    def part(self) -> FpgaPart:
        return part(self.part_name)


# -- Table 1 parts (transcribed verbatim from the paper) ----------------------

_PART_LIST: List[FpgaPart] = [
    # Family, year released, part number, logic cells — exactly as in Table 1.
    FpgaPart("XC7V585T", "Virtex 7", 2010, 582_720, bram_kb=28_620,
             dsp_slices=1_260, in_table1=True),
    FpgaPart("XC7VH870T", "Virtex 7", 2010, 876_160, bram_kb=50_760,
             dsp_slices=2_520, in_table1=True),
    FpgaPart("VU3P", "Virtex Ultrascale+", 2016, 862_000, bram_kb=25_344,
             dsp_slices=2_280, in_table1=True),
    FpgaPart("VU29P", "Virtex Ultrascale+", 2018, 3_780_000, bram_kb=88_128,
             dsp_slices=9_216, in_table1=True),
    # Supporting parts for experiments (representative datasheet figures).
    FpgaPart("VU9P", "Virtex Ultrascale+", 2016, 2_586_000, bram_kb=75_900,
             dsp_slices=6_840),
    FpgaPart("XCVC1902", "Versal AI Core", 2019, 1_968_000, bram_kb=34_000,
             dsp_slices=1_968, hardened_noc=True),
    FpgaPart("XCVP1202", "Versal Premium", 2021, 1_848_000, bram_kb=55_000,
             dsp_slices=1_904, hardened_noc=True),
    FpgaPart("AGM039", "Agilex 7 M-Series", 2022, 3_850_000, bram_kb=36_000,
             dsp_slices=12_300, hardened_noc=True),
]

PARTS: Dict[str, FpgaPart] = {p.name: p for p in _PART_LIST}

_BOARD_LIST: List[Board] = [
    Board("VC707", "XC7V585T", ethernet_gbps=[10], dram_gb=1,
          dram_kind="DDR3", pcie_gen=2),
    Board("Alveo-U250-like", "VU9P", ethernet_gbps=[100, 100], dram_gb=64,
          dram_kind="DDR4", pcie_gen=3),
    Board("Alveo-U55C-like", "VU29P", ethernet_gbps=[100, 100], dram_gb=16,
          dram_kind="HBM2", pcie_gen=4),
    Board("Versal-VCK5000-like", "XCVC1902", ethernet_gbps=[100, 100],
          dram_gb=16, dram_kind="DDR4", pcie_gen=4),
    Board("Alveo-V80-like", "XCVP1202", ethernet_gbps=[100, 100, 100, 100],
          dram_gb=32, dram_kind="HBM2e", pcie_gen=5, has_cxl=True,
          has_nvme=True),
]

BOARDS: Dict[str, Board] = {b.name: b for b in _BOARD_LIST}


def part(name: str) -> FpgaPart:
    """Look up a part by exact name."""
    if name not in PARTS:
        raise ConfigError(f"unknown FPGA part {name!r}; known: {sorted(PARTS)}")
    return PARTS[name]


def board(name: str) -> Board:
    """Look up a board by exact name."""
    if name not in BOARDS:
        raise ConfigError(f"unknown board {name!r}; known: {sorted(BOARDS)}")
    return BOARDS[name]


def table1_rows() -> List[Tuple[str, int, str, int]]:
    """Table 1 exactly as printed: (family, year, part number, logic cells)."""
    rows = [p for p in _PART_LIST if p.in_table1]
    return [(p.family, p.year, p.name, p.logic_cells) for p in rows]


def table1_scaling() -> Dict[str, float]:
    """The generational ratios the paper derives from Table 1.

    "Comparing the smallest parts, the number of logic cells has increased
    by about 50%, while the largest parts have scaled up by 3x" — we compute
    the same ratios from the database so the bench can assert them.
    """
    smallest_v7 = part("XC7V585T").logic_cells
    largest_v7 = part("XC7VH870T").logic_cells
    smallest_vup = part("VU3P").logic_cells
    largest_vup = part("VU29P").logic_cells
    return {
        "smallest_ratio": smallest_vup / smallest_v7,
        "largest_ratio": largest_vup / largest_v7,
    }
