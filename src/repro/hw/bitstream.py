"""Bitstream model and design-rule checking.

Apiary tiles are "dynamically instantiated regions" loaded with accelerator
bitstreams (Section 4.1).  Section 3.1 notes that power-virus attacks "are
typically mitigated by the vendor FPGA build tools themselves using design
rule checking during bitstream creation or bitstream analysis after the
build process" — so the OS-visible piece we model is exactly that screen:
a :class:`Bitstream` declares the primitives it instantiates, and
:class:`DesignRuleChecker` rejects the ones a multitenant deployment must
not load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import BitstreamRejected, ConfigError
from repro.hw.resources import ResourceVector

__all__ = ["Bitstream", "DesignRuleChecker", "DrcViolation", "FORBIDDEN_PRIMITIVES"]

#: Primitive classes associated with electrical-level attacks in the
#: literature the paper cites: combinational loops (ring oscillators used
#: both as power viruses and as voltage sensors) and explicit glitch
#: amplifiers.
FORBIDDEN_PRIMITIVES: FrozenSet[str] = frozenset(
    {
        "ring_oscillator",
        "combinational_loop",
        "glitch_amplifier",
        "tdc_sensor",  # time-to-digital converters used for side channels [16]
    }
)

#: Benign primitive classes a normal accelerator declares.
KNOWN_PRIMITIVES: FrozenSet[str] = FORBIDDEN_PRIMITIVES | frozenset(
    {
        "lut_logic",
        "bram",
        "dsp",
        "shift_register",
        "fifo",
        "uram",
    }
)


@dataclass(frozen=True)
class Bitstream:
    """A (modelled) partial bitstream for one tile slot.

    Attributes
    ----------
    name: human-readable accelerator name.
    cost: fabric resources the design consumes when loaded.
    primitives: histogram of primitive classes the netlist instantiates.
    max_toggle_rate: declared worst-case switching activity (0..1) — the
        input to the power-budget rule.
    signed_by: optional build-chain identity for provenance checks.
    family: the *design* identity, shared by every instance built from the
        same netlist (e.g. all replicas of one service class).  The compile
        pipeline content-addresses artifacts by family — two bitstreams
        with the same family/cost/primitives are the same synthesized
        design and share one cached artifact, whatever their instance
        ``name`` says.  ``None`` falls back to ``name`` (a one-off design).
    """

    name: str
    cost: ResourceVector
    primitives: Tuple[Tuple[str, int], ...] = ()
    max_toggle_rate: float = 0.25
    signed_by: Optional[str] = None
    family: Optional[str] = None

    def primitive_count(self, kind: str) -> int:
        for name, count in self.primitives:
            if name == kind:
                return count
        return 0

    @property
    def design_family(self) -> str:
        """The content-addressing identity (``family``, else ``name``)."""
        return self.family if self.family is not None else self.name

    @staticmethod
    def build(
        name: str,
        cost: ResourceVector,
        primitives: Optional[Dict[str, int]] = None,
        max_toggle_rate: float = 0.25,
        signed_by: Optional[str] = None,
        family: Optional[str] = None,
    ) -> "Bitstream":
        """Validating constructor (dataclass stays frozen/hashable)."""
        prims = primitives or {}
        for kind, count in prims.items():
            if kind not in KNOWN_PRIMITIVES:
                raise ConfigError(f"unknown primitive class {kind!r}")
            if count < 0:
                raise ConfigError(f"negative primitive count for {kind!r}")
        if not 0.0 <= max_toggle_rate <= 1.0:
            raise ConfigError(f"toggle rate must be in [0,1], got {max_toggle_rate}")
        return Bitstream(
            name=name,
            cost=cost,
            primitives=tuple(sorted(prims.items())),
            max_toggle_rate=max_toggle_rate,
            signed_by=signed_by,
            family=family,
        )


@dataclass(frozen=True)
class DrcViolation:
    rule: str
    detail: str


class DesignRuleChecker:
    """The load-time screen the management plane runs on every bitstream.

    Parameters
    ----------
    power_budget_toggle: maximum declared toggle rate admitted; designs
        over it are power-virus suspects.
    require_signature: multitenant deployments can insist bitstreams come
        from a trusted build chain (the vendor-tool mitigation of §3.1).
    trusted_signers: accepted build-chain identities.
    """

    def __init__(
        self,
        power_budget_toggle: float = 0.6,
        require_signature: bool = False,
        trusted_signers: Optional[Set[str]] = None,
    ):
        if not 0.0 < power_budget_toggle <= 1.0:
            raise ConfigError("power budget toggle must be in (0,1]")
        self.power_budget_toggle = power_budget_toggle
        self.require_signature = require_signature
        self.trusted_signers = trusted_signers or set()
        self.checked = 0
        self.rejected = 0

    def violations(self, bitstream: Bitstream) -> List[DrcViolation]:
        """All rule violations (empty list = clean)."""
        found: List[DrcViolation] = []
        for kind, count in bitstream.primitives:
            if kind in FORBIDDEN_PRIMITIVES and count > 0:
                found.append(
                    DrcViolation(
                        rule="forbidden-primitive",
                        detail=f"{count}x {kind} in {bitstream.name!r}",
                    )
                )
        if bitstream.max_toggle_rate > self.power_budget_toggle:
            found.append(
                DrcViolation(
                    rule="power-budget",
                    detail=(
                        f"toggle rate {bitstream.max_toggle_rate:.2f} exceeds "
                        f"budget {self.power_budget_toggle:.2f}"
                    ),
                )
            )
        if self.require_signature:
            if bitstream.signed_by is None:
                found.append(
                    DrcViolation(rule="unsigned", detail="bitstream not signed")
                )
            elif bitstream.signed_by not in self.trusted_signers:
                found.append(
                    DrcViolation(
                        rule="untrusted-signer",
                        detail=f"signer {bitstream.signed_by!r} not trusted",
                    )
                )
        return found

    def check(self, bitstream: Bitstream) -> None:
        """Raise :class:`BitstreamRejected` on the first violation."""
        self.checked += 1
        found = self.violations(bitstream)
        if found:
            self.rejected += 1
            summary = "; ".join(f"{v.rule}: {v.detail}" for v in found)
            raise BitstreamRejected(f"{bitstream.name!r} rejected: {summary}")
