"""Quality-of-service primitives: token buckets and traffic meters.

Section 4.5: "With untrusted accelerators, having permissioned access and
rate limiting are necessary to prevent malicious accelerators from ...
causing resource exhaustion."  The Apiary monitor attaches a
:class:`TokenBucket` to each tile's injection path; the NoC itself stays
policy-free.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigError

__all__ = ["TokenBucket", "RateMeter"]


class TokenBucket:
    """Classic token bucket over the simulation clock.

    Parameters
    ----------
    rate_per_cycle:
        Tokens accrued per cycle (flits/cycle the sender may sustain).
    burst:
        Bucket depth: the largest back-to-back burst admitted at line rate.

    The bucket is passive: callers ask :meth:`consume` / :meth:`cycles_until`
    with the current time; no process runs per cycle.
    """

    def __init__(self, rate_per_cycle: float, burst: float, start_time: int = 0):
        if rate_per_cycle <= 0:
            raise ConfigError(f"rate must be positive, got {rate_per_cycle}")
        if burst < 1:
            raise ConfigError(f"burst must be >= 1 token, got {burst}")
        self.rate = rate_per_cycle
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last = start_time
        self.admitted = 0
        self.throttled = 0

    def _refill(self, now: int) -> None:
        if now < self._last:
            raise ConfigError("token bucket observed time going backwards")
        self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now

    def tokens(self, now: int) -> float:
        self._refill(now)
        return self._tokens

    def consume(self, now: int, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens if admissible; record the outcome.

        A request larger than the bucket depth is admitted once the bucket
        is *full*, driving the balance negative (debt) — the standard
        shaper behaviour for jumbo packets: long-run rate is still enforced
        because the debt must refill before anything else is admitted.
        """
        self._refill(now)
        threshold = min(amount, self.burst)
        if self._tokens + 1e-12 >= threshold:
            self._tokens -= amount
            self.admitted += 1
            return True
        self.throttled += 1
        return False

    def cycles_until(self, now: int, amount: float = 1.0) -> int:
        """Cycles until ``amount`` tokens become admissible (0 = now)."""
        self._refill(now)
        deficit = min(amount, self.burst) - self._tokens
        if deficit <= 1e-12:
            return 0
        return max(1, int(-(-deficit // self.rate)))  # ceil division


class RateMeter:
    """Sliding-window rate estimate, for monitoring/tracing dashboards.

    Counts events into fixed-size buckets; :meth:`rate` averages over the
    most recent full window.  Used by monitor telemetry (D5) to show a
    victim's goodput collapsing and recovering.
    """

    def __init__(self, window_cycles: int = 1000, buckets: int = 10):
        if window_cycles < buckets:
            raise ConfigError("window must cover at least one cycle per bucket")
        self.bucket_cycles = window_cycles // buckets
        self.buckets = buckets
        self._counts = [0] * buckets
        self._bucket_start = 0
        self._current = 0

    def _advance(self, now: int) -> None:
        bucket_index = now // self.bucket_cycles
        while self._current < bucket_index:
            self._current += 1
            self._counts[self._current % self.buckets] = 0

    def record(self, now: int, amount: int = 1) -> None:
        self._advance(now)
        self._counts[self._current % self.buckets] += amount

    def rate(self, now: int) -> float:
        """Events per cycle over the window ending at ``now``."""
        self._advance(now)
        window = self.bucket_cycles * self.buckets
        return sum(self._counts) / window
