"""Progress watchdog: detects NoC stalls (message-dependent deadlock).

Section 4.5 cites prior work on message-dependent deadlock [30, 32] as one
of the concerns an IPC layer built on a NoC inherits.  The watchdog is the
observability half of that story: it periodically checks whether packets
are in flight but no flit has moved for a full interval, and reports the
stall instead of letting a run hang silently.  Tests use it to demonstrate
that a request-reply protocol over a shared delivery queue *can* deadlock
without Apiary's monitor-level flow control, and cannot with it.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import DeadlockError
from repro.noc.network import Network
from repro.sim import Engine

__all__ = ["ProgressWatchdog"]


class ProgressWatchdog:
    """Checks NoC progress every ``interval`` cycles.

    Parameters
    ----------
    network: the NoC to observe.
    interval: cycles between checks; a stall must persist for one full
        interval to be reported (transient backpressure is not a stall).
    on_stall: optional callback ``(cycle) -> None``; when ``None``,
        :attr:`stalled_at` is recorded and, if ``raise_on_stall`` is set,
        :class:`DeadlockError` aborts the run.
    """

    def __init__(
        self,
        engine: Engine,
        network: Network,
        interval: int = 5000,
        raise_on_stall: bool = False,
        on_stall: Optional[Callable[[int], None]] = None,
    ):
        self.engine = engine
        self.network = network
        self.interval = interval
        self.raise_on_stall = raise_on_stall
        self.on_stall = on_stall
        self.stalled_at: Optional[int] = None
        self.checks = 0
        self._process = engine.process(self._run(), name="noc.watchdog")

    def _run(self):
        last_count = self.network.total_flits_forwarded()
        while True:
            yield self.interval
            self.checks += 1
            current = self.network.total_flits_forwarded()
            in_flight = self.network.in_flight_packets()
            if in_flight > 0 and current == last_count:
                self.stalled_at = self.engine.now
                if self.on_stall is not None:
                    self.on_stall(self.engine.now)
                if self.raise_on_stall:
                    raise DeadlockError(
                        f"no flit moved in {self.interval} cycles with "
                        f"{in_flight} packets in flight (t={self.engine.now})"
                    )
            last_count = current

    def stop(self) -> None:
        self._process.interrupt("watchdog stopped")
