"""Input-queued wormhole router with virtual channels and credit flow control.

The router is event-driven: it sleeps until a flit arrives or a credit
returns, then performs switch-allocation passes once per cycle while work
remains.  Each pass grants at most one flit per output port and one flit
per input port (the crossbar constraint).  Head flits perform route
computation and virtual-channel allocation; tail flits release the output
VC (wormhole semantics: a packet owns its path until the tail passes).

Deadlock freedom:
* deterministic XY/YX routing is deadlock-free on a mesh with any VC count;
* minimal-adaptive routing restricts VC 0 to the XY escape path (Duato);
* on a torus, a dateline VC flip would be required — the router refuses
  adaptive routing on a torus rather than silently deadlocking.

Per-hop latency (pipeline + wire) is modelled by the link's delivery delay,
configured in :class:`repro.noc.network.Network`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.noc.arbiter import RoundRobinArbiter
from repro.noc.flit import Flit
from repro.noc.routing import (
    MinimalAdaptiveRouting,
    RoutingFunction,
    TorusXYRouting,
)
from repro.noc.topology import Mesh2D, Port

__all__ = ["Router", "InputVC", "OutputPort"]

#: Delivery callback type: (flit) -> None, invoked at the downstream side.
DeliverFn = Callable[[Flit], None]
#: Credit-return callback type: (vc) -> None, invoked at the upstream side.
CreditFn = Callable[[int], None]


class InputVC:
    """State of one (input port, virtual channel) buffer."""

    __slots__ = ("buffer", "out_port", "out_vc", "active_pid")

    def __init__(self, depth: int):
        self.buffer: Deque[Flit] = deque(maxlen=depth)
        self.out_port: Optional[Port] = None
        self.out_vc: Optional[int] = None
        self.active_pid: Optional[int] = None

    def reset_route(self) -> None:
        self.out_port = None
        self.out_vc = None
        self.active_pid = None


class OutputPort:
    """Per-output-port state: downstream credits, VC ownership, the link."""

    __slots__ = ("credits", "vc_owner", "deliver", "return_credit", "arbiter",
                 "flits_sent", "busy_cycles")

    def __init__(self, num_vcs: int, buffer_depth: int, slots: int):
        self.credits = [buffer_depth] * num_vcs
        self.vc_owner: List[Optional[int]] = [None] * num_vcs
        self.deliver: Optional[DeliverFn] = None
        self.return_credit: Optional[CreditFn] = None
        self.arbiter = RoundRobinArbiter(slots)
        self.flits_sent = 0
        self.busy_cycles = 0


class Router:
    """One NoC router tile.

    Wiring (``connect``) is done by :class:`~repro.noc.network.Network`;
    the router only knows callbacks for delivering flits downstream and
    returning credits upstream.
    """

    def __init__(
        self,
        engine,
        node: int,
        topo: Mesh2D,
        routing: RoutingFunction,
        num_vcs: int = 2,
        vc_classes: int = 1,
        buffer_depth: int = 4,
        credit_latency: int = 1,
        name: str = "",
    ):
        if num_vcs < 1:
            raise ConfigError(f"need >= 1 VC, got {num_vcs}")
        if vc_classes < 1 or vc_classes > num_vcs:
            raise ConfigError(
                f"vc_classes must be in [1, num_vcs]; got {vc_classes} with "
                f"{num_vcs} VCs"
            )
        if buffer_depth < 1:
            raise ConfigError(f"buffer depth must be >= 1, got {buffer_depth}")
        self.engine = engine
        self.node = node
        self.topo = topo
        self.routing = routing
        self.num_vcs = num_vcs
        self.vc_classes = vc_classes
        self.buffer_depth = buffer_depth
        self.credit_latency = credit_latency
        self.name = name or f"router{node}"
        self._adaptive = isinstance(routing, MinimalAdaptiveRouting)
        self._dateline = isinstance(routing, TorusXYRouting)
        if self._dateline and (num_vcs < 2 or vc_classes != 1):
            raise ConfigError(
                "torus dateline routing needs num_vcs >= 2 and a single "
                "VC class (both VCs belong to the dateline scheme)"
            )

        self.ports: List[Port] = [Port.LOCAL]
        for port in (Port.NORTH, Port.EAST, Port.SOUTH, Port.WEST):
            if topo.neighbor(node, port) is not None:
                self.ports.append(port)

        slots = len(self.ports) * num_vcs
        self._in: Dict[Port, List[InputVC]] = {
            p: [InputVC(buffer_depth) for _ in range(num_vcs)] for p in self.ports
        }
        self._out: Dict[Port, OutputPort] = {
            p: OutputPort(num_vcs, buffer_depth, slots) for p in self.ports
        }
        self._credit_return: Dict[Port, Optional[CreditFn]] = {
            p: None for p in self.ports
        }
        # hot-path tables, resolved once per router instead of per pass:
        # arbiter slot base per input port (replaces list.index arithmetic),
        # the VC set for each traffic class, and memoized routing decisions
        # (routing functions are pure in (node, dst), so per-destination
        # candidate lists never change for a given router)
        self._port_base: Dict[Port, int] = {
            p: i * num_vcs for i, p in enumerate(self.ports)
        }
        self._allowed: List[List[int]] = [
            [v for v in range(num_vcs) if v % vc_classes == cls]
            for cls in range(vc_classes)
        ]
        self._cand_cache: Dict[int, List[Port]] = {}
        self._escape_cache: Dict[int, List[Port]] = {}
        #: flattened (in_port, vc, arbiter_slot, input VC) scan order — the
        #: allocation pass walks this single prebuilt list instead of
        #: re-resolving two dicts and an enumerate per port per cycle
        self._scan: List[Tuple[Port, int, int, InputVC]] = [
            (p, vc, self._port_base[p] + vc, ivc)
            for p in self.ports
            for vc, ivc in enumerate(self._in[p])
        ]

        self._wake = engine.event(f"{self.name}.wake")
        self._awake = False
        self.flits_forwarded = 0
        #: incrementally maintained count of flits across all input VCs —
        #: the allocation loop polls "any work?" once per pass, and scanning
        #: every (port, VC) buffer to answer it dominated the hot path
        self._buffered = 0
        #: fault injection: allocation is suspended until this cycle.
        #: Buffered flits sit still and credits stop flowing upstream, so
        #: backpressure spreads exactly as a stuck pipeline stage would.
        self.stalled_until = 0
        self.stalls_injected = 0
        engine.process(self._run(), name=self.name)

    # -- wiring (called by Network) ---------------------------------------

    def connect_output(self, port: Port, deliver: DeliverFn, credit: CreditFn) -> None:
        """Attach downstream delivery and upstream-credit callbacks."""
        out = self._out[port]
        out.deliver = deliver
        out.return_credit = credit

    def connect_input_credit(self, port: Port, return_credit: CreditFn) -> None:
        """Attach the callback that returns a buffer credit to the upstream
        sender when a flit leaves this router's input buffer on ``port``."""
        self._credit_return[port] = return_credit

    # -- datapath entry points (called by links / NI) ----------------------

    def accept_flit(self, port: Port, flit: Flit) -> None:
        """A flit arrives on input ``port`` (its ``vc`` chosen upstream)."""
        ivc = self._in[port][flit.vc]
        if len(ivc.buffer) >= self.buffer_depth:
            raise ConfigError(
                f"{self.name}: input buffer overflow on {port.name} vc{flit.vc} "
                "(credit protocol violated)"
            )
        ivc.buffer.append(flit)
        self._buffered += 1
        self._wake_up()

    def credit_arrived(self, port: Port, vc: int) -> None:
        """Downstream freed a buffer slot on our output ``port`` / ``vc``."""
        out = self._out[port]
        out.credits[vc] += 1
        if out.credits[vc] > self.buffer_depth:
            raise ConfigError(f"{self.name}: credit overflow on {port.name} vc{vc}")
        self._wake_up()

    def output_vc_released(self, port: Port) -> None:
        """Downstream NI released an ejection-side VC (wake for retry)."""
        self._wake_up()

    # -- inspection --------------------------------------------------------

    def occupancy(self) -> int:
        return self._buffered

    @property
    def buffered_flits(self) -> int:
        """Flits currently held in this router's input VC buffers.

        The public read for telemetry/reporting; same value as
        :meth:`occupancy`, exposed as a property so samplers observe the
        router without reaching into its counters.
        """
        return self.occupancy()

    def allowed_vcs(self, vc_class: int) -> List[int]:
        """VC indices a traffic class may use (classes partition the VCs).

        Returns a shared per-class list resolved at construction; callers
        must treat it as read-only.
        """
        return self._allowed[min(vc_class, self.vc_classes - 1)]

    # -- the router process -------------------------------------------------

    def stall(self, cycles: int) -> None:
        """Freeze switch allocation for ``cycles`` (fault injection)."""
        self.stalled_until = max(self.stalled_until, self.engine.now + cycles)
        self.stalls_injected += 1
        self._wake_up()

    def _run(self):
        while True:
            if self.engine.now < self.stalled_until:
                yield self.stalled_until - self.engine.now
                continue
            if not self._has_buffered_flits():
                self._awake = False
                yield self._wake
                self._wake = self.engine.event(f"{self.name}.wake")
                continue
            moved = self._allocation_pass()
            if moved:
                yield 1
            else:
                # Everything buffered is blocked on credits/VCs; sleep until
                # an external event (credit, arrival, release) wakes us.
                self._awake = False
                yield self._wake
                self._wake = self.engine.event(f"{self.name}.wake")

    def _wake_up(self) -> None:
        if not self._awake:
            self._awake = True
            if not self._wake.triggered:
                self._wake.succeed(None)

    def _has_buffered_flits(self) -> bool:
        return self._buffered > 0

    def _allocation_pass(self) -> int:
        """One switch-allocation cycle; returns the number of flits moved.

        Deterministic routing (XY/YX/dateline) yields a single candidate
        port, so an input VC's request — its (output port, output VC) pair —
        cannot be altered by grants on *other* output ports within the pass:
        a grant only mutates state on its own output port and on an input
        that is then excluded anyway.  That lets us scan the input buffers
        once, bucket requests by output port, and arbitrate each port from
        its bucket — identical grants to the per-port rescan at a fraction
        of the scanning work.  Adaptive routing credit-balances across
        candidate ports mid-pass, so it keeps the faithful rescan.
        """
        if self._adaptive:
            return self._allocation_pass_rescan()
        buckets: Dict[Port, List[Tuple[int, Port, int, int]]] = {}
        outs = self._out
        for in_port, vc, slot, ivc in self._scan:
            buffer = ivc.buffer
            if not buffer:
                continue
            port_choice = ivc.out_port
            if port_choice is None:
                # an unrouted VC only requests when a head flit is at the
                # front (body flits behind a reset route wait for it)
                flit = buffer[0]
                if not flit.is_head:
                    continue
                choice = self._route_and_allocate(in_port, vc, flit)
                if choice is None:
                    continue
                port_choice, out_vc = choice
            else:
                out_vc = ivc.out_vc
                if out_vc is None:
                    continue
                if outs[port_choice].credits[out_vc] <= 0:
                    continue
            bucket = buckets.get(port_choice)
            if bucket is None:
                bucket = buckets[port_choice] = []
            bucket.append((slot, in_port, vc, out_vc))
        if not buckets:
            return 0
        moved = 0
        used_inputs: set = set()
        for out_port in self.ports:
            bucket = buckets.get(out_port)
            if not bucket:
                continue
            out = self._out[out_port]
            if out.deliver is None:
                continue
            if used_inputs:
                # crossbar constraint: one flit per input port per cycle
                bucket = [r for r in bucket if r[1] not in used_inputs]
                if not bucket:
                    continue
            _slot, in_port, vc, out_vc = out.arbiter.pick_first(bucket)
            self._forward(in_port, vc, out_port, out_vc)
            used_inputs.add(in_port)
            moved += 1
        return moved

    def _allocation_pass_rescan(self) -> int:
        """Per-output-port rescan allocation (required for adaptive routing)."""
        moved = 0
        used_inputs: set = set()
        for out_port in self.ports:
            out = self._out[out_port]
            if out.deliver is None:
                continue
            requesters = self._requesters(out_port, used_inputs)
            if not requesters:
                # same as the arbiter seeing all-zero request lines: no
                # grant, pointer stays put
                continue
            _slot, in_port, vc, out_vc = out.arbiter.pick_first(requesters)
            self._forward(in_port, vc, out_port, out_vc)
            used_inputs.add(in_port)
            moved += 1
        return moved

    def _requesters(
        self, out_port: Port, used_inputs: set
    ) -> List[Tuple[int, Port, int, int]]:
        """Input VCs that can send a flit to ``out_port`` this cycle.

        Returns ``(arbiter_slot, in_port, in_vc, out_vc)`` tuples in
        ascending slot order (ports and VCs are walked in slot order), ready
        for :meth:`RoundRobinArbiter.pick_first`.
        """
        out = self._out[out_port]
        credits = out.credits
        found: List[Tuple[int, Port, int, int]] = []
        for in_port in self.ports:
            if in_port in used_inputs:
                continue
            base = self._port_base[in_port]
            for vc, ivc in enumerate(self._in[in_port]):
                if not ivc.buffer:
                    continue
                flit = ivc.buffer[0]
                if flit.is_head and ivc.out_port is None:
                    choice = self._route_and_allocate(in_port, vc, flit)
                    if choice is None:
                        continue
                    port_choice, out_vc = choice
                    if port_choice != out_port:
                        continue
                    found.append((base + vc, in_port, vc, out_vc))
                else:
                    if ivc.out_port != out_port or ivc.out_vc is None:
                        continue
                    if credits[ivc.out_vc] <= 0:
                        continue
                    found.append((base + vc, in_port, vc, ivc.out_vc))
        return found

    def _route_and_allocate(
        self, in_port: Port, vc: int, flit: Flit
    ) -> Optional[Tuple[Port, int]]:
        """Route computation + VC allocation for a head flit.

        Pure query: no state is mutated until the flit actually wins switch
        allocation (``_forward`` re-runs this and commits).
        """
        pkt = flit.packet
        # routing functions are pure in (node, dst): memoize per destination
        if self._adaptive and vc == 0:
            candidates = self._escape_cache.get(pkt.dst)
            if candidates is None:
                candidates = self.routing.escape_candidates(  # type: ignore[attr-defined]
                    self.topo, self.node, pkt.dst
                )
                self._escape_cache[pkt.dst] = candidates
        else:
            candidates = self._cand_cache.get(pkt.dst)
            if candidates is None:
                candidates = self.routing.candidates(self.topo, self.node, pkt.dst)
                self._cand_cache[pkt.dst] = candidates
        if self._dateline:
            return self._dateline_choice(pkt, candidates[0])
        cls = pkt.vc_class
        allowed = self._allowed[cls] if cls < self.vc_classes else self._allowed[-1]
        best: Optional[Tuple[Port, int]] = None
        best_credits = -1
        for port_choice in candidates:
            out = self._out[port_choice]
            if out.deliver is None:
                continue
            for out_vc in allowed:
                if self._adaptive and out_vc == 0 and port_choice != candidates[0]:
                    # escape VC only along the deterministic path
                    continue
                if out.vc_owner[out_vc] is not None:
                    continue
                if out.credits[out_vc] <= 0:
                    continue
                if out.credits[out_vc] > best_credits:
                    best = (port_choice, out_vc)
                    best_credits = out.credits[out_vc]
            if best is not None and not self._adaptive:
                break  # deterministic routing: first candidate only
        return best

    def _dateline_choice(self, pkt, out_port: Port) -> Optional[Tuple[Port, int]]:
        """VC selection under the dateline discipline (torus routing).

        A packet uses VC ``pkt.dateline_vc`` for the current dimension; the
        tier resets to 0 when the packet turns into a new dimension, and
        :meth:`_forward` bumps it to 1 when a hop crosses the wrap edge.
        LOCAL ejection may use either tier (whichever has space first).
        """
        out = self._out[out_port]
        if out.deliver is None:
            return None
        if out_port == Port.LOCAL:
            tiers = [pkt.dateline_vc, 1 - pkt.dateline_vc]
        else:
            dim = TorusXYRouting.dimension(out_port)
            tier = pkt.dateline_vc if dim == pkt.dateline_dim else 0
            tiers = [tier]
        for out_vc in tiers:
            if out.vc_owner[out_vc] is None and out.credits[out_vc] > 0:
                return out_port, out_vc
        return None

    def _forward(self, in_port: Port, vc: int, out_port: Port, out_vc: int) -> None:
        ivc = self._in[in_port][vc]
        flit = ivc.buffer.popleft()
        self._buffered -= 1
        out = self._out[out_port]

        if flit.is_head:
            ivc.out_port = out_port
            ivc.out_vc = out_vc
            ivc.active_pid = flit.packet.pid
            out.vc_owner[out_vc] = flit.packet.pid
        flit.vc = out_vc
        out.credits[out_vc] -= 1
        out.flits_sent += 1
        self.flits_forwarded += 1
        if flit.is_head and out_port != Port.LOCAL:
            flit.packet.hops += 1
            if self._dateline:
                pkt = flit.packet
                dim = TorusXYRouting.dimension(out_port)
                if dim != pkt.dateline_dim:
                    pkt.dateline_dim = dim
                    pkt.dateline_vc = 0
                if TorusXYRouting.crosses_wrap(self.topo, self.node, out_port):
                    pkt.dateline_vc = 1

        if flit.is_tail:
            out.vc_owner[out_vc] = None
            ivc.reset_route()

        assert out.deliver is not None
        out.deliver(flit)

        # A buffer slot on our input just freed: return a credit upstream.
        # CreditFn takes the vc directly, so no closure needs minting here.
        credit_fn = self._credit_return[in_port]
        if credit_fn is not None:
            self.engine.schedule(self.credit_latency, credit_fn, vc)

        # More flits may now be movable next cycle.
        self._wake_up()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Router {self.node} occ={self.occupancy()}>"
