"""Arbiters: who wins when several requesters want one resource this cycle.

Routers arbitrate per output port among competing input VCs.  Round-robin
gives fairness; the weighted variant implements the QoS differentiation the
paper wants from prior NoC work ("quality of service guarantees", Section
4.5 citations [18, 34]).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, TypeVar

from repro.errors import ConfigError

__all__ = ["RoundRobinArbiter", "WeightedArbiter", "PriorityArbiter"]

T = TypeVar("T")


class RoundRobinArbiter:
    """Rotating-priority arbiter over a fixed slot count.

    :meth:`pick` selects the first requesting slot at-or-after the pointer
    and advances the pointer past the winner — the standard hardware
    round-robin cell.
    """

    def __init__(self, slots: int):
        if slots < 1:
            raise ConfigError(f"arbiter needs >= 1 slot, got {slots}")
        self.slots = slots
        self._pointer = 0

    def pick(self, requests: Sequence[bool]) -> Optional[int]:
        """Index of the winning slot, or ``None`` if nobody requests."""
        if len(requests) != self.slots:
            raise ConfigError(
                f"expected {self.slots} request lines, got {len(requests)}"
            )
        for offset in range(self.slots):
            idx = (self._pointer + offset) % self.slots
            if requests[idx]:
                self._pointer = (idx + 1) % self.slots
                return idx
        return None

    def pick_first(self, requesters: Sequence[T]) -> Optional[T]:
        """Grant among sparse requesters (slot-sorted tuples, slot at [0]).

        Same rotating-priority policy as :meth:`pick` without materialising
        a dense request-line list: the winner is the first requester whose
        slot is at-or-after the pointer, wrapping to the lowest slot.  The
        router hot path hands us its (slot, ...) tuples directly.
        """
        if not requesters:
            return None
        chosen = None
        pointer = self._pointer
        for item in requesters:
            if item[0] >= pointer:  # type: ignore[index]
                chosen = item
                break
        if chosen is None:
            chosen = requesters[0]
        self._pointer = (chosen[0] + 1) % self.slots  # type: ignore[index]
        return chosen


class PriorityArbiter:
    """Fixed-priority arbiter: lowest index wins.  Used for escape VCs."""

    def __init__(self, slots: int):
        if slots < 1:
            raise ConfigError(f"arbiter needs >= 1 slot, got {slots}")
        self.slots = slots

    def pick(self, requests: Sequence[bool]) -> Optional[int]:
        for idx in range(min(self.slots, len(requests))):
            if requests[idx]:
                return idx
        return None


class WeightedArbiter:
    """Deficit-weighted round robin.

    Each slot accumulates ``weight`` credits per grant opportunity and the
    requesting slot with the largest deficit wins, so long-run grant shares
    converge to the weight ratios even under persistent contention.
    """

    def __init__(self, weights: Sequence[float]):
        if not weights:
            raise ConfigError("weighted arbiter needs at least one weight")
        if any(w <= 0 for w in weights):
            raise ConfigError(f"weights must be positive, got {list(weights)}")
        self.weights = list(weights)
        self.slots = len(weights)
        self._deficit = [0.0] * self.slots
        self._rr = RoundRobinArbiter(self.slots)

    def pick(self, requests: Sequence[bool]) -> Optional[int]:
        if len(requests) != self.slots:
            raise ConfigError(
                f"expected {self.slots} request lines, got {len(requests)}"
            )
        if not any(requests):
            return None
        for idx, req in enumerate(requests):
            if req:
                self._deficit[idx] += self.weights[idx]
        best: Optional[int] = None
        best_deficit = float("-inf")
        for idx, req in enumerate(requests):
            if req and self._deficit[idx] > best_deficit:
                best = idx
                best_deficit = self._deficit[idx]
        assert best is not None
        total = sum(self.weights)
        self._deficit[best] -= total
        # Bound the counters like a hardware DWRR cell: an arbitrary service
        # history must not bank unbounded (anti-)credit against the future.
        for idx in range(self.slots):
            if self._deficit[idx] > total:
                self._deficit[idx] = total
            elif self._deficit[idx] < -total:
                self._deficit[idx] = -total
        return best
