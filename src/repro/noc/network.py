"""The assembled NoC: routers, links, and per-node network interfaces.

:class:`Network` builds one router per topology node, wires neighbouring
routers with latency links, and exposes a :class:`NetworkInterface` (NI)
per node.  The NI is what an Apiary tile's monitor talks to: it packetizes
payloads into flits, injects them with credit flow control, reassembles
arriving flits into packets, and applies ejection backpressure when the
receiver is slow — which is exactly the pressure point the flood/QoS
experiments (D5) exercise.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.errors import ConfigError, RouteError
from repro.noc.flit import DEFAULT_FLIT_BYTES, Flit, Packet, flits_for_bytes
from repro.noc.router import Router
from repro.noc.routing import RoutingFunction, XYRouting
from repro.noc.topology import Mesh2D, Port, Torus2D
from repro.obs.span import SpanRecorder
from repro.sim import Channel, Engine, Event, Histogram, StatsRegistry, Tracer

__all__ = ["Network", "NetworkInterface"]


class NetworkInterface:
    """The tile-side endpoint of the NoC.

    Sending::

        yield ni.send(dst=5, payload=msg, payload_bytes=64)   # blocks until
                                                              # fully injected

    Receiving::

        pkt = yield ni.recv()        # blocks until a packet is reassembled
    """

    def __init__(self, network: "Network", node: int):
        self.network = network
        self.node = node
        self.engine = network.engine
        self._spans = network.spans
        num_vcs = network.num_vcs
        depth = network.buffer_depth
        self.name = f"ni{node}"

        # injection side: credits for the router's LOCAL input buffers
        self._inject_credits = [depth] * num_vcs
        self._inject_queue: Channel = Channel(
            self.engine, capacity=network.inject_queue_depth,
            name=f"{self.name}.inject",
        )
        self._credit_event: Optional[Event] = None
        #: VC chosen by the current packet's head flit; body/tail flits of
        #: the same packet must follow it (wormhole continuity)
        self._current_vc: Optional[int] = None

        # ejection side: reassembly and delivery
        self._eject_buffer: Deque[Flit] = deque()
        self._eject_event: Optional[Event] = None
        self._partial: Dict[int, int] = {}  # pid -> flits seen
        self.delivered: Channel = Channel(
            self.engine, capacity=network.delivery_queue_depth,
            name=f"{self.name}.delivered",
        )
        self.packets_sent = 0
        self.packets_received = 0
        #: fault injection: packets handed to the NI before this cycle are
        #: silently discarded (the sender sees a successful injection, the
        #: packet never traverses the fabric — a lossy physical link).
        self.drop_until = 0
        self.packets_dropped = 0
        self.engine.process(self._injector(), name=f"{self.name}.inj")
        self.engine.process(self._ejector(), name=f"{self.name}.ej")

    # -- public API --------------------------------------------------------

    def send(
        self,
        dst: int,
        payload: Any = None,
        payload_bytes: int = 0,
        vc_class: int = 0,
    ) -> Event:
        """Queue a payload for ``dst``; event succeeds with the Packet once
        the *whole packet* has been injected into the router."""
        pkt = self.network.make_packet(
            src=self.node, dst=dst, payload=payload,
            payload_bytes=payload_bytes, vc_class=vc_class,
        )
        return self.send_packet(pkt)

    def send_packet(self, pkt: Packet) -> Event:
        if pkt.src != self.node:
            raise RouteError(f"packet src {pkt.src} != NI node {self.node}")
        done = self.engine.event(f"{self.name}.send#{pkt.pid}")
        queued = self._inject_queue.put((pkt, done))
        if queued.failed:  # pragma: no cover - inject queue never closes
            raise ConfigError("inject queue closed")
        return done

    def try_send_packet(self, pkt: Packet) -> Optional[Event]:
        """Non-blocking variant: ``None`` when the injection queue is full."""
        done = self.engine.event(f"{self.name}.send#{pkt.pid}")
        if not self._inject_queue.try_put((pkt, done)):
            return None
        return done

    def recv(self) -> Event:
        """Event that succeeds with the next fully reassembled packet."""
        return self.delivered.get()

    @property
    def inject_backlog(self) -> int:
        return len(self._inject_queue)

    def drop_for(self, cycles: int) -> None:
        """Open a loss window: packets injected during it vanish silently.

        Drops happen at injection time, never mid-flight — dropping flits
        inside the fabric would corrupt the credit protocol and wormhole
        reassembly, which real NoCs guarantee against; what fails in the
        field is the tile-to-NoC interface, modelled here.
        """
        self.drop_until = max(self.drop_until, self.engine.now + cycles)

    # -- router-facing callbacks (wired by Network) --------------------------

    def _local_credit(self, vc: int) -> None:
        self._inject_credits[vc] += 1
        if self._credit_event is not None and not self._credit_event.triggered:
            self._credit_event.succeed(None)

    def _accept_flit(self, flit: Flit) -> None:
        self._eject_buffer.append(flit)
        if self._eject_event is not None and not self._eject_event.triggered:
            self._eject_event.succeed(None)

    # -- processes -----------------------------------------------------------

    def _injector(self):
        """Drain the injection queue, one packet at a time, flit by flit.

        One flit enters the router per cycle at most (link width), and only
        when a credit for the chosen LOCAL-input VC is available.
        """
        router = self.network.router(self.node)
        while True:
            pkt, done = yield self._inject_queue.get()
            if self.engine.now < self.drop_until:
                self.packets_dropped += 1
                self.network._ctr_dropped.inc()
                done.succeed(pkt)  # sender saw a clean injection; data is gone
                continue
            pkt.injected_at = self.engine.now
            if self._spans.enabled:
                # causal tracing: a traced message opens a noc.transit span
                # covering injection start -> tail delivery at the far NI
                tid = getattr(pkt.payload, "trace_id", 0)
                if tid:
                    pkt.trace_id = tid
                    pkt.span_id = self._spans.open(
                        tid, "noc.transit", "noc", self.name,
                        self.engine.now,
                        parent_id=getattr(pkt.payload, "span_id", 0),
                        pid=pkt.pid, src=pkt.src, dst=pkt.dst,
                        flits=pkt.size_flits,
                    )
            vcs = router.allowed_vcs(pkt.vc_class)
            for flit in pkt.make_flits():
                while True:
                    vc = self._pick_credit_vc(vcs, flit)
                    if vc is not None:
                        break
                    self._credit_event = self.engine.event(f"{self.name}.cred")
                    yield self._credit_event
                    self._credit_event = None
                flit.vc = vc
                self._inject_credits[vc] -= 1
                router.accept_flit(Port.LOCAL, flit)
                yield 1
            self.packets_sent += 1
            self.network._ctr_injected.inc()
            done.succeed(pkt)

    def _pick_credit_vc(self, vcs: List[int], flit: Flit) -> Optional[int]:
        """Choose the injection VC.

        All flits of one packet must use the same VC on the injection link
        (wormhole); the head picks the allowed VC with the most credits and
        the rest follow via ``flit.vc`` continuity handled by the caller
        keeping ``vcs`` fixed — we simply reuse the head's choice stored in
        the packet id ownership of the router's LOCAL input VC.
        """
        if flit.is_head:
            best, best_credits = None, 0
            for vc in vcs:
                if self._inject_credits[vc] > best_credits:
                    best, best_credits = vc, self._inject_credits[vc]
            self._current_vc = best
            return best
        vc = self._current_vc
        if vc is not None and self._inject_credits[vc] > 0:
            return vc
        return None

    def _ejector(self):
        """Move flits from the ejection buffer into delivered packets.

        The credit for each consumed flit returns to the router only after
        the delivery channel accepted the packet — a slow receiver therefore
        backpressures the NoC instead of dropping traffic.
        """
        router = self.network.router(self.node)
        while True:
            while not self._eject_buffer:
                self._eject_event = self.engine.event(f"{self.name}.ej")
                yield self._eject_event
                self._eject_event = None
            flit = self._eject_buffer.popleft()
            pkt = flit.packet
            self._partial[pkt.pid] = self._partial.get(pkt.pid, 0) + 1
            if flit.is_tail:
                if self._partial.pop(pkt.pid) != pkt.size_flits:
                    raise ConfigError(
                        f"{self.name}: reassembled wrong flit count for "
                        f"packet {pkt.pid}"
                    )
                pkt.delivered_at = self.engine.now
                self.packets_received += 1
                self.network.record_delivery(pkt)
                yield self.delivered.put(pkt)
            # flit consumed: return its LOCAL-output credit to the router
            router.credit_arrived(Port.LOCAL, flit.vc)
            yield 1


class Network:
    """A complete NoC instance.

    Parameters mirror the knobs a hardened-NoC datasheet exposes; defaults
    approximate a Versal-style NoC (128-bit flits, 1-cycle links, small VC
    buffers).

    Parameters
    ----------
    engine: simulation engine.
    topo: :class:`Mesh2D` or :class:`Torus2D`.
    routing: routing function (default XY).
    num_vcs / vc_classes: virtual channels and traffic classes.
    buffer_depth: flit slots per input VC.
    hop_latency: cycles from leaving a router to arriving at the next
        (router pipeline + wire).
    credit_latency: cycles for a credit to return upstream.
    router_cls: router implementation to instantiate per node; the P1
        benchmark passes :class:`repro.noc.legacy.LegacyRouter` to measure
        against the frozen pre-optimization datapath.
    """

    def __init__(
        self,
        engine: Engine,
        topo: Mesh2D,
        routing: Optional[RoutingFunction] = None,
        num_vcs: int = 2,
        vc_classes: int = 1,
        buffer_depth: int = 4,
        hop_latency: int = 2,
        credit_latency: int = 1,
        flit_bytes: int = DEFAULT_FLIT_BYTES,
        inject_queue_depth: int = 16,
        delivery_queue_depth: int = 16,
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[Tracer] = None,
        spans: Optional[SpanRecorder] = None,
        router_cls: type = Router,
    ):
        from repro.noc.routing import MinimalAdaptiveRouting, TorusXYRouting

        routing = routing or XYRouting()
        if isinstance(topo, Torus2D) and isinstance(routing, MinimalAdaptiveRouting):
            raise ConfigError(
                "adaptive routing on a torus needs dateline VCs; "
                "use TorusXYRouting (or plain XY/YX) on torus topologies"
            )
        if isinstance(routing, TorusXYRouting) and not isinstance(topo, Torus2D):
            raise ConfigError(
                "TorusXYRouting picks wraparound links; it only makes "
                "sense on a Torus2D topology"
            )
        if hop_latency < 1:
            raise ConfigError(f"hop latency must be >= 1, got {hop_latency}")
        self.engine = engine
        self.topo = topo
        self.routing = routing
        self.num_vcs = num_vcs
        self.vc_classes = vc_classes
        self.buffer_depth = buffer_depth
        self.hop_latency = hop_latency
        self.credit_latency = credit_latency
        self.flit_bytes = flit_bytes
        self.inject_queue_depth = inject_queue_depth
        self.delivery_queue_depth = delivery_queue_depth
        self.stats = stats if stats is not None else StatsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.spans = spans if spans is not None else SpanRecorder()
        # hot-path stat handles, resolved once: the per-packet loops must
        # not pay a string-keyed registry lookup per event
        self._ctr_injected = self.stats.counter("noc.packets_injected")
        self._ctr_delivered = self.stats.counter("noc.packets_delivered")
        self._ctr_dropped = self.stats.counter("noc.packets_dropped")
        # quantile sketches, not exact histograms: the NoC records a
        # latency per delivered packet for the lifetime of the run, so
        # exact-sample storage is unbounded on long serving runs
        self._hist_latency = self.stats.sketch("noc.packet_latency")
        self._hist_hops = self.stats.sketch("noc.packet_hops")
        self._next_pid = 0
        # fault injection: (src, port) -> (extra hop latency, expires at).
        # _link_last_arrival keeps per-link delivery monotone so a window
        # expiring mid-packet cannot reorder flits (wormhole requires FIFO
        # links).
        self._link_slow: Dict[Any, Any] = {}
        self._link_last_arrival: Dict[Any, int] = {}

        self._routers: List[Router] = [
            router_cls(
                engine, node, topo, routing,
                num_vcs=num_vcs, vc_classes=vc_classes,
                buffer_depth=buffer_depth, credit_latency=credit_latency,
            )
            for node in topo.nodes()
        ]
        self._interfaces: List[NetworkInterface] = [
            NetworkInterface(self, node) for node in topo.nodes()
        ]
        self._wire()

    # -- construction --------------------------------------------------------

    def _wire(self) -> None:
        for src, port, dst in self.topo.links():
            src_router = self._routers[src]
            dst_router = self._routers[dst]
            in_port = port.opposite

            # the arrival/credit callbacks are built once per link (C-level
            # partials) and handed the flit/vc as the schedule arg — per-flit
            # lambdas were measurable allocation churn at flood rates
            arrive = partial(dst_router.accept_flit, in_port)

            def deliver(flit: Flit, _key=(src, port), _arrive=arrive) -> None:
                last = self._link_last_arrival
                if self._link_slow or last:
                    # a link is (or recently was) degraded: honour per-link
                    # FIFO monotonicity across the latency change
                    hop = self.hop_latency
                    delay = hop + self._link_extra(_key)
                    arrival = max(self.engine.now + delay,
                                  last.get(_key, 0))
                    if delay == hop and arrival == self.engine.now + hop:
                        # constraint no longer binding (healthy link, queue
                        # drained): retire the entry so the whole fabric
                        # returns to the bookkeeping-free path below
                        last.pop(_key, None)
                    else:
                        last[_key] = arrival
                    self.engine.schedule(arrival - self.engine.now,
                                         _arrive, flit)
                else:
                    # healthy fabric: constant hop latency keeps per-link
                    # arrivals monotone by construction — no dict traffic
                    self.engine.schedule(self.hop_latency, _arrive, flit)

            credit = partial(src_router.credit_arrived, port)

            src_router.connect_output(port, deliver, credit)
            dst_router.connect_input_credit(in_port, credit)

        for node in self.topo.nodes():
            router = self._routers[node]
            ni = self._interfaces[node]

            def deliver_local(flit: Flit, _ni=ni) -> None:
                self.engine.schedule(self.hop_latency, _ni._accept_flit, flit)

            router.connect_output(Port.LOCAL, deliver_local, lambda vc: None)
            router.connect_input_credit(Port.LOCAL, ni._local_credit)

    def _link_extra(self, key) -> int:
        entry = self._link_slow.get(key)
        if entry is None:
            return 0
        extra, until = entry
        if self.engine.now >= until:
            del self._link_slow[key]
            return 0
        return extra

    # -- public API -----------------------------------------------------------

    def slow_link(self, src: int, port: Port, extra_latency: int,
                  duration: int) -> None:
        """Degrade one directed link for ``duration`` cycles (fault
        injection: a marginal SerDes lane dropping to a lower rate)."""
        if extra_latency < 0 or duration < 1:
            raise ConfigError("slow_link needs extra >= 0 and duration >= 1")
        self._link_slow[(src, port)] = (
            extra_latency, self.engine.now + duration
        )
        self.stats.counter("noc.links_degraded").inc()

    def router(self, node: int) -> Router:
        return self._routers[node]

    def interface(self, node: int) -> NetworkInterface:
        return self._interfaces[node]

    def make_packet(
        self,
        src: int,
        dst: int,
        payload: Any = None,
        payload_bytes: int = 0,
        vc_class: int = 0,
    ) -> Packet:
        if not 0 <= dst < self.topo.node_count:
            raise RouteError(f"destination {dst} outside topology")
        self._next_pid += 1
        return Packet(
            pid=self._next_pid,
            src=src,
            dst=dst,
            size_flits=flits_for_bytes(payload_bytes, self.flit_bytes),
            vc_class=vc_class,
            payload=payload,
        )

    def record_delivery(self, pkt: Packet) -> None:
        self._ctr_delivered.inc()
        self._hist_latency.record(pkt.latency)
        self._hist_hops.record(pkt.hops)
        if pkt.span_id:
            # eject side of the causal trace: the tail flit reassembled
            self.spans.close(pkt.span_id, self.engine.now,
                             hops=pkt.hops, latency=pkt.latency)
        if self.tracer.enabled:
            self.tracer.emit(
                self.engine.now, "noc.deliver", f"ni{pkt.dst}",
                pid=pkt.pid, src=pkt.src, latency=pkt.latency,
            )

    def total_flits_forwarded(self) -> int:
        return sum(r.flits_forwarded for r in self._routers)

    def in_flight_packets(self) -> int:
        return self._ctr_injected.value - self._ctr_delivered.value

    def zero_load_latency(self, src: int, dst: int, size_flits: int = 1) -> int:
        """Analytic lower bound: hops * hop_latency + serialization.

        Used by tests to sanity-check measured latencies and by the
        monitor-overhead experiment as the no-contention baseline.
        """
        hops = self.topo.hop_distance(src, dst)
        # (hops + 1) link traversals, counting the LOCAL ejection hop, plus
        # one cycle per additional flit of injection serialization.
        return (hops + 1) * self.hop_latency + (size_flits - 1)
