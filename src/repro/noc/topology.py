"""NoC topologies: 2-D mesh (the Apiary default) and torus variant.

A topology maps node ids to grid coordinates and answers "which output
port leads from node A toward neighbour B".  Routers and routing functions
are topology-agnostic; they work through this interface.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigError, RouteError

__all__ = ["Port", "Mesh2D", "Torus2D"]


class Port(enum.IntEnum):
    """Router port directions.  LOCAL attaches the tile's network interface."""

    LOCAL = 0
    NORTH = 1
    EAST = 2
    SOUTH = 3
    WEST = 4

    @property
    def opposite(self) -> "Port":
        if self == Port.LOCAL:
            return Port.LOCAL
        return _OPPOSITE[self]


_OPPOSITE = {
    Port.NORTH: Port.SOUTH,
    Port.SOUTH: Port.NORTH,
    Port.EAST: Port.WEST,
    Port.WEST: Port.EAST,
}


class Mesh2D:
    """A ``width x height`` 2-D mesh.

    Node ids are row-major: node ``(x, y)`` has id ``y * width + x``.
    North decreases ``y`` (grid drawn with y growing downward, matching the
    usual NoC floorplan diagrams, including the paper's Figure 1).
    """

    def __init__(self, width: int, height: int):
        if width < 1 or height < 1:
            raise ConfigError(f"mesh must be >= 1x1, got {width}x{height}")
        self.width = width
        self.height = height

    @property
    def node_count(self) -> int:
        return self.width * self.height

    def nodes(self) -> Iterator[int]:
        return iter(range(self.node_count))

    def coords(self, node: int) -> Tuple[int, int]:
        if not 0 <= node < self.node_count:
            raise RouteError(f"node {node} outside {self.width}x{self.height} mesh")
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise RouteError(f"coords ({x},{y}) outside mesh")
        return y * self.width + x

    def neighbor(self, node: int, port: Port) -> Optional[int]:
        """The node one hop away through ``port``; ``None`` at an edge."""
        x, y = self.coords(node)
        if port == Port.NORTH:
            return self.node_at(x, y - 1) if y > 0 else None
        if port == Port.SOUTH:
            return self.node_at(x, y + 1) if y < self.height - 1 else None
        if port == Port.EAST:
            return self.node_at(x + 1, y) if x < self.width - 1 else None
        if port == Port.WEST:
            return self.node_at(x - 1, y) if x > 0 else None
        raise RouteError(f"no neighbor through port {port!r}")

    def links(self) -> List[Tuple[int, Port, int]]:
        """Every directed link as ``(from_node, out_port, to_node)``."""
        out = []
        for node in self.nodes():
            for port in (Port.NORTH, Port.EAST, Port.SOUTH, Port.WEST):
                dst = self.neighbor(node, port)
                if dst is not None:
                    out.append((node, port, dst))
        return out

    def hop_distance(self, a: int, b: int) -> int:
        ax, ay = self.coords(a)
        bx, by = self.coords(b)
        return abs(ax - bx) + abs(ay - by)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Mesh2D {self.width}x{self.height}>"


class Torus2D(Mesh2D):
    """A 2-D torus: mesh with wraparound links.

    Shorter diameters at the cost of the wrap links; included to let the
    topology ablations compare fabric choices.  Note XY routing on a torus
    needs VCs to stay deadlock-free; the router enforces a dateline VC flip.
    """

    def neighbor(self, node: int, port: Port) -> Optional[int]:
        x, y = self.coords(node)
        if port == Port.NORTH:
            return self.node_at(x, (y - 1) % self.height)
        if port == Port.SOUTH:
            return self.node_at(x, (y + 1) % self.height)
        if port == Port.EAST:
            return self.node_at((x + 1) % self.width, y)
        if port == Port.WEST:
            return self.node_at((x - 1) % self.width, y)
        raise RouteError(f"no neighbor through port {port!r}")

    def hop_distance(self, a: int, b: int) -> int:
        ax, ay = self.coords(a)
        bx, by = self.coords(b)
        dx = abs(ax - bx)
        dy = abs(ay - by)
        return min(dx, self.width - dx) + min(dy, self.height - dy)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Torus2D {self.width}x{self.height}>"
