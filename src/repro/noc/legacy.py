"""Frozen pre-optimization router — the P1 benchmark baseline.

:class:`LegacyRouter` pins the switch-allocation hot path exactly as it
stood before the simulator performance overhaul: full input-buffer scans to
answer "any work?", dense request-line lists rebuilt per output port per
pass, ``list.index`` slot arithmetic, per-call routing-function invocation
(no candidate memoization), per-class VC lists rebuilt on every head flit,
and a closure minted per returned credit.

The P1 benchmark (``benchmarks/test_bench_simspeed.py``) runs the same
workload on (:class:`~repro.sim.legacy.LegacyEngine` + ``LegacyRouter``)
and on the current fast path in the same process, so the reported speedup
is measured, not remembered.  Keep this file frozen; it must keep producing
byte-identical simulation results to the optimized router.

Lives in ``noc.legacy`` (not ``sim.legacy``) because importing the router
from ``sim`` would create an import cycle: ``noc.router`` imports ``sim``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.noc.flit import Flit
from repro.noc.router import Router
from repro.noc.routing import TorusXYRouting
from repro.noc.topology import Port

__all__ = ["LegacyRouter"]


class LegacyRouter(Router):
    """The pre-overhaul router datapath, preserved verbatim."""

    def occupancy(self) -> int:
        return sum(
            len(ivc.buffer) for vcs in self._in.values() for ivc in vcs
        )

    def allowed_vcs(self, vc_class: int) -> List[int]:
        cls = min(vc_class, self.vc_classes - 1)
        return [v for v in range(self.num_vcs) if v % self.vc_classes == cls]

    def _has_buffered_flits(self) -> bool:
        for vcs in self._in.values():
            for ivc in vcs:
                if ivc.buffer:
                    return True
        return False

    def _allocation_pass(self) -> int:
        moved = 0
        used_inputs: set = set()
        for out_port in self.ports:
            out = self._out[out_port]
            if out.deliver is None:
                continue
            requesters = self._requesters(out_port, used_inputs)
            request_lines = [False] * (len(self.ports) * self.num_vcs)
            by_slot: Dict[int, Tuple[Port, int, int]] = {}
            for in_port, vc, out_vc in requesters:
                slot = self.ports.index(in_port) * self.num_vcs + vc
                request_lines[slot] = True
                by_slot[slot] = (in_port, vc, out_vc)
            winner = out.arbiter.pick(request_lines)
            if winner is None:
                continue
            in_port, vc, out_vc = by_slot[winner]
            self._forward(in_port, vc, out_port, out_vc)
            used_inputs.add(in_port)
            moved += 1
        return moved

    def _requesters(  # type: ignore[override]
        self, out_port: Port, used_inputs: set
    ) -> List[Tuple[Port, int, int]]:
        out = self._out[out_port]
        found: List[Tuple[Port, int, int]] = []
        for in_port in self.ports:
            if in_port in used_inputs:
                continue
            for vc, ivc in enumerate(self._in[in_port]):
                if not ivc.buffer:
                    continue
                flit = ivc.buffer[0]
                if flit.is_head and ivc.out_port is None:
                    choice = self._route_and_allocate(in_port, vc, flit)
                    if choice is None:
                        continue
                    port_choice, out_vc = choice
                    if port_choice != out_port:
                        continue
                    found.append((in_port, vc, out_vc))
                else:
                    if ivc.out_port != out_port or ivc.out_vc is None:
                        continue
                    if out.credits[ivc.out_vc] <= 0:
                        continue
                    found.append((in_port, vc, ivc.out_vc))
        return found

    def _route_and_allocate(
        self, in_port: Port, vc: int, flit: Flit
    ) -> Optional[Tuple[Port, int]]:
        pkt = flit.packet
        if self._adaptive and vc == 0:
            candidates = self.routing.escape_candidates(  # type: ignore[attr-defined]
                self.topo, self.node, pkt.dst
            )
        else:
            candidates = self.routing.candidates(self.topo, self.node, pkt.dst)
        if self._dateline:
            return self._dateline_choice(pkt, candidates[0])
        allowed = self.allowed_vcs(pkt.vc_class)
        best: Optional[Tuple[Port, int]] = None
        best_credits = -1
        for port_choice in candidates:
            out = self._out[port_choice]
            if out.deliver is None:
                continue
            for out_vc in allowed:
                if self._adaptive and out_vc == 0 and port_choice != candidates[0]:
                    continue
                if out.vc_owner[out_vc] is not None:
                    continue
                if out.credits[out_vc] <= 0:
                    continue
                if out.credits[out_vc] > best_credits:
                    best = (port_choice, out_vc)
                    best_credits = out.credits[out_vc]
            if best is not None and not self._adaptive:
                break
        return best

    def _forward(self, in_port: Port, vc: int, out_port: Port, out_vc: int) -> None:
        ivc = self._in[in_port][vc]
        flit = ivc.buffer.popleft()
        self._buffered -= 1
        out = self._out[out_port]

        if flit.is_head:
            ivc.out_port = out_port
            ivc.out_vc = out_vc
            ivc.active_pid = flit.packet.pid
            out.vc_owner[out_vc] = flit.packet.pid
        flit.vc = out_vc
        out.credits[out_vc] -= 1
        out.flits_sent += 1
        self.flits_forwarded += 1
        if flit.is_head and out_port != Port.LOCAL:
            flit.packet.hops += 1
            if self._dateline:
                pkt = flit.packet
                dim = TorusXYRouting.dimension(out_port)
                if dim != pkt.dateline_dim:
                    pkt.dateline_dim = dim
                    pkt.dateline_vc = 0
                if TorusXYRouting.crosses_wrap(self.topo, self.node, out_port):
                    pkt.dateline_vc = 1

        if flit.is_tail:
            out.vc_owner[out_vc] = None
            ivc.reset_route()

        assert out.deliver is not None
        out.deliver(flit)

        credit_fn = self._credit_return[in_port]
        if credit_fn is not None:
            self.engine.schedule(self.credit_latency, lambda _: credit_fn(vc))

        self._wake_up()
