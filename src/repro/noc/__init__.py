"""Network-on-Chip substrate.

Apiary's physical interconnect (Section 4.3): a switched fabric carrying
message-passing traffic between tiles.  This package provides the mesh/torus
topologies, flit-level wormhole routers with virtual channels and credit
flow control, routing policies, arbiters, QoS token buckets, the assembled
:class:`Network` with per-node interfaces, and a progress watchdog.
"""

from repro.noc.arbiter import PriorityArbiter, RoundRobinArbiter, WeightedArbiter
from repro.noc.deadlock import ProgressWatchdog
from repro.noc.flit import DEFAULT_FLIT_BYTES, Flit, FlitKind, Packet, flits_for_bytes
from repro.noc.legacy import LegacyRouter
from repro.noc.network import Network, NetworkInterface
from repro.noc.qos import RateMeter, TokenBucket
from repro.noc.router import Router
from repro.noc.routing import (
    MinimalAdaptiveRouting,
    TorusXYRouting,
    XYRouting,
    YXRouting,
)
from repro.noc.topology import Mesh2D, Port, Torus2D

__all__ = [
    "Mesh2D",
    "Torus2D",
    "Port",
    "Flit",
    "FlitKind",
    "Packet",
    "flits_for_bytes",
    "DEFAULT_FLIT_BYTES",
    "XYRouting",
    "YXRouting",
    "MinimalAdaptiveRouting",
    "TorusXYRouting",
    "RoundRobinArbiter",
    "WeightedArbiter",
    "PriorityArbiter",
    "TokenBucket",
    "RateMeter",
    "Router",
    "LegacyRouter",
    "Network",
    "NetworkInterface",
    "ProgressWatchdog",
]
