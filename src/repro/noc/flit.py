"""Packets and flits — the units of NoC transfer.

Apiary messages are carried over the NoC as *packets*; a packet is split
into fixed-width *flits* (flow-control units).  Wormhole switching forwards
a packet flit-by-flit: the head flit opens a path through each router and
the tail flit releases it, so buffers stay small (the property that makes
hardened NoCs cheap, which the paper leans on).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ConfigError

__all__ = ["FlitKind", "Flit", "Packet", "flits_for_bytes"]

#: Bytes carried by one flit.  128-bit links are typical for hardened NoCs
#: (Versal's NoC moves 128 bits/cycle per channel).
DEFAULT_FLIT_BYTES = 16

#: Bytes of packet header carried in the head flit (routing + Apiary header).
HEADER_BYTES = 16


class FlitKind(enum.Enum):
    HEAD = "head"
    BODY = "body"
    TAIL = "tail"
    #: single-flit packet: head and tail at once
    HEADTAIL = "headtail"


def flits_for_bytes(payload_bytes: int, flit_bytes: int = DEFAULT_FLIT_BYTES) -> int:
    """Number of flits for a payload, including the header flit."""
    if payload_bytes < 0:
        raise ConfigError(f"negative payload size {payload_bytes}")
    return 1 + math.ceil(payload_bytes / flit_bytes)


@dataclass
class Packet:
    """One NoC packet.

    Attributes
    ----------
    pid: globally unique packet id (assigned by the network).
    src, dst: node ids in the topology.
    size_flits: total flits including the head.
    vc_class: traffic class; mapped to a virtual-channel set by routers.
      Class 0 is best-effort, higher classes get dedicated VCs (QoS).
    payload: opaque payload object (the Apiary message rides here).
    """

    pid: int
    src: int
    dst: int
    size_flits: int
    vc_class: int = 0
    payload: Any = None
    injected_at: int = -1
    delivered_at: int = -1
    hops: int = 0
    #: dateline-routing state (torus only): current VC tier and the
    #: dimension being traversed; managed by routers, reset per dimension
    dateline_vc: int = 0
    dateline_dim: str = ""
    #: causal tracing (0 = untraced): trace id copied from the payload
    #: message at injection, and the id of the open ``noc.transit`` span
    #: the delivery path must close
    trace_id: int = 0
    span_id: int = 0

    def __post_init__(self) -> None:
        if self.size_flits < 1:
            raise ConfigError(f"packet needs >= 1 flit, got {self.size_flits}")
        if self.vc_class < 0:
            raise ConfigError(f"negative vc_class {self.vc_class}")

    @property
    def latency(self) -> int:
        """Injection-to-delivery latency in cycles (-1 while in flight)."""
        if self.delivered_at < 0 or self.injected_at < 0:
            return -1
        return self.delivered_at - self.injected_at

    def make_flits(self) -> "list[Flit]":
        """Expand the packet into its flit sequence."""
        if self.size_flits == 1:
            return [Flit(kind=FlitKind.HEADTAIL, packet=self, seq=0)]
        flits = [Flit(kind=FlitKind.HEAD, packet=self, seq=0)]
        for i in range(1, self.size_flits - 1):
            flits.append(Flit(kind=FlitKind.BODY, packet=self, seq=i))
        flits.append(Flit(kind=FlitKind.TAIL, packet=self, seq=self.size_flits - 1))
        return flits


@dataclass
class Flit:
    """One flow-control unit of a packet."""

    kind: FlitKind
    packet: Packet
    seq: int
    #: virtual channel assigned on the link the flit currently occupies
    vc: int = 0
    #: head/tail flags, precomputed once — routers consult these per flit
    #: per hop, and a property call there is measurable at flood rates
    is_head: bool = field(init=False)
    is_tail: bool = field(init=False)

    def __post_init__(self) -> None:
        self.is_head = self.kind in (FlitKind.HEAD, FlitKind.HEADTAIL)
        self.is_tail = self.kind in (FlitKind.TAIL, FlitKind.HEADTAIL)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Flit p{self.packet.pid} {self.kind.value} "
            f"{self.seq}/{self.packet.size_flits - 1} vc{self.vc}>"
        )
