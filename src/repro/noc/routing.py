"""Routing functions.

A routing function answers: given a packet at ``node`` heading for ``dst``,
which output port(s) may it take?  Dimension-ordered XY routing is the
Apiary default — it is deterministic and deadlock-free on a mesh, which is
why hardened FPGA NoCs use it.  YX and a minimal-adaptive router (with XY
as the escape path) are provided for the routing ablation.
"""

from __future__ import annotations

from typing import List, Protocol

from repro.errors import RouteError
from repro.noc.topology import Mesh2D, Port

__all__ = [
    "RoutingFunction",
    "XYRouting",
    "YXRouting",
    "MinimalAdaptiveRouting",
    "TorusXYRouting",
]


class RoutingFunction(Protocol):
    """Interface every routing policy implements."""

    def candidates(self, topo: Mesh2D, node: int, dst: int) -> List[Port]:
        """Output ports, most-preferred first.  LOCAL means 'eject here'."""
        ...


class XYRouting:
    """Dimension-ordered: correct X first, then Y.  Deadlock-free on meshes."""

    name = "xy"

    def candidates(self, topo: Mesh2D, node: int, dst: int) -> List[Port]:
        if node == dst:
            return [Port.LOCAL]
        x, y = topo.coords(node)
        dx, dy = topo.coords(dst)
        if x < dx:
            return [Port.EAST]
        if x > dx:
            return [Port.WEST]
        if y < dy:
            return [Port.SOUTH]
        return [Port.NORTH]


class YXRouting:
    """Dimension-ordered: correct Y first, then X."""

    name = "yx"

    def candidates(self, topo: Mesh2D, node: int, dst: int) -> List[Port]:
        if node == dst:
            return [Port.LOCAL]
        x, y = topo.coords(node)
        dx, dy = topo.coords(dst)
        if y < dy:
            return [Port.SOUTH]
        if y > dy:
            return [Port.NORTH]
        if x < dx:
            return [Port.EAST]
        return [Port.WEST]


class TorusXYRouting:
    """Dimension-ordered shortest-direction routing for tori.

    Takes the wraparound link whenever it shortens the path (ties go to the
    positive direction).  Wrap links close each ring into a cycle, so this
    is only deadlock-free with *dateline* virtual channels: a packet starts
    each dimension on VC 0 and switches to VC 1 after crossing that
    dimension's wrap edge — breaking the ring's cyclic channel dependency
    (Dally & Seitz).  The router enforces the VC discipline; this class
    only picks directions and answers wrap/dimension queries.

    Requires ``num_vcs >= 2`` with a single VC class (both VCs belong to
    the dateline scheme).
    """

    name = "torus-xy"
    needs_dateline_vcs = True

    def candidates(self, topo: Mesh2D, node: int, dst: int) -> List[Port]:
        if node == dst:
            return [Port.LOCAL]
        x, y = topo.coords(node)
        dx, dy = topo.coords(dst)
        if x != dx:
            return [self._direction(x, dx, topo.width, Port.EAST, Port.WEST)]
        return [self._direction(y, dy, topo.height, Port.SOUTH, Port.NORTH)]

    @staticmethod
    def _direction(here: int, there: int, extent: int,
                   positive: Port, negative: Port) -> Port:
        forward = (there - here) % extent
        backward = (here - there) % extent
        return positive if forward <= backward else negative

    @staticmethod
    def crosses_wrap(topo: Mesh2D, node: int, port: Port) -> bool:
        """Does the hop from ``node`` through ``port`` use a wrap link?"""
        x, y = topo.coords(node)
        if port == Port.EAST:
            return x == topo.width - 1
        if port == Port.WEST:
            return x == 0
        if port == Port.SOUTH:
            return y == topo.height - 1
        if port == Port.NORTH:
            return y == 0
        return False

    @staticmethod
    def dimension(port: Port) -> str:
        return "x" if port in (Port.EAST, Port.WEST) else "y"


class MinimalAdaptiveRouting:
    """Minimal adaptive routing: any productive direction is a candidate.

    Candidates are returned with the X move first (so a congested router can
    fall back to the Y move and vice versa).  Deadlock freedom comes from
    the router restricting VC 0 to the XY-ordered candidate only (escape
    VC, per Duato's protocol); adaptive choices use VCs >= 1.
    """

    name = "adaptive"

    def __init__(self) -> None:
        self._escape = XYRouting()

    def candidates(self, topo: Mesh2D, node: int, dst: int) -> List[Port]:
        if node == dst:
            return [Port.LOCAL]
        x, y = topo.coords(node)
        dx, dy = topo.coords(dst)
        ports: List[Port] = []
        if x < dx:
            ports.append(Port.EAST)
        elif x > dx:
            ports.append(Port.WEST)
        if y < dy:
            ports.append(Port.SOUTH)
        elif y > dy:
            ports.append(Port.NORTH)
        if not ports:
            raise RouteError(f"no productive port from {node} to {dst}")
        return ports

    def escape_candidates(self, topo: Mesh2D, node: int, dst: int) -> List[Port]:
        """The deadlock-free escape path (used for VC 0)."""
        return self._escape.candidates(topo, node, dst)
