"""Experiment harness: drive identical workloads against every system.

The D1/D2/D3 experiments all share one shape — a remote client host issues
KV RPCs over the datacenter fabric to an accelerated service — and differ
only in the system under test: Apiary (direct-attached, full OS), hosted
(Coyote-style CPU mediation, kernel or bypass stack), or bare (direct-
attached, no OS).  :func:`run_kv_workload` builds the chosen stack, runs
the workload, and returns one uniform result dict.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.apps.kv_service import KV_PORT, deploy_kv_on_apiary, make_kv_handler
from repro.baselines.bare import BareFpgaSystem
from repro.baselines.hosted import HostedFpgaSystem
from repro.errors import ConfigError
from repro.eval.energy import EnergyModel
from repro.kernel.system import ApiarySystem
from repro.net.frame import EthernetFabric
from repro.sim import Engine, RngPool
from repro.workloads.client import RemoteClientHost
from repro.workloads.generators import poisson_gaps, zipf_keys

__all__ = ["run_kv_workload", "SYSTEM_KINDS"]

SYSTEM_KINDS = ("apiary", "hosted", "hosted_bypass", "bare")

FABRIC_LATENCY = 500  # one-way datacenter hop in fabric cycles (~2 us)
SERVER_MAC = "server0"
CLIENT_MAC = "client0"


def run_kv_workload(
    kind: str,
    n_requests: int = 300,
    value_bytes: int = 256,
    rate_per_kcycle: Optional[float] = None,
    seed: int = 7,
    closed_loop: bool = True,
    warmup_keys: int = 50,
    request_timeout: int = 2_000_000,
    apiary_kwargs: Optional[Dict[str, Any]] = None,
    hosted_kwargs: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Run one KV GET workload against the chosen system.

    Returns a dict with latency percentiles (cycles), throughput, CPU
    cycles per request, and an energy breakdown.
    """
    if kind not in SYSTEM_KINDS:
        raise ConfigError(f"unknown system kind {kind!r}; try {SYSTEM_KINDS}")
    engine = Engine()
    rng = RngPool(seed=seed)
    # jumbo frames: the value-size sweep goes past the 1518B classic MTU
    fabric = EthernetFabric(engine, latency_cycles=FABRIC_LATENCY, jumbo=True)
    client = RemoteClientHost(engine, fabric, CLIENT_MAC)
    energy = EnergyModel()

    system_obj: Any = None
    if kind == "apiary":
        kwargs = dict(width=3, height=2, engine=engine, fabric=fabric,
                      mac_kind="100g", mac_addr=SERVER_MAC)
        kwargs.update(apiary_kwargs or {})
        system_obj = ApiarySystem(**kwargs)
        system_obj.boot()
        service, started = deploy_kv_on_apiary(system_obj, node=3)
        engine.run_until_done(started, limit=10_000_000)
        engine.run(until=engine.now + 5000)
    elif kind in ("hosted", "hosted_bypass"):
        kwargs = dict(cores=4, kernel_bypass=(kind == "hosted_bypass"),
                      rng=rng.stream("host-jitter"))
        kwargs.update(hosted_kwargs or {})
        system_obj = HostedFpgaSystem(engine, fabric, SERVER_MAC, **kwargs)
        handler, _table = make_kv_handler()
        system_obj.register(KV_PORT, handler)
    else:  # bare
        system_obj = BareFpgaSystem(engine, fabric, SERVER_MAC)
        handler, _table = make_kv_handler()
        system_obj.register(KV_PORT, handler)

    # warm the table with PUTs, then measure GETs
    keys = zipf_keys(rng.stream("keys"), n_requests, universe=warmup_keys)
    puts = [{"op": "put", "key": k, "bytes": value_bytes}
            for k in range(warmup_keys)]
    gets = [{"op": "get", "key": k} for k in keys]

    warm = engine.process(
        client.closed_loop(SERVER_MAC, KV_PORT, puts, nbytes=value_bytes,
                           timeout=request_timeout),
        name="warmup",
    )
    engine.run_until_done(warm.done, limit=200_000_000)
    client.latency.reset()

    measure_start = engine.now
    if closed_loop or rate_per_kcycle is None:
        proc = engine.process(
            client.closed_loop(SERVER_MAC, KV_PORT, gets, nbytes=64,
                               timeout=request_timeout),
            name="measure",
        )
    else:
        gaps = poisson_gaps(rng.stream("arrivals"), rate_per_kcycle,
                            n_requests)
        proc = engine.process(
            client.open_loop(SERVER_MAC, KV_PORT, gets, gaps, nbytes=64,
                             timeout=request_timeout),
            name="measure",
        )
    engine.run_until_done(proc.done, limit=2_000_000_000)
    elapsed = max(1, engine.now - measure_start)

    # energy attribution
    if kind == "apiary":
        energy.charge_apiary(system_obj, fabric=fabric)
        cpu_per_req = 0.0
        served = client.responses_received
    elif kind in ("hosted", "hosted_bypass"):
        energy.charge_hosted(system_obj, fabric=fabric)
        cpu_per_req = system_obj.cpu_cycles_per_request()
        served = system_obj.requests_served
    else:
        energy.charge_bare(system_obj, fabric=fabric)
        cpu_per_req = 0.0
        served = system_obj.requests_served

    summary = client.latency.summary()
    completed = client.latency.count
    return {
        "kind": kind,
        "requests": n_requests,
        "completed": completed,
        "served": served,
        "timeouts": client.timeouts,
        "latency": summary,
        "throughput_per_kcycle": 1000.0 * completed / elapsed,
        "cpu_cycles_per_request": cpu_per_req,
        "energy_uj_per_request": energy.breakdown.per_request_uj(
            max(1, completed)
        ),
        "energy_breakdown": energy.breakdown.as_dict(),
        "system": system_obj,
        "client": client,
    }
