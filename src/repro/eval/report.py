"""Experiment report registry.

Benchmarks record the tables they reproduce here; the benchmark suite's
conftest dumps everything at the end of the run (so ``bench_output.txt``
contains the reproduced tables, not just timings), and each table is also
written to ``bench_results/<experiment_id>.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

__all__ = ["record", "render_all", "clear", "RESULTS_DIR"]

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "..",
                           "bench_results")

_reports: List[Tuple[str, str, str]] = []


def record(experiment_id: str, title: str, text: str) -> None:
    """Register one experiment's reproduced table/figure text."""
    _reports.append((experiment_id, title, text))
    results_dir = os.path.abspath(RESULTS_DIR)
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, f"{experiment_id}.txt")
    with open(path, "a") as fh:
        fh.write(f"== {title} ==\n{text}\n\n")


def render_all() -> str:
    """Everything recorded this session, for the terminal summary."""
    blocks = []
    for experiment_id, title, text in _reports:
        blocks.append(f"[{experiment_id}] {title}\n{text}")
    return "\n\n".join(blocks)


def clear() -> None:
    _reports.clear()
