"""Evaluation harness: energy model, table formatting, workload drivers."""

from repro.eval.energy import EnergyBreakdown, EnergyModel
from repro.eval.harness import SYSTEM_KINDS, run_kv_workload
from repro.eval.tables import format_table, format_value

__all__ = [
    "EnergyModel",
    "EnergyBreakdown",
    "format_table",
    "format_value",
    "run_kv_workload",
    "SYSTEM_KINDS",
]
