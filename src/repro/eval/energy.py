"""Energy accounting (D3): per-request joules across system models.

Section 1's claim: "By bypassing the CPU, a direct-attached accelerator
reduces CPU overhead, lowers latencies, and further reduces energy."  The
model attributes energy to *active* component time — the differential part
of the comparison — using published first-order figures:

* a busy server core burns ~10 W  ->  40 nJ per 4 ns fabric cycle;
* a busy FPGA accelerator region ~3 W  ->  12 nJ per cycle;
* PCIe moves data at ~60 pJ/byte; DRAM at ~50 pJ/byte;
* NIC/MAC handling ~100 nJ per frame.

Absolute numbers are indicative; the experiment checks the *shape* (hosted
pays the CPU term, direct-attached doesn't).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["EnergyModel", "EnergyBreakdown"]

CPU_NJ_PER_CYCLE = 40.0
FPGA_NJ_PER_CYCLE = 12.0
MONITOR_NJ_PER_MSG = 2.0      # a few pJ/bit over a small header
NOC_NJ_PER_FLIT_HOP = 0.15    # hardened NoC energy per flit-hop
PCIE_NJ_PER_BYTE = 0.06
DRAM_NJ_PER_BYTE = 0.05
NIC_NJ_PER_FRAME = 100.0


@dataclass
class EnergyBreakdown:
    """Joules attributed per component class, plus the total."""

    cpu_nj: float = 0.0
    fpga_nj: float = 0.0
    noc_nj: float = 0.0
    pcie_nj: float = 0.0
    dram_nj: float = 0.0
    nic_nj: float = 0.0

    @property
    def total_nj(self) -> float:
        return (self.cpu_nj + self.fpga_nj + self.noc_nj + self.pcie_nj
                + self.dram_nj + self.nic_nj)

    def per_request_uj(self, requests: int) -> float:
        if requests <= 0:
            return 0.0
        return self.total_nj / requests / 1000.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "cpu_nj": self.cpu_nj,
            "fpga_nj": self.fpga_nj,
            "noc_nj": self.noc_nj,
            "pcie_nj": self.pcie_nj,
            "dram_nj": self.dram_nj,
            "nic_nj": self.nic_nj,
            "total_nj": self.total_nj,
        }


class EnergyModel:
    """Accumulates activity counters into an :class:`EnergyBreakdown`."""

    def __init__(self) -> None:
        self.breakdown = EnergyBreakdown()

    def add_cpu_cycles(self, cycles: float) -> None:
        self.breakdown.cpu_nj += cycles * CPU_NJ_PER_CYCLE

    def add_fpga_cycles(self, cycles: float) -> None:
        self.breakdown.fpga_nj += cycles * FPGA_NJ_PER_CYCLE

    def add_monitor_messages(self, count: float) -> None:
        self.breakdown.noc_nj += count * MONITOR_NJ_PER_MSG

    def add_noc_flit_hops(self, count: float) -> None:
        self.breakdown.noc_nj += count * NOC_NJ_PER_FLIT_HOP

    def add_pcie_bytes(self, nbytes: float) -> None:
        self.breakdown.pcie_nj += nbytes * PCIE_NJ_PER_BYTE

    def add_dram_bytes(self, nbytes: float) -> None:
        self.breakdown.dram_nj += nbytes * DRAM_NJ_PER_BYTE

    def add_nic_frames(self, count: float) -> None:
        self.breakdown.nic_nj += count * NIC_NJ_PER_FRAME

    # -- system-level helpers ----------------------------------------------------

    def charge_apiary(self, system, fabric=None) -> None:
        """Attribute an ApiarySystem run's activity."""
        for tile in system.tiles:
            if tile.accelerator is not None:
                self.add_fpga_cycles(tile.accelerator.busy_cycles)
            self.add_monitor_messages(tile.monitor.messages_sent)
        self.add_noc_flit_hops(system.network.total_flits_forwarded())
        if system.dram is not None:
            self.add_dram_bytes(system.dram.totals()["bytes_moved"])
        if fabric is not None:
            self.add_nic_frames(fabric.frames_delivered)

    def charge_hosted(self, hosted, fabric=None) -> None:
        """Attribute a HostedFpgaSystem run's activity."""
        self.add_cpu_cycles(hosted.cpu.cycles_used)
        self.add_fpga_cycles(hosted.fpga_busy_cycles)
        self.add_pcie_bytes(hosted.pcie.bytes_moved)
        if fabric is not None:
            self.add_nic_frames(fabric.frames_delivered)

    def charge_bare(self, bare, fabric=None) -> None:
        """Attribute a BareFpgaSystem run's activity."""
        self.add_fpga_cycles(bare.fpga_busy_cycles)
        if fabric is not None:
            self.add_nic_frames(fabric.frames_delivered)
