"""Plain-text table formatting for experiment output.

Every bench prints its rows through :func:`format_table`, so EXPERIMENTS.md
and ``bench_output.txt`` read uniformly.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

__all__ = ["format_table", "format_value"]


def format_value(value: Any) -> str:
    """Human-friendly scalar formatting (3 significant-ish digits)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000:
            return f"{value:,.0f}"
        if magnitude >= 10:
            return f"{value:.1f}"
        if magnitude >= 0.01:
            return f"{value:.3f}"
        return f"{value:.2e}"
    # cells must stay single-line or the whole table misaligns
    return " ".join(str(value).split()) or str(value).strip() or ""


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: Optional[str] = None) -> str:
    """Aligned monospace table with a header rule."""
    cells = [[format_value(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(cell.rjust(widths[i])
                                for i, cell in enumerate(row)))
    return "\n".join(lines)
