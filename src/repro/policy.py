"""Shared retry/timeout policy — one vocabulary for every client.

Before this module, the shell's ``call_with_retry`` and the remote
client's ``request_with_retry`` each carried their own five knobs
(deadline, per-attempt timeout, attempt cap, backoff base/cap) and their
own copy of the deadline/backoff loop.  :class:`RetryPolicy` folds both
into one frozen dataclass that plugs into the primary request APIs::

    msg  = yield shell.call("svc.kv", "kv.get", retry=RetryPolicy())
    resp = yield client.request(mac, port, body, retry=RetryPolicy(
        deadline=400_000, attempt_timeout=50_000))

Backoff is deterministic (exponential, no jitter) so seeded experiments
replay exactly — the property every byte-identity test in this repo
leans on.  The old ``*_with_retry`` helpers remain as deprecated shims
that build a policy and delegate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type

from repro.errors import ConfigError, DeadlineExceeded
from repro.sim import Engine, Event

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Deadline + per-attempt timeout + exponential backoff.

    Parameters
    ----------
    deadline: total cycles the caller is willing to wait across attempts.
    attempt_timeout: per-attempt timeout (clamped to what remains of the
        deadline, so the last attempt never overshoots).
    max_attempts: optional attempt cap (None = until the deadline).
    backoff_base / backoff_cap: exponential backoff between attempts,
        ``min(base * 2**(attempt-1), cap)``, deterministic by design.
    """

    deadline: int = 200_000
    attempt_timeout: int = 20_000
    max_attempts: Optional[int] = None
    backoff_base: int = 500
    backoff_cap: int = 16_000

    def __post_init__(self) -> None:
        if self.deadline < 1:
            raise ConfigError(f"deadline must be >= 1, got {self.deadline}")
        if self.attempt_timeout < 1:
            raise ConfigError(
                f"attempt_timeout must be >= 1, got {self.attempt_timeout}"
            )
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1 or None")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigError("backoff parameters must be >= 0")

    def backoff_for(self, attempt: int) -> int:
        """Backoff after the ``attempt``-th failure (1-based)."""
        return min(self.backoff_base * (2 ** (attempt - 1)), self.backoff_cap)

    # -- the one retry loop ------------------------------------------------

    def drive(
        self,
        engine: Engine,
        attempt_fn: Callable[[int], Event],
        retry_on: Tuple[Type[BaseException], ...],
        describe: str = "request",
        on_retry: Optional[Callable[[], None]] = None,
        name: str = "",
    ) -> Event:
        """Run ``attempt_fn`` under this policy; returns the overall event.

        ``attempt_fn(timeout)`` must issue one attempt and return an event
        that succeeds with the result or fails.  Failures in ``retry_on``
        are retried (after backoff) until the deadline or attempt cap is
        spent, at which point the returned event fails with
        :class:`DeadlineExceeded`; any other failure propagates to the
        returned event immediately (retrying e.g. a capability denial
        never helps).  ``on_retry`` is invoked once per retried failure —
        the hook the shell uses to count ``calls_retried``.
        """
        result = engine.event(name or f"retry.{describe}")
        engine.process(self._loop(engine, attempt_fn, retry_on, describe,
                                  on_retry, result),
                       name=name or f"retry.{describe}")
        return result

    def _loop(self, engine, attempt_fn, retry_on, describe, on_retry,
              result: Event):
        start = engine.now
        attempt = 0
        last_error: Optional[BaseException] = None
        while True:
            remaining = self.deadline - (engine.now - start)
            out_of_attempts = (self.max_attempts is not None
                               and attempt >= self.max_attempts)
            if remaining <= 0 or out_of_attempts:
                if not result.triggered:
                    result.fail(DeadlineExceeded(
                        f"{describe} gave up after {attempt} attempt(s) in "
                        f"{engine.now - start} cycles "
                        f"(last error: {last_error})"
                    ))
                return
            attempt += 1
            try:
                value = yield attempt_fn(min(self.attempt_timeout, remaining))
            except retry_on as err:
                last_error = err
                if on_retry is not None:
                    on_retry()
            except BaseException as err:  # non-retryable: propagate now
                if not result.triggered:
                    result.fail(err)
                return
            else:
                if not result.triggered:
                    result.succeed(value)
                return
            backoff = self.backoff_for(attempt)
            backoff = max(1, min(backoff,
                                 self.deadline - (engine.now - start)))
            yield backoff
