"""Capabilities: unforgeable tokens of authority.

Section 4.6: "Capabilities are stored in a partitioned manner by having the
Apiary monitor manage the capability list, so the accelerator can only
obtain a reference to the capability and not the capability itself."

Two types live here:

* :class:`Capability` — the full record (rights + target), held **only** by
  the OS (the per-tile monitor / the capability store).
* :class:`CapabilityRef` — the opaque handle an accelerator sees: a slot
  index plus a nonce.  A ref is meaningless outside its holder's partition,
  so leaking one to another tile grants nothing (tested explicitly).

The design follows Dennis & Van Horn [15]: rights are a monotone lattice
(derivation can only shrink them) and revocation is recursive over the
derivation tree.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigError

__all__ = ["Rights", "Capability", "CapabilityRef"]


class Rights(enum.IntFlag):
    """Access rights carried by a capability."""

    NONE = 0
    READ = 1 << 0       # read a memory segment
    WRITE = 1 << 1      # write a memory segment
    SEND = 1 << 2       # send messages to an endpoint
    GRANT = 1 << 3      # derive sub-capabilities for other holders
    MANAGE = 1 << 4     # management-plane operations (load/unload tiles)

    @classmethod
    def rw(cls) -> "Rights":
        return cls.READ | cls.WRITE


@dataclass(frozen=True)
class CapabilityRef:
    """What the accelerator holds: an opaque (slot, nonce) pair.

    The nonce makes stale refs detectable after revocation reuses a slot;
    it carries no authority by itself.
    """

    slot: int
    nonce: int

    def __repr__(self) -> str:
        return f"capref({self.slot}:{self.nonce:08x})"


@dataclass
class Capability:
    """The OS-side record.  Never handed to accelerators."""

    cid: int
    holder: str
    rights: Rights
    #: target: exactly one of segment_id / endpoint is set
    segment_id: Optional[int] = None
    endpoint: Optional[str] = None
    revoked: bool = False
    parent_cid: Optional[int] = None
    children: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if (self.segment_id is None) == (self.endpoint is None):
            raise ConfigError(
                "capability must target exactly one of segment or endpoint"
            )
        if self.rights == Rights.NONE:
            raise ConfigError("capability with no rights is meaningless")

    @property
    def is_memory(self) -> bool:
        return self.segment_id is not None

    @property
    def is_endpoint(self) -> bool:
        return self.endpoint is not None

    def allows(self, needed: Rights) -> bool:
        return not self.revoked and (self.rights & needed) == needed
