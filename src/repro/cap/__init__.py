"""Capability system (Section 4.6, after Dennis & Van Horn [15]).

Accelerators hold opaque :class:`CapabilityRef` handles; the OS-side
:class:`CapabilityStore` is partitioned by holder and supports minting,
attenuating derivation, and recursive revocation.
"""

from repro.cap.capability import Capability, CapabilityRef, Rights
from repro.cap.captable import CapabilityStore

__all__ = ["Rights", "Capability", "CapabilityRef", "CapabilityStore"]
