"""The partitioned capability store.

One :class:`CapabilityStore` serves a whole Apiary system.  It is
partitioned by *holder* (tile/process identity): a ref only resolves inside
the partition it was minted into, which realises the paper's "partitioned
manner" storage — accelerators exchange refs as plain data without being
able to exercise each other's authority.

Operations:

* :meth:`mint` — create a root capability (OS services only).
* :meth:`derive` — create a child capability for another holder with a
  subset of rights (requires GRANT on the parent).  This is how the memory
  service shares a segment between accelerators (Section 2's composition
  scenario).
* :meth:`revoke` — recursively revoke a capability and everything derived
  from it; slots are reused with fresh nonces so stale refs fail closed.
* :meth:`lookup` — the hot-path check monitors run per message.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import AccessDenied, CapabilityError, CapabilityRevoked, ConfigError
from repro.cap.capability import Capability, CapabilityRef, Rights

__all__ = ["CapabilityStore"]


class CapabilityStore:
    """Partitioned capability storage with derivation and revocation."""

    def __init__(self, slots_per_holder: int = 64, nonce_seed: int = 0x5EED):
        if slots_per_holder < 1:
            raise ConfigError("need at least one capability slot per holder")
        self.slots_per_holder = slots_per_holder
        self._partitions: Dict[str, Dict[int, Tuple[CapabilityRef, Capability]]] = {}
        self._by_cid: Dict[int, Tuple[str, int]] = {}  # cid -> (holder, slot)
        self._next_cid = 1
        self._nonce_state = nonce_seed
        self.lookups = 0
        self.denials = 0

    # -- internals ---------------------------------------------------------

    def _next_nonce(self) -> int:
        # xorshift: cheap, deterministic, never zero
        x = self._nonce_state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._nonce_state = x or 0xDEAD
        return self._nonce_state

    def _partition(self, holder: str) -> Dict[int, Tuple[CapabilityRef, Capability]]:
        return self._partitions.setdefault(holder, {})

    def _free_slot(self, holder: str) -> int:
        partition = self._partition(holder)
        for slot in range(self.slots_per_holder):
            if slot not in partition:
                return slot
        raise CapabilityError(
            f"holder {holder!r} capability table full "
            f"({self.slots_per_holder} slots)"
        )

    def _install(self, cap: Capability) -> CapabilityRef:
        slot = self._free_slot(cap.holder)
        ref = CapabilityRef(slot=slot, nonce=self._next_nonce())
        self._partition(cap.holder)[slot] = (ref, cap)
        self._by_cid[cap.cid] = (cap.holder, slot)
        return ref

    # -- public API -----------------------------------------------------------

    def mint(
        self,
        holder: str,
        rights: Rights,
        segment_id: Optional[int] = None,
        endpoint: Optional[str] = None,
    ) -> CapabilityRef:
        """Create a root capability in ``holder``'s partition."""
        cap = Capability(
            cid=self._next_cid,
            holder=holder,
            rights=rights,
            segment_id=segment_id,
            endpoint=endpoint,
        )
        self._next_cid += 1
        return self._install(cap)

    def lookup(self, holder: str, ref: CapabilityRef, needed: Rights) -> Capability:
        """Resolve a ref inside ``holder``'s partition and check rights.

        This is the per-message hot path the monitor runs.
        """
        self.lookups += 1
        entry = self._partition(holder).get(ref.slot)
        if entry is None or entry[0].nonce != ref.nonce:
            self.denials += 1
            raise AccessDenied(
                f"holder {holder!r} presented invalid ref {ref}"
            )
        cap = entry[1]
        if cap.revoked:
            self.denials += 1
            raise CapabilityRevoked(f"capability {cap.cid} revoked")
        if not cap.allows(needed):
            self.denials += 1
            raise AccessDenied(
                f"capability {cap.cid} lacks {needed!r} (has {cap.rights!r})"
            )
        return cap

    def derive(
        self,
        holder: str,
        parent_ref: CapabilityRef,
        new_holder: str,
        rights: Rights,
    ) -> CapabilityRef:
        """Create a child capability for ``new_holder`` with subset rights.

        Requires GRANT on the parent; the child's rights must be a subset of
        the parent's (minus nothing added) — the Dennis–Van Horn monotone
        attenuation rule.
        """
        parent = self.lookup(holder, parent_ref, Rights.GRANT)
        if (rights & ~parent.rights) != Rights.NONE:
            self.denials += 1
            raise AccessDenied(
                f"derivation would amplify rights: parent has {parent.rights!r}, "
                f"requested {rights!r}"
            )
        child = Capability(
            cid=self._next_cid,
            holder=new_holder,
            rights=rights,
            segment_id=parent.segment_id,
            endpoint=parent.endpoint,
            parent_cid=parent.cid,
        )
        self._next_cid += 1
        parent.children.append(child.cid)
        return self._install(child)

    def revoke(self, cid: int) -> int:
        """Revoke capability ``cid`` and its whole derivation subtree.

        Returns the number of capabilities revoked.  Slots are freed so the
        holder can receive new capabilities; old refs fail via nonce
        mismatch or the revoked flag.
        """
        location = self._by_cid.get(cid)
        if location is None:
            raise CapabilityError(f"unknown capability id {cid}")
        holder, slot = location
        entry = self._partition(holder).get(slot)
        if entry is None:
            raise CapabilityError(f"capability {cid} already removed")
        _ref, cap = entry
        count = 1
        cap.revoked = True
        for child_cid in list(cap.children):
            if child_cid in self._by_cid:
                count += self.revoke(child_cid)
        del self._partition(holder)[slot]
        del self._by_cid[cid]
        return count

    def revoke_holder(self, holder: str) -> int:
        """Revoke every capability a holder owns (tile teardown)."""
        partition = self._partition(holder)
        count = 0
        for slot in list(partition):
            entry = partition.get(slot)
            if entry is not None:
                count += self.revoke(entry[1].cid)
        return count

    def holder_caps(self, holder: str) -> List[Capability]:
        return [cap for _ref, cap in self._partition(holder).values()]

    def holder_count(self, holder: str) -> int:
        return len(self._partition(holder))
