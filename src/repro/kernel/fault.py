"""Fault detection and handling policy (Section 4.4).

The paper defines two achievable models:

* **Fail-stop** — "if an accelerator ... encounters an error in a process
  and cannot complete its computation, it should not be able to affect
  other Apiary services or other unrelated accelerators."  The monitor
  drains the tile and NACKs peers.
* **Preemptible** — "if an error occurs in one user context within an
  accelerator, other independent processes on the accelerator can keep
  running."  Requires the accelerator to externalize context state; only a
  single context dies.

:class:`FaultManager` is the policy point: tiles report process failures to
it, and it applies the model the tile's accelerator supports.  D6 measures
the blast radius difference between the two (plus the no-OS baseline where
a fault silently corrupts the pipeline).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.errors import TileFault
from repro.sim import Engine, StatsRegistry, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.tile import Tile

__all__ = ["FaultPolicy", "FaultRecord", "FaultManager"]


class FaultPolicy(enum.Enum):
    #: drain the whole tile on any fault (always available)
    FAIL_STOP = "fail-stop"
    #: kill only the faulting context when the accelerator is preemptible,
    #: fall back to fail-stop otherwise
    PREEMPT = "preempt"


@dataclass
class FaultRecord:
    time: int
    tile: str
    context: str
    error: str
    action: str  # "drained" | "context-killed"


class FaultManager:
    """Receives fault reports from tiles and applies the configured policy."""

    def __init__(
        self,
        engine: Engine,
        policy: FaultPolicy = FaultPolicy.FAIL_STOP,
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.engine = engine
        self.policy = policy
        self.stats = stats if stats is not None else StatsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.records: List[FaultRecord] = []
        self._by_tile: Dict[str, List[FaultRecord]] = {}
        #: subscribers notified after each containment action — the recovery
        #: subsystem hooks here so it reacts the cycle a tile drains instead
        #: of waiting for the next watchdog heartbeat.
        self.on_fault: List[Callable[["Tile", FaultRecord], None]] = []
        self._containment_sum = 0.0

    def report(self, tile: "Tile", context: str, error: BaseException) -> None:
        """A process on ``tile`` died with ``error``; contain it."""
        accel = tile.accelerator
        preemptable_context = (
            self.policy == FaultPolicy.PREEMPT
            and accel is not None
            and accel.preemptible
            and context != "main"
        )
        if preemptable_context:
            action = "context-killed"
            self.stats.counter("fault.contexts_killed").inc()
            # the faulting context is already dead; save what the
            # accelerator externalized so the context could be resumed
            # elsewhere, and leave every other context running.
            tile.saved_contexts[context] = accel.externalize_state()
            tile.saved_context_owners[context] = tile.deployed_endpoint
        else:
            action = "drained"
            self.stats.counter("fault.tiles_drained").inc()
            tile.fail_stop()
        record = FaultRecord(
            time=self.engine.now,
            tile=tile.endpoint,
            context=context,
            error=f"{type(error).__name__}: {error}",
            action=action,
        )
        self.records.append(record)
        self._by_tile.setdefault(tile.endpoint, []).append(record)
        # faults stamped with when they physically occurred (chaos-injected
        # crashes carry `occurred_at`) let us gauge detection-to-containment
        # latency; organically reported faults are contained the same cycle.
        occurred = getattr(error, "occurred_at", self.engine.now)
        self._containment_sum += self.engine.now - occurred
        self.stats.gauge("fault.mean_time_to_containment").set(
            self._containment_sum / len(self.records)
        )
        self.tracer.emit(self.engine.now, "fault.contained", tile.endpoint,
                         context=context, action=action)
        for callback in list(self.on_fault):
            callback(tile, record)

    def faults_on(self, tile_endpoint: str) -> List[FaultRecord]:
        return list(self._by_tile.get(tile_endpoint, ()))
