"""The Apiary shell: the standard, board-independent API of Section 4.3.

"Each module is wrapped in an Apiary shell that interfaces to the fabric
and manages capabilities on the module's behalf."  Accelerator code
programs against this class only — no MAC registers, no DRAM controllers,
no NoC flits — which is precisely the portability claim D10 tests by
running the same accelerator on different simulated boards.

The API (all methods returning events are yielded from accelerator
process generators):

* ``call(dst, op, ...)`` — RPC to any endpoint; correlation handled here.
* ``notify(dst, op, ...)`` — one-way event.
* ``recv()`` / ``reply(msg, ...)`` — serve incoming requests.
* ``alloc/free/read/write/grant`` — memory through ``svc.mem``.
* ``net_bind/net_send`` plus ``net_rx`` events — networking through
  ``svc.net``.
* ``spawn(name, gen)`` — create a child process inside this tile's fault
  domain (the multi-context execution model of Section 4.2/4.4).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.cap.capability import CapabilityRef
from repro.errors import (
    ConfigError,
    DeadlineExceeded,
    ProtocolError,
    ServiceError,
    ServiceUnavailable,
    TileFault,
)
from repro.kernel.message import MemAccess, Message, MessageKind
from repro.kernel.monitor import Monitor
from repro.obs.span import SpanRecorder
from repro.policy import RetryPolicy
from repro.sim import Channel, Engine, Event, Process

__all__ = ["Shell", "AllocatedSegment"]


class AllocatedSegment:
    """What ``alloc`` returns: the capability plus segment metadata."""

    __slots__ = ("cap", "sid", "size")

    def __init__(self, cap: CapabilityRef, sid: int, size: int):
        self.cap = cap
        self.sid = sid
        self.size = size

    def __repr__(self) -> str:  # pragma: no cover
        return f"<AllocatedSegment sid={self.sid} size={self.size}>"


class Shell:
    """One tile's shell.  Created by the Tile; handed to the accelerator."""

    def __init__(self, engine: Engine, monitor: Monitor,
                 mem_service: str = "svc.mem", net_service: str = "svc.net"):
        self.engine = engine
        self.monitor = monitor
        # cache the monitor's span recorder (duck-typed monitor stand-ins
        # without one get a private disabled recorder)
        spans = getattr(monitor, "spans", None)
        self._spans: SpanRecorder = spans if spans is not None else SpanRecorder()
        self.mem_service = mem_service
        self.net_service = net_service
        self.inbox: Channel = Channel(engine, capacity=None,
                                      name=f"{self.name}.inbox")
        self._pending: Dict[int, Event] = {}
        self._children: List[Process] = []
        self.calls_made = 0
        self.calls_failed = 0
        self.calls_timed_out = 0
        self.calls_retried = 0
        monitor.deliver = self._deliver

    @property
    def name(self) -> str:
        return self.monitor.tile_name

    @property
    def spans(self) -> SpanRecorder:
        """This tile's causal-span recorder (shared system-wide)."""
        return self._spans

    # -- message plumbing ----------------------------------------------------

    def _deliver(self, msg: Message) -> None:
        if msg.kind in (MessageKind.RESPONSE, MessageKind.ERROR):
            waiter = self._pending.pop(msg.mid, None)
            if waiter is None:
                return  # late response after timeout: drop
            if msg.kind == MessageKind.ERROR:
                self.calls_failed += 1
                waiter.fail(ServiceError(str(msg.payload)))
            else:
                waiter.succeed(msg)
        else:
            self.inbox.try_put(msg)

    def call(
        self,
        dst: str,
        op: str,
        payload: Any = None,
        payload_bytes: int = 0,
        cap: Optional[CapabilityRef] = None,
        priority: int = 0,
        timeout: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> Event:
        """RPC: event succeeds with the response :class:`Message`.

        Failure modes: monitor denial (AccessDenied/ServiceUnavailable),
        an ERROR response (ServiceError), or timeout (DeadlineExceeded,
        a ServiceUnavailable subclass).

        With ``retry=RetryPolicy(...)`` the call is retried under that
        policy — on service errors, per-attempt timeouts, and fail-stop
        NACKs, the failure modes a recovering service emits mid-failover —
        and the returned event fails with :class:`DeadlineExceeded` once
        the policy's deadline or attempt cap is spent.  Capability denials
        (``AccessDenied``) propagate immediately: retrying an unauthorized
        call never helps.  ``timeout`` and ``retry`` are mutually
        exclusive (the policy's ``attempt_timeout`` governs attempts).
        """
        if retry is not None:
            if timeout is not None:
                raise ConfigError(
                    "pass either timeout= or retry= to Shell.call, not both "
                    "(RetryPolicy.attempt_timeout bounds each attempt)"
                )

            def attempt(attempt_timeout: int) -> Event:
                return self.call(dst, op, payload=payload,
                                 payload_bytes=payload_bytes, cap=cap,
                                 priority=priority, timeout=attempt_timeout)

            def count_retry() -> None:
                self.calls_retried += 1

            return retry.drive(
                self.engine, attempt, retry_on=(ServiceError, TileFault),
                describe=f"call {op!r} to {dst!r}", on_retry=count_retry,
                name=f"{self.name}.retry.{op}",
            )
        msg = Message(src=self.name, dst=dst, op=op,
                      kind=MessageKind.REQUEST, payload=payload,
                      payload_bytes=payload_bytes, cap=cap, priority=priority)
        result = self.engine.event(f"{self.name}.call#{msg.mid}")
        spans = self._spans
        if spans.enabled:
            # root span of the causal trace: covers the whole request,
            # submission to response delivery (= end-to-end latency)
            msg.trace_id = spans.new_trace()
            msg.span_id = spans.open(
                msg.trace_id, f"request:{op}", "request", self.name,
                self.engine.now, dst=dst, op=op, mid=msg.mid)
            root_span = msg.span_id

            def close_root(ev: Event) -> None:
                spans.close(root_span, self.engine.now, failed=ev.failed)

            result.add_callback(close_root)
        self._pending[msg.mid] = result
        self.calls_made += 1
        admitted = self.monitor.submit(msg)

        def on_admit(ev: Event) -> None:
            if ev.failed and msg.mid in self._pending:
                del self._pending[msg.mid]
                if not result.triggered:
                    result.fail(ev.value)

        admitted.add_callback(on_admit)
        if timeout is not None:
            def on_timeout(_ev: Event) -> None:
                if msg.mid in self._pending:
                    del self._pending[msg.mid]
                    self.calls_timed_out += 1
                    if not result.triggered:
                        result.fail(DeadlineExceeded(
                            f"call {op!r} to {dst!r} timed out after {timeout}"
                        ))
            self.engine.timeout(timeout).add_callback(on_timeout)
        return result

    def call_with_retry(
        self,
        dst: str,
        op: str,
        payload: Any = None,
        payload_bytes: int = 0,
        cap: Optional[CapabilityRef] = None,
        priority: int = 0,
        deadline: int = 200_000,
        attempt_timeout: int = 20_000,
        max_attempts: Optional[int] = None,
        backoff_base: int = 500,
        backoff_cap: int = 16_000,
    ):
        """Process generator: ``call`` with deadline + exponential backoff.

        .. deprecated:: use ``yield shell.call(dst, op,
           retry=RetryPolicy(...))`` — this shim builds the equivalent
           :class:`~repro.policy.RetryPolicy` and delegates.

        Use via ``msg = yield from shell.call_with_retry(...)``; raises
        :class:`DeadlineExceeded` once the overall ``deadline`` is spent.
        """
        policy = RetryPolicy(deadline=deadline,
                             attempt_timeout=attempt_timeout,
                             max_attempts=max_attempts,
                             backoff_base=backoff_base,
                             backoff_cap=backoff_cap)
        msg = yield self.call(dst, op, payload=payload,
                              payload_bytes=payload_bytes, cap=cap,
                              priority=priority, retry=policy)
        return msg

    def notify(self, dst: str, op: str, payload: Any = None,
               payload_bytes: int = 0, cap: Optional[CapabilityRef] = None,
               priority: int = 0) -> Event:
        """One-way event; the returned event tracks NoC admission only."""
        msg = Message(src=self.name, dst=dst, op=op, kind=MessageKind.EVENT,
                      payload=payload, payload_bytes=payload_bytes, cap=cap,
                      priority=priority)
        return self.monitor.submit(msg)

    def recv(self) -> Event:
        """Next incoming request/event for this tile."""
        return self.inbox.get()

    # -- service-side causal tracing -----------------------------------------

    def span_open(self, msg: Message, name: str, category: str = "service",
                  **detail: Any) -> int:
        """Open a child span for handling ``msg`` (0 when untraced).

        Reparents the message under the new span, so downstream work this
        handler causes — DRAM access, the reply's egress/transit — nests
        beneath it in the reconstructed tree.  Zero-cost when tracing is
        disabled, like every span emit path.
        """
        spans = self._spans
        if not spans.enabled or not msg.trace_id:
            return 0
        span = spans.open(msg.trace_id, name, category, self.name,
                          self.engine.now, parent_id=msg.span_id,
                          mid=msg.mid, **detail)
        msg.span_id = span
        return span

    def span_close(self, span: int, **detail: Any) -> None:
        """Close a span from :meth:`span_open` (no-op for 0)."""
        if span:
            self._spans.close(span, self.engine.now, **detail)

    def reply(self, request: Message, payload: Any = None,
              payload_bytes: int = 0, error: bool = False) -> Event:
        response = request.make_response(payload=payload,
                                         payload_bytes=payload_bytes,
                                         error=error)
        return self.monitor.submit(response)

    # -- memory convenience API (over svc.mem) -----------------------------------

    def alloc(self, size: int, label: str = "") -> Event:
        """Allocate a segment; succeeds with :class:`AllocatedSegment`."""
        result = self.engine.event(f"{self.name}.alloc")
        call = self.call(self.mem_service, "mem.alloc",
                         payload={"size": size, "label": label})

        def done(ev: Event) -> None:
            if result.triggered:
                return
            if ev.failed:
                result.fail(ev.value)
            else:
                body = ev.value.payload
                result.succeed(AllocatedSegment(
                    cap=body["cap"], sid=body["sid"], size=body["size"],
                ))

        call.add_callback(done)
        return result

    def free(self, seg: AllocatedSegment) -> Event:
        return self.call(self.mem_service, "mem.free", payload={"sid": seg.sid},
                         cap=seg.cap)

    def mem_write(self, seg: AllocatedSegment, offset: int, data: Any,
                  nbytes: int) -> Event:
        return self.call(self.mem_service, "mem.write",
                         payload=MemAccess(offset=offset, nbytes=nbytes,
                                           data=data),
                         payload_bytes=nbytes, cap=seg.cap)

    def mem_read(self, seg: AllocatedSegment, offset: int, nbytes: int) -> Event:
        """Succeeds with the response message; ``payload`` holds the data."""
        return self.call(self.mem_service, "mem.read",
                         payload=MemAccess(offset=offset, nbytes=nbytes),
                         cap=seg.cap)

    def grant(self, seg: AllocatedSegment, to_tile: str, rights: Any) -> Event:
        """Share a segment with another tile (composition, Section 2)."""
        return self.call(self.mem_service, "mem.grant",
                         payload={"to": to_tile, "rights": rights},
                         cap=seg.cap)

    # -- network convenience API (over svc.net) -------------------------------------

    def net_bind(self, port: int) -> Event:
        return self.call(self.net_service, "net.bind", payload={"port": port})

    def net_send(self, dst_mac: str, port: int, data: Any, nbytes: int) -> Event:
        return self.call(self.net_service, "net.send",
                         payload={"dst_mac": dst_mac, "port": port,
                                  "data": data, "nbytes": nbytes},
                         payload_bytes=nbytes)

    # -- multi-context execution ---------------------------------------------------

    def spawn(self, name: str, generator) -> Process:
        """Run a child process inside this tile's fault domain."""
        proc = self.engine.process(generator, name=f"{self.name}.{name}")
        self._children.append(proc)
        return proc

    @property
    def children(self) -> List[Process]:
        return list(self._children)
