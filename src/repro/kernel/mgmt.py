"""The management plane: naming, capability policy, tile lifecycle.

The management plane is part of Apiary's trusted static framework (like the
monitors): it owns the logical-name table every monitor resolves against,
mints root capabilities, screens and loads bitstreams into tile slots, and
executes the operator-level policies (which apps may talk to which).

Per Section 4.1 we deliberately do *not* implement a placement/scheduling
policy for which accelerator goes into which slot — the paper defers that
to AmorphOS/Coyote.  Callers name the target tile explicitly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union

from repro.cap.capability import CapabilityRef, Rights
from repro.cap.captable import CapabilityStore
from repro.errors import ConfigError, TileFault
from repro.kernel.naming import Namespace
from repro.kernel.tile import Tile
from repro.obs.span import SpanRecorder
from repro.sim import Engine, Event, StatsRegistry, Tracer

__all__ = ["MgmtPlane"]


class MgmtPlane:
    """Trusted management logic for one Apiary system."""

    def __init__(
        self,
        engine: Engine,
        caps: CapabilityStore,
        name_table: Union[Namespace, Dict[str, int]],
        tiles: List[Tile],
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[Tracer] = None,
        spans: Optional[SpanRecorder] = None,
    ):
        self.engine = engine
        self.caps = caps
        # accept either the namespace or a raw dict (older call sites);
        # both wrap the same underlying table the monitors resolve against
        self.namespace = name_table if isinstance(name_table, Namespace) \
            else Namespace(name_table)
        self.tiles = tiles
        self.stats = stats if stats is not None else StatsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        #: shared span recorder (disabled by default, so emits are free);
        #: load/teardown/migrate open spans here, parented under whatever
        #: ``trace=(trace_id, span_id)`` the caller (e.g. the scheduler)
        #: passes, so control-plane work shows up in Chrome trace exports
        self.spans = spans if spans is not None else SpanRecorder()
        #: endpoints considered OS services: new tiles are auto-wired to them
        self.service_endpoints: List[str] = []
        #: (holder, endpoint) pairs granted via grant_send — the policy-level
        #: record that lets recovery re-mint a failed-over tile's authority
        self.send_grants: Set[Tuple[str, str]] = set()
        #: optional TelemetrySampler (see attach_sampler); when attached,
        #: telemetry() merges its latest ring-buffer samples per tile
        self.sampler = None
        #: optional BoardBitstreamStore (see attach_bitstore); when
        #: attached, load() goes through the compile-and-cache pipeline
        #: instead of handing raw bitstreams straight to the region
        self.bitstore = None

    # -- naming (the per-tile tables of Section 4.3) ---------------------------

    @property
    def name_table(self) -> Dict[str, int]:
        """The raw resolution dict (shared with monitors).  Policy code
        should use :attr:`namespace` / the methods below instead."""
        return self.namespace.table

    def register_endpoint(self, name: str, node: int) -> None:
        if not 0 <= node < len(self.tiles):
            raise ConfigError(f"no tile {node}")
        self.namespace.bind(name, node)
        self.tracer.emit(self.engine.now, "mgmt.register", "mgmt",
                         name=name, node=node)

    def unregister_endpoint(self, name: str) -> None:
        self.namespace.unbind(name)

    def resolve(self, name: str) -> int:
        return self.namespace.lookup(name)

    # -- capability policy ---------------------------------------------------------

    def grant_send(self, holder: str, endpoint: str) -> CapabilityRef:
        """Authorize ``holder`` to message ``endpoint`` (operator policy).

        This is how "distrusting applications ... specifically establish
        interprocess communication" (Section 4.2): nothing talks to anything
        without an explicit grant.
        """
        ref = self.caps.mint(holder, Rights.SEND, endpoint=endpoint)
        self.send_grants.add((holder, endpoint))
        self.tracer.emit(self.engine.now, "mgmt.grant_send", "mgmt",
                         holder=holder, endpoint=endpoint)
        return ref

    def connect(self, a: str, b: str) -> None:
        """Bidirectional SEND authorization between two endpoints."""
        self.grant_send(a, b)
        self.grant_send(b, a)

    def revoke_endpoint_caps(self, holder: str) -> int:
        return self.caps.revoke_holder(holder)

    def grants_of(self, holder: str) -> List[str]:
        """Endpoints ``holder`` was granted SEND to, in stable order."""
        return sorted(ep for h, ep in self.send_grants if h == holder)

    def regrant(self, old_holder: str, new_holder: str) -> int:
        """Re-mint ``old_holder``'s SEND grants for ``new_holder``.

        The failover half of recovery: the replacement tile gets exactly
        the authority the dead one held, and the dead holder's policy
        record is cleared (its actual capabilities were revoked at
        teardown).  Grants to endpoints that no longer resolve are dropped.
        """
        moved = 0
        for endpoint in self.grants_of(old_holder):
            self.send_grants.discard((old_holder, endpoint))
            if endpoint in self.namespace:
                self.grant_send(new_holder, endpoint)
                moved += 1
        return moved

    # -- tile lifecycle ----------------------------------------------------------------

    def _open_span(self, name: str,
                   trace: Optional[Tuple[int, int]],
                   **detail) -> Tuple[int, int]:
        """Open a management-plane span; ``(0, 0)`` when tracing is off.

        ``trace=(trace_id, parent_span)`` nests the span under the caller's
        decision (the scheduler passes its own span here); without it the
        operation roots a fresh trace, so standalone mgmt calls still show
        up in exports.
        """
        if not self.spans.enabled:
            return (0, 0)
        if trace:
            tid, parent = trace
        else:
            tid, parent = self.spans.new_trace(), 0
        sid = self.spans.open(tid, name, "mgmt", "mgmt", self.engine.now,
                              parent_id=parent, **detail)
        return (tid, sid)

    def load(
        self,
        node: int,
        accelerator,
        endpoint: Optional[str] = None,
        signed_by: Optional[str] = None,
        wire_services: bool = True,
        trace: Optional[Tuple[int, int]] = None,
        artifact=None,
    ) -> Event:
        """Load an accelerator into tile ``node`` and wire default caps.

        Registers ``endpoint`` (defaults to the tile's own name) in the name
        table, grants the tile SEND to every OS service, and grants each OS
        service SEND back (for notifications like ``net.rx``).

        This is the single deployment entry point for both input shapes:
        a raw accelerator (its bitstream is packaged on the fly) or a
        pre-compiled :class:`~repro.hw.compile.BitstreamArtifact` passed
        via ``artifact``.  An artifact carries its own provenance and DRC
        screen, so ``signed_by`` is ignored for the region load when one
        is given — passing both is the deprecated duplicate-keyword path.

        With a bitstream store attached (:meth:`attach_bitstore`) and no
        artifact, the load first acquires the artifact from the board's
        cache — free when warm, a full synthesis run when cold — and the
        tile stays *reserved* (invisible to :meth:`free_tiles`) while the
        compile is in flight.  Without a store, the legacy direct path is
        taken unchanged.
        """
        tile = self.tiles[node]
        _tid, span = self._open_span(
            f"mgmt.load:{endpoint or tile.endpoint}", trace,
            node=node, accelerator=accelerator.name)
        if endpoint is not None:
            self.register_endpoint(endpoint, node)
        tile.deployed_endpoint = endpoint if endpoint is not None \
            else tile.endpoint
        if wire_services:
            for svc in self.service_endpoints:
                self.grant_send(tile.endpoint, svc)
                svc_tile = self.tiles[self.namespace.lookup(svc)]
                self.grant_send(svc_tile.endpoint, tile.endpoint)
        if artifact is None and self.bitstore is None:
            started = tile.start(accelerator, signed_by=signed_by)
        else:
            started = self._start_from_artifact(
                tile, accelerator, signed_by, artifact)
        self.stats.counter("mgmt.loads").inc()
        if span:
            started.add_callback(
                lambda ev: self.spans.close(span, self.engine.now,
                                            failed=ev.failed))
        return started

    def _start_from_artifact(self, tile, accelerator, signed_by,
                             artifact) -> Event:
        """The compile-pipeline load path: acquire artifact, then start.

        The tile is reserved for the whole acquire+start window so
        placement never double-assigns a slot whose region is still idle
        only because its bitstream is mid-synthesis.
        """
        started = self.engine.event(f"{tile.endpoint}.load")
        tile.reserved = True

        def finish(ev: Event) -> None:
            tile.reserved = False
            if ev.failed:
                started.fail(ev.value)
            else:
                started.succeed(ev.value)

        def begin(art) -> None:
            if tile.failed:
                # the board (or this tile) died while the bitstream was
                # in synthesis; the artifact stays cached, the load aborts
                tile.reserved = False
                started.fail(TileFault(
                    f"{tile.endpoint}: tile failed during synthesis"))
                return
            tile.start(accelerator, signed_by=signed_by,
                       artifact=art).add_callback(finish)

        if artifact is not None:
            begin(artifact)
        else:
            acquired = self.bitstore.acquire(
                accelerator.bitstream(signed_by=signed_by))

            def on_acquired(ev: Event) -> None:
                if ev.failed:
                    tile.reserved = False
                    started.fail(ev.value)
                    return
                begin(ev.value)

            acquired.add_callback(on_acquired)
        return started

    def load_service(self, node: int, service, endpoint: str) -> Event:
        """Load an OS service and record it for default wiring."""
        started = self.load(node, service, endpoint=endpoint,
                            wire_services=False)
        if endpoint not in self.service_endpoints:
            self.service_endpoints.append(endpoint)
        return started

    # -- observability ----------------------------------------------------------

    def attach_sampler(self, sampler) -> None:
        """Attach a :class:`~repro.obs.telemetry.TelemetrySampler`.

        Subsequent :meth:`telemetry` calls merge each tile's latest sampled
        time-series values (inject backlog, buffered flits, ...) into the
        live monitor snapshot.
        """
        self.sampler = sampler

    def attach_bitstore(self, store) -> None:
        """Attach a :class:`~repro.cluster.bitcache.BoardBitstreamStore`.

        Subsequent :meth:`load` calls route through the compile-and-cache
        pipeline, and :meth:`telemetry` gains the board's cache gauges.
        """
        self.bitstore = store

    def telemetry(self) -> List[Dict[str, float]]:
        """Per-tile traffic/health snapshots from every monitor.

        This is the operator's view of the message-passing layer — the
        observability the Programmability design goal asks for, available
        precisely because everything crosses a monitor.
        """
        snaps = []
        for tile in self.tiles:
            snap = tile.monitor.telemetry()
            region = tile.region
            # slot occupancy accounting: how much of this tile's life went
            # to reconfiguration (the scheduler's overhead) and whether the
            # slot currently holds a bitstream
            snap["region_occupied"] = 1.0 if region.occupied else 0.0
            snap["region_reconfigs"] = float(region.reconfig_count)
            snap["region_busy_cycles"] = float(region.busy_cycles_total)
            snaps.append(snap)
        if self.sampler is not None:
            for node, snap in enumerate(snaps):
                snap.update(self.sampler.latest(node))
        if self.bitstore is not None:
            # board-level cache gauges, mirrored into every tile snapshot
            # (the store is per board, tiles share it)
            cache = self.bitstore.telemetry()
            for snap in snaps:
                snap["bitcache_hit_rate"] = cache["hit_rate"]
                snap["bitcache_prefetch_accuracy"] = \
                    cache["prefetch_accuracy"]
                snap["bitcache_synth_backlog"] = cache["synth_backlog"]
        return snaps

    def police_rates(self, tx_threshold: float,
                     limit_flits_per_cycle: float,
                     burst: int = 32) -> List[str]:
        """Closed-loop policing: throttle tiles exceeding a tx-rate budget.

        Returns the endpoints that were throttled.  Tiles hosting OS
        services are exempt (they forward other tenants' traffic).
        """
        throttled = []
        service_nodes = {self.namespace.lookup(s)
                         for s in self.service_endpoints}
        for node, tile in enumerate(self.tiles):
            if node in service_nodes:
                continue
            snap = tile.monitor.telemetry()
            if snap["tx_flits_per_cycle"] > tx_threshold and not snap["rate_limited"]:
                self.set_rate_limit(node, limit_flits_per_cycle, burst=burst)
                throttled.append(tile.endpoint)
        return throttled

    def set_rate_limit(self, node: int, flits_per_cycle: Optional[float],
                       burst: int = 32) -> None:
        """Throttle (or unthrottle) one tile's NoC injection rate."""
        self.tiles[node].monitor.set_rate_limit(flits_per_cycle, burst=burst)
        self.tracer.emit(self.engine.now, "mgmt.rate_limit", "mgmt",
                         node=node, rate=flits_per_cycle)

    def fail_stop(self, node: int) -> None:
        """Operator-initiated kill of a tile."""
        self.tiles[node].fail_stop()
        self.stats.counter("mgmt.fail_stops").inc()

    def free_tiles(self) -> List[int]:
        """Nodes whose slot is empty and idle — candidates for placement."""
        return [
            node for node, tile in enumerate(self.tiles)
            if tile.accelerator is None and not tile.region.reconfiguring
            and not tile.region.occupied and not tile.reserved
        ]

    def teardown(self, node: int, revoke: bool = True,
                 trace: Optional[Tuple[int, int]] = None) -> Event:
        """Stop a tile, revoke its authority, and free the slot."""
        tile = self.tiles[node]
        _tid, span = self._open_span(f"mgmt.teardown:{tile.endpoint}", trace,
                                     node=node)
        if revoke:
            self.revoke_endpoint_caps(tile.endpoint)
            self.send_grants = {
                g for g in self.send_grants if g[0] != tile.endpoint
            }
        # remove any extra endpoint names pointing at this tile
        for name in self.namespace.names_at(node):
            if name != tile.endpoint:
                self.unregister_endpoint(name)
        tile.deployed_endpoint = None
        done = tile.stop_and_unload()
        if span:
            done.add_callback(
                lambda ev: self.spans.close(span, self.engine.now,
                                            failed=ev.failed))
        return done

    def restart(self, node: int, accelerator, endpoint: Optional[str] = None):
        """Process generator: tear down and reload a tile (recovery path)."""
        yield self.teardown(node)
        yield self.load(node, accelerator, endpoint=endpoint)

    def migrate(self, node_from: int, node_to: int, make_accelerator,
                endpoint: Optional[str] = None,
                trace: Optional[Tuple[int, int]] = None):
        """Process generator: move a preemptible accelerator to another tile.

        Section 4.4's preemption payoff, end to end: the source accelerator
        is preempted (its main process interrupted), its externalized
        architectural state captured, the source tile torn down, and a
        fresh instance (from ``make_accelerator``) restored from that state
        on the destination tile.  ``endpoint`` names re-register at the new
        tile, so peers keep calling the same logical name.

        Limitations (documented, matching the capability model): memory
        capabilities are *per-holder*, so the old tile's segments are
        revoked at teardown — state that must survive migration belongs in
        ``externalize_state``, exactly as the paper's context definition
        implies.  Returns the new accelerator instance.
        """
        source = self.tiles[node_from]
        if source.accelerator is None:
            raise ConfigError(f"tile {node_from} runs nothing to migrate")
        if not source.accelerator.preemptible:
            raise ConfigError(
                f"{source.accelerator.name!r} is not preemptible; only "
                "accelerators that externalize state can migrate (§4.4)"
            )
        dest = self.tiles[node_to]
        if dest.occupied or dest.region.occupied or dest.region.reconfiguring:
            # checked *before* the source is torn down: a migration must
            # never destroy the only running copy just to discover its
            # destination was taken
            raise ConfigError(
                f"tile {node_to} is not free; migrate needs an empty, "
                "idle destination slot"
            )
        if endpoint is None:
            extra = [n for n in self.namespace.names_at(node_from)
                     if n != source.endpoint]
            endpoint = extra[0] if extra else None
        tid, span = self._open_span(
            f"mgmt.migrate:{endpoint or source.endpoint}", trace,
            src=node_from, dst=node_to)
        child = (tid, span) if span else trace
        failed = True
        try:
            state = source.accelerator.externalize_state()
            # include contexts the fault manager parked on the tile — but
            # only the migrating deployment's own (another tenant's parked
            # context must stay behind for *its* recovery, not ride along)
            mine = source.deployed_endpoint
            for ctx in sorted(source.saved_contexts):
                owner = source.saved_context_owners.get(ctx)
                if owner is None or mine is None or owner == mine:
                    state.update(source.saved_contexts.pop(ctx))
                    source.saved_context_owners.pop(ctx, None)
            yield self.teardown(node_from, trace=child)
            replacement = make_accelerator()
            replacement.restore_state(state)
            yield self.load(node_to, replacement, endpoint=endpoint,
                            trace=child)
            failed = False
        finally:
            if span:
                self.spans.close(span, self.engine.now, failed=failed)
        self.stats.counter("mgmt.migrations").inc()
        self.tracer.emit(self.engine.now, "mgmt.migrate", "mgmt",
                         src=node_from, dst=node_to, endpoint=endpoint)
        return replacement
