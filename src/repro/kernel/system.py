"""ApiarySystem: the assembled hardware OS (Figure 1 in code).

Builds the whole stack on one simulated FPGA: the NoC, one monitor + shell
+ reconfigurable slot per tile, the capability store and segment table, the
management plane, and — on request — the memory and network services on
tiles of their own.  Also provides :func:`build_figure1`, the exact
configuration the paper's Figure 1 draws, used by the F1 experiment.

Construction has two faces:

* ``ApiarySystem(config=SystemConfig(...))`` — the primary path: a typed,
  validated config object (see :mod:`repro.kernel.config`), which is what
  the cluster layer derives per-FPGA variants from;
* the legacy flat kwargs (``ApiarySystem(width=4, mem_tile=0, ...)``) —
  deprecated but fully working: they are folded into the exact same
  :class:`SystemConfig` and build through the same code path, so both
  spellings produce byte-identical systems.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cap.captable import CapabilityStore
from repro.errors import ConfigError
from repro.hw.bitstream import DesignRuleChecker
from repro.hw.device import FpgaPart, part as lookup_part
from repro.hw.region import ReconfigRegion
from repro.hw.resources import ResourceBudget, ResourceVector, monitor_cost, router_cost
from repro.kernel.config import SystemConfig
from repro.kernel.fault import FaultManager, FaultPolicy
from repro.kernel.mgmt import MgmtPlane
from repro.kernel.monitor import Monitor
from repro.kernel.naming import Namespace
from repro.kernel.recovery import RecoveryManager
from repro.kernel.services import (
    HundredGigAdapter,
    MemoryService,
    NetworkService,
    TenGigAdapter,
)
from repro.kernel.tile import Tile
from repro.mem.dram import DDR4_TIMING, Dram, DramTiming
from repro.mem.segment import SegmentTable
from repro.net.ethernet import HundredGigMac, TenGigMac
from repro.net.frame import EthernetFabric
from repro.noc.network import Network
from repro.noc.topology import Mesh2D
from repro.obs.index import SpanIndex
from repro.obs.span import SpanRecorder
from repro.obs.telemetry import TelemetrySampler
from repro.sim import Engine, Event, RngPool, StatsRegistry, Tracer

__all__ = ["ApiarySystem", "build_figure1"]


class ApiarySystem:
    """One direct-attached FPGA running Apiary.

    Preferred construction::

        ApiarySystem(config=SystemConfig(...), engine=..., fabric=...)

    Runtime *objects* stay keyword arguments: ``engine`` (shared clock),
    ``fabric`` (the datacenter segment this board plugs into), ``spans``
    (a shared span recorder, so a cluster's systems record one causal
    trace), and ``drc`` (bitstream screening).  Everything else lives in
    the config; the flat kwargs below remain as a deprecated path that
    builds the identical config.
    """

    def __init__(
        self,
        width: int = 4,
        height: int = 4,
        engine: Optional[Engine] = None,
        part_name: str = "VU29P",
        enforce: bool = True,
        rate_limit_flits: Optional[float] = None,
        rate_limit_burst: int = 32,
        num_vcs: int = 2,
        vc_classes: int = 2,
        buffer_depth: int = 4,
        hop_latency: int = 2,
        noc_flit_bytes: int = 16,
        policy: FaultPolicy = FaultPolicy.FAIL_STOP,
        drc: Optional[DesignRuleChecker] = None,
        seed: int = 0,
        with_memory: bool = True,
        mem_tile: int = 0,
        dram_channels: int = 2,
        dram_capacity: int = 1 << 30,
        dram_timing: DramTiming = DDR4_TIMING,
        fabric: Optional[EthernetFabric] = None,
        mac_kind: str = "100g",
        mac_addr: str = "fpga0",
        net_tile: int = 1,
        monitor_cap_slots: int = 64,
        router_cls: Optional[type] = None,
        config: Optional[SystemConfig] = None,
        spans: Optional[SpanRecorder] = None,
    ):
        if config is None:
            # deprecated flat-kwargs path: fold into the one true config
            config = SystemConfig.from_flat(
                width=width, height=height, part_name=part_name,
                enforce=enforce, rate_limit_flits=rate_limit_flits,
                rate_limit_burst=rate_limit_burst, num_vcs=num_vcs,
                vc_classes=vc_classes, buffer_depth=buffer_depth,
                hop_latency=hop_latency, noc_flit_bytes=noc_flit_bytes,
                policy=policy, seed=seed, with_memory=with_memory,
                mem_tile=mem_tile, dram_channels=dram_channels,
                dram_capacity=dram_capacity, dram_timing=dram_timing,
                mac_kind=mac_kind, mac_addr=mac_addr, net_tile=net_tile,
                monitor_cap_slots=monitor_cap_slots, router_cls=router_cls,
            )
        if fabric is not None:
            config.validate_attached()
        self.config = config
        noc, mem, net = config.noc, config.mem, config.net

        self.engine = engine or Engine()
        self.rng = RngPool(seed=config.seed)
        self.stats = StatsRegistry()
        self.tracer = Tracer()
        #: one system-wide span recorder; the network, every monitor (which
        #: inherits via its NI), and the DRAM device all share it so a
        #: request's spans land in a single causal trace.  A cluster passes
        #: one recorder to all its systems, making traces cross-FPGA.
        self.spans = spans if spans is not None else SpanRecorder()
        self.part: FpgaPart = lookup_part(config.part_name)
        self.topo = Mesh2D(noc.width, noc.height)
        self.enforce = config.fault.enforce
        network_kwargs = {} if noc.router_cls is None \
            else {"router_cls": noc.router_cls}
        self.network = Network(
            self.engine, self.topo,
            num_vcs=noc.num_vcs, vc_classes=noc.vc_classes,
            buffer_depth=noc.buffer_depth, hop_latency=noc.hop_latency,
            flit_bytes=noc.flit_bytes,
            stats=self.stats, tracer=self.tracer,
            spans=self.spans,
            **network_kwargs,
        )
        self.caps = CapabilityStore(slots_per_holder=config.monitor_cap_slots)
        self.segments = SegmentTable()
        self.namespace = Namespace()
        #: the raw name table monitors resolve against; shared in place
        #: with :attr:`namespace` — policy code goes through the namespace
        self.name_table: Dict[str, int] = self.namespace.table
        self.fault_manager = FaultManager(self.engine,
                                          policy=config.fault.policy,
                                          stats=self.stats, tracer=self.tracer)
        self.drc = drc

        # resource budgeting: routers + monitors are the static framework
        self.budget = ResourceBudget(self.part)
        tiles = self.topo.node_count
        r_cost = router_cost(num_vcs=noc.num_vcs,
                             buffer_depth=noc.buffer_depth,
                             hardened=self.part.hardened_noc)
        m_cost = monitor_cost(cap_table_size=config.monitor_cap_slots,
                              rate_limited=noc.rate_limit_flits is not None)
        for node in range(tiles):
            self.budget.allocate(f"apiary.router{node}", r_cost)
            self.budget.allocate(f"apiary.monitor{node}", m_cost)
        free = self.budget.free
        self.slot_capacity = ResourceVector(
            logic_cells=free.logic_cells // tiles,
            bram_kb=free.bram_kb // tiles,
            dsp_slices=free.dsp_slices // tiles,
        )

        self.tiles: List[Tile] = []
        for node in range(tiles):
            monitor = Monitor(
                self.engine,
                tile_name=f"tile{node}",
                ni=self.network.interface(node),
                caps=self.caps,
                segments=self.segments,
                name_table=self.name_table,
                enforce=config.fault.enforce,
                rate_limit_flits_per_cycle=noc.rate_limit_flits,
                rate_limit_burst=noc.rate_limit_burst,
                cap_table_size=config.monitor_cap_slots,
                stats=self.stats,
                tracer=self.tracer,
            )
            region = ReconfigRegion(self.engine, self.slot_capacity,
                                    drc=drc, name=f"slot{node}",
                                    stats=self.stats)
            self.tiles.append(Tile(self.engine, node, monitor, region,
                                   fault_manager=self.fault_manager))

        self.mgmt = MgmtPlane(self.engine, self.caps, self.namespace,
                              self.tiles, stats=self.stats,
                              tracer=self.tracer, spans=self.spans)
        for node in range(tiles):
            self.mgmt.register_endpoint(f"tile{node}", node)

        # OS services
        self.dram: Optional[Dram] = None
        self.mem_service: Optional[MemoryService] = None
        self._boot_events: List[Event] = []
        if mem.enabled:
            self.dram = Dram(self.engine, channels=mem.dram_channels,
                             capacity_bytes=mem.dram_capacity,
                             timing=mem.dram_timing)
            self.dram.spans = self.spans
            self.mem_service = MemoryService("svc.mem", self.dram, self.caps,
                                             self.segments)
            self._boot_events.append(
                self.mgmt.load_service(mem.tile, self.mem_service, "svc.mem")
            )

        self.net_service: Optional[NetworkService] = None
        self.mac = None
        if fabric is not None:
            if net.mac_kind == "100g":
                self.mac = HundredGigMac(self.engine, fabric, net.mac_addr)
                adapter = HundredGigAdapter(self.mac)
            elif net.mac_kind == "10g":
                self.mac = TenGigMac(self.engine, fabric, net.mac_addr)
                adapter = TenGigAdapter(self.mac)
            else:  # pragma: no cover - config validation rejects earlier
                raise ConfigError(f"unknown MAC kind {net.mac_kind!r}")
            self.net_service = NetworkService("svc.net", adapter)
            self._boot_events.append(
                self.mgmt.load_service(net.tile, self.net_service, "svc.net")
            )

        self.recovery: Optional[RecoveryManager] = None
        self.sampler: Optional[TelemetrySampler] = None
        self.scheduler = None
        self.flight: Optional["FlightRecorder"] = None
        self.bitstore = None

    # -- observability -----------------------------------------------------------

    def enable_tracing(self) -> SpanRecorder:
        """Turn on causal span recording system-wide.

        Until this is called every span emit site short-circuits on
        ``spans.enabled`` (the same zero-cost contract as ``Tracer.emit``),
        so untraced runs pay nothing.
        """
        self.spans.enable()
        return self.spans

    def enable_telemetry(self, interval: int = 1000,
                         capacity: int = 512) -> TelemetrySampler:
        """Start the periodic telemetry sampler and attach it to mgmt.

        Samples per-tile monitor counters, per-router buffered flits / flit
        rates (the NoC heatmap), and DRAM queue depth every ``interval``
        cycles into ring buffers of ``capacity`` samples.
        """
        if self.sampler is not None:
            raise ConfigError("telemetry is already enabled")
        self.sampler = TelemetrySampler(
            self.engine, tiles=self.tiles, network=self.network,
            dram=self.dram, interval=interval, capacity=capacity,
        )
        self.sampler.start()
        self.mgmt.attach_sampler(self.sampler)
        return self.sampler

    def enable_flight_recorder(self, board: Optional[str] = None,
                               capacity: int = 256,
                               dump_dir: Optional[str] = None
                               ) -> "FlightRecorder":
        """Attach an always-on flight recorder to this system.

        Rings the most recent closed spans (when tracing is enabled) and
        operational events — fault reports, chaos injections, recovery
        actions — and dumps a validated JSON document automatically when
        a fault fires (see :mod:`repro.obs.flight`).  Idempotent per
        system; a cluster enables one per board.
        """
        if self.flight is not None:
            return self.flight
        from repro.obs.flight import FlightRecorder
        self.flight = FlightRecorder(
            board=board if board is not None else "board0",
            capacity=capacity, dump_dir=dump_dir)
        self.spans.attach_flight(self.flight)
        flight = self.flight

        def _on_fault(tile, record) -> None:
            flight.record_event(self.engine.now, "fault", record.tile,
                                f"{record.action}:{record.error}")
            flight.dump(self.engine.now,
                        f"fault:{record.tile}:{record.action}")

        self.fault_manager.on_fault.append(_on_fault)
        if self.recovery is not None:
            self.recovery.attach_flight(flight)
        return self.flight

    def span_index(self) -> SpanIndex:
        """A :class:`SpanIndex` over everything recorded so far."""
        return SpanIndex(self.spans)

    # -- convenience -------------------------------------------------------------

    def enable_recovery(
        self,
        spares: Optional[List[int]] = None,
        heartbeat_interval: int = 5_000,
        prefer_spare: bool = False,
        max_restarts: int = 8,
    ) -> RecoveryManager:
        """Attach a :class:`RecoveryManager` watchdog to this system.

        Call once, after construction; deploy services that must survive
        faults through ``system.recovery.deploy(...)``.  Note the watchdog
        polls forever — drive the engine with ``run(until=...)`` or
        ``run_until(event)`` rather than an open-ended ``run()``.
        """
        if self.recovery is not None:
            raise ConfigError("recovery is already enabled")
        self.recovery = RecoveryManager(
            self.engine, self.mgmt, self.fault_manager,
            spares=spares, heartbeat_interval=heartbeat_interval,
            prefer_spare=prefer_spare, max_restarts=max_restarts,
            stats=self.stats, tracer=self.tracer,
        )
        if self.flight is not None:
            self.recovery.attach_flight(self.flight)
        return self.recovery

    def enable_bitstream_cache(
        self,
        capacity_cells: Optional[int] = None,
        cycles_per_cell: Optional[int] = None,
        board: Optional[str] = None,
    ):
        """Attach a per-board bitstream compile-and-cache pipeline.

        All subsequent ``mgmt.load`` calls route through the board's
        :class:`~repro.cluster.bitcache.BoardBitstreamStore`: cold designs
        pay a realistic synthesis cost once, warm designs reconfigure
        straight from the content-addressed artifact cache.  The store
        reuses this system's DRC (screening moves to compile time, once
        per artifact) and stats registry (cache counters merge with
        everything else).
        """
        from repro.cluster.bitcache import (  # avoid a cyclic import
            DEFAULT_CACHE_CELLS,
            BoardBitstreamStore,
        )
        from repro.hw.compile import SYNTH_CYCLES_PER_CELL

        if self.bitstore is not None:
            raise ConfigError("bitstream cache is already enabled")
        self.bitstore = BoardBitstreamStore(
            self.engine,
            drc=self.drc,
            stats=self.stats,
            board=board if board is not None else "fpga0",
            capacity_cells=capacity_cells if capacity_cells is not None
            else DEFAULT_CACHE_CELLS,
            cycles_per_cell=cycles_per_cell if cycles_per_cell is not None
            else SYNTH_CYCLES_PER_CELL,
        )
        self.mgmt.attach_bitstore(self.bitstore)
        return self.bitstore

    def enable_scheduler(self, **kwargs):
        """Attach a :class:`~repro.sched.TileScheduler` to this system.

        The scheduler owns tile placement from then on: submit
        :class:`~repro.sched.JobSpec` work through ``system.scheduler``
        instead of naming tiles via :meth:`start_app`.
        """
        from repro.sched import TileScheduler  # avoid a cyclic import

        if self.scheduler is not None:
            raise ConfigError("scheduler is already enabled")
        self.scheduler = TileScheduler(self, **kwargs)
        return self.scheduler

    def boot(self, extra_cycles: int = 5000) -> None:
        """Run until the OS services are loaded and brought up."""
        for ev in self._boot_events:
            self.engine.run_until_done(ev, limit=10_000_000)
        self.engine.run(until=self.engine.now + extra_cycles)

    def tile(self, node: int) -> Tile:
        return self.tiles[node]

    def start_app(self, node: int, accelerator,
                  endpoint: Optional[str] = None,
                  signed_by: Optional[str] = None) -> Event:
        """Load a user accelerator (with default service wiring)."""
        return self.mgmt.load(node, accelerator, endpoint=endpoint,
                              signed_by=signed_by)

    def apiary_overhead_fraction(self) -> float:
        """Share of the device's logic the static framework consumes (D4)."""
        return self.budget.share_of_device("apiary.")

    def run(self, until: Optional[int] = None) -> None:
        self.engine.run(until=until)

    def run_until(self, event: Event, limit: int = 10_000_000):
        return self.engine.run_until_done(event, limit=limit)

    def describe(self) -> str:
        """ASCII rendering of the tile grid (the F1 experiment's figure)."""
        lines = [
            f"Apiary on {self.part.name} "
            f"({self.topo.width}x{self.topo.height} tiles, "
            f"OS overhead {self.apiary_overhead_fraction():.1%} of device)",
        ]
        reverse = {}
        for name, node in self.namespace.items():
            if not name.startswith("tile"):
                reverse.setdefault(node, []).append(name)
        width = self.topo.width
        for y in range(self.topo.height):
            row = []
            for x in range(width):
                node = self.topo.node_at(x, y)
                tile = self.tiles[node]
                if tile.failed:
                    label = "FAILED"
                elif tile.accelerator is not None:
                    label = tile.accelerator.name
                else:
                    label = "-"
                names = reverse.get(node)
                if names:
                    label = f"{label}[{','.join(sorted(names))}]"
                row.append(f"{label:^24}")
            lines.append(" | ".join(row))
        return "\n".join(lines)


def build_figure1(engine: Optional[Engine] = None,
                  fabric: Optional[EthernetFabric] = None) -> ApiarySystem:
    """The configuration Figure 1 of the paper draws.

    "This configuration has two applications composed of multiple
    accelerators" plus OS services (networking, memory) on their own tiles:
    a 3x2 grid with the memory service, the network service, application A
    on two tiles (a pipeline), and application B on two tiles (a replicated
    service).
    """
    engine = engine or Engine()
    if fabric is None:
        fabric = EthernetFabric(engine, latency_cycles=500)
    system = ApiarySystem(engine=engine, fabric=fabric,
                          config=SystemConfig.figure1())
    return system
