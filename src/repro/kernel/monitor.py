"""The per-tile Apiary monitor — the trusted core of the microkernel.

Section 4.1: "The Apiary monitor serves [as] an accelerator's interface to
the OS, so all messages go through it."  Everything the paper asks of the
monitor lives here:

* **Name resolution** (§4.3): a local table mapping logical endpoint names
  to physical tiles, maintained by the management plane.
* **Capability enforcement** (§4.5/4.6): every egress message needs a SEND
  capability for its destination; memory operations additionally pass the
  segment-protection unit.
* **Rate limiting** (§4.5): a token bucket on the injection path.
* **Fail-stop drain** (§4.4): "draining all outgoing or incoming messages
  and returning an error to any accelerator that tries to communicate with
  it."
* **Cost accounting** (§6 Q1): every interposition charges cycles, and the
  monitor reports its logic-cell footprint for the overhead experiments.

The monitor can also run with ``enforce=False`` (all checks skipped, zero
added cycles) — the A2 ablation's "no OS" configuration.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.cap.capability import CapabilityRef, Rights
from repro.cap.captable import CapabilityStore
from repro.errors import (
    AccessDenied,
    CapabilityError,
    ProtocolError,
    SegmentFault,
    ServiceUnavailable,
    TileFault,
)
from repro.hw.resources import ResourceVector, monitor_cost
from repro.kernel.message import MemAccess, Message, MessageKind
from repro.mem.protection import SegmentProtectionUnit
from repro.mem.segment import SegmentTable
from repro.noc.flit import flits_for_bytes
from repro.noc.network import NetworkInterface
from repro.noc.qos import RateMeter, TokenBucket
from repro.obs.span import SpanRecorder
from repro.sim import Channel, Engine, Event, StatsRegistry, Tracer

__all__ = ["Monitor", "MONITOR_EGRESS_CYCLES", "MONITOR_INGRESS_CYCLES"]

#: Cycles one egress interposition costs (cap lookup + name table + policy).
MONITOR_EGRESS_CYCLES = 2
#: Cycles one ingress interposition costs.
MONITOR_INGRESS_CYCLES = 1


class Monitor:
    """One tile's monitor, sitting between the accelerator and the NoC."""

    def __init__(
        self,
        engine: Engine,
        tile_name: str,
        ni: NetworkInterface,
        caps: CapabilityStore,
        segments: SegmentTable,
        name_table: Dict[str, int],
        enforce: bool = True,
        rate_limit_flits_per_cycle: Optional[float] = None,
        rate_limit_burst: int = 32,
        cap_table_size: int = 64,
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[Tracer] = None,
        spans: Optional[SpanRecorder] = None,
    ):
        self.engine = engine
        self.tile_name = tile_name
        self.ni = ni
        self.caps = caps
        self.name_table = name_table  # shared dict, owned by the mgmt plane
        self.enforce = enforce
        self.spu = SegmentProtectionUnit(caps, segments, holder=tile_name)
        self.stats = stats if stats is not None else StatsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.spans = spans if spans is not None else ni.network.spans
        self.drained = False
        self.cap_table_size = cap_table_size
        self.bucket: Optional[TokenBucket] = None
        if rate_limit_flits_per_cycle is not None:
            self.bucket = TokenBucket(
                rate_per_cycle=rate_limit_flits_per_cycle,
                burst=rate_limit_burst,
                start_time=engine.now,
            )
        self._egress_queue: Channel = Channel(
            engine, capacity=None, name=f"{tile_name}.egress"
        )
        #: delivery callback into the shell; set by the Shell at attach time
        self.deliver: Optional[Callable[[Message], None]] = None
        self.messages_sent = 0
        self.messages_received = 0
        self.denials = 0
        self.nacks_sent = 0
        # per-message stat handles, resolved once at construction — the
        # egress/ingress loops run per message and must not pay a
        # string-keyed (or f-string-building) registry lookup each time
        self._ctr_denials = self.stats.counter(f"{tile_name}.denials")
        self._ctr_sent = self.stats.counter("monitor.messages_sent")
        self._ctr_received = self.stats.counter("monitor.messages_received")
        #: sliding-window traffic meters — the "debugging and tracing
        #: support at the message passing layer" the design goals promise
        self.tx_meter = RateMeter(window_cycles=10_000, buckets=10)
        self.rx_meter = RateMeter(window_cycles=10_000, buckets=10)
        engine.process(self._egress_loop(), name=f"{tile_name}.mon.eg")
        engine.process(self._ingress_loop(), name=f"{tile_name}.mon.in")

    def set_rate_limit(self, flits_per_cycle: Optional[float],
                       burst: int = 32) -> None:
        """Install/replace/remove this tile's injection rate limit.

        Management-plane policy knob (Section 4.5): operators can throttle
        a misbehaving tenant without touching anyone else's monitor.
        """
        if flits_per_cycle is None:
            self.bucket = None
            return
        self.bucket = TokenBucket(
            rate_per_cycle=flits_per_cycle, burst=burst,
            start_time=self.engine.now,
        )

    @property
    def egress_backlog(self) -> int:
        """Messages queued for transmission but not yet on the wire.

        The public read for telemetry/heartbeats; samplers observe the
        monitor without touching its internal channel.
        """
        return len(self._egress_queue)

    def telemetry(self) -> Dict[str, float]:
        """One tile's live traffic/health snapshot for the operator plane.

        ``tx_flits_per_cycle`` is measured over the last 10k cycles, so a
        flooding tenant stands out immediately (see
        ``MgmtPlane.police_rates``).
        """
        now = self.engine.now
        return {
            "tile": self.tile_name,
            "messages_sent": float(self.messages_sent),
            "messages_received": float(self.messages_received),
            "denials": float(self.denials),
            "nacks_sent": float(self.nacks_sent),
            "drained": float(self.drained),
            "tx_flits_per_cycle": self.tx_meter.rate(now),
            "rx_msgs_per_cycle": self.rx_meter.rate(now),
            "rate_limited": float(self.bucket is not None),
        }

    def heartbeat(self) -> Dict[str, float]:
        """Liveness probe for the management plane's watchdog (§4.4).

        Monitors sit in the trusted static region, so they answer even when
        their tile's accelerator is dead — which is exactly how the watchdog
        tells "drained tile" apart from "no answer at all".
        """
        return {
            "alive": float(not self.drained),
            "drained": float(self.drained),
            "egress_backlog": float(self.egress_backlog),
            "time": float(self.engine.now),
        }

    # -- cost reporting (D4 / A2) ---------------------------------------------

    def logic_cost(self) -> ResourceVector:
        return monitor_cost(
            cap_table_size=self.cap_table_size,
            service_table_size=max(16, len(self.name_table)),
            rate_limited=self.bucket is not None,
        )

    # -- egress -----------------------------------------------------------------

    def submit(self, msg: Message) -> Event:
        """Accelerator-side entry: returns an event that succeeds when the
        message has been admitted to the NoC, or fails with the denial."""
        done = self.engine.event(f"{self.tile_name}.submit#{msg.mid}")
        if self.drained:
            done.fail(TileFault(f"{self.tile_name} is fail-stopped"))
            return done
        msg.src = self.tile_name  # monitors stamp identity; no spoofing
        self._egress_queue.try_put((msg, done))
        return done

    def _egress_loop(self):
        spans = self.spans
        while True:
            msg, done = yield self._egress_queue.get()
            if self.drained:
                done.fail(TileFault(f"{self.tile_name} is fail-stopped"))
                continue
            span = 0
            if spans.enabled and msg.trace_id:
                span = spans.open(msg.trace_id, "monitor.egress", "monitor",
                                  self.tile_name, self.engine.now,
                                  parent_id=msg.span_id, mid=msg.mid,
                                  op=msg.op, dst=msg.dst)
            try:
                dst_tile = self._check_egress(msg)
            except (AccessDenied, CapabilityError, ServiceUnavailable,
                    ProtocolError, SegmentFault) as err:
                self.denials += 1
                self._ctr_denials.inc()
                self.tracer.emit(self.engine.now, "monitor.deny",
                                 self.tile_name, dst=msg.dst, op=msg.op,
                                 reason=type(err).__name__)
                if span:
                    spans.close(span, self.engine.now,
                                denied=type(err).__name__)
                done.fail(err)
                continue
            if self.enforce:
                yield MONITOR_EGRESS_CYCLES
            size_flits = flits_for_bytes(msg.wire_bytes, self.ni.network.flit_bytes)
            if self.bucket is not None:
                wait = self.bucket.cycles_until(self.engine.now, size_flits)
                while wait > 0:
                    yield wait
                    wait = self.bucket.cycles_until(self.engine.now, size_flits)
                self.bucket.consume(self.engine.now, size_flits)
            msg.sent_at = self.engine.now
            yield self.ni.send(
                dst=dst_tile,
                payload=msg,
                payload_bytes=msg.wire_bytes,
                vc_class=msg.priority,
            )
            self.messages_sent += 1
            self.tx_meter.record(self.engine.now, size_flits)
            self._ctr_sent.inc()
            if span:
                spans.close(span, self.engine.now, flits=size_flits)
            done.succeed(msg)

    def _check_egress(self, msg: Message) -> int:
        """All egress policy; returns the destination tile id."""
        dst_tile = self.name_table.get(msg.dst)
        if dst_tile is None:
            raise ServiceUnavailable(f"no endpoint named {msg.dst!r}")
        if not self.enforce:
            return dst_tile
        # responses/errors flow back without a SEND cap: the request was
        # authorized, and peers must be able to receive their answers.
        if msg.kind in (MessageKind.RESPONSE, MessageKind.ERROR):
            return dst_tile
        self._require_send_cap(msg.dst)
        if msg.op in ("mem.read", "mem.write") and isinstance(msg.payload, MemAccess):
            if msg.cap is None:
                raise AccessDenied(f"{msg.op} without a memory capability")
            self.spu.check(
                msg.cap,
                offset=msg.payload.offset,
                nbytes=msg.payload.nbytes,
                is_write=(msg.op == "mem.write"),
            )
        return dst_tile

    def _require_send_cap(self, endpoint: str) -> None:
        """The tile must hold SEND for the destination endpoint."""
        for cap in self.caps.holder_caps(self.tile_name):
            if cap.endpoint == endpoint and cap.allows(Rights.SEND):
                return
        raise AccessDenied(
            f"{self.tile_name} holds no SEND capability for {endpoint!r}"
        )

    # -- ingress ----------------------------------------------------------------

    def _ingress_loop(self):
        spans = self.spans
        while True:
            pkt = yield self.ni.recv()
            msg = pkt.payload
            if not isinstance(msg, Message):
                continue  # stray traffic; monitors only speak Message
            span = 0
            if spans.enabled and msg.trace_id:
                span = spans.open(msg.trace_id, "monitor.ingress", "monitor",
                                  self.tile_name, self.engine.now,
                                  parent_id=msg.span_id, mid=msg.mid,
                                  op=msg.op)
            if self.enforce:
                yield MONITOR_INGRESS_CYCLES
            if self.drained:
                if span:
                    spans.close(span, self.engine.now, nacked=True)
                self._nack(msg)
                continue
            self.messages_received += 1
            self.rx_meter.record(self.engine.now)
            self._ctr_received.inc()
            if self.deliver is not None:
                self.deliver(msg)
            if span:
                spans.close(span, self.engine.now)

    def _nack(self, msg: Message) -> None:
        """Fail-stop semantics: reject communication with a drained tile."""
        if msg.kind != MessageKind.REQUEST:
            return  # never NACK responses/events: no error loops
        self.nacks_sent += 1
        error = msg.make_response(
            payload=f"{self.tile_name} is fail-stopped", error=True
        )
        error.src = self.tile_name
        dst_tile = self.name_table.get(error.dst)
        if dst_tile is None:
            return
        self.tracer.emit(self.engine.now, "monitor.nack", self.tile_name,
                         to=error.dst, mid=error.mid)
        # trusted path: NACKs bypass the egress queue and rate limiter so a
        # drained tile cannot be wedged by its own policy state
        self.ni.send(dst=dst_tile, payload=error,
                     payload_bytes=error.wire_bytes, vc_class=msg.priority)

    # -- fault handling hooks (§4.4) -----------------------------------------------

    def drain(self) -> None:
        """Enter fail-stop: outgoing queue is flushed with errors, future
        ingress requests are NACKed, future submits fail."""
        if self.drained:
            return
        self.drained = True
        self.tracer.emit(self.engine.now, "monitor.drain", self.tile_name)
        self.stats.counter("monitor.drains").inc()
        while True:
            ok, entry = self._egress_queue.try_get()
            if not ok:
                break
            _msg, done = entry
            if not done.triggered:
                done.fail(TileFault(f"{self.tile_name} drained"))

    def undrain(self) -> None:
        """Leave fail-stop after the slot is reloaded with a fresh bitstream."""
        self.drained = False
        self.tracer.emit(self.engine.now, "monitor.undrain", self.tile_name)
