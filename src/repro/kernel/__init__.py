"""The Apiary kernel — the paper's primary contribution, executable.

A NoC-based hardware microkernel: typed messages, per-tile monitors
enforcing capabilities and rate limits, the standard shell API, OS services
in tile slots, fail-stop/preemptible fault handling, and the management
plane.  :class:`ApiarySystem` assembles all of it on one simulated FPGA.
"""

from repro.kernel.config import (
    FaultConfig,
    MemConfig,
    NetConfig,
    NocConfig,
    SystemConfig,
)
from repro.kernel.fault import FaultManager, FaultPolicy, FaultRecord
from repro.kernel.naming import Namespace
from repro.kernel.message import (
    MESSAGE_HEADER_BYTES,
    MemAccess,
    Message,
    MessageKind,
)
from repro.kernel.mgmt import MgmtPlane
from repro.kernel.monitor import (
    MONITOR_EGRESS_CYCLES,
    MONITOR_INGRESS_CYCLES,
    Monitor,
)
from repro.kernel.services import (
    HundredGigAdapter,
    MacAdapter,
    MemoryService,
    NetworkService,
    TenGigAdapter,
)
from repro.kernel.recovery import Deployment, RecoveryEvent, RecoveryManager
from repro.kernel.remote import RemoteCpuServiceHost, RemoteServiceProxy
from repro.kernel.shell import AllocatedSegment, Shell
from repro.kernel.system import ApiarySystem, build_figure1
from repro.kernel.tile import Tile

__all__ = [
    "SystemConfig",
    "NocConfig",
    "MemConfig",
    "NetConfig",
    "FaultConfig",
    "Namespace",
    "Message",
    "MessageKind",
    "MemAccess",
    "MESSAGE_HEADER_BYTES",
    "Monitor",
    "MONITOR_EGRESS_CYCLES",
    "MONITOR_INGRESS_CYCLES",
    "Shell",
    "AllocatedSegment",
    "Tile",
    "FaultManager",
    "FaultPolicy",
    "FaultRecord",
    "MgmtPlane",
    "RecoveryManager",
    "Deployment",
    "RecoveryEvent",
    "MemoryService",
    "NetworkService",
    "MacAdapter",
    "TenGigAdapter",
    "HundredGigAdapter",
    "RemoteServiceProxy",
    "RemoteCpuServiceHost",
    "ApiarySystem",
    "build_figure1",
]
