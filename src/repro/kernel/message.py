"""The Apiary message format — the API-level interface of Section 4.3.

Every interaction in Apiary is a :class:`Message` carried over the NoC.
Destinations are *logical endpoint names* ("svc.mem", "app.encoder0"), not
physical tile ids: "The NoC allows us to move service naming to an
API-layer interface by making the destination ID a message field."  The
per-tile monitor resolves names through its local name table and enforces
capabilities before anything reaches the fabric.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.cap.capability import CapabilityRef
from repro.errors import ProtocolError

__all__ = ["MessageKind", "Message", "MemAccess", "MESSAGE_HEADER_BYTES"]

#: Wire overhead of the Apiary header (ids, op, cap ref) on top of payload.
MESSAGE_HEADER_BYTES = 32


class _MidAllocator:
    """``itertools.count`` with its state exposed.

    The windowed cluster backends need to read and restore the allocator
    position: a forked board worker inherits a *copy* of this process-
    global counter, so the sequential determinism oracle swaps a private
    copy in around each board window to allocate the exact same mids.
    """

    __slots__ = ("next_value",)

    def __init__(self, start: int = 1):
        self.next_value = start

    def __next__(self) -> int:
        value = self.next_value
        self.next_value = value + 1
        return value

    def __iter__(self) -> "_MidAllocator":
        return self


_mid_counter = _MidAllocator()


class MessageKind(enum.Enum):
    REQUEST = "request"    # expects a RESPONSE or ERROR with the same mid
    RESPONSE = "response"
    ERROR = "error"
    EVENT = "event"        # one-way notification


@dataclass
class Message:
    """One Apiary message.

    Attributes
    ----------
    src: sender endpoint name (stamped by the monitor — accelerators cannot
        spoof their identity).
    dst: destination endpoint name.
    op: operation selector within the destination service's API.
    kind: request/response/error/event.
    mid: correlation id; responses carry the request's mid.
    payload / payload_bytes: opaque body and its wire size.
    cap: optional capability reference accompanying the operation (e.g. the
        memory capability for a read/write).
    priority: traffic class hint, mapped to NoC VC classes by the monitor.
    trace_id / span_id: causal-tracing context (0 = untraced).  ``trace_id``
        identifies the root request; ``span_id`` is the span the next stage
        handling this message should parent under.  Stamped by the shell
        when span tracing is enabled, propagated into responses by
        :meth:`make_response`, and carried across the NoC inside packets.
    """

    src: str
    dst: str
    op: str
    kind: MessageKind = MessageKind.REQUEST
    mid: int = field(default_factory=lambda: next(_mid_counter))
    payload: Any = None
    payload_bytes: int = 0
    cap: Optional[CapabilityRef] = None
    priority: int = 0
    sent_at: int = -1
    trace_id: int = 0
    span_id: int = 0

    def __post_init__(self) -> None:
        if not self.dst:
            raise ProtocolError("message needs a destination endpoint")
        if self.payload_bytes < 0:
            raise ProtocolError(f"negative payload size {self.payload_bytes}")

    @property
    def wire_bytes(self) -> int:
        return MESSAGE_HEADER_BYTES + self.payload_bytes

    def make_response(self, payload: Any = None, payload_bytes: int = 0,
                      error: bool = False) -> "Message":
        """A response correlated to this request (src/dst swapped)."""
        if self.kind != MessageKind.REQUEST:
            raise ProtocolError(f"cannot respond to a {self.kind.value} message")
        return Message(
            src=self.dst,
            dst=self.src,
            op=self.op,
            kind=MessageKind.ERROR if error else MessageKind.RESPONSE,
            mid=self.mid,
            payload=payload,
            payload_bytes=payload_bytes,
            priority=self.priority,
            trace_id=self.trace_id,
            span_id=self.span_id,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Msg {self.kind.value} {self.src}->{self.dst} op={self.op} "
            f"mid={self.mid} {self.payload_bytes}B>"
        )


@dataclass(frozen=True)
class MemAccess:
    """Payload of a memory read/write request.

    ``offset`` is segment-relative: accelerators never see physical
    addresses (Section 4.6's isolation property).
    """

    offset: int
    nbytes: int
    data: Any = None  # writes carry data; reads carry None

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ProtocolError(f"negative offset {self.offset}")
        if self.nbytes < 1:
            raise ProtocolError(f"access needs >= 1 byte, got {self.nbytes}")
