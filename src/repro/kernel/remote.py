"""Remote services: placing OS functionality on a *remote* CPU (§6 Q3).

The paper's third open question: "it may not be worth implementing certain
functionality directly in hardware if it is either rarely used or
exceptionally complex.  Ideally, we could take advantage of the network
capabilities of Apiary and place the service on any remote CPU,
maintaining the ability to use an FPGA independent of its on-node CPU."

Two pieces make that concrete:

* :class:`RemoteServiceProxy` — an accelerator that occupies a tile,
  registers under a service endpoint like any hardware service, and
  forwards every request over ``svc.net`` to a remote host.  Accelerators
  calling the service cannot tell the difference (same shell API, same
  capability checks) — only the latency changes.
* :class:`RemoteCpuServiceHost` — the far end: a CPU server on the
  datacenter fabric running the service in software, paying host-stack and
  CPU-cycle costs from :mod:`repro.net.hoststack`.

The D11 experiment measures the hardware-vs-remote-CPU latency gap, which
is exactly the trade the question asks about.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.accel.base import Accelerator
from repro.errors import ConfigError
from repro.hw.resources import ResourceVector
from repro.kernel.message import Message
from repro.net.frame import EthernetFabric, EthernetFrame
from repro.net.hoststack import HostCpu, HostNetStack
from repro.net.transport import ReliableEndpoint
from repro.sim import Engine

__all__ = ["RemoteServiceProxy", "RemoteCpuServiceHost"]

#: Handler convention on the remote CPU:
#: handler(op, payload) -> (cpu_cycles, response_payload, response_bytes)
RemoteHandler = Callable[[str, Any], Tuple[int, Any, int]]


class RemoteServiceProxy(Accelerator):
    """A tile that *is* a service endpoint but does its work remotely.

    The proxy is tiny in fabric terms (a request forwarder), which is the
    point: the complex/rarely-used logic lives on a CPU somewhere else.
    """

    COST = ResourceVector(logic_cells=9_000, bram_kb=64, dsp_slices=0)
    PRIMITIVES = {"lut_logic": 7_500, "fifo": 4}

    def __init__(self, name: str, remote_mac: str, port: int):
        super().__init__(name)
        self.remote_mac = remote_mac
        self.port = port
        self._pending: Dict[int, Message] = {}
        self.forwarded = 0
        self.completed = 0

    def main(self, shell):
        yield shell.net_bind(self.port)
        while True:
            msg = yield shell.recv()
            if msg.op == "net.rx":
                self._complete(shell, msg)
            else:
                shell.spawn(f"fwd{msg.mid}", self._forward(shell, msg))

    def _forward(self, shell, msg: Message):
        self._pending[msg.mid] = msg
        self.forwarded += 1
        yield shell.net_send(
            self.remote_mac, self.port,
            data=("req", msg.mid, {"op": msg.op, "payload": msg.payload}),
            nbytes=max(64, msg.payload_bytes + 32),
        )

    def _complete(self, shell, envelope: Message) -> None:
        body = envelope.payload
        data = body.get("data")
        if not (isinstance(data, tuple) and data[0] == "resp"):
            return
        _tag, rid, response = data
        request = self._pending.pop(rid, None)
        if request is None:
            return
        self.completed += 1
        shell.spawn(f"re{rid}", self._reply(shell, request, response))

    def _reply(self, shell, request: Message, response: Dict[str, Any]):
        yield shell.reply(
            request,
            payload=response.get("payload"),
            payload_bytes=int(response.get("bytes", 0)),
            error=bool(response.get("error", False)),
        )


class RemoteCpuServiceHost:
    """A CPU server on the fabric implementing a service in software."""

    def __init__(
        self,
        engine: Engine,
        fabric: EthernetFabric,
        mac_addr: str,
        handler: RemoteHandler,
        cores: int = 2,
        kernel_bypass: bool = True,
        rng: Optional[np.random.Generator] = None,
        transport_timeout: int = 50_000,
    ):
        self.engine = engine
        self.fabric = fabric
        self.mac_addr = mac_addr
        self.handler = handler
        self.cpu = HostCpu(engine, cores=cores, rng=rng)
        self.netstack = HostNetStack(kernel_bypass=kernel_bypass)
        self.transport_timeout = transport_timeout
        self._peers: Dict[str, ReliableEndpoint] = {}
        self.requests_served = 0
        fabric.attach(mac_addr, self._rx_frame)

    def _peer(self, peer_mac: str) -> ReliableEndpoint:
        if peer_mac not in self._peers:
            endpoint = ReliableEndpoint(
                self.engine, self.fabric.transmit, self.mac_addr, peer_mac,
                timeout=self.transport_timeout,
                name=f"remote.{self.mac_addr}->{peer_mac}",
            )
            self._peers[peer_mac] = endpoint
            self.engine.process(self._serve_loop(endpoint),
                                name=f"{self.mac_addr}.serve.{peer_mac}")
        return self._peers[peer_mac]

    def _rx_frame(self, frame: EthernetFrame) -> None:
        self._peer(frame.src_mac).deliver_frame(frame)

    def _serve_loop(self, endpoint: ReliableEndpoint):
        while True:
            payload = yield endpoint.recv()
            data = payload.get("data")
            if not (isinstance(data, tuple) and data[0] == "req"):
                continue
            self.engine.process(
                self._serve_one(endpoint, payload),
                name=f"{self.mac_addr}.req",
            )

    def _serve_one(self, endpoint: ReliableEndpoint, payload: Dict[str, Any]):
        _tag, rid, body = payload["data"]
        port = payload.get("port")
        # host stack receives the request
        yield from self.cpu.run(self.netstack.receive_cost(64))
        try:
            cycles, out_payload, out_bytes = self.handler(
                body.get("op"), body.get("payload")
            )
            error = False
        except Exception as err:  # service-level failure -> error response
            cycles, out_payload, out_bytes = 1, str(err), 0
            error = True
        yield from self.cpu.run(cycles, wakeup=False)
        yield from self.cpu.run(self.netstack.send_cost(out_bytes),
                                wakeup=False)
        self.requests_served += 1
        yield endpoint.send(
            {"port": port,
             "data": ("resp", rid, {"payload": out_payload,
                                    "bytes": out_bytes, "error": error}),
             "src_mac": self.mac_addr},
            payload_bytes=max(64, out_bytes + 32),
        )
