"""Tile recovery and service failover — the availability layer.

The paper's fault model (§4.4) stops at *containment*: the FaultManager
fail-stops a tile and peers get NACKs.  This module adds what cloud FPGA
orchestrators (Funky's VM-style failover, FOS's dynamic partial reloads)
build on top of containment — detection, restart, re-placement:

* a **watchdog** in the management plane polls every deployed tile's
  monitor heartbeat, backstopping the fast path (a ``FaultManager.on_fault``
  subscription that reacts the cycle a tile drains);
* **restart in place**: the slot is torn down (capabilities revoked) and
  the accelerator's bitstream reloaded into the same region;
* **failover to a spare**: when the home slot cannot be reloaded — or the
  operator prefers warm spares — the replacement loads on a spare tile,
  the logical endpoint name rebinds there, and the dead tile's SEND
  grants are re-minted for the new holder;
* **state resumption**: contexts the FaultManager parked in
  ``tile.saved_contexts`` (preemptible accelerators) are merged and
  restored into the replacement before it starts.

Peers never re-learn addresses: they hold SEND capabilities to the
*logical* endpoint name, and monitors resolve names per message — so a
failover is invisible to callers beyond the errors they retry through
(:meth:`repro.kernel.shell.Shell.call_with_retry`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ConfigError, ReproError
from repro.kernel.fault import FaultManager, FaultRecord
from repro.kernel.mgmt import MgmtPlane
from repro.kernel.tile import Tile
from repro.sim import Engine, Event, StatsRegistry, Tracer

__all__ = ["RecoveryManager", "Deployment", "RecoveryEvent"]


@dataclass
class Deployment:
    """One service the recovery manager keeps alive."""

    endpoint: str
    factory: Callable[[], Any]  # builds a fresh accelerator instance
    node: int
    signed_by: Optional[str] = None
    restarts: int = 0
    #: name of the subsystem that owns this deployment's fault handling
    #: (e.g. "replication").  When set, the recovery manager does NOT
    #: restart/restore on fault — a blind restore of a chain member would
    #: resurrect state the chain has moved past; the delegate repairs
    #: (promote/splice) through its own fault subscription instead.
    delegate: Optional[str] = None


@dataclass
class RecoveryEvent:
    """One completed recovery, for reports and assertions."""

    time: int
    endpoint: str
    from_node: int
    to_node: int
    mttr: int
    kind: str  # "restart" | "failover"


class RecoveryManager:
    """Watchdog + restart/failover policy for deployed services.

    Parameters
    ----------
    spares: tiles reserved as failover targets (kept empty until needed).
    heartbeat_interval: watchdog polling period in cycles.  Detection is
        usually faster: the manager also subscribes to the fault manager
        and reacts the cycle a fault is contained; the heartbeat catches
        anything that drained without a report.
    prefer_spare: fail over to a spare even when the home slot is
        reloadable (models operators who want the suspect silicon cold).
    max_restarts: per-deployment cap before the manager gives up (a
        crash-looping bitstream should not monopolize the reconfig port).
    """

    def __init__(
        self,
        engine: Engine,
        mgmt: MgmtPlane,
        fault_manager: FaultManager,
        spares: Optional[List[int]] = None,
        heartbeat_interval: int = 5_000,
        prefer_spare: bool = False,
        max_restarts: int = 8,
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        if heartbeat_interval < 1:
            raise ConfigError(
                f"heartbeat interval must be >= 1, got {heartbeat_interval}"
            )
        self.engine = engine
        self.mgmt = mgmt
        self.fault_manager = fault_manager
        self.spares: List[int] = list(spares or [])
        self.heartbeat_interval = heartbeat_interval
        self.prefer_spare = prefer_spare
        self.max_restarts = max_restarts
        self.stats = stats if stats is not None else StatsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.deployments: Dict[str, Deployment] = {}
        self.recoveries: List[RecoveryEvent] = []
        self._recovering: set = set()
        self._stopped = False
        #: optional flight recorder fed every completed recovery
        self.flight: Optional[Any] = None
        fault_manager.on_fault.append(self._on_fault)
        engine.process(self._watchdog(), name="recovery.watchdog")

    def attach_flight(self, flight: Any) -> None:
        """Ring completed recoveries into a board flight recorder."""
        self.flight = flight

    # -- deployment registry ------------------------------------------------

    def deploy(self, node: int, factory: Callable[[], Any], endpoint: str,
               signed_by: Optional[str] = None,
               delegate: Optional[str] = None,
               artifact=None) -> Event:
        """Load ``factory()`` on ``node`` and keep it alive at ``endpoint``.

        ``artifact`` (a pre-compiled bitstream artifact) applies to this
        initial load only; restarts after a fault re-acquire from the
        board's cache — which is warm, the first load populated it.
        """
        if endpoint in self.deployments:
            raise ConfigError(f"{endpoint!r} is already a managed deployment")
        dep = Deployment(endpoint=endpoint, factory=factory, node=node,
                         signed_by=signed_by, delegate=delegate)
        self.deployments[endpoint] = dep
        return self.mgmt.load(node, factory(), endpoint=endpoint,
                              signed_by=signed_by, artifact=artifact)

    def forget(self, endpoint: str) -> None:
        """Stop managing ``endpoint`` (e.g. before an intentional teardown)."""
        self.deployments.pop(endpoint, None)

    def _deployment_on(self, tile: Tile) -> Optional[Deployment]:
        for dep in self.deployments.values():
            if dep.node == tile.node:
                return dep
        return None

    # -- detection ----------------------------------------------------------

    def _on_fault(self, tile: Tile, record: FaultRecord) -> None:
        """Fast path: the fault manager just contained a fault on a tile."""
        if self._stopped or record.action != "drained":
            return
        dep = self._deployment_on(tile)
        if dep is not None and dep.endpoint not in self._recovering:
            self.stats.counter("recovery.fault_detections").inc()
            if self._delegated(dep, tile.node):
                return
            self._start_recovery(dep)

    def _watchdog(self):
        """Slow path: poll monitor heartbeats for silent drains."""
        while True:
            yield self.heartbeat_interval
            if self._stopped:
                return
            for dep in list(self.deployments.values()):
                if dep.endpoint in self._recovering:
                    continue
                tile = self.mgmt.tiles[dep.node]
                if tile.region.reconfiguring:
                    # the deployment's bitstream is still loading; any
                    # failed/drained flags belong to the slot's previous
                    # tenant (a reused tile keeps them until load completes)
                    continue
                beat = tile.monitor.heartbeat()
                if tile.failed or beat["drained"]:
                    self.stats.counter("recovery.watchdog_detections").inc()
                    if self._delegated(dep, dep.node):
                        continue
                    self._start_recovery(dep)

    def _delegated(self, dep: Deployment, node: int) -> bool:
        """Hand a delegated deployment's fault to its owning subsystem.

        Restoring a replicated-chain member in place would resurrect a
        pre-fault replica the chain has already reconfigured around — the
        split-brain the epoch machinery exists to prevent.  So: stop
        managing it, free the slot, and let the delegate (which subscribes
        to the same fault notifications) run chain repair instead.
        """
        if dep.delegate is None:
            return False
        self.stats.counter("recovery.delegated").inc()
        self.tracer.emit(self.engine.now, "recovery.delegate",
                         dep.endpoint, node=node, to=dep.delegate)
        self.forget(dep.endpoint)
        self.engine.process(self._teardown_quietly(node),
                            name=f"recovery.clear.{dep.endpoint}")
        return True

    def _teardown_quietly(self, node: int):
        try:
            yield self.mgmt.teardown(node)
        except ReproError:
            pass  # slot already blank or mid-reconfig; nothing to free

    def stop(self) -> None:
        """Disable detection (the watchdog exits on its next tick)."""
        self._stopped = True
        if self._on_fault in self.fault_manager.on_fault:
            self.fault_manager.on_fault.remove(self._on_fault)

    # -- recovery -----------------------------------------------------------

    def _start_recovery(self, dep: Deployment) -> None:
        self._recovering.add(dep.endpoint)
        self.engine.process(self._recover(dep),
                            name=f"recovery.{dep.endpoint}")

    def _candidates(self, home: int) -> List[int]:
        spares = [s for s in self.spares if s != home]
        if self.prefer_spare:
            return spares + [home]
        return [home] + spares

    def _recover(self, dep: Deployment):
        try:
            yield from self._recover_inner(dep)
        finally:
            self._recovering.discard(dep.endpoint)

    def _recover_inner(self, dep: Deployment):
        old_node = dep.node
        tile = self.mgmt.tiles[old_node]
        failed_at = tile.failed_at if tile.failed_at is not None \
            else self.engine.now
        dep.restarts += 1
        if dep.restarts > self.max_restarts:
            self.stats.counter("recovery.abandoned").inc()
            self.tracer.emit(self.engine.now, "recovery.abandon",
                             dep.endpoint, node=old_node)
            self.forget(dep.endpoint)
            return
        # capture what must survive: parked contexts and the policy-level
        # grant record (teardown revokes the actual capabilities).  Only
        # *this deployment's* contexts merge — two co-resident preemptible
        # accelerators may park overlapping state keys, and a blind merge
        # restores tenant A's registers into tenant B last-writer-wins.
        # Unowned contexts (no provenance recorded) keep the old behavior.
        saved: Dict[str, Any] = {}
        for ctx in sorted(tile.saved_contexts):
            owner = tile.saved_context_owners.get(ctx)
            if owner is None or owner == dep.endpoint:
                saved.update(tile.saved_contexts.pop(ctx))
                tile.saved_context_owners.pop(ctx, None)
        old_holder = tile.endpoint
        prior_grants = self.mgmt.grants_of(old_holder)

        torn_down = False
        for _attempt in range(3):
            try:
                yield self.mgmt.teardown(old_node)
                torn_down = True
                break
            except ReproError:
                if not tile.region.occupied and not tile.region.reconfiguring:
                    torn_down = True  # slot already blank; authority revoked
                    break
                # slot mid-reconfiguration: wait a beat and retry
                yield self.heartbeat_interval
        if not torn_down:
            self.stats.counter("recovery.failed_attempts").inc()
            return

        for node in self._candidates(old_node):
            target = self.mgmt.tiles[node]
            if node != old_node and (target.occupied
                                     or target.region.occupied
                                     or target.region.reconfiguring):
                continue
            replacement = dep.factory()
            if saved:
                replacement.restore_state(dict(saved))
            started = self.mgmt.load(node, replacement,
                                     endpoint=dep.endpoint,
                                     signed_by=dep.signed_by)
            try:
                yield started
            except ReproError:
                self.stats.counter("recovery.failed_attempts").inc()
                # the name was registered optimistically; take it back
                if self.mgmt.namespace.get(dep.endpoint) == node:
                    self.mgmt.unregister_endpoint(dep.endpoint)
                continue
            self._finish(dep, old_node, node, old_holder, prior_grants,
                         failed_at)
            return
        self.stats.counter("recovery.abandoned").inc()
        self.tracer.emit(self.engine.now, "recovery.abandon", dep.endpoint,
                         node=old_node)

    def _finish(self, dep: Deployment, old_node: int, new_node: int,
                old_holder: str, prior_grants: List[str],
                failed_at: int) -> None:
        new_holder = self.mgmt.tiles[new_node].endpoint
        # re-mint the authority the dead tile held (peers' caps to the
        # logical endpoint name survive untouched — names rebind, caps don't)
        for endpoint in prior_grants:
            if endpoint in self.mgmt.namespace:
                self.mgmt.grant_send(new_holder, endpoint)
        if new_node == old_node:
            kind = "restart"
            self.stats.counter("recovery.restarts").inc()
        else:
            kind = "failover"
            self.stats.counter("recovery.failovers").inc()
            if new_node in self.spares:
                self.spares.remove(new_node)
                self.spares.append(old_node)  # the old slot becomes the spare
        dep.node = new_node
        mttr = self.engine.now - failed_at
        self.stats.histogram("recovery.mttr").record(mttr)
        event = RecoveryEvent(time=self.engine.now, endpoint=dep.endpoint,
                              from_node=old_node, to_node=new_node,
                              mttr=mttr, kind=kind)
        self.recoveries.append(event)
        if self.flight is not None:
            self.flight.record_event(
                self.engine.now, f"recovery.{kind}", dep.endpoint,
                f"node{old_node}->node{new_node} mttr={mttr}")
        self.tracer.emit(self.engine.now, f"recovery.{kind}", dep.endpoint,
                         src=old_node, dst=new_node, mttr=mttr)
