"""Apiary OS services: memory and networking.

Figure 1 shows OS services occupying tile slots just like user accelerators
("The accelerator slot can be used either by an OS service such as
networking or a user accelerator"), so both services here are
:class:`~repro.accel.base.Accelerator` subclasses speaking the same shell
API — new services can be added without touching the kernel, the
microkernel property the paper wants.

* :class:`MemoryService` — segment allocation with capability minting,
  capability-granting for composition, and read/write access to the DRAM
  model (Section 4.6).
* :class:`NetworkService` — the portable network endpoint: binds ports for
  tiles, runs the reliable transport, and hides the 10G/100G MAC interface
  divergence behind :class:`MacAdapter` (Sections 2 and 4.3; experiment
  D10).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.accel.base import Accelerator
from repro.cap.capability import Rights
from repro.cap.captable import CapabilityStore
from repro.errors import (
    AccessDenied,
    AllocationError,
    ConfigError,
    DramFault,
    ProtocolError,
    SegmentFault,
)
from repro.hw.resources import ResourceVector
from repro.kernel.message import MemAccess, Message
from repro.mem.allocator import FirstFitAllocator
from repro.mem.dram import Dram
from repro.mem.segment import SegmentTable
from repro.net.ethernet import HundredGigMac, TenGigMac
from repro.net.frame import EthernetFrame
from repro.net.transport import ReliableEndpoint

__all__ = [
    "MemoryService",
    "NetworkService",
    "MacAdapter",
    "TenGigAdapter",
    "HundredGigAdapter",
]


class MemoryService(Accelerator):
    """The memory tile: allocator + segment table + capability minting.

    Request API (all via shell messages to this service's endpoint):

    ``mem.alloc {size, label}``  -> ``{cap, sid, size}``
    ``mem.free {sid}`` + cap     -> ack (revokes the whole cap subtree)
    ``mem.read MemAccess`` + cap -> data (payload_bytes = nbytes)
    ``mem.write MemAccess`` + cap-> ack
    ``mem.grant {to, rights}`` + cap -> ``{cap}`` for the grantee

    Reads/writes were already validated by the *sender's* monitor SPU; the
    service re-validates (defense in depth) and then pays DRAM time.
    """

    COST = ResourceVector(logic_cells=30_000, bram_kb=512, dsp_slices=0)
    PRIMITIVES = {"lut_logic": 24_000, "bram": 128, "fifo": 8}

    def __init__(self, name: str, dram: Dram, caps: CapabilityStore,
                 segments: SegmentTable,
                 default_rights: Rights = Rights.rw() | Rights.GRANT):
        super().__init__(name)
        self.dram = dram
        self.caps = caps
        self.segments = segments
        self.default_rights = default_rights
        self.allocator = FirstFitAllocator(dram.capacity_bytes)
        self._backing: Dict[int, bytearray] = {}  # sid -> stored bytes
        self._extent_of: Dict[int, int] = {}      # sid -> base
        self.requests_served = 0

    def main(self, shell):
        while True:
            msg = yield shell.recv()
            # serve concurrently: DRAM accesses from different banks overlap
            shell.spawn(f"req{msg.mid}", self._serve(shell, msg))

    def _serve(self, shell, msg: Message):
        self.requests_served += 1
        handler = {
            "mem.alloc": self._alloc,
            "mem.free": self._free,
            "mem.read": self._read,
            "mem.write": self._write,
            "mem.grant": self._grant,
        }.get(msg.op)
        if handler is None:
            yield shell.reply(msg, payload=f"unknown op {msg.op!r}", error=True)
            return
        span = shell.span_open(msg, f"service:{msg.op}", op=msg.op)
        try:
            payload, payload_bytes = yield from handler(msg)
        except (AllocationError, AccessDenied, SegmentFault, ProtocolError,
                ConfigError, DramFault) as err:
            shell.span_close(span, error=type(err).__name__)
            yield shell.reply(msg, payload=f"{type(err).__name__}: {err}",
                              error=True)
            return
        shell.span_close(span)
        yield shell.reply(msg, payload=payload, payload_bytes=payload_bytes)

    # -- handlers (process generators returning (payload, payload_bytes)) -----

    def _alloc(self, msg: Message):
        size = int(msg.payload["size"])
        label = msg.payload.get("label", "")
        base, rounded = self.allocator.allocate(size)
        seg = self.segments.create(base=base, size=rounded, owner=msg.src,
                                   label=label)
        cap = self.caps.mint(msg.src, self.default_rights, segment_id=seg.sid)
        self._backing[seg.sid] = bytearray()
        self._extent_of[seg.sid] = base
        yield 4  # allocator latency
        return {"cap": cap, "sid": seg.sid, "size": rounded}, 16

    def _free(self, msg: Message):
        sid = int(msg.payload["sid"])
        if msg.cap is None:
            raise AccessDenied("mem.free needs the segment capability")
        cap = self.caps.lookup(msg.src, msg.cap, Rights.READ)
        if cap.segment_id != sid:
            raise AccessDenied(f"capability does not cover segment {sid}")
        self.caps.revoke(cap.cid)
        self.segments.free(sid)
        self.allocator.free(self._extent_of.pop(sid))
        self._backing.pop(sid, None)
        yield 4
        return "freed", 0

    def _locate(self, msg: Message, is_write: bool):
        if msg.cap is None:
            raise AccessDenied(f"{msg.op} needs a memory capability")
        if not isinstance(msg.payload, MemAccess):
            raise ProtocolError(f"{msg.op} payload must be a MemAccess")
        needed = Rights.WRITE if is_write else Rights.READ
        cap = self.caps.lookup(msg.src, msg.cap, needed)
        if cap.segment_id is None:
            raise AccessDenied("not a memory capability")
        seg = self.segments.get(cap.segment_id)
        physical = seg.translate(msg.payload.offset, msg.payload.nbytes)
        return seg, physical

    def _write(self, msg: Message):
        seg, physical = self._locate(msg, is_write=True)
        access: MemAccess = msg.payload
        yield from self.dram.access(physical, access.nbytes, is_write=True,
                                    trace_id=msg.trace_id,
                                    parent_span=msg.span_id)
        # writing refreshes the cells: any injected upsets in range are gone
        self.dram.scrub(physical, access.nbytes)
        store = self._backing[seg.sid]
        end = access.offset + access.nbytes
        if len(store) < end:
            store.extend(b"\x00" * (end - len(store)))
        data = access.data
        if isinstance(data, (bytes, bytearray)):
            store[access.offset:end] = data[: access.nbytes].ljust(
                access.nbytes, b"\x00"
            )
        return "written", 0

    def _read(self, msg: Message):
        seg, physical = self._locate(msg, is_write=False)
        access: MemAccess = msg.payload
        yield from self.dram.access(physical, access.nbytes, is_write=False,
                                    trace_id=msg.trace_id,
                                    parent_span=msg.span_id)
        store = self._backing[seg.sid]
        end = access.offset + access.nbytes
        data = bytes(store[access.offset:end]).ljust(access.nbytes, b"\x00")
        upset = self.dram.corrupted_in(physical, access.nbytes)
        if upset:
            buf = bytearray(data)
            for off in upset:
                buf[off] ^= 0x80  # the flipped bit reaches the reader
            data = bytes(buf)
        return data, access.nbytes

    def _grant(self, msg: Message):
        if msg.cap is None:
            raise AccessDenied("mem.grant needs the parent capability")
        to_tile = msg.payload["to"]
        rights = msg.payload["rights"]
        child = self.caps.derive(msg.src, msg.cap, to_tile, rights)
        yield 2
        return {"cap": child}, 8


# -- MAC adapters: one OS-side driver per divergent vendor interface -------------


class MacAdapter:
    """The uniform MAC interface the network service programs against.

    This is the "additional infrastructure" of Section 2, written once in
    the OS instead of once per application.
    """

    gbps: int = 0
    mac_addr: str = ""

    def bring_up(self):
        """Process generator: perform the core-specific reset/bring-up."""
        raise NotImplementedError

    def transmit(self, frame: EthernetFrame):
        """Process generator: send one frame (handles core backpressure)."""
        raise NotImplementedError

    def on_rx(self, callback) -> None:
        raise NotImplementedError


class TenGigAdapter(MacAdapter):
    """Drives the three-step reset protocol of the 10G core."""

    def __init__(self, mac: TenGigMac):
        self.mac = mac
        self.gbps = mac.GBPS
        self.mac_addr = mac.mac_addr

    def bring_up(self):
        self.mac.assert_reset()
        self.mac.release_reset()
        yield TenGigMac.RESET_CYCLES
        self.mac.enable_tx_rx()

    def transmit(self, frame: EthernetFrame):
        yield self.mac.send_frame(frame)

    def on_rx(self, callback) -> None:
        self.mac.set_rx_callback(callback)


class HundredGigAdapter(MacAdapter):
    """Drives the register/alignment protocol of the 100G core."""

    POLL_CYCLES = 100

    def __init__(self, mac: HundredGigMac):
        self.mac = mac
        self.gbps = mac.GBPS
        self.mac_addr = mac.mac_addr

    def bring_up(self):
        self.mac.write_reg("cfg_tx_enable", 1)
        self.mac.write_reg("cfg_rx_enable", 1)
        while self.mac.read_reg("stat_aligned") == 0:
            yield self.POLL_CYCLES

    def transmit(self, frame: EthernetFrame):
        while not self.mac.tx_push(frame):
            yield self.POLL_CYCLES // 10  # FIFO full: retry

    def on_rx(self, callback) -> None:
        self.mac.on_rx(callback)


class NetworkService(Accelerator):
    """The networking tile: ports, reliable transport, MAC driving.

    Request API:

    ``net.bind {port}``                       -> ack; rx for that port is
        forwarded to the binder as ``net.rx`` events.
    ``net.send {dst_mac, port, data, nbytes}``-> ack when ACKed by the peer
        transport.

    One :class:`ReliableEndpoint` is maintained per peer MAC, multiplexing
    all ports — mirroring how hardware stacks share one connection table.
    """

    COST = ResourceVector(logic_cells=45_000, bram_kb=384, dsp_slices=0)
    PRIMITIVES = {"lut_logic": 36_000, "bram": 96, "fifo": 16}

    def __init__(self, name: str, adapter: MacAdapter,
                 transport_window: int = 8, transport_timeout: int = 20_000):
        super().__init__(name)
        self.adapter = adapter
        self.transport_window = transport_window
        self.transport_timeout = transport_timeout
        self._ports: Dict[int, str] = {}  # port -> tile endpoint
        self._peers: Dict[str, ReliableEndpoint] = {}
        self._engine = None
        self._shell = None
        self.frames_forwarded = 0
        self.rx_unbound = 0

    def main(self, shell):
        self._shell = shell
        self._engine = shell.engine
        yield from self.adapter.bring_up()
        self.adapter.on_rx(self._mac_rx)
        while True:
            msg = yield shell.recv()
            shell.spawn(f"req{msg.mid}", self._serve(shell, msg))

    def _serve(self, shell, msg: Message):
        span = shell.span_open(msg, f"service:{msg.op}", op=msg.op)
        if msg.op == "net.bind":
            port = int(msg.payload["port"])
            if port in self._ports and self._ports[port] != msg.src:
                shell.span_close(span, error="PortTaken")
                yield shell.reply(msg, payload=f"port {port} taken", error=True)
                return
            self._ports[port] = msg.src
            shell.span_close(span)
            yield shell.reply(msg, payload="bound")
        elif msg.op == "net.send":
            body = msg.payload
            endpoint = self._peer(body["dst_mac"])
            yield endpoint.send(
                {"port": body["port"], "data": body["data"],
                 "src_mac": self.adapter.mac_addr},
                payload_bytes=int(body["nbytes"]),
            )
            shell.span_close(span)
            yield shell.reply(msg, payload="sent")
        else:
            shell.span_close(span, error="UnknownOp")
            yield shell.reply(msg, payload=f"unknown op {msg.op!r}", error=True)

    def _peer(self, peer_mac: str) -> ReliableEndpoint:
        if peer_mac not in self._peers:
            endpoint = ReliableEndpoint(
                self._engine,
                send_frame=self._tx_frame,
                local_mac=self.adapter.mac_addr,
                peer_mac=peer_mac,
                window=self.transport_window,
                timeout=self.transport_timeout,
                name=f"{self.name}->{peer_mac}",
            )
            self._peers[peer_mac] = endpoint
            self._engine.process(self._rx_pump(endpoint),
                                 name=f"{self.name}.rx.{peer_mac}")
        return self._peers[peer_mac]

    def _tx_frame(self, frame: EthernetFrame) -> None:
        """Transport -> MAC: run the adapter's (possibly blocking) tx."""
        self._engine.process(self.adapter.transmit(frame),
                             name=f"{self.name}.tx")

    def _mac_rx(self, frame: EthernetFrame) -> None:
        """MAC -> transport demux by source MAC."""
        endpoint = self._peer(frame.src_mac)
        endpoint.deliver_frame(frame)

    def _rx_pump(self, endpoint: ReliableEndpoint):
        """Deliver transport payloads to the tile bound to their port."""
        while True:
            payload = yield endpoint.recv()
            port = payload.get("port")
            dst = self._ports.get(port)
            if dst is None:
                self.rx_unbound += 1
                continue
            self.frames_forwarded += 1
            yield self._shell.notify(dst, "net.rx", payload=payload)
